//! Scaling study: interrogate the cost model the way the paper's
//! evaluation does — which level wins where, and why.
//!
//! Prints (1) the feasibility frontier of each level over a (k, d) grid,
//! (2) the Fig. 7-style Level-2/Level-3 crossover, and (3) the per-phase
//! breakdown of the headline configuration.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use sunway_kmeans::perf_model::{find_crossover_d, Level};
use sunway_kmeans::prelude::*;

fn main() {
    let nodes = 128;
    let model = CostModel::taihulight(nodes);
    let n = 1_265_723u64;

    // ---- (1) Feasibility / winner grid. ----
    println!("Winner per (k, d) on {nodes} nodes (— = nothing feasible):\n");
    let ks = [16u64, 256, 2_000, 16_384, 131_072];
    let ds = [4u64, 68, 1_024, 4_096, 49_152, 196_608];
    print!("{:>10}", "k \\ d");
    for d in ds {
        print!("{d:>10}");
    }
    println!();
    for k in ks {
        print!("{k:>10}");
        for d in ds {
            let shape = ProblemShape::f32(n, k, d);
            let cell = match best_level(&model, &shape) {
                Ok((Level::L1, _)) => "L1",
                Ok((Level::L2, _)) => "L2",
                Ok((Level::L3, _)) => "L3",
                Err(_) => "—",
            };
            print!("{cell:>10}");
        }
        println!();
    }

    // ---- (2) The crossover. ----
    println!("\nLevel-2 → Level-3 crossover at k=2,000 (Fig. 7):");
    match find_crossover_d(&model, n, 2_000, 512, 8_192, 512) {
        Some(d) => println!("  Level 3 becomes faster at d = {d} (paper: ~2,560–3,072)"),
        None => println!("  no crossover in range"),
    }

    // ---- (3) Headline breakdown. ----
    println!("\nHeadline configuration (n=1.27M, k=2,000, d=196,608, 4,096 nodes):");
    let headline = CostModel::taihulight(4_096)
        .iteration_time(&ProblemShape::imgnet_headline(), Level::L3)
        .expect("headline is feasible");
    println!("  compute      {:>9.4} s", headline.compute);
    println!("  read (DMA)   {:>9.4} s", headline.read);
    println!("  assign comm  {:>9.4} s", headline.assign_comm);
    println!("  update comm  {:>9.4} s", headline.update_comm);
    println!(
        "  total        {:>9.4} s  (paper claims < 18 s) — plan: {} CGs per group, {} groups",
        headline.total(),
        headline.plan.group_units,
        headline.plan.n_groups
    );

    // ---- (4) What the functional executor's traffic implies. ----
    println!("\nFunctional cross-check (8 virtual CGs, scaled data):");
    let blobs = GaussianMixture::new(2_048, 64, 8)
        .with_seed(3)
        .generate::<f32>();
    let init = init_centroids(&blobs.data, 8, InitMethod::Forgy, 1);
    let result = HierKMeans::new(Level::L3)
        .with_units(8)
        .with_group_units(4)
        .with_cpes_per_cg(8)
        .with_max_iters(3)
        .with_tol(0.0)
        .fit(&blobs.data, init)
        .expect("functional run");
    println!(
        "  3 iterations moved {} messages / {} bytes across the virtual machine",
        result.comm_messages, result.comm_bytes
    );
}
