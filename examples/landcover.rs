//! Land-cover classification — the paper's Fig. 10 application, end to end.
//!
//! Generates a DeepGlobe-2018-like synthetic satellite scene, featurises
//! every pixel into an RGB block neighbourhood, clusters the pixels into
//! the seven land classes with the Level-3 (nkd) executor, scores the
//! recovered classes against ground truth, and writes three PPM images
//! (satellite view, ground-truth mask, recovered mask).
//!
//! ```text
//! cargo run --release --example landcover [-- <out_dir>]
//! ```

use sunway_kmeans::prelude::*;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/landcover".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // A 256×256 scene with parcel-sized class regions.
    let scene = SyntheticScene::generate(SceneConfig {
        width: 256,
        height: 256,
        sites_per_class: 4,
        seed: 2018,
    });
    println!(
        "scene: {}×{} px, {} ground-truth classes",
        scene.config.width,
        scene.config.height,
        datasets::LAND_CLASSES.len()
    );

    // Block featurisation: each pixel becomes its 3×3 RGB neighbourhood
    // (d = 27). The paper's d = 4,096 comes from the same construction at
    // a larger block size.
    let features = scene.block_features(3);
    println!(
        "features: n = {} samples, d = {}",
        features.rows(),
        features.cols()
    );

    let k = 7;
    let init = init_centroids(&features, k, InitMethod::KMeansPlusPlus, 11);
    let result = HierKMeans::new(Level::L3)
        .with_units(8)
        .with_group_units(2)
        .with_cpes_per_cg(4)
        .with_max_iters(40)
        .with_tol(1e-6)
        .fit(&features, init)
        .expect("clustering");
    println!(
        "clustering: {} iterations (converged = {}), objective {:.4}",
        result.iterations, result.converged, result.objective
    );

    let accuracy = scene.clustering_accuracy(&result.labels, k);
    println!("class recovery: {:.1}% of pixels", accuracy * 100.0);

    for (name, image) in [
        ("satellite.ppm", scene.satellite()),
        ("truth.ppm", scene.truth_mask()),
        ("clusters.ppm", scene.label_mask(&result.labels)),
    ] {
        let path = format!("{out_dir}/{name}");
        image.save_ppm(&path).expect("write ppm");
        println!("wrote {path}");
    }

    // The paper's full-tile configuration, priced by the model.
    let model = CostModel::taihulight(400);
    let shape = ProblemShape::f32(5_838_480, 7, 4_096);
    match model.iteration_time(&shape, Level::L3) {
        Ok(cost) => println!(
            "paper scale (n=5.8M, d=4096, k=7, 400 nodes): {:.4} s/iteration (model)",
            cost.total()
        ),
        Err(e) => println!("paper scale infeasible: {e}"),
    }
}
