//! Out-of-core clustering of a virtual ImageNet-scale source.
//!
//! The paper's full-resolution configuration describes ~1 TB of pixels; on
//! the real machine they stream through each CPE's double-buffered LDM via
//! DMA. This example does the software equivalent: clusters a virtual
//! [`ImageNetSource`] (samples generated on demand, never materialised)
//! with the streaming executor, then asks the cost model what the same
//! pattern costs at the paper's scale.
//!
//! ```text
//! cargo run --release --example stream_imagenet [-- <n_images> <d>]
//! ```

use sunway_kmeans::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args
        .next()
        .map(|v| v.parse().expect("n_images"))
        .unwrap_or(2_000);
    let d: usize = args.next().map(|v| v.parse().expect("d")).unwrap_or(3_072);

    let source = ImageNetSource::new(n, d, 0x1357);
    println!(
        "virtual source: {} images × {d} dims ({:.2} GB if materialised — we never do)",
        source.len(),
        source.len() as f64 * d as f64 * 4.0 / 1e9
    );

    // Seed centroids from a small materialised window.
    let k = 10;
    let seed_window = source.materialize(0, 64.min(n as usize));
    let init = init_centroids(&seed_window, k, InitMethod::KMeansPlusPlus, 17);

    let cfg = StreamConfig {
        units: 8,
        group_units: 2,
        window: 256,
        max_iters: 12,
        tol: 1e-5,
    };
    let start = std::time::Instant::now();
    let result = fit_source(&source, init, &cfg).expect("streaming fit");
    let wall = start.elapsed().as_secs_f64();
    println!(
        "streamed {} iterations in {wall:.2} s (window {} samples/rank), converged = {}",
        result.iterations, cfg.window, result.converged
    );
    println!(
        "objective {:.5}; moved {} messages / {:.1} MB between virtual units",
        result.objective,
        result.comm_messages,
        result.comm_bytes as f64 / 1e6
    );
    let sizes = kmeans_core::objective::cluster_sizes(&result.labels, k);
    println!("cluster sizes: {sizes:?}");

    // Price the paper-scale equivalent of this pattern.
    for (nodes, d_paper) in [(4_096usize, 196_608u64), (128, 12_288)] {
        let shape = ProblemShape::f32(datasets::imagenet::PAPER_N, k as u64, d_paper);
        match CostModel::taihulight(nodes).iteration_time(&shape, Level::L3) {
            Ok(cost) => println!(
                "paper scale d={d_paper} on {nodes} nodes: {:.3} s/iteration (model, {})",
                cost.total(),
                cost.dominant_phase()
            ),
            Err(e) => println!("paper scale d={d_paper} on {nodes} nodes: {e}"),
        }
    }
}
