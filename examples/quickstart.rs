//! Quickstart: cluster a synthetic mixture with each of the three partition
//! levels and check they agree with serial Lloyd.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sunway_kmeans::prelude::*;

fn main() {
    // A 3,000-sample, 32-dimensional mixture of 6 well-separated blobs.
    let blobs = GaussianMixture::new(3_000, 32, 6)
        .with_seed(42)
        .with_spread(30.0)
        .generate::<f64>();
    let k = 6;
    let init = init_centroids(&blobs.data, k, InitMethod::KMeansPlusPlus, 7);

    // Reference: serial Lloyd.
    let serial = Lloyd::run_from(
        &blobs.data,
        init.clone(),
        &KMeansConfig::new(k).with_max_iters(50),
    )
    .expect("serial run");
    println!(
        "serial Lloyd:   {} iterations, objective {:.4}",
        serial.iterations, serial.objective
    );

    // The three hierarchical levels, each on 8 virtual units.
    for (level, group_units) in [(Level::L1, 1), (Level::L2, 4), (Level::L3, 2)] {
        let result = HierKMeans::new(level)
            .with_units(8)
            .with_group_units(group_units)
            .with_cpes_per_cg(8)
            .with_max_iters(50)
            .fit(&blobs.data, init.clone())
            .expect("hierarchical run");
        let diff = result.centroids.max_abs_diff(&serial.centroids);
        println!(
            "{level}: {} iterations, objective {:.4}, max centroid diff vs serial {diff:.2e}, \
             {} msgs / {} bytes, phases: assign {:.1} ms / merge {:.1} ms / update {:.1} ms",
            result.iterations,
            result.objective,
            result.comm_messages,
            result.comm_bytes,
            result.timings.assign * 1e3,
            result.timings.merge * 1e3,
            result.timings.update * 1e3,
        );
        assert!(diff < 1e-6, "hierarchical diverged from serial");
    }

    // What would this cost on the real machine? Ask the model.
    let model = CostModel::taihulight(1);
    let shape = ProblemShape::f64(3_000, k as u64, 32);
    let (level, cost) = best_level(&model, &shape).expect("some level runs");
    println!(
        "cost model picks {level} on one node: {:.2} µs/iteration (dominated by {})",
        cost.total() * 1e6,
        cost.dominant_phase()
    );
}
