//! Demographic segmentation on the US-Census-1990 stand-in — the paper's
//! Fig. 3/4 workload as an application: pick the level automatically,
//! cluster, and profile the segments.
//!
//! ```text
//! cargo run --release --example census_clusters [-- <n_samples> <k>]
//! ```

use sunway_kmeans::hier_kmeans::choose_level;
use sunway_kmeans::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|v| v.parse().expect("n_samples"))
        .unwrap_or(20_000);
    let k: usize = args.next().map(|v| v.parse().expect("k")).unwrap_or(12);

    let census = datasets::uci::us_census_1990();
    let data = census.generate(n.min(census.full_n));
    println!(
        "{}: clustering {} of {} records, d = {}, k = {k}",
        census.name,
        data.rows(),
        census.full_n,
        data.cols()
    );

    // Ask the model which level the full-size problem would use on the
    // real machine, then run that level functionally here.
    let level = choose_level(census.full_n, k, census.d, 1);
    println!("cost model picks {level} for the full problem on one node");

    let init = init_centroids(&data, k, InitMethod::KMeansPlusPlus, 1990);
    let result = HierKMeans::new(level)
        .with_units(8)
        .with_group_units(if level == Level::L1 { 1 } else { 4 })
        .with_max_iters(60)
        .fit(&data, init)
        .expect("clustering");
    println!(
        "{} iterations (converged = {}), objective {:.3}",
        result.iterations, result.converged, result.objective
    );

    // Profile the segments: size plus the most distinctive dimensions
    // (largest |mean| — the codes are centred around zero).
    let sizes = kmeans_core::objective::cluster_sizes(&result.labels, k);
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&j| std::cmp::Reverse(sizes[j]));
    println!("\nsegment  size     top distinctive dimensions (value)");
    for &j in order.iter().take(8) {
        let row = result.centroids.row(j);
        let mut dims: Vec<(usize, f32)> = row.iter().copied().enumerate().collect();
        dims.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
        let tops: Vec<String> = dims
            .iter()
            .take(3)
            .map(|(u, v)| format!("attr{u}={v:.1}"))
            .collect();
        println!("{j:>7}  {:>5}    {}", sizes[j], tops.join(", "));
    }
}
