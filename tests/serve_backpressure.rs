//! Backpressure under load: an undersized admission queue must shed with
//! the typed `Overloaded` error (never block unboundedly, never OOM), and
//! every admitted request must still complete.

use std::sync::atomic::{AtomicU64, Ordering};
use sunway_kmeans::kmeans_core::Matrix;
use sunway_kmeans::prelude::*;
use sunway_kmeans::swkm_serve::ServeError;

/// A deliberately slow index: large k·d so each scan takes real time.
fn heavy_index(shards: usize) -> ShardedIndex<f64> {
    let (k, d) = (256usize, 256usize);
    let centroids = Matrix::from_vec(k, d, (0..k * d).map(|i| (i as f64 * 0.37).sin()).collect());
    ShardedIndex::new(centroids, shards)
}

#[test]
fn undersized_queue_sheds_with_typed_overloaded() {
    let server = Server::start(
        heavy_index(2),
        PipelineConfig {
            queue_capacity: 2, // deliberately tiny
            workers: 1,
            max_batch: 2,
            linger: std::time::Duration::ZERO,
        },
    );
    let shed = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..16 {
            let client = server.client();
            let (shed, completed) = (&shed, &completed);
            scope.spawn(move || {
                for i in 0..25 {
                    let v = (c * 25 + i) as f64;
                    match client.predict(vec![v % 3.0; 256]) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Overloaded {
                            queue_depth,
                            capacity,
                        }) => {
                            assert_eq!(capacity, 2);
                            assert!(queue_depth <= capacity);
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected serve error: {e}"),
                    }
                }
            });
        }
    });
    let snap = server.shutdown();
    let (shed, completed) = (shed.into_inner(), completed.into_inner());
    assert_eq!(shed + completed, 16 * 25, "every request resolved one way");
    assert!(
        shed > 0,
        "16 closed-loop clients against a 2-deep queue must shed"
    );
    // Accounting is exact: the server's counters match the clients' view.
    assert_eq!(snap.rejected, shed);
    assert_eq!(snap.completed, completed);
    assert_eq!(snap.accepted, completed);
}

#[test]
fn load_generator_reports_shedding() {
    let server = Server::start(
        heavy_index(2),
        PipelineConfig {
            queue_capacity: 1,
            workers: 1,
            max_batch: 1,
            linger: std::time::Duration::ZERO,
        },
    );
    let queries = Matrix::from_vec(8, 256, (0..8 * 256).map(|i| (i as f64).cos()).collect());
    let report = run_closed_loop(
        &server,
        &queries,
        LoadGenConfig {
            clients: 12,
            requests_per_client: 30,
        },
    );
    server.shutdown();
    assert_eq!(report.issued, 360);
    assert_eq!(report.completed + report.shed, 360);
    assert!(report.shed > 0, "expected shedding, got {report}");
    assert!(report.shed_fraction() > 0.0 && report.shed_fraction() < 1.0);
}

/// Kill a shard mid-load: the survivors absorb the traffic, replies come
/// back marked degraded, and the accounting still balances exactly —
/// issued = completed + shed + failed, no request silently lost.
#[test]
fn shard_killed_mid_load_loses_no_requests() {
    let server = Server::start(
        heavy_index(4),
        PipelineConfig {
            queue_capacity: 4_096,
            workers: 2,
            max_batch: 16,
            linger: std::time::Duration::from_micros(100),
        },
    );
    let queries = Matrix::from_vec(8, 256, (0..8 * 256).map(|i| (i as f64).sin()).collect());
    let report = std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(3));
            assert!(server.kill_shard(0), "first kill reports the transition");
            assert!(!server.kill_shard(0), "second kill is an idempotent no-op");
        });
        run_closed_loop(
            server,
            &queries,
            LoadGenConfig {
                clients: 6,
                requests_per_client: 200,
            },
        )
    });
    let snap = server.shutdown();
    assert_eq!(report.issued, 6 * 200);
    assert_eq!(
        report.completed + report.shed + report.failed,
        report.issued,
        "a request vanished: {report}"
    );
    // Three of four shards survive, so nothing should actually fail — the
    // batches that span the dead shard complete degraded instead.
    assert_eq!(report.failed, 0, "survivors should have absorbed the load");
    assert!(
        report.degraded > 0,
        "requests served after the kill must be marked degraded"
    );
    assert!(snap.shard_failovers > 0, "failovers must be counted");
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.completed, report.completed);
}

/// Every shard killed: requests fail with the typed `AllShardsDown`, are
/// still replied to (counted in `failed`), and accounting stays exact.
#[test]
fn all_shards_killed_fails_typed_but_loses_nothing() {
    let server = Server::start(
        heavy_index(2),
        PipelineConfig {
            queue_capacity: 64,
            workers: 1,
            max_batch: 8,
            linger: std::time::Duration::ZERO,
        },
    );
    server.kill_shard(0);
    server.kill_shard(1);
    let client = server.client();
    let mut failed = 0u64;
    for _ in 0..20 {
        match client.predict(vec![0.5; 256]) {
            Err(ServeError::AllShardsDown { shards }) => {
                assert_eq!(shards, 2);
                failed += 1;
            }
            other => panic!("expected AllShardsDown, got {other:?}"),
        }
    }
    drop(client);
    let snap = server.shutdown();
    assert_eq!(failed, 20);
    assert_eq!(snap.failed, 20);
    assert_eq!(snap.accepted, 20);
    assert_eq!(snap.completed, 0);
}

/// The shard-kill drill on the *elastic* event core: a shard dies while
/// the pool is scaled up and work stealing is active. Survivors absorb
/// the load (stealing included), accounting balances, nothing strands.
#[test]
fn shard_killed_mid_load_on_elastic_core_loses_no_requests() {
    use std::time::Duration;
    use sunway_kmeans::swkm_obs::MetricsRegistry;
    use sunway_kmeans::swkm_serve::{DispatchConfig, ElasticConfig, ServeTracing};

    let registry = MetricsRegistry::shared();
    let server = Server::start_dispatch(
        heavy_index(4),
        DispatchConfig {
            queue_capacity: 4_096,
            max_batch: 8,
            linger: Duration::from_micros(50),
            shards: ElasticConfig::elastic(1, 4),
            shard_queue: 1,
            tick: Duration::from_millis(1),
            admission: None,
        },
        registry.clone(),
        ServeTracing::default(),
    );
    let queries = Matrix::from_vec(8, 256, (0..8 * 256).map(|i| (i as f64).sin()).collect());
    let report = std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert!(server.kill_shard(1), "kill reports the transition");
        });
        run_closed_loop(
            server,
            &queries,
            LoadGenConfig {
                clients: 8,
                requests_per_client: 150,
            },
        )
    });
    let snap = server.shutdown();
    assert_eq!(report.issued, 8 * 150);
    assert_eq!(
        report.completed + report.shed + report.failed,
        report.issued,
        "a request vanished: {report}"
    );
    assert_eq!(report.failed, 0, "three survivors must absorb the load");
    assert!(report.degraded > 0, "post-kill replies must be degraded");
    assert!(snap.shard_failovers > 0);
    assert_eq!(snap.stranded, 0, "the kill must not strand queued work");
    assert_eq!(snap.completed, report.completed);
    // The kill notification reached the dispatcher, which re-published
    // the live shard count for observability.
    assert_eq!(registry.gauge("serve_index_alive_shards"), Some(3.0));
}

#[test]
fn generous_queue_does_not_shed() {
    let server = Server::start(
        heavy_index(4),
        PipelineConfig {
            queue_capacity: 4_096,
            workers: 2,
            max_batch: 32,
            linger: std::time::Duration::from_micros(100),
        },
    );
    let queries = Matrix::from_vec(4, 256, (0..4 * 256).map(|i| (i as f64).sin()).collect());
    let report = run_closed_loop(
        &server,
        &queries,
        LoadGenConfig {
            clients: 4,
            requests_per_client: 50,
        },
    );
    server.shutdown();
    // Closed-loop clients can never have more than `clients` requests in
    // flight, so a queue far deeper than that admits everything.
    assert_eq!(report.completed, 200);
    assert_eq!(report.shed, 0);
}
