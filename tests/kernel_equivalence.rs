//! Property tests for the assign-kernel layer: `Expanded`, `Tiled` and
//! `Gemm` must reproduce the exact `Scalar` reference's argmin — including
//! the workspace-wide lowest-index tie-break — across arbitrary shapes,
//! tile budgets and dimension slicings. `Gemm` is additionally held to a
//! stronger bar: bitwise-identical keys to `Tiled` (the two share one
//! canonical accumulation order).

use proptest::prelude::*;
use sunway_kmeans::kmeans_core::{
    argmin_centroid, BoundsMode, KMeansConfig, Lloyd, TileShape, LDM_BYTES_DEFAULT,
};
use sunway_kmeans::prelude::*;

fn assign_all(
    plan: &AssignPlan<f64>,
    data: &Matrix<f64>,
    centroids: &Matrix<f64>,
) -> Vec<(u32, f64)> {
    let mut out = Vec::new();
    plan.assign_batch_into(
        data,
        0..data.rows(),
        centroids,
        0..centroids.rows(),
        0,
        &mut out,
    );
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On random f64 problems every kernel picks the same centroid as the
    /// serial scan, at every LDM budget (tiny budgets force edge tiles).
    #[test]
    fn kernels_match_scalar_argmin_on_random_shapes(
        seed in 0u64..10_000,
        n in 1usize..60,
        d in 1usize..40,
        k in 1usize..20,
        ldm_pick in 0usize..4,
    ) {
        let ldm = [64usize, 700, 4_096, LDM_BYTES_DEFAULT][ldm_pick];
        let blobs = GaussianMixture::new(n.max(k), d, k).with_seed(seed).generate::<f64>();
        let data = blobs.data;
        let centroids = init_centroids(&data, k, InitMethod::Forgy, seed + 1);
        for kernel in AssignKernel::ALL {
            let plan = AssignPlan::with_ldm_budget(kernel, &centroids, ldm);
            for (i, &(j, _)) in assign_all(&plan, &data, &centroids).iter().enumerate() {
                let (serial, _) = argmin_centroid(data.row(i), &centroids);
                prop_assert_eq!(j as usize, serial, "{} ldm={} sample {}", kernel, ldm, i);
            }
        }
    }

    /// Duplicated centroid rows create exact ties at arbitrary positions
    /// of the tile grid; the lowest global index must always win.
    #[test]
    fn duplicated_rows_tie_to_the_lowest_index(
        seed in 0u64..10_000,
        n in 1usize..40,
        d in 1usize..16,
        k in 1usize..8,
        ldm_pick in 0usize..3,
    ) {
        let ldm = [64usize, 512, LDM_BYTES_DEFAULT][ldm_pick];
        let blobs = GaussianMixture::new(n.max(k), d, k).with_seed(seed).generate::<f64>();
        let data = blobs.data;
        let base = init_centroids(&data, k, InitMethod::Forgy, seed + 2);
        let mut rows: Vec<&[f64]> = Vec::new();
        for j in 0..base.rows() {
            rows.push(base.row(j));
            rows.push(base.row(j));
        }
        let centroids = Matrix::from_rows(&rows);
        for kernel in AssignKernel::ALL {
            let plan = AssignPlan::with_ldm_budget(kernel, &centroids, ldm);
            for (i, &(j, _)) in assign_all(&plan, &data, &centroids).iter().enumerate() {
                prop_assert_eq!(j % 2, 0, "{} sample {}: duplicate's higher index won", kernel, i);
                let (serial, _) = argmin_centroid(data.row(i), &centroids);
                prop_assert_eq!(j as usize, serial);
            }
        }
    }

    /// Arbitrary contiguous dimension slicings (the Level-3 CPE partition)
    /// leave every kernel's argmin unchanged — dots are additive over
    /// disjoint slices.
    #[test]
    fn dimension_slices_preserve_the_argmin(
        seed in 0u64..10_000,
        n in 1usize..30,
        d in 1usize..40,
        k in 1usize..10,
        cpes in 1usize..9,
    ) {
        let blobs = GaussianMixture::new(n.max(k), d, k).with_seed(seed).generate::<f64>();
        let data = blobs.data;
        let centroids = init_centroids(&data, k, InitMethod::Forgy, seed + 3);
        let slices: Vec<std::ops::Range<usize>> = (0..cpes)
            .map(|c| {
                let lo = c * d / cpes;
                let hi = (c + 1) * d / cpes;
                lo..hi
            })
            .collect();
        for kernel in AssignKernel::ALL {
            let whole = AssignPlan::new(kernel, &centroids);
            let sliced = AssignPlan::with_options(
                kernel,
                &centroids,
                LDM_BYTES_DEFAULT,
                Some(slices.clone()),
            );
            let a = assign_all(&whole, &data, &centroids);
            let b = assign_all(&sliced, &data, &centroids);
            for i in 0..data.rows() {
                prop_assert_eq!(a[i].0, b[i].0, "{} cpes={} sample {}", kernel, cpes, i);
            }
        }
    }

    /// `Gemm` reproduces `Tiled` *bitwise* — labels and comparison keys —
    /// at every LDM budget: both kernels accumulate every dot product in
    /// the same canonical ascending-dimension order, so packing and
    /// register blocking must be invisible to the last bit.
    #[test]
    fn gemm_matches_tiled_bitwise(
        seed in 0u64..10_000,
        n in 1usize..60,
        d in 1usize..40,
        k in 1usize..20,
        ldm_pick in 0usize..4,
    ) {
        let ldm = [64usize, 700, 4_096, LDM_BYTES_DEFAULT][ldm_pick];
        let blobs = GaussianMixture::new(n.max(k), d, k).with_seed(seed).generate::<f64>();
        let data = blobs.data;
        let centroids = init_centroids(&data, k, InitMethod::Forgy, seed + 5);
        let tiled = assign_all(
            &AssignPlan::with_ldm_budget(AssignKernel::Tiled, &centroids, ldm),
            &data,
            &centroids,
        );
        let gemm = assign_all(
            &AssignPlan::with_ldm_budget(AssignKernel::Gemm, &centroids, ldm),
            &data,
            &centroids,
        );
        for i in 0..data.rows() {
            prop_assert_eq!(tiled[i].0, gemm[i].0, "ldm={} sample {}", ldm, i);
            prop_assert_eq!(
                tiled[i].1.to_bits(), gemm[i].1.to_bits(),
                "ldm={} sample {}: keys diverged bitwise", ldm, i
            );
        }
    }

    /// Triangle-inequality pruning composes with every kernel: a bounded
    /// Lloyd run (Hamerly or Yinyang) filtered in front of any assign
    /// kernel reproduces the unbounded run of the *same* kernel bit for
    /// bit — labels, centroid bits, objective bits, iteration count.
    #[test]
    fn bounded_lloyd_is_bitwise_unbounded_per_kernel(
        seed in 0u64..10_000,
        n in 30usize..120,
        d in 2usize..24,
        k in 2usize..12,
        kernel_pick in 0usize..4,
        bounds_pick in 0usize..2,
    ) {
        let kernel = AssignKernel::ALL[kernel_pick];
        let bounds = [BoundsMode::Hamerly, BoundsMode::Yinyang][bounds_pick];
        let blobs = GaussianMixture::new(n.max(k), d, k)
            .with_seed(seed)
            .with_spread(25.0)
            .generate::<f64>();
        let data = blobs.data;
        let init = init_centroids(&data, k, InitMethod::Forgy, seed + 4);
        let base = KMeansConfig::new(k).with_max_iters(10).with_kernel(kernel);
        let plain = Lloyd::run_from(&data, init.clone(), &base).unwrap();
        let r = Lloyd::run_from(&data, init, &base.with_bounds(bounds)).unwrap();
        prop_assert_eq!(&r.labels, &plain.labels, "{}/{}: labels diverged", bounds, kernel);
        prop_assert_eq!(r.iterations, plain.iterations, "{}/{}: iterations", bounds, kernel);
        prop_assert_eq!(
            r.objective.to_bits(), plain.objective.to_bits(),
            "{}/{}: objective bits diverged", bounds, kernel
        );
        let rb: Vec<u64> = r.centroids.as_slice().iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u64> = plain.centroids.as_slice().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(rb, pb, "{}/{}: centroid bits diverged", bounds, kernel);
        prop_assert!(r.bounds.lloyd_equivalent > 0, "{}/{}: no bounds work", bounds, kernel);
    }

    /// The tile planner never exceeds its budget (when it can help it) and
    /// always yields positive tile edges.
    #[test]
    fn tile_budgets_are_respected(
        d in 1usize..10_000,
        elem_pick in 0usize..2,
        ldm in 64usize..(1 << 21),
    ) {
        let elem = [4usize, 8][elem_pick];
        let t = TileShape::for_budget(ldm, d, elem);
        prop_assert!(t.samples >= 1 && t.centroids >= 1);
        prop_assert!(t.samples <= 512 && t.centroids <= 512);
        if t.samples > 1 || t.centroids > 1 {
            prop_assert!(
                t.footprint_bytes(d, elem) <= ldm,
                "{:?} uses {} B of {}",
                t, t.footprint_bytes(d, elem), ldm
            );
        }
    }
}

/// f32 near-tie tolerance, documented: on *well-separated* data all three
/// kernels agree bitwise with the serial scan. Near-exact ties are the one
/// place `Expanded`/`Tiled` may legitimately differ from `Scalar` — the
/// expansion `‖x‖²+‖c‖²−2·x·c` is a different rounding of the same value —
/// so equivalence there is asserted only up to a key tolerance, not label
/// equality.
#[test]
fn f32_keys_stay_within_documented_tolerance() {
    let blobs = GaussianMixture::new(400, 24, 8)
        .with_seed(7)
        .with_spread(30.0)
        .generate::<f32>();
    let data = blobs.data;
    let centroids = init_centroids(&data, 8, InitMethod::KMeansPlusPlus, 9);
    let scalar_plan = AssignPlan::new(AssignKernel::Scalar, &centroids);
    let mut scalar = Vec::new();
    scalar_plan.assign_batch_into(&data, 0..data.rows(), &centroids, 0..8, 0, &mut scalar);
    for kernel in [
        AssignKernel::Expanded,
        AssignKernel::Tiled,
        AssignKernel::Gemm,
    ] {
        let plan = AssignPlan::new(kernel, &centroids);
        let mut got = Vec::new();
        plan.assign_batch_into(&data, 0..data.rows(), &centroids, 0..8, 0, &mut got);
        for i in 0..data.rows() {
            // Separated blobs: labels agree exactly.
            assert_eq!(got[i].0, scalar[i].0, "{kernel} sample {i}");
            // Keys agree to f32 cancellation tolerance: the expansion
            // subtracts two large norm terms, so its relative error scales
            // with ε·(‖x‖²+‖c‖²)/‖x−c‖² — a relative 1e-3 window here, and
            // the documented near-tie band within which labels could
            // legitimately differ on adversarial data.
            let rel = (got[i].1 - scalar[i].1).abs() / (1.0 + scalar[i].1.abs());
            assert!(rel < 1e-3, "{kernel} sample {i}: key drift {rel}");
        }
    }
}
