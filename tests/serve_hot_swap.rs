//! Zero-downtime hot swap under load: generations published through the
//! model store are swapped into a live server while closed-loop clients
//! hammer it, and the request accounting must balance exactly — every
//! issued request is completed, shed or failed; none vanish in a swap.

use kmeans_core::Matrix;
use std::time::Duration;
use swkm_serve::prelude::*;
use swkm_store::{ModelStore, SharedMemVfs};

fn two_centroid_artifact(offset: f32) -> ModelArtifact<f32> {
    ModelArtifact::from_centroids(Matrix::from_rows(&[
        &[offset, offset],
        &[offset + 10.0, offset + 10.0],
    ]))
}

#[test]
fn store_backed_swaps_under_load_lose_no_requests() {
    let vfs = SharedMemVfs::new();
    let mut store = ModelStore::open(vfs.clone()).unwrap();
    let g1 = store.publish("live", &two_centroid_artifact(0.0)).unwrap();
    let (generation, base) = store.load_live::<f32>("live").unwrap();
    assert_eq!(generation, g1);

    let server = Server::start(
        ShardedIndex::from_artifact(&base, 2),
        PipelineConfig {
            queue_capacity: 4096,
            workers: 2,
            max_batch: 32,
            linger: Duration::from_micros(50),
        },
    );

    let swaps = 8u64;
    let issued = 600usize;
    let per_client_ok: Vec<u64> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..3)
            .map(|t| {
                let client = server.client();
                scope.spawn(move || {
                    let mut ok = 0u64;
                    for i in 0..issued / 3 {
                        let v = ((t * 100 + i) % 17) as f32;
                        if client.predict(vec![v, v]).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        // Publisher: durably publish each generation, load it back from
        // the store, swap it in.
        for round in 1..=swaps {
            store
                .publish("live", &two_centroid_artifact(round as f32 * 0.1))
                .unwrap();
            let (generation, artifact) = store.load_live::<f32>("live").unwrap();
            let previous = server
                .swap_model(ShardedIndex::from_artifact(&artifact, 2), generation)
                .unwrap();
            assert!(previous < generation, "swap went backwards");
            std::thread::sleep(Duration::from_millis(1));
        }
        clients.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(server.generation(), g1 + swaps);
    let snap = server.shutdown();
    let served: u64 = per_client_ok.iter().sum();
    assert_eq!(served, issued as u64, "a swap dropped a request");
    assert_eq!(snap.accepted + snap.rejected, issued as u64);
    assert_eq!(snap.completed + snap.failed, snap.accepted);
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.model_swaps, swaps);

    // The store still has every generation; a cold reopen serves the last.
    let reopened = ModelStore::open(vfs).unwrap();
    assert_eq!(reopened.live_generation("live"), Some(g1 + swaps));
}

/// Hot swap while a load *ramp* is climbing on the elastic event core:
/// generations install mid-scale-up and mid-steal, yet every request is
/// answered from exactly one coherent generation and the accounting
/// balances with nothing stranded.
#[test]
fn swaps_during_an_elastic_ramp_lose_no_requests() {
    use swkm_obs::MetricsRegistry;
    use swkm_serve::{run_ramp, DispatchConfig, ElasticConfig, RampConfig};

    // A heavy model so the ramp actually queues and scales.
    let (k, d) = (128usize, 128usize);
    let heavy = ModelArtifact::from_centroids(Matrix::from_vec(
        k,
        d,
        (0..k * d).map(|i| (i as f32 * 0.19).sin()).collect(),
    ));
    let server = Server::start_dispatch(
        ShardedIndex::from_artifact(&heavy, 4),
        DispatchConfig {
            queue_capacity: 4_096,
            max_batch: 8,
            linger: Duration::from_micros(50),
            shards: ElasticConfig::elastic(1, 4),
            shard_queue: 1,
            tick: Duration::from_millis(1),
            admission: None,
        },
        MetricsRegistry::shared(),
        Default::default(),
    );
    let queries = Matrix::from_vec(
        8,
        d,
        (0..8 * d).map(|i| (i as f32 * 0.07).cos()).collect(),
    );

    let swaps = 6u64;
    let ramp = std::thread::scope(|scope| {
        let server = &server;
        let heavy = &heavy;
        scope.spawn(move || {
            for round in 1..=swaps {
                std::thread::sleep(Duration::from_millis(4));
                server
                    .swap_model(ShardedIndex::from_artifact(heavy, 4), round)
                    .unwrap();
            }
        });
        run_ramp(
            server,
            &queries,
            RampConfig {
                base_clients: 1,
                peak_clients: 8,
                steps_up: 3,
                requests_per_client: 60,
            },
        )
    });

    assert!(ramp.conserved(), "a swap dropped a request:\n{ramp}");
    assert_eq!(ramp.failed(), 0, "swaps must never fail requests");
    assert_eq!(server.generation(), swaps);
    let snap = server.shutdown();
    assert_eq!(snap.model_swaps, swaps);
    assert_eq!(snap.stranded, 0, "a swap stranded queued work");
    assert_eq!(snap.completed, ramp.completed());
}

#[test]
fn swap_changes_answers_deterministically() {
    let hot = ModelArtifact::from_centroids(Matrix::from_rows(&[&[0.0f32, 0.0], &[100.0, 100.0]]));
    let cold = ModelArtifact::from_centroids(Matrix::from_rows(&[&[100.0f32, 100.0], &[0.0, 0.0]]));
    let server = Server::start(
        ShardedIndex::from_artifact(&hot, 2),
        PipelineConfig::default(),
    );
    let client = server.client();
    assert_eq!(client.predict(vec![1.0, 1.0]).unwrap().label, 0);
    server
        .swap_model(ShardedIndex::from_artifact(&cold, 2), 1)
        .unwrap();
    assert_eq!(client.predict(vec![1.0, 1.0]).unwrap().label, 1);
    // Rollback: swap the original back in (generation numbers are the
    // caller's; the server just installs what it is given).
    server
        .swap_model(ShardedIndex::from_artifact(&hot, 2), 2)
        .unwrap();
    assert_eq!(client.predict(vec![1.0, 1.0]).unwrap().label, 0);
    drop(client);
    assert_eq!(server.shutdown().model_swaps, 2);
}

#[test]
fn swap_rejects_wrong_dimension_with_a_typed_error() {
    let server = Server::start(
        ShardedIndex::from_artifact(&two_centroid_artifact(0.0), 2),
        PipelineConfig::default(),
    );
    let wide =
        ModelArtifact::from_centroids(Matrix::from_rows(&[&[0.0f32, 0.0, 0.0], &[1.0, 1.0, 1.0]]));
    let err = server
        .swap_model(ShardedIndex::from_artifact(&wide, 2), 9)
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::DimensionMismatch {
            expected: 2,
            got: 3
        }
    );
    // The failed swap did not bump the generation or break serving.
    assert_eq!(server.generation(), 0);
    let client = server.client();
    assert!(client.predict(vec![1.0, 1.0]).is_ok());
    drop(client);
    assert_eq!(server.shutdown().model_swaps, 0);
}

#[test]
fn swap_heals_a_killed_shard() {
    let artifact = two_centroid_artifact(0.0);
    let server = Server::start(
        ShardedIndex::from_artifact(&artifact, 2),
        PipelineConfig::default(),
    );
    let client = server.client();
    assert!(server.kill_shard(1));
    assert!(client.predict(vec![1.0, 1.0]).unwrap().degraded);
    // A freshly installed generation has all shards alive again.
    server
        .swap_model(ShardedIndex::from_artifact(&artifact, 2), 1)
        .unwrap();
    assert!(!client.predict(vec![1.0, 1.0]).unwrap().degraded);
    drop(client);
    server.shutdown();
}
