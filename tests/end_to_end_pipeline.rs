//! End-to-end application pipelines: datasets → featurisation → level
//! selection → hierarchical clustering → evaluation, exactly as the
//! examples drive them.

use sunway_kmeans::hier_kmeans::choose_level;
use sunway_kmeans::prelude::*;

#[test]
fn landcover_pipeline_recovers_classes() {
    let scene = SyntheticScene::generate(SceneConfig::small(99));
    let features = scene.block_features(3);
    assert_eq!(features.rows(), scene.n_pixels());
    let init = init_centroids(&features, 7, InitMethod::KMeansPlusPlus, 5);
    let result = HierKMeans::new(Level::L3)
        .with_units(8)
        .with_group_units(2)
        .with_cpes_per_cg(4)
        .with_max_iters(25)
        .with_tol(1e-6)
        .fit(&features, init)
        .unwrap();
    let accuracy = scene.clustering_accuracy(&result.labels, 7);
    assert!(accuracy > 0.55, "recovered only {:.1}%", accuracy * 100.0);
}

#[test]
fn imagenet_window_clusters_by_image_structure() {
    // Materialise a window of the virtual ImageNet source and cluster it;
    // the pipeline must run at the paper's lowest resolution (d = 3,072).
    let src = ImageNetSource::new(96, 3_072, 7);
    let data = src.materialize(0, 96);
    let init = init_centroids(&data, 8, InitMethod::KMeansPlusPlus, 3);
    let result = HierKMeans::new(Level::L3)
        .with_units(4)
        .with_group_units(2)
        .with_cpes_per_cg(64)
        .with_max_iters(15)
        .fit(&data, init)
        .unwrap();
    assert_eq!(result.centroids.rows(), 8);
    assert_eq!(result.centroids.cols(), 3_072);
    assert!(result.objective.is_finite());
    // Every cluster centroid stays inside the pixel range.
    for j in 0..8 {
        for &v in result.centroids.row(j) {
            assert!((0.0..=1.0).contains(&(v as f64)));
        }
    }
}

#[test]
fn census_pipeline_with_automatic_level() {
    let census = datasets::uci::us_census_1990();
    let data = census.generate(4_000);
    let level = choose_level(census.full_n, 12, census.d, 1);
    let init = init_centroids(&data, 12, InitMethod::KMeansPlusPlus, 1);
    let result = HierKMeans::new(level)
        .with_units(8)
        .with_group_units(if level == Level::L1 { 1 } else { 4 })
        .with_max_iters(40)
        .fit(&data, init)
        .unwrap();
    let sizes = kmeans_core::objective::cluster_sizes(&result.labels, 12);
    assert_eq!(sizes.iter().sum::<u64>(), 4_000);
    // The mixture has 12 underlying profiles; a sane clustering populates
    // most of them.
    assert!(sizes.iter().filter(|&&s| s > 0).count() >= 8);
}

#[test]
fn road_network_spatial_clusters_are_compact() {
    let road = datasets::uci::road_network();
    let data = road.generate(6_000);
    let init = init_centroids(&data, 16, InitMethod::KMeansPlusPlus, 2);
    let result = HierKMeans::new(Level::L1)
        .with_units(8)
        .with_max_iters(30)
        .fit(&data, init)
        .unwrap();
    // Objective (mean squared distance) should be far below the raw data
    // variance: clustering found structure in the road segments.
    let naive = kmeans_core::objective::mean_objective(
        &data,
        &init_centroids(&data, 1, InitMethod::Forgy, 0),
    );
    assert!(
        result.objective < naive / 3.0,
        "objective {} vs single-cluster {naive}",
        result.objective
    );
}

#[test]
fn prelude_exposes_the_full_surface() {
    // Compile-time check that the façade exports everything an
    // application needs (this test exists to catch accidental removals).
    let _machine: Machine = Machine::taihulight(4);
    let _params: MachineParams = MachineParams::taihulight();
    let _shape = ProblemShape::f32(10, 2, 4);
    let _cfg: HierConfig = HierConfig::new(Level::L1);
    let _init: InitMethod = InitMethod::Forgy;
    let data = GaussianMixture::new(12, 3, 2).generate::<f32>().data;
    let init = init_centroids(&data, 2, InitMethod::Forgy, 0);
    let _result: HierResult<f32> = fit(&data, init, &HierConfig::new(Level::L1)).unwrap();
}

#[test]
fn streaming_source_never_materialises_full_scale() {
    // The full-resolution source describes ~1 TB of data but costs nothing
    // to hold; only the window we materialise allocates.
    use sunway_kmeans::datasets::SampleSource;
    let src = ImageNetSource::paper(196_608);
    assert_eq!(src.len(), 1_265_723);
    let window = src.materialize(1_265_700, 4);
    assert_eq!(window.rows(), 4);
    assert_eq!(window.cols(), 196_608);
}
