//! Model-artifact lifecycle: save/load round-trips, corruption and version
//! skew are rejected with typed errors, and degenerate models (no training
//! provenance, k = 1) still serve.

use sunway_kmeans::kmeans_core::{ColumnStats, Matrix};
use sunway_kmeans::prelude::*;
use sunway_kmeans::swkm_serve::{ArtifactError, FORMAT_VERSION, MAGIC};

fn trained_artifact(seed: u64, k: usize) -> (Matrix<f64>, ModelArtifact<f64>) {
    let blobs = GaussianMixture::new(200, 6, k.max(2))
        .with_seed(seed)
        .generate::<f64>();
    let mut data = blobs.data;
    let stats = ColumnStats::compute(&data);
    stats.standardize(&mut data);
    let fit = Lloyd::run(&data, &KMeansConfig::new(k).with_seed(seed)).unwrap();
    let artifact = ModelArtifact::new(
        data.rows() as u64,
        fit.centroids,
        fit.iterations as u64,
        fit.objective,
        fit.converged,
        Some(stats),
    );
    (data, artifact)
}

#[test]
fn save_load_round_trip_preserves_everything() {
    let (data, artifact) = trained_artifact(11, 5);
    let path = std::env::temp_dir().join("swkm_artifact_round_trip.swkm");
    artifact.save(&path).unwrap();
    let reloaded = ModelArtifact::<f64>::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.meta, artifact.meta);
    assert_eq!(reloaded.centroids.max_abs_diff(&artifact.centroids), 0.0);
    assert!(reloaded.stats.is_some());
    // The reloaded model labels data identically to the original.
    let original = ShardedIndex::from_artifact(&artifact, 3).assign_batch(&data);
    let restored = ShardedIndex::from_artifact(&reloaded, 3).assign_batch(&data);
    assert_eq!(original, restored);
}

#[test]
fn every_corrupted_byte_is_rejected() {
    let (_, artifact) = trained_artifact(13, 3);
    let bytes = artifact.to_bytes();
    // Flip one bit in a few positions spread over header, body and
    // trailer; each must fail (BadMagic / checksum / version — anything
    // typed, never a silent success).
    for pos in [0, 9, MAGIC.len() + 5, bytes.len() / 2, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        assert!(
            ModelArtifact::<f64>::from_bytes(&bad).is_err(),
            "corruption at byte {pos} was not detected"
        );
    }
    // A flipped body byte specifically reports the checksum, not garbage.
    let mut bad = bytes.clone();
    bad[bytes.len() / 2] ^= 0x01;
    assert!(matches!(
        ModelArtifact::<f64>::from_bytes(&bad),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));
}

#[test]
fn version_skew_is_a_typed_error() {
    let (_, artifact) = trained_artifact(17, 2);
    let mut bytes = artifact.to_bytes();
    let future = (FORMAT_VERSION + 7).to_le_bytes();
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&future);
    match ModelArtifact::<f64>::from_bytes(&bytes) {
        Err(ArtifactError::VersionMismatch { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 7);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn zero_sample_artifact_serves_fixed_centroids() {
    // A model frozen from externally supplied centroids — no training run.
    let centroids = Matrix::from_rows(&[&[0.0f64, 0.0], &[10.0, 10.0]]);
    let artifact = ModelArtifact::from_centroids(centroids);
    assert_eq!(artifact.meta.trained_samples, 0);
    let bytes = artifact.to_bytes();
    let reloaded = ModelArtifact::<f64>::from_bytes(&bytes).unwrap();
    let index = ShardedIndex::from_artifact(&reloaded, 2);
    let queries = Matrix::from_rows(&[&[1.0f64, 1.0], &[9.0, 9.0]]);
    assert_eq!(index.assign_batch(&queries), vec![0, 1]);
}

#[test]
fn k_equals_one_model_round_trips_and_serves() {
    let blobs = GaussianMixture::new(50, 4, 2)
        .with_seed(3)
        .generate::<f32>();
    let fit = Lloyd::run(&blobs.data, &KMeansConfig::new(1).with_seed(3)).unwrap();
    let artifact = ModelArtifact::new(
        50,
        fit.centroids,
        fit.iterations as u64,
        fit.objective,
        fit.converged,
        None,
    );
    let reloaded = ModelArtifact::<f32>::from_bytes(&artifact.to_bytes()).unwrap();
    assert_eq!(reloaded.meta.k, 1);
    // Shard request above k clamps to one shard; everything labels 0.
    let index = ShardedIndex::from_artifact(&reloaded, 8);
    assert_eq!(index.num_shards(), 1);
    assert!(index.assign_batch(&blobs.data).iter().all(|&l| l == 0));
}

#[test]
fn wrong_dtype_is_a_typed_error() {
    let (_, artifact) = trained_artifact(19, 2);
    let bytes = artifact.to_bytes(); // f64 artifact
    assert!(matches!(
        ModelArtifact::<f32>::from_bytes(&bytes),
        Err(ArtifactError::DtypeMismatch {
            expected: 4,
            found: 8
        })
    ));
}

#[test]
fn preprocess_applies_saved_standardization() {
    let (_, artifact) = trained_artifact(23, 3);
    let raw = GaussianMixture::new(40, 6, 3)
        .with_seed(23)
        .generate::<f64>()
        .data;
    let mut served = raw.clone();
    artifact.preprocess(&mut served);
    let mut expected = raw.clone();
    artifact.stats.as_ref().unwrap().standardize(&mut expected);
    assert_eq!(served.max_abs_diff(&expected), 0.0);
}
