//! Property: the sharded serving index labels exactly like the serial
//! Lloyd assignment step — same nearest centroid, same lowest-index
//! tie-breaking — for every shard count, and also through the full
//! multi-threaded request pipeline.

use proptest::prelude::*;
use sunway_kmeans::kmeans_core::{assign_step, init_centroids, InitMethod, Matrix};
use sunway_kmeans::prelude::*;
use sunway_kmeans::swkm_serve::Kernel;

fn serial_labels(data: &Matrix<f64>, centroids: &Matrix<f64>) -> Vec<u32> {
    let mut labels = vec![0u32; data.rows()];
    assign_step(data, centroids, &mut labels);
    labels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharded batch assignment is bit-identical to the serial scan for
    /// arbitrary problems and shard counts.
    #[test]
    fn sharded_index_matches_serial_assign(
        seed in 0u64..1_000,
        n in 1usize..80,
        d in 1usize..20,
        k in 1usize..24,
        shards in 1usize..30,
    ) {
        let blobs = GaussianMixture::new(n.max(k), d, k.clamp(2, 8))
            .with_seed(seed)
            .generate::<f64>();
        let centroids = init_centroids(&blobs.data, k.min(blobs.data.rows()), InitMethod::Forgy, seed);
        let expected = serial_labels(&blobs.data, &centroids);
        let index = ShardedIndex::new(centroids, shards);
        prop_assert_eq!(index.assign_batch(&blobs.data), expected);
    }

    /// Duplicate centroids force cross-shard ties; the merged winner must
    /// still be the lowest global index, exactly like the serial scan.
    #[test]
    fn duplicate_centroids_tie_to_lowest_index(
        seed in 0u64..500,
        n in 1usize..40,
        d in 1usize..10,
        k in 2usize..12,
        shards in 1usize..12,
    ) {
        let blobs = GaussianMixture::new(n.max(k), d, 2).with_seed(seed).generate::<f64>();
        // Build centroids where every row is duplicated: ties everywhere.
        let base = init_centroids(&blobs.data, k / 2 + 1, InitMethod::Forgy, seed);
        let mut rows: Vec<&[f64]> = Vec::new();
        for i in 0..base.rows() {
            rows.push(base.row(i));
            rows.push(base.row(i));
        }
        let centroids = Matrix::from_rows(&rows);
        let expected = serial_labels(&blobs.data, &centroids);
        let index = ShardedIndex::new(centroids.clone(), shards);
        prop_assert_eq!(index.assign_batch(&blobs.data), expected);
    }

    /// The full pipeline path — artifact freeze/thaw, admission queue,
    /// micro-batching worker, shard fan-out — returns the same labels.
    #[test]
    fn pipeline_predictions_match_serial_assign(
        seed in 0u64..200,
        n in 1usize..40,
        d in 1usize..12,
        k in 1usize..10,
        shards in 1usize..8,
        workers in 1usize..4,
    ) {
        let blobs = GaussianMixture::new(n.max(k).max(2), d, k.max(2))
            .with_seed(seed)
            .generate::<f64>();
        let fit = Lloyd::run(&blobs.data, &KMeansConfig::new(k).with_seed(seed).with_max_iters(4)).unwrap();
        let expected = serial_labels(&blobs.data, &fit.centroids);
        let artifact = ModelArtifact::from_centroids(fit.centroids);
        let thawed = ModelArtifact::<f64>::from_bytes(&artifact.to_bytes()).unwrap();
        let server = Server::start(
            ShardedIndex::from_artifact(&thawed, shards),
            PipelineConfig {
                queue_capacity: 2 * blobs.data.rows(),
                workers,
                max_batch: 8,
                linger: std::time::Duration::from_micros(50),
            },
        );
        let client = server.client();
        let mut got = Vec::with_capacity(blobs.data.rows());
        for i in 0..blobs.data.rows() {
            got.push(client.predict(blobs.data.row(i).to_vec()).unwrap().label);
        }
        drop(client);
        server.shutdown();
        prop_assert_eq!(got, expected);
    }
}

/// The norm-trick kernel is a numerically different fast path, so it is
/// not bit-identity-guaranteed; on well-separated data it must still
/// agree with the serial scan.
#[test]
fn norm_trick_agrees_on_separated_clusters() {
    let centroids = Matrix::from_rows(&[
        &[0.0f64, 0.0, 0.0],
        &[100.0, 0.0, 0.0],
        &[0.0, 100.0, 0.0],
        &[0.0, 0.0, 100.0],
    ]);
    let queries = Matrix::from_rows(&[
        &[1.0f64, 2.0, -1.0],
        &[98.0, 1.0, 0.5],
        &[-2.0, 101.0, 3.0],
        &[0.1, -0.3, 99.0],
    ]);
    let expected = serial_labels(&queries, &centroids);
    for shards in [1usize, 2, 4] {
        let index = ShardedIndex::new(centroids.clone(), shards).with_kernel(Kernel::Expanded);
        assert_eq!(index.assign_batch(&queries), expected, "{shards} shard(s)");
    }
}
