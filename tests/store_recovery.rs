//! Crash-recovery properties of the model store.
//!
//! The central claim: kill the process at ANY byte of a manifest append and
//! reopening recovers exactly the last-committed state — no partial
//! generations, no lost promotes, identically on every [`Vfs`] backend.

use kmeans_core::Matrix;
use proptest::prelude::*;
use swkm_serve::ModelArtifact;
use swkm_store::{
    manifest::{encode_record, MANIFEST},
    ManifestRecord, MemVfs, ModelStore, SharedMemVfs, StdVfs, Vfs,
};

fn artifact(seed: f32, k: usize, d: usize) -> ModelArtifact<f32> {
    let values: Vec<f32> = (0..k * d).map(|i| seed + i as f32 * 0.25).collect();
    let rows: Vec<&[f32]> = values.chunks(d).collect();
    ModelArtifact::from_centroids(Matrix::from_rows(&rows))
}

/// (artifact bytes per generation, full manifest bytes, record boundaries,
/// live-gen after each committed record).
type History = (Vec<Vec<u8>>, Vec<u8>, Vec<usize>, Vec<Option<u64>>);

/// Artifact bytes and the exact manifest a known op sequence commits:
/// three published generations of one model.
fn scripted_history() -> History {
    let arts: Vec<Vec<u8>> = (1..=3)
        .map(|g| artifact(g as f32, 2, 3).to_bytes())
        .collect();
    let mut manifest = Vec::new();
    let mut boundaries = vec![0usize];
    let mut live_after = vec![None]; // after 0 records
    let mut live = None;
    for (i, bytes) in arts.iter().enumerate() {
        let generation = i as u64 + 1;
        for record in [
            ManifestRecord::Put {
                model: "m".to_string(),
                generation,
                bytes: bytes.len() as u64,
                crc: u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap()),
                dtype: 4,
            },
            ManifestRecord::Promote {
                model: "m".to_string(),
                generation,
            },
        ] {
            if matches!(record, ManifestRecord::Promote { .. }) {
                live = Some(generation);
            }
            manifest.extend_from_slice(&encode_record(&record));
            boundaries.push(manifest.len());
            live_after.push(live);
        }
    }
    (arts, manifest, boundaries, live_after)
}

/// Populate `vfs` as a crash at byte `cut` of the manifest would leave it
/// (every artifact file fully written — files land atomically before their
/// record), then open and check the recovered registry.
fn check_recovery_at_cut<V: Vfs>(vfs: &V, cut: usize, backend: &str) {
    let (arts, manifest, boundaries, live_after) = scripted_history();
    for (i, bytes) in arts.iter().enumerate() {
        vfs.write_atomic(&swkm_store::artifact_file("m", i as u64 + 1), bytes)
            .unwrap();
    }
    vfs.append(MANIFEST, &manifest[..cut]).unwrap();

    let committed = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
    let expected_live = live_after[committed];
    let expected_gens = committed.div_ceil(2) as u64; // Puts are records 1,3,5

    let store = ModelStore::open(vfs).unwrap();
    assert_eq!(
        store.replay_report().records,
        committed,
        "{backend}: cut at {cut}"
    );
    assert_eq!(
        store.live_generation("m"),
        expected_live,
        "{backend}: cut at {cut}"
    );
    let gens = store.state("m").map_or(0, |s| s.generations.len() as u64);
    assert_eq!(gens, expected_gens, "{backend}: cut at {cut}");
    if let Some(live) = expected_live {
        let (generation, loaded) = store.load_live::<f32>("m").unwrap();
        assert_eq!(generation, live, "{backend}: cut at {cut}");
        assert_eq!(
            loaded,
            artifact(live as f32, 2, 3),
            "{backend}: cut at {cut}"
        );
    }
}

#[test]
fn kill_anywhere_recovers_last_committed_generation_on_mem_vfs() {
    let (_, manifest, _, _) = scripted_history();
    for cut in 0..=manifest.len() {
        check_recovery_at_cut(&MemVfs::new(), cut, "MemVfs");
    }
}

#[test]
fn kill_anywhere_recovers_last_committed_generation_on_shared_mem_vfs() {
    let (_, manifest, _, _) = scripted_history();
    for cut in 0..=manifest.len() {
        check_recovery_at_cut(&SharedMemVfs::new(), cut, "SharedMemVfs");
    }
}

#[test]
fn kill_anywhere_recovers_last_committed_generation_on_std_vfs() {
    let dir = std::env::temp_dir().join(format!("swkm-store-recovery-{}", std::process::id()));
    let (_, manifest, _, _) = scripted_history();
    for cut in 0..=manifest.len() {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        check_recovery_at_cut(&StdVfs::open(&dir).unwrap(), cut, "StdVfs");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rollback_and_delete_survive_reopen_and_compaction() {
    let vfs = SharedMemVfs::new();
    {
        let mut store = ModelStore::open(vfs.clone()).unwrap();
        store.publish("keep", &artifact(1.0, 2, 2)).unwrap();
        store.publish("keep", &artifact(2.0, 2, 2)).unwrap();
        store.promote("keep", 1).unwrap(); // rollback
        store.publish("drop", &artifact(3.0, 4, 2)).unwrap();
        store.delete("drop").unwrap();
    }
    // Cold restart sees the rollback and the delete.
    let mut store = ModelStore::open(vfs.clone()).unwrap();
    assert_eq!(store.live_generation("keep"), Some(1));
    assert!(store.state("drop").is_none());
    assert_eq!(
        store.load_live::<f32>("keep").unwrap().1,
        artifact(1.0, 2, 2)
    );
    // Compaction drops the superseded g2 and the deleted model's files…
    let report = store.compact().unwrap();
    assert_eq!(report.files_removed, 2);
    // …and the compacted store reopens to the same state.
    let store = ModelStore::open(vfs).unwrap();
    assert_eq!(store.live_generation("keep"), Some(1));
    assert_eq!(store.state("keep").unwrap().generations.len(), 1);
    assert_eq!(
        store.load_live::<f32>("keep").unwrap().1,
        artifact(1.0, 2, 2)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f32_artifacts_round_trip_across_shapes(
        k in 1usize..6,
        d in 1usize..9,
        seed in -100.0f32..100.0,
    ) {
        let a = artifact(seed, k, d);
        let back = ModelArtifact::<f32>::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn f64_artifacts_round_trip_across_shapes(
        k in 1usize..6,
        d in 1usize..9,
        seed in -100.0f64..100.0,
    ) {
        let values: Vec<f64> = (0..k * d).map(|i| seed + i as f64 * 0.5).collect();
        let rows: Vec<&[f64]> = values.chunks(d).collect();
        let a = ModelArtifact::from_centroids(Matrix::from_rows(&rows));
        let back = ModelArtifact::<f64>::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn random_op_sequences_reopen_to_identical_registries(
        ops in proptest::collection::vec((0u8..4, 1u64..4), 1..20),
    ) {
        let vfs = SharedMemVfs::new();
        let mut store = ModelStore::open(vfs.clone()).unwrap();
        let names = ["alpha", "beta", "gamma"];
        for (i, (op, pick)) in ops.iter().enumerate() {
            let name = names[(*pick as usize + i) % names.len()];
            match op {
                0 => {
                    store.put(name, &artifact(i as f32, 2, 2)).unwrap();
                }
                1 => {
                    store.publish(name, &artifact(i as f32, 3, 2)).unwrap();
                }
                2 => {
                    // Promote the oldest generation on record, if any.
                    if let Some(&generation) =
                        store.state(name).and_then(|s| s.generations.keys().next())
                    {
                        store.promote(name, generation).unwrap();
                    }
                }
                _ => {
                    if store.state(name).is_some() {
                        store.delete(name).unwrap();
                    }
                }
            }
        }
        let reopened = ModelStore::open(vfs).unwrap();
        prop_assert_eq!(reopened.models(), store.models());
        prop_assert_eq!(reopened.total_bytes(), store.total_bytes());
        // And again after compaction.
        store.compact().unwrap();
        let recompacted = ModelStore::open(store.vfs().clone()).unwrap();
        prop_assert_eq!(recompacted.models(), store.models());
    }
}
