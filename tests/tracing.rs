//! Event-level tracing end to end: a traced training run must tell the
//! same story as its aggregate `TrainTrace`, and the ring buffer must
//! stay coherent under concurrent writers.

use proptest::prelude::*;
use std::sync::Arc;
use sunway_kmeans::prelude::*;
use sunway_kmeans::swkm_obs::{EventKind, TraceBuffer, TraceEvent};

/// A traced Level-3 fit produces balanced per-rank events whose per-phase
/// duration sums agree with the `TrainTrace` aggregates — both sides of
/// the instrumentation read the *same* `Instant::elapsed` measurement, so
/// 20% is a generous envelope for integer-nanosecond rounding.
#[test]
fn traced_fit_phase_sums_agree_with_train_trace() {
    let units = 4;
    let blobs = GaussianMixture::new(512, 12, 4)
        .with_seed(11)
        .generate::<f64>();
    let init = init_centroids(&blobs.data, 4, InitMethod::KMeansPlusPlus, 11);
    let buf = TraceBuffer::shared(1 << 16);
    let result = HierKMeans::new(Level::L3)
        .with_units(units)
        .with_group_units(2)
        .with_cpes_per_cg(4)
        .with_max_iters(8)
        .with_trace(Arc::clone(&buf))
        .fit(&blobs.data, init)
        .unwrap();

    let stats = buf.stats();
    assert_eq!(stats.dropped, 0, "ring overflowed: {stats:?}");
    let events = buf.snapshot();
    assert_eq!(events.len() as u64, stats.retained);

    for rank in 0..units {
        let phase_sum = |name: &str| -> f64 {
            events
                .iter()
                .filter(|e| e.proc == "train" && e.track == rank as u32 && e.name == name)
                .map(|e| e.dur_ns as f64 / 1e9)
                .sum()
        };
        // Balanced: every iteration closed exactly one "iteration" span.
        let iters = events
            .iter()
            .filter(|e| e.proc == "train" && e.track == rank as u32 && e.name == "iteration")
            .count();
        assert_eq!(
            iters,
            result.trace.per_rank[rank].len(),
            "rank {rank}: iteration span count != TrainTrace iterations"
        );
        // Every rank also produced collective spans on its comm track.
        assert!(
            events.iter().any(|e| e.proc == "comm"
                && e.track == rank as u32
                && matches!(e.kind, EventKind::Complete)),
            "rank {rank}: no comm events"
        );
        let totals = result.trace.rank_total(rank);
        for (name, aggregate) in [
            ("assign", totals.assign),
            ("merge", totals.merge),
            ("update", totals.update),
            ("exchange", totals.exchange),
        ] {
            let traced = phase_sum(name);
            let diff = (traced - aggregate).abs();
            assert!(
                diff <= 0.20 * aggregate.max(1e-6),
                "rank {rank} phase `{name}`: traced {traced:.6}s vs TrainTrace \
                 {aggregate:.6}s (diff {diff:.6}s)"
            );
        }
    }
}

/// Tracing changes observability, never the answer: a traced run is
/// bitwise identical to an untraced one.
#[test]
fn tracing_does_not_perturb_the_fit() {
    let blobs = GaussianMixture::new(256, 8, 3)
        .with_seed(5)
        .generate::<f64>();
    let init = init_centroids(&blobs.data, 3, InitMethod::KMeansPlusPlus, 5);
    let fitter = HierKMeans::new(Level::L2)
        .with_units(4)
        .with_group_units(2)
        .with_max_iters(6);
    let plain = fitter.fit(&blobs.data, init.clone()).unwrap();
    let traced = fitter
        .clone()
        .with_trace(TraceBuffer::shared(1 << 14))
        .fit(&blobs.data, init)
        .unwrap();
    assert_eq!(plain.labels, traced.labels);
    assert_eq!(plain.iterations, traced.iterations);
    assert_eq!(
        plain.centroids.max_abs_diff(&traced.centroids),
        0.0,
        "tracing perturbed the centroids"
    );
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent writers never tear the ring: whatever the geometry,
    /// accounting is conserved, every retained event is exactly one that
    /// some thread pushed (all fields mutually consistent), and each
    /// thread's events keep their push order in the snapshot.
    #[test]
    fn concurrent_writers_never_tear_the_ring(
        threads in 1usize..8,
        per_thread in 1usize..200,
        capacity in 8usize..512,
    ) {
        let buf = TraceBuffer::shared(capacity);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let buf = Arc::clone(&buf);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        buf.push(TraceEvent {
                            ts_ns: buf.now_ns(),
                            dur_ns: i as u64,
                            proc: "prop",
                            track: t as u32,
                            name: NAMES[t % NAMES.len()],
                            kind: EventKind::Complete,
                            trace_id: t as u64 * 1_000_003 + i as u64,
                            arg_name: "seq",
                            arg: ((t as u64) << 32) | i as u64,
                        });
                    }
                });
            }
        });
        let stats = buf.stats();
        prop_assert_eq!(stats.pushed, (threads * per_thread) as u64);
        prop_assert_eq!(stats.pushed, stats.retained + stats.dropped);
        prop_assert!(stats.retained <= buf.capacity() as u64);
        let events = buf.snapshot();
        prop_assert_eq!(events.len() as u64, stats.retained);
        let mut last_seq = vec![None::<u64>; threads];
        for e in &events {
            // Untorn: every field is the one pushed alongside the others.
            let t = (e.arg >> 32) as usize;
            let i = e.arg & 0xFFFF_FFFF;
            prop_assert_eq!(t, e.track as usize);
            prop_assert!(i < per_thread as u64);
            prop_assert_eq!(e.dur_ns, i);
            prop_assert_eq!(e.trace_id, t as u64 * 1_000_003 + i);
            prop_assert_eq!(e.name, NAMES[t % NAMES.len()]);
            // Push order survives the stable timestamp sort per thread.
            prop_assert!(last_seq[t].is_none_or(|prev| i > prev),
                "thread {} out of order: {} after {:?}", t, i, last_seq[t]);
            last_seq[t] = Some(i);
        }
    }
}
