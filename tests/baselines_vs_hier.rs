//! Algorithm-family cross-checks: the accelerated/approximate baselines
//! (Yinyang, mini-batch, rayon) against the hierarchical executors and
//! serial Lloyd, scored with the external clustering metrics.

use sunway_kmeans::kmeans_core::{elkan, minibatch, yinyang, MiniBatchConfig};
use sunway_kmeans::prelude::*;

fn blobs(n: usize, d: usize, k: usize, seed: u64) -> (Matrix<f64>, Vec<u32>) {
    let gm = GaussianMixture::new(n, d, k)
        .with_seed(seed)
        .with_spread(40.0)
        .with_noise(0.8)
        .generate::<f64>();
    (gm.data, gm.truth)
}

#[test]
fn yinyang_and_level3_agree_with_lloyd() {
    let (data, _) = blobs(600, 12, 9, 1);
    let init = init_centroids(&data, 9, InitMethod::Forgy, 11);
    let cfg = KMeansConfig::new(9).with_max_iters(10).with_tol(0.0);
    let lloyd = Lloyd::run_from(&data, init.clone(), &cfg).unwrap();
    let (yy, stats) = yinyang::run_from(&data, init.clone(), &cfg).unwrap();
    let hier = HierKMeans::new(Level::L3)
        .with_units(6)
        .with_group_units(3)
        .with_cpes_per_cg(4)
        .with_max_iters(10)
        .with_tol(0.0)
        .fit(&data, init)
        .unwrap();
    assert_eq!(yy.labels, lloyd.labels);
    assert_eq!(hier.labels, lloyd.labels);
    assert!(yy.centroids.max_abs_diff(&lloyd.centroids) < 1e-9);
    assert!(hier.centroids.max_abs_diff(&lloyd.centroids) < 1e-9);
    // Yinyang did strictly less distance work than Lloyd on separated data.
    assert!(stats.distance_evals < stats.lloyd_equivalent);
}

#[test]
fn all_exact_algorithms_recover_ground_truth() {
    let (data, truth) = blobs(900, 10, 6, 2);
    let init = init_centroids(&data, 6, InitMethod::KMeansPlusPlus, 5);
    let cfg = KMeansConfig::new(6).with_max_iters(60);

    let lloyd = Lloyd::run_from(&data, init.clone(), &cfg).unwrap();
    let (yy, _) = yinyang::run_from(&data, init.clone(), &cfg).unwrap();
    let hier = HierKMeans::new(Level::L2)
        .with_units(6)
        .with_group_units(3)
        .with_max_iters(60)
        .fit(&data, init)
        .unwrap();

    for (name, labels) in [
        ("lloyd", &lloyd.labels),
        ("yinyang", &yy.labels),
        ("hier-L2", &hier.labels),
    ] {
        let ari = adjusted_rand_index(labels, &truth);
        let n = nmi(labels, &truth);
        assert!(ari > 0.95, "{name}: ARI {ari}");
        assert!(n > 0.9, "{name}: NMI {n}");
    }
}

#[test]
fn elkan_yinyang_and_hier_form_one_equivalence_class() {
    let (data, _) = blobs(500, 8, 12, 6);
    let init = init_centroids(&data, 12, InitMethod::Forgy, 17);
    let cfg = KMeansConfig::new(12).with_max_iters(12).with_tol(0.0);
    let lloyd = Lloyd::run_from(&data, init.clone(), &cfg).unwrap();
    let (ek, ek_stats) = elkan::run_from(&data, init.clone(), &cfg).unwrap();
    let (yy, yy_stats) = yinyang::run_from(&data, init.clone(), &cfg).unwrap();
    let hier = HierKMeans::new(Level::L3)
        .with_units(4)
        .with_group_units(2)
        .with_cpes_per_cg(4)
        .with_max_iters(12)
        .with_tol(0.0)
        .fit(&data, init)
        .unwrap();
    assert_eq!(ek.labels, lloyd.labels);
    assert_eq!(yy.labels, lloyd.labels);
    assert_eq!(hier.labels, lloyd.labels);
    // Both accelerators saved work; Elkan (full bounds) filters at least
    // as aggressively as Yinyang (group bounds) on separated data.
    assert!(ek_stats.savings() > 0.0);
    assert!(yy_stats.savings() > 0.0);
    assert!(
        ek_stats.distance_evals <= yy_stats.distance_evals * 2,
        "elkan {} vs yinyang {}",
        ek_stats.distance_evals,
        yy_stats.distance_evals
    );
}

#[test]
fn minibatch_is_close_but_cheaper() {
    let (data, truth) = blobs(3_000, 8, 5, 3);
    let init = init_centroids(&data, 5, InitMethod::KMeansPlusPlus, 7);
    let mb = minibatch::run_from(
        &data,
        init,
        &MiniBatchConfig {
            batch: 256,
            batches: 60,
            seed: 4,
        },
        &KMeansConfig::new(5),
    )
    .unwrap();
    let ari = adjusted_rand_index(&mb.labels, &truth);
    assert!(ari > 0.9, "minibatch ARI {ari}");
}

#[test]
fn streaming_and_in_memory_agree_on_f32() {
    let gm = GaussianMixture::new(800, 16, 4)
        .with_seed(9)
        .with_spread(30.0)
        .generate::<f32>();
    let init = init_centroids(&gm.data, 4, InitMethod::KMeansPlusPlus, 3);
    let src = MatrixSource::new(&gm.data);
    let streamed = fit_source(
        &src,
        init.clone(),
        &StreamConfig {
            units: 6,
            group_units: 2,
            window: 100,
            max_iters: 20,
            tol: 1e-6,
        },
    )
    .unwrap();
    let in_memory = HierKMeans::new(Level::L2)
        .with_units(6)
        .with_group_units(2)
        .with_max_iters(20)
        .with_tol(1e-6)
        .fit(&gm.data, init)
        .unwrap();
    // Same fixed point from the same init on well-separated data.
    assert_eq!(streamed.labels, in_memory.labels);
    let ari = adjusted_rand_index(&streamed.labels, &gm.truth);
    assert!(ari > 0.95, "ARI {ari}");
}

#[test]
fn preprocessing_changes_cluster_structure_meaningfully() {
    // Road Network's mixed-unit columns: without standardisation the
    // altitude column (0–150) swamps lon/lat (≈ 8–58); standardise and the
    // clustering keys on geography instead.
    let road = datasets::uci::road_network();
    let data = road.generate(4_000);
    let z = standardized(&data);
    let init_raw = init_centroids(&data, 8, InitMethod::KMeansPlusPlus, 1);
    let init_z = init_centroids(&z, 8, InitMethod::KMeansPlusPlus, 1);
    let raw = Lloyd::run_from(&data, init_raw, &KMeansConfig::new(8)).unwrap();
    let zs = Lloyd::run_from(&z, init_z, &KMeansConfig::new(8)).unwrap();
    let agreement = adjusted_rand_index(&raw.labels, &zs.labels);
    assert!(
        agreement < 0.9,
        "standardisation should change the clustering (ARI {agreement})"
    );
    // Both objectives are finite and the standardised one is O(d).
    assert!(zs.objective.is_finite() && raw.objective.is_finite());
}
