//! The observability layer, checked end to end against ground truth:
//! traced phase times must account for the measured iteration wall time,
//! the communication counters must match the analytically known collective
//! volume of a fixed configuration, and training + serving must publish
//! through one registry with stable exports.

use sunway_kmeans::hier_kmeans::{fit, HierConfig, Level};
use sunway_kmeans::kmeans_core::AssignKernel;
use sunway_kmeans::msg::OpKind;
use sunway_kmeans::prelude::*;
use sunway_kmeans::swkm_obs::export::to_json;

/// The traced phases cover the whole iteration body except bookkeeping, so
/// per rank the phase sum must land within 20% of the measured wall time
/// (the ISSUE's acceptance bound) — and can never exceed it by more than
/// timer granularity.
#[test]
fn l3_phase_sums_account_for_iteration_wall_time() {
    let blobs = GaussianMixture::new(4_096, 32, 8)
        .with_seed(11)
        .generate::<f64>();
    let init = init_centroids(&blobs.data, 16, InitMethod::Forgy, 5);
    let cfg = HierConfig {
        level: Level::L3,
        units: 8,
        group_units: 2,
        cpes_per_cg: 4,
        max_iters: 4,
        tol: 0.0,
        kernel: AssignKernel::Scalar,
        ..HierConfig::new(Level::L3)
    };
    let result = fit(&blobs.data, init, &cfg).unwrap();
    assert_eq!(result.trace.ranks(), 8);
    assert_eq!(result.trace.iterations(), result.iterations);
    for r in 0..result.trace.ranks() {
        let total = result.trace.rank_total(r);
        let (sum, wall) = (total.phase_sum(), total.wall);
        assert!(wall > 0.0, "rank {r}: wall time not measured");
        assert!(
            sum >= 0.8 * wall,
            "rank {r}: phases {sum} s cover < 80% of wall {wall} s"
        );
        assert!(
            sum <= wall * 1.05,
            "rank {r}: phases {sum} s exceed wall {wall} s"
        );
    }
    // L3 traces the dimension exchange as its own phase.
    let crit: f64 = (0..result.trace.iterations())
        .map(|i| result.trace.iter_critical(i).exchange)
        .sum();
    assert!(crit > 0.0, "L3 must report a dimension-exchange phase");
}

/// Level 1 at units=4, k=3, d=4 in `f64` does exactly two binomial-tree
/// AllReduces per iteration (centroid sums, then counts). A 4-rank
/// binomial tree is 3 reduce + 3 broadcast messages, each carrying the
/// full payload:
///
/// ```text
/// sums:   6 msgs × (3·4·8 B) = 576 B   counts: 6 msgs × (3·8 B) = 144 B
/// 3 iterations × 720 B = 2160 B over 36 messages, all AllReduce.
/// ```
#[test]
fn comm_accounting_matches_analytic_collective_volume() {
    let blobs = GaussianMixture::new(64, 4, 3)
        .with_seed(3)
        .generate::<f64>();
    let init = init_centroids(&blobs.data, 3, InitMethod::Forgy, 2);
    let cfg = HierConfig {
        level: Level::L1,
        units: 4,
        group_units: 1,
        cpes_per_cg: 8,
        max_iters: 3,
        tol: 0.0,
        kernel: AssignKernel::Scalar,
        ..HierConfig::new(Level::L1)
    };
    let result = fit(&blobs.data, init, &cfg).unwrap();
    assert_eq!(result.iterations, 3, "tol=0 must run all 3 iterations");
    assert_eq!(result.comm.total_bytes(), 2_160);
    assert_eq!(result.comm.total_messages(), 36);
    assert_eq!(result.comm.bytes_of(OpKind::AllReduce), 2_160);
    assert_eq!(result.comm.messages_of(OpKind::AllReduce), 36);
    for kind in OpKind::ALL {
        if kind != OpKind::AllReduce {
            assert_eq!(result.comm.bytes_of(kind), 0, "{kind:?} traffic");
        }
    }
    // The legacy aggregate fields agree with the full log.
    assert_eq!(result.comm_bytes, result.comm.total_bytes());
    assert_eq!(result.comm_messages, result.comm.total_messages());

    // And the registry sees the same numbers through the exporter path.
    let registry = MetricsRegistry::new();
    result.export_metrics(&registry);
    assert_eq!(registry.counter("comm_total_bytes"), 2_160);
    assert_eq!(registry.counter("comm_total_messages"), 36);
    assert_eq!(registry.counter("comm_allreduce_bytes"), 2_160);
    let json = to_json(&registry);
    assert!(json.contains("\"comm_allreduce_bytes\":2160"), "{json}");
}

/// Training and serving publish into one registry: a single JSON document
/// carries `train_*`, `comm_*` and `serve_*` metrics, and exporting twice
/// yields byte-identical output (stable key order).
#[test]
fn training_and_serving_share_one_registry() {
    let blobs = GaussianMixture::new(256, 8, 4)
        .with_seed(7)
        .generate::<f32>();
    let init = init_centroids(&blobs.data, 4, InitMethod::Forgy, 1);
    let cfg = HierConfig {
        level: Level::L2,
        units: 4,
        group_units: 2,
        cpes_per_cg: 4,
        max_iters: 3,
        tol: 0.0,
        kernel: AssignKernel::Scalar,
        ..HierConfig::new(Level::L2)
    };
    let trained = fit(&blobs.data, init, &cfg).unwrap();

    let registry = MetricsRegistry::shared();
    trained.export_metrics(&registry);

    let index = ShardedIndex::new(trained.centroids.clone(), 2);
    let server = Server::start_with_registry(index, PipelineConfig::default(), registry.clone());
    let client = server.client();
    for i in 0..32 {
        client.predict(blobs.data.row(i % 256).to_vec()).unwrap();
    }
    drop(client);
    let snapshot = server.shutdown();
    assert_eq!(snapshot.completed, 32);

    let json = to_json(&registry);
    for key in [
        "train_assign_ns",
        "train_merge_ns",
        "train_update_ns",
        "train_iter_wall_ns",
        "train_objective",
        "comm_total_bytes",
        "serve_accepted",
        "serve_completed",
        "serve_total_ns",
        "serve_batch_size",
    ] {
        assert!(
            json.contains(&format!("\"{key}\"")),
            "missing {key}: {json}"
        );
    }
    assert!(json.contains("\"serve_completed\":32"), "{json}");
    assert_eq!(json, to_json(&registry), "export must be deterministic");
}

/// The kernel selection and assign throughput reach the registry: training
/// exports `train_assign_kernel` (the kernel's stable code) plus a
/// positive `train_assign_samples_per_s`, and serving exports the mirror
/// `serve_assign_kernel` gauge.
#[test]
fn kernel_choice_and_assign_throughput_are_exported() {
    let blobs = GaussianMixture::new(512, 16, 4)
        .with_seed(21)
        .generate::<f64>();
    let init = init_centroids(&blobs.data, 8, InitMethod::Forgy, 3);
    for kernel in [
        AssignKernel::Scalar,
        AssignKernel::Expanded,
        AssignKernel::Tiled,
    ] {
        let cfg = HierConfig {
            level: Level::L2,
            units: 4,
            group_units: 2,
            cpes_per_cg: 4,
            max_iters: 3,
            tol: 0.0,
            kernel,
            ..HierConfig::new(Level::L2)
        };
        let result = fit(&blobs.data, init.clone(), &cfg).unwrap();
        assert_eq!(result.kernel, kernel);
        let registry = MetricsRegistry::new();
        result.export_metrics(&registry);
        assert_eq!(
            registry.gauge("train_assign_kernel"),
            Some(kernel.code() as f64),
            "{kernel}"
        );
        let rate = registry
            .gauge("train_assign_samples_per_s")
            .expect("throughput gauge");
        assert!(rate > 0.0, "{kernel}: assign throughput {rate}");
        let json = to_json(&registry);
        assert!(json.contains("\"train_assign_kernel\""), "{json}");
    }

    // Serving mirrors the choice under its own prefix.
    let trained = fit(
        &blobs.data,
        init,
        &HierConfig {
            level: Level::L1,
            units: 2,
            group_units: 1,
            cpes_per_cg: 4,
            max_iters: 2,
            tol: 0.0,
            kernel: AssignKernel::Tiled,
            ..HierConfig::new(Level::L1)
        },
    )
    .unwrap();
    let registry = MetricsRegistry::shared();
    let index = ShardedIndex::new(trained.centroids.clone(), 2).with_kernel(AssignKernel::Tiled);
    let server = Server::start_with_registry(index, PipelineConfig::default(), registry.clone());
    let client = server.client();
    client.predict(blobs.data.row(0).to_vec()).unwrap();
    drop(client);
    server.shutdown();
    assert_eq!(
        registry.gauge("serve_assign_kernel"),
        Some(AssignKernel::Tiled.code() as f64)
    );
}
