//! Property-based invariants spanning crates: arbitrary shapes and
//! partition geometries must preserve the algebraic identities the
//! hierarchy is built on.

use proptest::prelude::*;
use sunway_kmeans::hier_kmeans::split_range;
use sunway_kmeans::perf_model::feasibility;
use sunway_kmeans::perf_model::{Level, ProblemShape};
use sunway_kmeans::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any (units, group) geometry of any level reproduces serial Lloyd.
    #[test]
    fn executors_match_serial_on_random_problems(
        seed in 0u64..1_000,
        n in 20usize..120,
        d in 1usize..24,
        k in 1usize..10,
        units in 1usize..6,
        group in 1usize..6,
        cpes in 1usize..9,
        level_pick in 0usize..3,
    ) {
        let k = k.min(n);
        let units = units * group; // divisibility requirement
        let blobs = GaussianMixture::new(n, d, k).with_seed(seed).generate::<f64>();
        let init = init_centroids(&blobs.data, k, InitMethod::Forgy, seed);
        let level = [Level::L1, Level::L2, Level::L3][level_pick];
        let serial = Lloyd::run_from(
            &blobs.data,
            init.clone(),
            &KMeansConfig::new(k).with_max_iters(3).with_tol(0.0),
        )
        .unwrap();
        let hier = HierKMeans::new(level)
            .with_units(units)
            .with_group_units(group)
            .with_cpes_per_cg(cpes)
            .with_max_iters(3)
            .with_tol(0.0)
            .fit(&blobs.data, init)
            .unwrap();
        let diff = hier.centroids.max_abs_diff(&serial.centroids);
        prop_assert!(diff < 1e-8, "{level} diff {diff}");
    }

    /// The three partitions (samples, centroids, dimensions) jointly cover
    /// the problem: every (sample, centroid, dimension) triple is owned by
    /// exactly one (group, member, cpe).
    #[test]
    fn three_level_partition_is_exact(
        n in 1usize..500,
        k in 1usize..50,
        d in 1usize..200,
        groups in 1usize..8,
        members in 1usize..8,
        cpes in 1usize..8,
    ) {
        let mut sample_cover = 0usize;
        for g in 0..groups {
            sample_cover += split_range(n, groups, g).len();
        }
        prop_assert_eq!(sample_cover, n);
        let mut centroid_cover = 0usize;
        for m in 0..members {
            centroid_cover += split_range(k, members, m).len();
        }
        prop_assert_eq!(centroid_cover, k);
        let mut dim_cover = 0usize;
        for c in 0..cpes {
            dim_cover += split_range(d, cpes, c).len();
        }
        prop_assert_eq!(dim_cover, d);
    }

    /// Feasibility planning is monotone in the machine: anything resident-
    /// feasible on `nodes` stays feasible on `2·nodes`, with no larger
    /// per-unit shard.
    #[test]
    fn feasibility_is_monotone_in_machine_size(
        k in 1u64..100_000,
        d in 1u64..300_000,
        nodes_pow in 0u32..7,
    ) {
        let nodes = 1usize << nodes_pow;
        let shape = ProblemShape::f32(1_000_000, k, d);
        let small = Machine::taihulight(nodes);
        let big = Machine::taihulight(nodes * 2);
        for level in [Level::L1, Level::L2, Level::L3] {
            if let Ok(p_small) = feasibility::plan(level, &shape, &small, false) {
                let p_big = feasibility::plan(level, &shape, &big, false)
                    .expect("bigger machine lost feasibility");
                prop_assert!(p_big.centroids_per_unit <= p_small.centroids_per_unit);
                prop_assert!(!p_big.spilled);
            }
        }
    }

    /// The modelled iteration time is monotone: more centroids never get
    /// cheaper at fixed d, machine and level.
    #[test]
    fn model_cost_monotone_in_k(
        k in 64u64..8_192,
        d in 16u64..4_096,
    ) {
        let model = CostModel::taihulight(64);
        let t = |k: u64| {
            model
                .iteration_time(&ProblemShape::f32(500_000, k, d), Level::L3)
                .map(|c| c.total())
        };
        if let (Ok(t1), Ok(t2)) = (t(k), t(k * 2)) {
            prop_assert!(t2 >= t1 * 0.95, "k={k}, d={d}: {t1} -> {t2}");
        }
    }

    /// PPM round-trips arbitrary small images.
    #[test]
    fn ppm_round_trip(w in 1usize..20, h in 1usize..20, fill in any::<u8>()) {
        let mut img = datasets::ppm::Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.put(x, y, [fill, (x * 7) as u8, (y * 13) as u8]);
            }
        }
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        let back = datasets::ppm::Image::read_ppm(buf.as_slice()).unwrap();
        prop_assert_eq!(back, img);
    }

    /// Histogram folding is a commutative, associative, count-preserving
    /// monoid action — the property the whole observability layer leans on
    /// when per-rank / per-worker histograms are merged into one registry
    /// in whatever order threads finish.
    #[test]
    fn histogram_merge_is_a_commutative_monoid(
        a in proptest::collection::vec(0u64..1_000_000, 0..40),
        b in proptest::collection::vec(0u64..1_000_000, 0..40),
        c in proptest::collection::vec(0u64..1_000_000, 0..40),
    ) {
        use sunway_kmeans::sw_des::stats::Histogram;
        let hist_of = |samples: &[u64]| {
            let mut h = Histogram::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // Commutative: a ∪ b == b ∪ a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Count-preserving, and identical to recording centrally.
        prop_assert_eq!(ab_c.count(), (a.len() + b.len() + c.len()) as u64);
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&ab_c, &hist_of(&all));
    }

    /// min-loc AllReduce equals the serial argmin merge for arbitrary
    /// inputs (including ties and empty shards).
    #[test]
    fn min_loc_matches_serial_merge(
        values in proptest::collection::vec(
            proptest::collection::vec((0.0f64..100.0, 0u64..64), 5),
            2..6
        ),
    ) {
        let ranks = values.len();
        let expected: Vec<(f64, u64)> = (0..5)
            .map(|slot| {
                values
                    .iter()
                    .map(|rank_vals| rank_vals[slot])
                    .fold((f64::INFINITY, u64::MAX), |best, cand| {
                        if cand.0 < best.0 || (cand.0 == best.0 && cand.1 < best.1) {
                            cand
                        } else {
                            best
                        }
                    })
            })
            .collect();
        let values_ref = &values;
        let outs = msg::World::run(ranks, move |comm| {
            let mut pairs = values_ref[comm.rank()].clone();
            comm.allreduce_min_loc(&mut pairs);
            pairs
        });
        for out in outs {
            prop_assert_eq!(&out, &expected);
        }
    }
}
