//! Discrete-event-simulation validation of the analytic cost terms: the
//! closed-form formulas in `perf-model` assume ideal FIFO pipelining; the
//! DES engine reproduces the same numbers from first principles (explicit
//! per-request queueing), confirming the model's read/communication terms.

use std::cell::RefCell;
use std::rc::Rc;
use sunway_kmeans::sw_arch::{CoreGroup, MachineParams};
use sunway_kmeans::sw_des::{Engine, SimTime};

#[test]
fn cg_dma_contention_matches_bandwidth_share() {
    // 64 CPEs streaming their sample slices through one CG's DMA engine:
    // the wall time must equal total_bytes / dma_bw (FIFO, fully utilised),
    // which is what the model's per-CPE share B/64 assumes.
    let p = MachineParams::taihulight();
    let mut engine = Engine::new();
    let dma = engine.add_resource("cg_dma", p.dma_bw, 0.0);
    let bytes_per_cpe: u64 = 3_072 * 4; // one Level-3 slice at d=196,608, f32
    for _ in 0..64 {
        engine.transfer(dma, bytes_per_cpe, |_| {});
    }
    let end = engine.run();
    let expected = 64.0 * bytes_per_cpe as f64 / p.dma_bw;
    let measured = end.as_secs_f64();
    assert!(
        (measured - expected).abs() / expected < 1e-3,
        "DES {measured} vs analytic {expected}"
    );
    let stats = engine.resource_stats(dma);
    assert_eq!(stats.transfers, 64);
    assert!(stats.utilisation(end) > 0.999);
}

#[test]
fn dma_latency_serialises_small_requests() {
    // Many tiny requests are latency-bound — the regime the merge_batch
    // calibration knob models. 1000 requests of 12 B at 1 µs startup must
    // take ~1 ms, not 12 µs.
    let p = MachineParams::taihulight();
    let mut engine = Engine::new();
    let link = engine.add_resource("net", p.net_bw, p.net_lat_intra);
    for _ in 0..1_000 {
        engine.transfer(link, 12, |_| {});
    }
    let end = engine.run().as_secs_f64();
    assert!(end > 0.9e-3, "latency-bound regime: {end}");
    assert!(end < 1.2e-3);
}

#[test]
fn mesh_reduce_schedule_matches_des_pipeline() {
    // Model the 2(side-1)-hop mesh reduce as a chain of register-bus
    // transfers in the DES; the closed-form ReductionSchedule::time must
    // agree.
    let p = MachineParams::taihulight();
    let cg = CoreGroup::sw26010();
    let schedule = cg.reduce_schedule(1_024);
    let analytic = schedule.time(p.reg_bw, p.reg_lat);

    let mut engine = Engine::new();
    let bus = engine.add_resource("reg_bus", p.reg_bw, p.reg_lat);
    // Sequential dependency: hop h starts when hop h-1 completes — exactly
    // a FIFO resource fed one request at a time.
    let remaining = Rc::new(RefCell::new(schedule.critical_hops));
    fn hop(
        engine: &mut Engine,
        bus: sunway_kmeans::sw_des::ResourceId,
        remaining: Rc<RefCell<usize>>,
    ) {
        let more = {
            let mut r = remaining.borrow_mut();
            *r -= 1;
            *r > 0
        };
        if more {
            engine.transfer(bus, 1_024, move |e| hop(e, bus, remaining));
        }
    }
    engine.transfer(bus, 1_024, {
        let remaining = remaining.clone();
        move |e| hop(e, bus, remaining)
    });
    let des = engine.run().as_secs_f64();
    assert!(
        (des - analytic).abs() / analytic < 1e-2,
        "DES {des} vs analytic {analytic}"
    );
}

#[test]
fn register_comm_beats_dma_for_the_update_reduce() {
    // The paper cites a 3–4× advantage of register communication over
    // DMA-based reduction for the Update bottleneck; replay both through
    // the DES with the published bandwidths and latencies.
    let p = MachineParams::taihulight();
    let payload = 64 * 1024u64; // a k·d shard chunk

    let run_chain = |rate: f64, lat: f64, hops: usize| -> f64 {
        let mut engine = Engine::new();
        let bus = engine.add_resource("bus", rate, lat);
        for _ in 0..hops {
            // FIFO chaining: successive hops queue behind each other.
            engine.transfer(bus, payload, |_| {});
        }
        engine.run().as_secs_f64()
    };

    let hops = 14; // 2(side-1)
    let reg = run_chain(p.reg_bw, p.reg_lat, hops);
    // A DMA-staged reduce bounces through main memory: same hops, DMA
    // bandwidth and latency, plus write+read per hop (factor 2).
    let dma = run_chain(p.dma_bw / 2.0, p.dma_lat, hops);
    let advantage = dma / reg;
    assert!(
        (2.0..8.0).contains(&advantage),
        "register-comm advantage {advantage}x (paper: 3–4×)"
    );
}

#[test]
fn simulated_time_is_deterministic() {
    let build = || {
        let mut engine = Engine::new();
        let a = engine.add_resource("a", 1e9, 1e-7);
        let b = engine.add_resource("b", 2e9, 2e-7);
        for i in 0..100u64 {
            let (r, bytes) = if i % 3 == 0 { (a, 1_000) } else { (b, 5_000) };
            engine.transfer(r, bytes, move |e| {
                if i % 7 == 0 {
                    e.schedule(SimTime(50), |_| {});
                }
            });
        }
        engine.run()
    };
    assert_eq!(build(), build());
}
