//! The load-ramp invariant harness: drive a deterministic client ramp
//! (base → peak → base) against the event-driven serve core and assert
//! the invariants that make elastic serving trustworthy:
//!
//! * **Conservation** — every issued request is completed, shed or failed;
//!   none vanish, per phase and in total.
//! * **Elasticity** — the active shard count rises under the peak and
//!   falls back to the minimum once load recedes.
//! * **Bounded tail** — p99 stays finite and sane during steady phases.
//! * **Drain on close** — shutdown strands zero requests in any channel.

use std::time::Duration;
use sunway_kmeans::kmeans_core::Matrix;
use sunway_kmeans::prelude::*;
use sunway_kmeans::swkm_obs::MetricsRegistry;
use sunway_kmeans::swkm_serve::{ServeError, ServeTracing};

/// A deliberately slow index (large k·d) so queues actually form.
fn heavy_index(shards: usize) -> ShardedIndex<f64> {
    let (k, d) = (256usize, 256usize);
    let centroids = Matrix::from_vec(k, d, (0..k * d).map(|i| (i as f64 * 0.37).sin()).collect());
    ShardedIndex::new(centroids, shards)
}

fn heavy_queries(rows: usize) -> Matrix<f64> {
    Matrix::from_vec(
        rows,
        256,
        (0..rows * 256).map(|i| (i as f64 * 0.11).cos()).collect(),
    )
}

/// An elastic server: 1..=4 shards, tight tick so scaling decisions and
/// admission windows happen many times within the test.
fn elastic_server(
    registry: std::sync::Arc<MetricsRegistry>,
    admission: Option<AdmissionConfig>,
) -> Server<f64> {
    Server::start_dispatch(
        heavy_index(4),
        DispatchConfig {
            queue_capacity: 4_096,
            max_batch: 8,
            linger: Duration::from_micros(50),
            shards: ElasticConfig::elastic(1, 4),
            shard_queue: 1,
            tick: Duration::from_millis(1),
            admission,
        },
        registry,
        ServeTracing::default(),
    )
}

#[test]
fn ramp_scales_up_and_back_down_conserving_every_request() {
    let registry = MetricsRegistry::shared();
    let server = elastic_server(registry.clone(), None);
    let queries = heavy_queries(8);

    let ramp = run_ramp(
        &server,
        &queries,
        RampConfig {
            base_clients: 1,
            peak_clients: 10,
            steps_up: 4,
            requests_per_client: 60,
        },
    );

    // Conservation, per phase and in total.
    assert!(ramp.conserved(), "a request vanished:\n{ramp}");
    assert_eq!(ramp.phases.len(), 7, "profile is base→peak→base mirrored");
    assert_eq!(
        ramp.issued(),
        ramp.completed() + ramp.shed() + ramp.failed(),
        "ramp totals must balance:\n{ramp}"
    );
    assert!(ramp.completed() > 0);
    assert_eq!(ramp.failed(), 0, "no faults injected, nothing may fail");

    // Bounded tail: p99 is real (something completed) and sane. The
    // generous ceiling keeps the assertion deterministic on slow CI.
    let worst = ramp.worst_p99_ns();
    assert!(worst > 0, "completed requests must produce a p99");
    assert!(
        worst < 5_000_000_000,
        "p99 {worst}ns blew past five seconds — the ramp stalled"
    );

    // Elasticity: the peak phase forced extra shards up, and after the
    // ramp the lazy scale-down returns the pool to the minimum.
    std::thread::sleep(Duration::from_millis(120)); // >> scale_down_idle_ticks × tick
    let peak = registry
        .gauge("serve_shards_active_peak")
        .expect("peak gauge registered");
    let low = registry
        .gauge("serve_shards_active_low")
        .expect("low gauge registered");
    assert!(
        peak > low,
        "shard count never moved: peak {peak} vs low {low}"
    );
    assert!(peak > 1.0, "the 10-client peak must activate extra shards");
    let settled = registry
        .gauge("serve_shards_active")
        .expect("active gauge registered");
    assert_eq!(settled, 1.0, "idle pool must settle back to min_shards");

    // Drain on close: the shutdown audit finds nothing stranded.
    let snap = server.shutdown();
    assert_eq!(snap.stranded, 0, "shutdown stranded requests in a channel");
    assert_eq!(snap.completed, ramp.completed());
    assert_eq!(snap.rejected, ramp.shed());
    assert_eq!(snap.failed, 0);
}

/// A 1µs p99 objective — impossible for a 256×256 scan — with
/// `min_window: 1` so even the sparse windows a 1ms tick collects at
/// ~8ms/request update the estimate immediately.
fn impossible_slo() -> AdmissionConfig {
    AdmissionConfig {
        min_window: 1,
        ..AdmissionConfig::with_slo_p99_ns(1_000)
    }
}

#[test]
fn slo_gate_sheds_under_load_and_reopens_when_idle() {
    let registry = MetricsRegistry::shared();
    // The gate must close as soon as the first latency window lands.
    let server = elastic_server(registry.clone(), Some(impossible_slo()));
    let queries = heavy_queries(8);

    let report = run_closed_loop(
        &server,
        &queries,
        LoadGenConfig {
            clients: 8,
            requests_per_client: 120,
        },
    );

    assert_eq!(
        report.issued,
        report.completed + report.shed + report.failed,
        "conservation must hold under SLO shedding: {report}"
    );
    assert!(
        report.completed > 0,
        "requests before the first window must complete"
    );
    assert!(
        report.shed > 0,
        "an impossible SLO must shed once the window closes: {report}"
    );

    let snap = server.snapshot();
    assert!(snap.admission_shed > 0, "SLO sheds must be counted");
    assert_eq!(
        snap.rejected, report.shed,
        "server-side rejects must match the clients' shed count"
    );

    // Idle windows decay the p99 estimate geometrically, so the gate must
    // re-open: shedding cannot be a one-way door.
    let client = server.client();
    let reopened = (0..200).find(|_| {
        std::thread::sleep(Duration::from_millis(5));
        registry.gauge("serve_admission_shedding") == Some(0.0)
    });
    assert!(
        reopened.is_some(),
        "gate never re-opened after load stopped"
    );
    assert!(
        client.predict(queries.row(0).to_vec()).is_ok(),
        "a request after recovery must be admitted again"
    );
    drop(client);
    let snap = server.shutdown();
    assert_eq!(snap.stranded, 0);
}

/// Shed requests carry the typed `SloShed` error with both the estimate
/// and the objective, so callers can distinguish tail-latency shedding
/// from queue-full shedding and apply different backoff.
#[test]
fn slo_sheds_are_typed_with_estimate_and_objective() {
    let registry = MetricsRegistry::shared();
    let server = elastic_server(registry.clone(), Some(impossible_slo()));
    let queries = heavy_queries(4);
    let client = server.client();

    // Hammer until the gate closes, then inspect the typed error.
    let mut shed_error = None;
    for i in 0..4_000 {
        match client.predict(queries.row(i % 4).to_vec()) {
            Err(e @ ServeError::SloShed { .. }) => {
                shed_error = Some(e);
                break;
            }
            _ => {}
        }
    }
    match shed_error {
        Some(ServeError::SloShed {
            predicted_p99_us,
            slo_p99_us,
        }) => {
            assert_eq!(slo_p99_us, 1, "objective is echoed back in µs");
            assert!(
                predicted_p99_us >= slo_p99_us,
                "shed with an estimate below the objective"
            );
        }
        other => panic!("gate never closed; last outcome {other:?}"),
    }
    drop(client);
    server.shutdown();
}

/// Elastic scale-down and shutdown race on the same channels; repeated
/// cycles must exit cleanly (no panicked worker unwraps on disconnected
/// channels, nothing stranded) every time.
#[test]
fn repeated_elastic_cycles_shut_down_cleanly() {
    let queries = heavy_queries(4);
    for round in 0..3 {
        let registry = MetricsRegistry::shared();
        let server = elastic_server(registry, None);
        let report = run_closed_loop(
            &server,
            &queries,
            LoadGenConfig {
                clients: 6,
                requests_per_client: 40,
            },
        );
        assert_eq!(
            report.issued,
            report.completed + report.shed + report.failed,
            "round {round} lost a request: {report}"
        );
        let snap = server.shutdown();
        assert_eq!(snap.stranded, 0, "round {round} stranded requests");
    }
}
