//! Fault-matrix suite: every fault kind × every hierarchical level ×
//! both merge strategies × every update path. Recovery is pure
//! retransmission, so a faulted run at ≤ 25% injection must reproduce the
//! fault-free run *bitwise* — labels, centroid bits, objective bits and
//! iteration count — while the obs registry shows the injected faults and
//! the retries that recovered them.
//!
//! Also here (alongside `tests/proptest_invariants.rs`): the proptest that
//! any seeded `FaultPlan` below 100% rate converges to the fault-free
//! fixed point, the same-seed replay regression, the degradation paths
//! (delta→dense, ring→tree) and the typed-error surface when a scripted
//! persistent fault defeats the retry budget.

use proptest::prelude::*;
use sunway_kmeans::hier_kmeans::{
    FaultKind, FaultPlan, HierError, MergeStrategy, ScriptedFault, UpdateMode,
};
use sunway_kmeans::prelude::*;
use sunway_kmeans::swkm_obs::MetricsRegistry;

fn blobs(n: usize, d: usize, k: usize, seed: u64) -> Matrix<f64> {
    GaussianMixture::new(n, d, k)
        .with_seed(seed)
        .with_spread(25.0)
        .generate::<f64>()
        .data
}

fn fitter(level: Level, merge: MergeStrategy, update: UpdateMode) -> HierKMeans {
    let group = if level == Level::L1 { 1 } else { 2 };
    HierKMeans::new(level)
        .with_units(4)
        .with_group_units(group)
        .with_cpes_per_cg(3)
        .with_kernel(AssignKernel::Scalar)
        .with_update(update)
        .with_merge(merge)
        .with_max_iters(4)
        .with_tol(0.0)
}

fn centroid_bits(m: &Matrix<f64>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A fast-recovering seeded plan: tiny delay/restart stalls keep the
/// matrix quick while still exercising the timeout-retry machinery.
fn plan_for(kind: FaultKind, seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed, 0.25)
        .with_kinds(&[kind])
        .with_delay_ms(6)
        .with_restart_ms(2)
}

/// The full matrix: {drop, delay, corrupt, crash} × {L1, L2, L3} ×
/// {tree, ring} × {twopass, fused, delta}, minus the delta+ring pairing
/// the executors reject by construction (the sparse merge is
/// tree-only). Each faulted run must be bitwise-identical to its own
/// fault-free baseline and must show injections (and, for kinds recovered
/// by retransmission, retries) in the obs registry.
#[test]
fn fault_matrix_recovers_bitwise_on_every_combination() {
    let data = blobs(120, 7, 4, 42);
    let init = init_centroids(&data, 4, InitMethod::Forgy, 9);
    for level in [Level::L1, Level::L2, Level::L3] {
        for merge in [MergeStrategy::Tree, MergeStrategy::Ring] {
            for update in [UpdateMode::TwoPass, UpdateMode::Fused, UpdateMode::Delta] {
                if merge == MergeStrategy::Ring && update == UpdateMode::Delta {
                    continue; // rejected combination: sparse merge is tree-only
                }
                let f = fitter(level, merge, update);
                let baseline = f.fit(&data, init.clone()).unwrap();
                assert_eq!(baseline.fault_stats.injected_total(), 0);
                for kind in FaultKind::ALL {
                    let tag = format!("{kind} @ {level:?}/{merge}/{update:?}");
                    let r = f
                        .clone()
                        .with_faults(plan_for(kind, 0xC0FFEE + kind as u64))
                        .fit(&data, init.clone())
                        .unwrap();
                    assert_eq!(r.labels, baseline.labels, "{tag}: labels diverged");
                    assert_eq!(
                        centroid_bits(&r.centroids),
                        centroid_bits(&baseline.centroids),
                        "{tag}: centroid bits diverged"
                    );
                    assert_eq!(
                        r.objective.to_bits(),
                        baseline.objective.to_bits(),
                        "{tag}: objective bits diverged"
                    );
                    assert_eq!(r.iterations, baseline.iterations, "{tag}");
                    assert!(
                        r.fault_stats.injected_total() > 0,
                        "{tag}: no faults injected"
                    );
                    // Recovery must be visible through the registry, as the
                    // tests of downstream consumers will see it.
                    let reg = MetricsRegistry::new();
                    r.export_metrics(&reg);
                    assert_eq!(
                        reg.counter("fault_injected_total"),
                        r.fault_stats.injected_total(),
                        "{tag}"
                    );
                    assert!(
                        reg.counter(&format!("fault_{kind}_injected_total")) > 0,
                        "{tag}: per-kind counter missing"
                    );
                    if kind != FaultKind::Delay {
                        assert!(
                            reg.counter("comm_retries_total") > 0,
                            "{tag}: recovery counted no retries"
                        );
                    }
                    assert_eq!(reg.counter("degraded_iterations"), 0, "{tag}");
                }
            }
        }
    }
}

/// All four kinds at once, mixed by the seeded PRNG, on every level.
#[test]
fn mixed_kind_plans_recover_bitwise() {
    let data = blobs(150, 9, 5, 7);
    let init = init_centroids(&data, 5, InitMethod::Forgy, 3);
    for level in [Level::L1, Level::L2, Level::L3] {
        let f = fitter(level, MergeStrategy::Tree, UpdateMode::TwoPass);
        let baseline = f.fit(&data, init.clone()).unwrap();
        let plan = FaultPlan::seeded(2018, 0.25)
            .with_delay_ms(6)
            .with_restart_ms(2);
        let r = f
            .clone()
            .with_faults(plan)
            .fit(&data, init.clone())
            .unwrap();
        assert_eq!(r.labels, baseline.labels, "{level:?}");
        assert_eq!(
            centroid_bits(&r.centroids),
            centroid_bits(&baseline.centroids),
            "{level:?}"
        );
        assert!(r.fault_stats.injected_total() > 0, "{level:?}");
        assert!(r.fault_stats.retries() > 0, "{level:?}");
    }
}

/// Degradation consensus: `degrade-every` forces the delta path onto its
/// dense (two-pass) fallback for the marked iterations. The fallback is a
/// bitwise re-expression, so the result still matches the fault-free
/// delta run bit for bit — and `degraded_iterations` counts the forcing.
#[test]
fn delta_degradation_is_bitwise_invisible_and_counted() {
    let data = blobs(150, 8, 4, 21);
    let init = init_centroids(&data, 4, InitMethod::Forgy, 5);
    let f = fitter(Level::L2, MergeStrategy::Tree, UpdateMode::Delta);
    let baseline = f.fit(&data, init.clone()).unwrap();
    let plan = FaultPlan::seeded(5, 0.2)
        .with_delay_ms(6)
        .with_restart_ms(2)
        .with_degrade_every(2);
    let r = f
        .clone()
        .with_faults(plan)
        .fit(&data, init.clone())
        .unwrap();
    assert_eq!(r.labels, baseline.labels);
    assert_eq!(
        centroid_bits(&r.centroids),
        centroid_bits(&baseline.centroids)
    );
    assert!(r.degraded_iterations > 0);
    let reg = MetricsRegistry::new();
    r.export_metrics(&reg);
    assert_eq!(reg.counter("degraded_iterations"), r.degraded_iterations);
}

/// Ring→tree degradation: the marked iterations run the tree merge
/// instead. Tree and ring sum in different orders, so the comparison
/// against the pure-ring baseline is semantic (labels + objective within
/// float tolerance), not bitwise — the point is that the run completes
/// correctly under faults, flagging the degraded iterations.
#[test]
fn ring_degrades_to_tree_and_stays_correct() {
    let data = blobs(150, 8, 4, 33);
    let init = init_centroids(&data, 4, InitMethod::KMeansPlusPlus, 11);
    let f = fitter(Level::L2, MergeStrategy::Ring, UpdateMode::TwoPass);
    let baseline = f.fit(&data, init.clone()).unwrap();
    let plan = FaultPlan::seeded(17, 0.2)
        .with_delay_ms(6)
        .with_restart_ms(2)
        .with_degrade_every(2);
    let r = f
        .clone()
        .with_faults(plan)
        .fit(&data, init.clone())
        .unwrap();
    assert_eq!(r.labels, baseline.labels);
    assert!(
        (r.objective - baseline.objective).abs() <= 1e-9 * (1.0 + baseline.objective.abs()),
        "objective drifted: {} vs {}",
        r.objective,
        baseline.objective
    );
    assert!(r.degraded_iterations > 0);
}

/// A scripted persistent fault defeats the bounded retry budget: the fit
/// must surface a typed `HierError::Comm`, not panic or hang — the
/// executor-level regression for the channel-unwrap audit.
#[test]
fn persistent_fault_surfaces_typed_comm_error() {
    let data = blobs(80, 5, 3, 2);
    let init = init_centroids(&data, 3, InitMethod::Forgy, 2);
    let plan = FaultPlan::scripted(vec![ScriptedFault {
        world_rank: 0,
        op_index: 0,
        kind: FaultKind::Drop,
        persistent: true,
    }])
    .with_timeout_ms(300);
    let err = fitter(Level::L1, MergeStrategy::Tree, UpdateMode::TwoPass)
        .with_faults(plan)
        .fit(&data, init)
        .unwrap_err();
    match err {
        HierError::Comm(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("exhausted") || msg.contains("timed out"),
                "unexpected comm error: {msg}"
            );
        }
        other => panic!("expected HierError::Comm, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seeded plan below 100% rate converges to the fault-free fixed
    /// point: random geometry, level, update path and fault mix, bitwise.
    #[test]
    fn any_seeded_plan_below_full_rate_reaches_the_fault_free_fixed_point(
        seed in 0u64..10_000,
        rate in 0.05f64..0.5,
        n in 40usize..120,
        d in 2usize..10,
        k in 2usize..6,
        level_pick in 0usize..3,
        update_pick in 0usize..3,
    ) {
        let level = [Level::L1, Level::L2, Level::L3][level_pick];
        let update = [UpdateMode::TwoPass, UpdateMode::Fused, UpdateMode::Delta][update_pick];
        let data = blobs(n, d, k, seed);
        let init = init_centroids(&data, k.min(n), InitMethod::Forgy, seed);
        let f = fitter(level, MergeStrategy::Tree, update);
        let baseline = f.fit(&data, init.clone()).unwrap();
        let plan = FaultPlan::seeded(seed ^ 0x5EED, rate)
            .with_delay_ms(4)
            .with_restart_ms(1);
        let r = f.clone().with_faults(plan).fit(&data, init).unwrap();
        prop_assert_eq!(&r.labels, &baseline.labels, "{:?} {:?} labels", level, update);
        prop_assert_eq!(
            centroid_bits(&r.centroids),
            centroid_bits(&baseline.centroids),
            "{:?} {:?} centroid bits", level, update
        );
        prop_assert_eq!(r.objective.to_bits(), baseline.objective.to_bits());
    }

    /// Determinism regression: the same seed replays the identical fault
    /// sequence — identical per-kind injection counts and identical
    /// results, run to run.
    #[test]
    fn same_seed_replays_the_identical_fault_sequence(
        seed in 0u64..10_000,
        rate in 0.05f64..0.4,
    ) {
        let data = blobs(60, 5, 3, 77);
        let init = init_centroids(&data, 3, InitMethod::Forgy, 1);
        let f = fitter(Level::L2, MergeStrategy::Tree, UpdateMode::TwoPass);
        let run = || {
            let plan = FaultPlan::seeded(seed, rate).with_delay_ms(4).with_restart_ms(1);
            f.clone().with_faults(plan).fit(&data, init.clone()).unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(centroid_bits(&a.centroids), centroid_bits(&b.centroids));
        for kind in FaultKind::ALL {
            prop_assert_eq!(
                a.fault_stats.injected_of(kind),
                b.fault_stats.injected_of(kind),
                "{} injection count not reproducible", kind
            );
        }
    }
}
