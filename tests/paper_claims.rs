//! The paper's headline quantitative claims, asserted against the
//! implemented system (constraints + cost model). These are the statements
//! EXPERIMENTS.md reports; if one regresses, the reproduction is broken.

use sunway_kmeans::perf_model::feasibility::{max_k_l1, plan, plan_l2};
use sunway_kmeans::perf_model::ProblemShape as Shape;
use sunway_kmeans::perf_model::{find_crossover_d, Level};
use sunway_kmeans::prelude::*;

const E_F32: u64 = 16_384;

#[test]
fn abstract_headline_under_18_seconds_per_iteration() {
    // "less than 18 seconds per iteration ... 196,608 data dimensions and
    // 2,000 centroids by applying 4,096 nodes".
    let cost = CostModel::taihulight(4_096)
        .iteration_time(&Shape::imgnet_headline(), Level::L3)
        .unwrap();
    assert!(cost.total() < 18.0, "{} s", cost.total());
}

#[test]
fn capability_claim_196608_dims_160000_centroids() {
    // Table I row: the design handles d = 196,608 with k = 160,000 —
    // k·d far beyond any single memory (C1'' is machine-wide).
    let shape = Shape::f32(1_265_723, 160_000, 196_608);
    let machine = Machine::taihulight(40_960); // the full TaihuLight
    let capability_plan = plan(Level::L3, &shape, &machine, false).unwrap();
    assert!(
        !capability_plan.spilled,
        "full machine holds the capability point resident"
    );
    // The same shape chokes every level on one node.
    let small = Machine::taihulight(1);
    assert!(plan(Level::L3, &shape, &small, false).is_err());
}

#[test]
fn fig3_k_ranges_are_exactly_the_c1_frontier() {
    // The Fig. 3 sweep tops (64 / 1,024 / 256) sit just below the C1
    // overflow at 64 KB LDM in f32; the next doubling overflows.
    for (d, top) in [(68u64, 64u64), (4, 1_024), (28, 256)] {
        let max = max_k_l1(d, E_F32);
        assert!(top <= max, "d={d}: top {top} > C1 max {max}");
        assert!(
            2 * top > max,
            "d={d}: doubling {top} should overflow C1 ({max})"
        );
    }
}

#[test]
fn fig7_claims() {
    let model = CostModel::taihulight(128);
    // Level 2 dies above d = 4,096.
    let machine = Machine::taihulight(128);
    assert!(plan_l2(&Shape::f32(1_265_723, 2_000, 4_096), &machine).is_ok());
    assert!(plan_l2(&Shape::f32(1_265_723, 2_000, 4_608), &machine).is_err());
    // Crossover lands near the paper's 2,560.
    let crossover = find_crossover_d(&model, 1_265_723, 2_000, 512, 8_192, 512).unwrap();
    assert!(
        (2_048..=3_584).contains(&crossover),
        "crossover at {crossover}"
    );
}

#[test]
fn fig8_claim_l3_always_wins_at_d4096() {
    let model = CostModel::taihulight(128);
    let mut prev_gap = 0.0;
    for k in [256u64, 1_024, 4_096, 16_384] {
        let shape = Shape::f32(1_265_723, k, 4_096);
        let l2 = model.iteration_time(&shape, Level::L2).unwrap().total();
        let l3 = model.iteration_time(&shape, Level::L3).unwrap().total();
        assert!(l3 < l2, "k={k}");
        let gap = l2 - l3;
        assert!(gap > prev_gap, "gap must grow with k");
        prev_gap = gap;
    }
}

#[test]
fn fig9_claim_l3_wins_at_every_allocation() {
    let shape = Shape::f32(1_265_723, 2_000, 4_096);
    for nodes in [2usize, 8, 32, 128, 256] {
        let model = CostModel::taihulight(nodes);
        let l2 = model.iteration_time(&shape, Level::L2).unwrap().total();
        let l3 = model.iteration_time(&shape, Level::L3).unwrap().total();
        assert!(l3 < l2, "{nodes} nodes: {l3} vs {l2}");
    }
}

#[test]
fn flexibility_claim_low_d_uses_low_levels() {
    // "greater flexibility on general workloads" — unlike Bender et al.,
    // small-d problems are served (by Levels 1–2), not refused.
    use sunway_kmeans::hier_kmeans::choose_level;
    assert!(matches!(
        choose_level(65_554, 256, 28, 1),
        Level::L1 | Level::L2
    ));
    assert!(matches!(
        choose_level(434_874, 10_000, 4, 256),
        Level::L1 | Level::L2
    ));
    assert_eq!(choose_level(1_265_723, 2_000, 196_608, 4_096), Level::L3);
}

#[test]
fn update_and_assign_costs_scale_as_the_paper_formulas_say() {
    // T''read's replication term scales with G; the centroid term with
    // k/G: doubling the allocation at fixed shape halves per-iteration
    // time in the strong-scaling regime (Fig. 6b's trend).
    let shape = Shape::imgnet_headline();
    let t1k = CostModel::taihulight(1_024)
        .iteration_time(&shape, Level::L3)
        .unwrap()
        .total();
    let t2k = CostModel::taihulight(2_048)
        .iteration_time(&shape, Level::L3)
        .unwrap()
        .total();
    let speedup = t1k / t2k;
    assert!(
        (1.5..=2.5).contains(&speedup),
        "doubling nodes gave {speedup}x"
    );
}

#[test]
fn bender_window_vs_ours() {
    use sunway_kmeans::perf_model::related::BenderModel;
    let bender = BenderModel::trinity_knl();
    // A shape in the paper's motivating gap: moderate k AND moderate d —
    // inefficient for the two-level design, fine for ours.
    let gap_shape = Shape::f32(1_000_000, 100, 68);
    assert!(!bender.in_window(&gap_shape));
    let model = CostModel::taihulight(16);
    assert!(sunway_kmeans::perf_model::best_level(&model, &gap_shape).is_ok());
}
