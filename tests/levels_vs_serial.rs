//! Cross-crate equivalence: every hierarchical executor must compute the
//! same clustering as serial Lloyd, across precisions, levels and
//! partition geometries.

use sunway_kmeans::prelude::*;

fn mixture(n: usize, d: usize, k: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    let blobs = GaussianMixture::new(n, d, k)
        .with_seed(seed)
        .with_spread(15.0)
        .generate::<f64>();
    let init = init_centroids(&blobs.data, k, InitMethod::Forgy, seed ^ 0xabc);
    (blobs.data, init)
}

fn serial(data: &Matrix<f64>, init: Matrix<f64>, iters: usize) -> kmeans_core::KMeansResult<f64> {
    let k = init.rows();
    Lloyd::run_from(
        data,
        init,
        &KMeansConfig::new(k).with_max_iters(iters).with_tol(0.0),
    )
    .unwrap()
}

#[test]
fn all_levels_match_serial_on_a_bigger_problem() {
    let (data, init) = mixture(2_000, 24, 10, 1);
    let reference = serial(&data, init.clone(), 8);
    for (level, units, group) in [
        (Level::L1, 12, 1),
        (Level::L2, 12, 3),
        (Level::L2, 12, 12),
        (Level::L3, 12, 4),
        (Level::L3, 12, 6),
    ] {
        let result = HierKMeans::new(level)
            .with_units(units)
            .with_group_units(group)
            .with_cpes_per_cg(8)
            .with_max_iters(8)
            .with_tol(0.0)
            .fit(&data, init.clone())
            .unwrap();
        let diff = result.centroids.max_abs_diff(&reference.centroids);
        assert!(
            diff < 1e-9,
            "{level} units={units} group={group}: diff {diff}"
        );
        assert_eq!(
            result.labels, reference.labels,
            "{level} units={units} group={group}"
        );
        assert_eq!(result.iterations, reference.iterations);
    }
}

#[test]
fn f32_levels_track_their_f32_serial() {
    let (data64, init64) = mixture(800, 16, 6, 2);
    let data: Matrix<f32> = data64.cast();
    let init: Matrix<f32> = init64.cast();
    let reference = Lloyd::run_from(
        &data,
        init.clone(),
        &KMeansConfig::new(6).with_max_iters(5).with_tol(0.0),
    )
    .unwrap();
    for level in [Level::L1, Level::L2, Level::L3] {
        let result = HierKMeans::new(level)
            .with_units(8)
            .with_group_units(2)
            .with_cpes_per_cg(4)
            .with_max_iters(5)
            .with_tol(0.0)
            .fit(&data, init.clone())
            .unwrap();
        let diff = result.centroids.max_abs_diff(&reference.centroids);
        assert!(diff < 1e-2, "{level}: f32 diff {diff}");
    }
}

#[test]
fn hierarchical_objective_is_non_increasing() {
    // Run the Level-3 executor one extra iteration at a time; the mean
    // objective of the returned centroids must never increase.
    let (data, init) = mixture(600, 12, 5, 3);
    let mut prev = f64::INFINITY;
    for iters in 1..=6 {
        let result = HierKMeans::new(Level::L3)
            .with_units(6)
            .with_group_units(3)
            .with_cpes_per_cg(4)
            .with_max_iters(iters)
            .with_tol(0.0)
            .fit(&data, init.clone())
            .unwrap();
        assert!(
            result.objective <= prev + 1e-9,
            "objective rose at iteration {iters}: {prev} -> {}",
            result.objective
        );
        prev = result.objective;
    }
}

#[test]
fn rayon_baseline_agrees_with_hierarchical() {
    let (data, init) = mixture(1_500, 20, 8, 4);
    let hier = HierKMeans::new(Level::L2)
        .with_units(8)
        .with_group_units(4)
        .with_max_iters(6)
        .with_tol(0.0)
        .fit(&data, init.clone())
        .unwrap();
    let base = sunway_kmeans::hier_kmeans::baseline::run(
        &data,
        init,
        &sunway_kmeans::hier_kmeans::baseline::BaselineConfig {
            max_iters: 6,
            tol: 0.0,
            chunk: 128,
        },
    )
    .unwrap();
    assert!(hier.centroids.max_abs_diff(&base.centroids) < 1e-9);
    assert_eq!(hier.labels, base.labels);
}

#[test]
fn phase_timings_are_populated() {
    let (data, init) = mixture(1_000, 16, 6, 8);
    for (level, g) in [(Level::L1, 1), (Level::L2, 3), (Level::L3, 2)] {
        let r = HierKMeans::new(level)
            .with_units(6)
            .with_group_units(g)
            .with_cpes_per_cg(4)
            .with_max_iters(5)
            .with_tol(0.0)
            .fit(&data, init.clone())
            .unwrap();
        let t = r.timings;
        assert!(t.assign > 0.0, "{level}: no assign time recorded");
        assert!(t.update > 0.0, "{level}: no update time recorded");
        if level != Level::L1 {
            assert!(t.merge > 0.0, "{level}: no merge time recorded");
        }
        assert!(t.total() < 60.0, "{level}: implausible total {}", t.total());
    }
}

#[test]
fn convergence_flag_agrees_between_levels() {
    let (data, init) = mixture(900, 8, 4, 5);
    let mut results = Vec::new();
    for level in [Level::L1, Level::L2, Level::L3] {
        let r = HierKMeans::new(level)
            .with_units(4)
            .with_group_units(2)
            .with_cpes_per_cg(4)
            .with_max_iters(100)
            .with_tol(1e-9)
            .fit(&data, init.clone())
            .unwrap();
        assert!(r.converged, "{level} failed to converge");
        results.push(r);
    }
    // All levels converge to the same fixed point in the same number of
    // iterations.
    assert_eq!(results[0].iterations, results[1].iterations);
    assert_eq!(results[1].iterations, results[2].iterations);
    assert!(results[0].centroids.max_abs_diff(&results[2].centroids) < 1e-8);
}

#[test]
fn communication_volume_is_exactly_linear_in_iterations() {
    // The executors' traffic is the quantity the cost model prices: per
    // iteration it must be exactly constant (same collectives, same
    // payloads), so total bytes are affine in the iteration count.
    let (data, init) = mixture(400, 10, 6, 12);
    let bytes_at = |iters: usize| {
        let r = HierKMeans::new(Level::L3)
            .with_units(6)
            .with_group_units(3)
            .with_cpes_per_cg(4)
            .with_max_iters(iters)
            .with_tol(0.0)
            .fit(&data, init.clone())
            .unwrap();
        assert_eq!(r.iterations, iters, "converged early; pick harder data");
        r.comm_bytes
    };
    let (b1, b2, b3) = (bytes_at(1), bytes_at(2), bytes_at(3));
    assert_eq!(b2 - b1, b3 - b2, "per-iteration traffic must be constant");
    assert!(b2 > b1);
}

#[test]
fn update_traffic_scales_with_centroid_payload() {
    // Doubling d doubles the k·d accumulator payload; the per-iteration
    // traffic (minus the d-independent min-loc/count/convergence part)
    // must scale accordingly.
    let per_iter_bytes = |d: usize| {
        let blobs = GaussianMixture::new(240, d, 4)
            .with_seed(5)
            .generate::<f64>();
        let init = init_centroids(&blobs.data, 4, InitMethod::Forgy, 5);
        let run = |iters: usize| {
            let r = HierKMeans::new(Level::L2)
                .with_units(4)
                .with_group_units(2)
                .with_max_iters(iters)
                .with_tol(0.0)
                .fit(&blobs.data, init.clone())
                .unwrap();
            assert_eq!(r.iterations, iters, "converged early");
            r.comm_bytes
        };
        run(2) - run(1)
    };
    let small = per_iter_bytes(16);
    let big = per_iter_bytes(32);
    assert!(big > small);
    // The d-dependent part doubles: big - fixed = 2·(small - fixed), so
    // big < 2·small (the fixed part does not double).
    assert!(
        big < 2 * small,
        "d-independent traffic should not double: {small} -> {big}"
    );
}
