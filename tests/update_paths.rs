//! Update-path equivalence: the fused and delta paths are *bitwise*
//! re-expressions of the two-pass baseline, not approximations. Every
//! kernel, level, partition geometry and degenerate shape must produce
//! identical labels, bit-identical centroids and the same iteration
//! count under all three `--update` modes.

use proptest::prelude::*;
use sunway_kmeans::hier_kmeans::{FaultPlan, MergeStrategy, UpdateMode};
use sunway_kmeans::kmeans_core::BoundsMode;
use sunway_kmeans::prelude::*;
use sunway_kmeans::swkm_obs;

#[allow(clippy::too_many_arguments)]
fn fit_with(
    data: &Matrix<f64>,
    init: &Matrix<f64>,
    level: Level,
    units: usize,
    group: usize,
    cpes: usize,
    kernel: AssignKernel,
    update: UpdateMode,
    max_iters: usize,
) -> HierResult<f64> {
    HierKMeans::new(level)
        .with_units(units)
        .with_group_units(group)
        .with_cpes_per_cg(cpes)
        .with_kernel(kernel)
        .with_update(update)
        .with_merge(MergeStrategy::Tree)
        .with_max_iters(max_iters)
        .with_tol(0.0)
        .fit(data, init.clone())
        .unwrap()
}

fn centroid_bits(m: &Matrix<f64>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary problems, geometries, kernels and levels: fused and
    /// delta reproduce two-pass bit for bit.
    #[test]
    fn fused_and_delta_are_bitwise_twopass(
        seed in 0u64..1_000,
        n in 20usize..100,
        d in 1usize..20,
        k in 1usize..9,
        units in 1usize..5,
        group in 1usize..4,
        cpes in 1usize..7,
        kernel_pick in 0usize..4,
        level_pick in 0usize..3,
    ) {
        let k = k.min(n);
        let units = units * group; // divisibility requirement
        let level = [Level::L1, Level::L2, Level::L3][level_pick];
        let kernel = AssignKernel::ALL[kernel_pick];
        let blobs = GaussianMixture::new(n, d, k).with_seed(seed).generate::<f64>();
        let init = init_centroids(&blobs.data, k, InitMethod::Forgy, seed);

        let two = fit_with(&blobs.data, &init, level, units, group, cpes, kernel,
                           UpdateMode::TwoPass, 4);
        for mode in [UpdateMode::Fused, UpdateMode::Delta] {
            let r = fit_with(&blobs.data, &init, level, units, group, cpes, kernel, mode, 4);
            prop_assert_eq!(&r.labels, &two.labels, "{} labels diverged at {}", mode, level);
            prop_assert_eq!(centroid_bits(&r.centroids), centroid_bits(&two.centroids),
                "{} centroid bits diverged at {}", mode, level);
            prop_assert_eq!(r.objective.to_bits(), two.objective.to_bits(),
                "{} objective bits diverged at {}", mode, level);
            prop_assert_eq!(r.iterations, two.iterations);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fit_bounded(
    data: &Matrix<f64>,
    init: &Matrix<f64>,
    level: Level,
    units: usize,
    group: usize,
    kernel: AssignKernel,
    update: UpdateMode,
    merge: MergeStrategy,
    bounds: BoundsMode,
    max_iters: usize,
) -> HierResult<f64> {
    HierKMeans::new(level)
        .with_units(units)
        .with_group_units(group)
        .with_cpes_per_cg(3)
        .with_kernel(kernel)
        .with_update(update)
        .with_merge(merge)
        .with_bounds(bounds)
        .with_max_iters(max_iters)
        .with_tol(0.0)
        .fit(data, init.clone())
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Bounded assignment is a *winner-preserving filter*, not an
    /// approximation: across bounds{hamerly,yinyang} × every kernel ×
    /// every level × every update path × both merge strategies, the
    /// bounded run reproduces the unbounded one bit for bit — labels,
    /// centroid bits, objective bits and iteration count.
    #[test]
    fn bounded_runs_are_bitwise_unbounded(
        seed in 0u64..1_000,
        n in 40usize..140,
        d in 2usize..16,
        k in 2usize..10,
        units in 1usize..4,
        group in 1usize..4,
        kernel_pick in 0usize..4,
        level_pick in 0usize..3,
        update_pick in 0usize..3,
        merge_pick in 0usize..2,
        bounds_pick in 0usize..2,
    ) {
        let k = k.min(n);
        let units = units * group;
        let level = [Level::L1, Level::L2, Level::L3][level_pick];
        let kernel = AssignKernel::ALL[kernel_pick];
        let mut update = [UpdateMode::TwoPass, UpdateMode::Fused, UpdateMode::Delta][update_pick];
        let merge = [MergeStrategy::Tree, MergeStrategy::Ring][merge_pick];
        if merge == MergeStrategy::Ring && update == UpdateMode::Delta {
            update = UpdateMode::TwoPass; // delta+ring is rejected by construction
        }
        let bounds = [BoundsMode::Hamerly, BoundsMode::Yinyang][bounds_pick];
        let blobs = GaussianMixture::new(n, d, k)
            .with_seed(seed)
            .with_spread(25.0)
            .generate::<f64>();
        let init = init_centroids(&blobs.data, k, InitMethod::Forgy, seed);

        let plain = fit_bounded(&blobs.data, &init, level, units, group, kernel, update,
                                merge, BoundsMode::None, 8);
        let r = fit_bounded(&blobs.data, &init, level, units, group, kernel, update,
                            merge, bounds, 8);
        let tag = format!("{bounds}/{kernel}/{update}/{merge} at {level}");
        prop_assert_eq!(&r.labels, &plain.labels, "{} labels diverged", &tag);
        prop_assert_eq!(centroid_bits(&r.centroids), centroid_bits(&plain.centroids),
            "{} centroid bits diverged", &tag);
        prop_assert_eq!(r.objective.to_bits(), plain.objective.to_bits(),
            "{} objective bits diverged", &tag);
        prop_assert_eq!(r.iterations, plain.iterations, "{} iterations diverged", &tag);
        prop_assert!(r.bounds.lloyd_equivalent > 0, "{} recorded no bounds work", &tag);
    }
}

/// Fault storm over a bounded run: degraded iterations conservatively
/// reset the bound state (counted in `bounds_resets`), and the recovered
/// run still reproduces the fault-free *unbounded* baseline bit for bit
/// on every level.
#[test]
fn fault_storm_resets_bounds_without_breaking_bit_identity() {
    let blobs = GaussianMixture::new(240, 8, 5)
        .with_seed(13)
        .with_spread(25.0)
        .generate::<f64>();
    let init = init_centroids(&blobs.data, 5, InitMethod::KMeansPlusPlus, 4);
    for level in [Level::L1, Level::L2, Level::L3] {
        let fitter = HierKMeans::new(level)
            .with_units(4)
            .with_group_units(if level == Level::L1 { 1 } else { 2 })
            .with_cpes_per_cg(3)
            .with_bounds(BoundsMode::Yinyang)
            .with_max_iters(8)
            .with_tol(0.0);
        let baseline = fitter
            .clone()
            .with_bounds(BoundsMode::None)
            .fit(&blobs.data, init.clone())
            .unwrap();
        let storm = FaultPlan::seeded(5, 0.25)
            .with_delay_ms(6)
            .with_restart_ms(2)
            .with_degrade_every(2);
        let r = fitter
            .with_faults(storm)
            .fit(&blobs.data, init.clone())
            .unwrap();
        assert_eq!(r.labels, baseline.labels, "{level}: labels diverged");
        assert_eq!(
            centroid_bits(&r.centroids),
            centroid_bits(&baseline.centroids),
            "{level}: centroid bits diverged"
        );
        assert_eq!(
            r.objective.to_bits(),
            baseline.objective.to_bits(),
            "{level}: objective bits diverged"
        );
        assert!(r.degraded_iterations > 0, "{level}: storm never degraded");
        assert!(
            r.bounds.resets > 0,
            "{level}: degradation never reset bounds"
        );
        let reg = swkm_obs::MetricsRegistry::new();
        r.export_metrics(&reg);
        assert_eq!(reg.gauge("bounds_resets"), Some(r.bounds.resets as f64));
    }
}

/// Duplicated initial centroids force empty clusters from iteration 0 on:
/// the zero-count skip must behave identically in all three paths.
#[test]
fn empty_clusters_are_handled_identically() {
    let blobs = GaussianMixture::new(60, 6, 3)
        .with_seed(11)
        .generate::<f64>();
    // Every centroid is the same row: all but the lowest-index one are
    // empty every iteration (ties break to the lowest index).
    let row: Vec<f64> = blobs.data.row(0).to_vec();
    let refs: Vec<&[f64]> = (0..5).map(|_| row.as_slice()).collect();
    let init = Matrix::from_rows(&refs);

    for level in [Level::L1, Level::L2, Level::L3] {
        let two = fit_with(
            &blobs.data,
            &init,
            level,
            4,
            2,
            3,
            AssignKernel::Scalar,
            UpdateMode::TwoPass,
            3,
        );
        for mode in [UpdateMode::Fused, UpdateMode::Delta] {
            let r = fit_with(
                &blobs.data,
                &init,
                level,
                4,
                2,
                3,
                AssignKernel::Scalar,
                mode,
                3,
            );
            assert_eq!(r.labels, two.labels, "{mode} labels at {level}");
            assert_eq!(
                centroid_bits(&r.centroids),
                centroid_bits(&two.centroids),
                "{mode} centroid bits at {level}"
            );
        }
    }
}

/// On a run that converges, the `train_moved_fraction` gauge must decay
/// to exactly 0: the final iteration reassigns nothing, which is also the
/// delta path's certificate that its sparse merge did no work.
#[test]
fn moved_fraction_gauge_decays_to_zero_on_convergence() {
    let blobs = GaussianMixture::new(400, 8, 4)
        .with_seed(5)
        .with_spread(30.0)
        .generate::<f64>();
    let init = init_centroids(&blobs.data, 4, InitMethod::KMeansPlusPlus, 9);
    for mode in [UpdateMode::TwoPass, UpdateMode::Fused, UpdateMode::Delta] {
        let r = HierKMeans::new(Level::L1)
            .with_units(8)
            .with_update(mode)
            .with_max_iters(60)
            .with_tol(1e-12)
            .fit(&blobs.data, init.clone())
            .unwrap();
        assert!(r.converged, "{mode} did not converge");
        // First iteration moves everything (no previous labels)…
        assert_eq!(r.trace.iter_critical(0).moved_fraction, 1.0, "{mode}");
        // …the converged tail moves nothing, and the gauge reports it.
        let registry = swkm_obs::MetricsRegistry::new();
        r.export_metrics(&registry);
        assert_eq!(registry.gauge("train_moved_fraction"), Some(0.0), "{mode}");
        assert_eq!(
            registry.gauge("train_update_mode"),
            Some(mode.code() as f64),
            "{mode}"
        );
    }
}

/// The packed min-loc merge (f32 ‖ u32 in one u64) must halve the
/// min-loc traffic relative to the unpacked (f64, u64) pair path while
/// reproducing the same labels — checked end to end through a Level-2 fit.
#[test]
fn packed_min_loc_halves_traffic_with_identical_labels() {
    let blobs64 = GaussianMixture::new(240, 10, 6)
        .with_seed(3)
        .with_spread(40.0)
        .generate::<f64>();
    let blobs32 = GaussianMixture::new(240, 10, 6)
        .with_seed(3)
        .with_spread(40.0)
        .generate::<f32>();
    let init64 = init_centroids(&blobs64.data, 6, InitMethod::Forgy, 4);
    let init32 = init_centroids(&blobs32.data, 6, InitMethod::Forgy, 4);

    let fitter = HierKMeans::new(Level::L2)
        .with_units(8)
        .with_group_units(4)
        .with_max_iters(5)
        .with_tol(0.0);
    let r64 = fitter.fit(&blobs64.data, init64).unwrap();
    let r32 = fitter.fit(&blobs32.data, init32).unwrap();

    assert_eq!(r32.labels, r64.labels);
    let b64 = r64.comm.bytes_of(sunway_kmeans::msg::OpKind::MinLoc);
    let b32 = r32.comm.bytes_of(sunway_kmeans::msg::OpKind::MinLoc);
    assert!(b64 > 0 && b32 > 0);
    assert_eq!(
        b32 * 2,
        b64,
        "packed u64 min-loc must be half the (f64,u64) pairs"
    );
}
