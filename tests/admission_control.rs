//! Property tests for the SLO-aware admission controller and the elastic
//! scaler as *pure* policies — no threads, channels or clocks, just
//! windows in and decisions out. These pin down the contracts the
//! event-driven dispatcher relies on:
//!
//! * the p99 predictor is monotone (in the quantile, and in sample scale);
//! * shedding never turns **on** unless the estimate is above the high
//!   watermark, and never turns **off** unless it is below the low one;
//! * between the watermarks the previous decision holds (hysteresis), so
//!   a replayed trace hovering in the dead band cannot flap;
//! * the scaler keeps the active shard count inside `[min, max]` under
//!   any pressure sequence.

use proptest::prelude::*;
use sunway_kmeans::sw_des::stats::Histogram;
use sunway_kmeans::swkm_serve::admission::predicted_p99_ns;
use sunway_kmeans::swkm_serve::{
    AdmissionConfig, AdmissionController, ElasticConfig, ElasticScaler, ScaleDecision,
};

fn window(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The predictor is monotone in the quantile: p50 ≤ p95 ≤ p99 on any
    /// window, and doubling every sample never lowers the p99.
    #[test]
    fn predicted_p99_is_monotone(
        samples in proptest::collection::vec(1u64..1_000_000, 1..200),
    ) {
        let w = window(&samples);
        let p50 = w.quantile(0.5);
        let p95 = w.quantile(0.95);
        let p99 = predicted_p99_ns(&w);
        prop_assert!(p50 <= p95 && p95 <= p99, "quantiles out of order: {p50} {p95} {p99}");

        let doubled: Vec<u64> = samples.iter().map(|s| s * 2).collect();
        let p99_doubled = predicted_p99_ns(&window(&doubled));
        prop_assert!(
            p99_doubled >= p99,
            "doubling samples lowered p99: {p99} -> {p99_doubled}"
        );
    }

    /// Along any window trace: shedding turns on only above the high
    /// watermark, turns off only below the low one, and holds otherwise.
    /// Together these say the controller *always* sheds above high and
    /// *never* sheds below low — with hysteresis in between.
    #[test]
    fn hysteresis_transitions_respect_the_watermarks(
        slo_us in 1u64..10_000,
        low in 0.3f64..0.8,
        spread in 0.05f64..0.5,
        trace in proptest::collection::vec(
            proptest::collection::vec(1u64..100_000_000, 0..64),
            1..40,
        ),
    ) {
        let slo = slo_us * 1_000;
        let config = AdmissionConfig {
            slo_p99_ns: slo,
            low_watermark: low,
            high_watermark: low + spread,
            min_window: 8,
            smoothing: 0.5,
        };
        let mut controller = AdmissionController::new(config);
        let mut previous = controller.shedding();
        for samples in &trace {
            let now = controller.observe_window(&window(samples));
            let estimate = controller.predicted_p99_ns();
            let slo = slo as f64;
            if estimate > config.high_watermark * slo {
                prop_assert!(now, "estimate {estimate} above high watermark but not shedding");
            } else if estimate < config.low_watermark * slo {
                prop_assert!(!now, "estimate {estimate} below low watermark but still shedding");
            } else {
                prop_assert_eq!(
                    now, previous,
                    "decision flipped inside the dead band (estimate {})", estimate
                );
            }
            previous = now;
        }
    }

    /// Windows smaller than `min_window` never move the estimate, so a
    /// trickle of stragglers cannot flip admission either way.
    #[test]
    fn small_windows_never_change_the_decision(
        samples in proptest::collection::vec(1u64..100_000_000, 1..8),
    ) {
        let mut controller =
            AdmissionController::new(AdmissionConfig::with_slo_p99_ns(500_000));
        let before = (controller.predicted_p99_ns(), controller.shedding());
        controller.observe_window(&window(&samples));
        prop_assert_eq!(
            (controller.predicted_p99_ns(), controller.shedding()),
            before
        );
    }

    /// The scaler never leaves `[min, max]` no matter what pressure
    /// sequence it observes, and a fixed pool never moves at all.
    #[test]
    fn scaler_stays_inside_its_bounds(
        min in 1usize..4,
        extra in 0usize..4,
        ticks in proptest::collection::vec((0usize..64, 0usize..8), 1..100),
    ) {
        let config = ElasticConfig::elastic(min, min + extra);
        let mut scaler = ElasticScaler::new(config);
        let mut active = min;
        for &(depth, busy) in &ticks {
            match scaler.tick(active, depth, 16, busy) {
                ScaleDecision::Up => active += 1,
                ScaleDecision::Down => active -= 1,
                ScaleDecision::Hold => {}
            }
            prop_assert!(
                (min..=min + extra).contains(&active),
                "active {} left [{}, {}]", active, min, min + extra
            );
        }

        let mut fixed = ElasticScaler::new(ElasticConfig::fixed(min));
        for &(depth, busy) in &ticks {
            prop_assert_eq!(fixed.tick(min, depth, 16, busy), ScaleDecision::Hold);
        }
    }
}

/// A replayed trace that hovers inside the dead band: after shedding
/// engages, identical mid-band windows must not flap the gate, and the
/// exact same trace replayed on a fresh controller makes the exact same
/// decisions (determinism).
#[test]
fn dead_band_trace_does_not_flap_and_replays_identically() {
    let config = AdmissionConfig {
        slo_p99_ns: 1_000_000, // 1 ms
        low_watermark: 0.6,
        high_watermark: 1.0,
        min_window: 8,
        smoothing: 1.0, // no EWMA: the estimate tracks each window exactly
    };
    // One hot window closes the gate; mid-band windows (~0.8×SLO) hover
    // between the watermarks for many ticks.
    let hot: Vec<u64> = vec![3_000_000; 16];
    let mid: Vec<u64> = vec![700_000; 16];
    let mut trace = vec![hot];
    trace.extend(std::iter::repeat_with(|| mid.clone()).take(20));

    let run = |trace: &[Vec<u64>]| -> Vec<bool> {
        let mut controller = AdmissionController::new(config);
        trace
            .iter()
            .map(|samples| controller.observe_window(&window(samples)))
            .collect()
    };

    let decisions = run(&trace);
    assert!(decisions[0], "the hot window must close the gate");
    assert!(
        decisions[1..].iter().all(|&shed| shed),
        "mid-band windows flapped the gate: {decisions:?}"
    );
    let transitions = decisions.windows(2).filter(|w| w[0] != w[1]).count();
    assert_eq!(transitions, 0, "hysteresis must prevent flapping");

    // Empty windows decay the estimate below the low watermark: re-open.
    let mut controller = AdmissionController::new(config);
    for samples in &trace {
        controller.observe_window(&window(samples));
    }
    let empty = Histogram::new();
    let mut reopened = false;
    for _ in 0..64 {
        if !controller.observe_window(&empty) {
            reopened = true;
            break;
        }
    }
    assert!(reopened, "idle decay must eventually re-open the gate");

    assert_eq!(run(&trace), run(&trace), "replay must be deterministic");
}
