//! Lightweight statistics helpers used by simulations and benchmarks.

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Numerically stable online mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy)]
pub struct OnlineMean {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// `Default` must agree with [`OnlineMean::new`]: a derived default would
/// start `min`/`max` at zero and corrupt the extrema of the first pushes.
impl Default for OnlineMean {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineMean {
    pub fn new() -> Self {
        OnlineMean {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; zero for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A power-of-two bucketed histogram for positive integer measurements
/// (bytes, nanoseconds). Bucket `i` covers `[2^i, 2^(i+1))`; bucket 0 also
/// catches zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            total: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.total += 1;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// Count of samples in the bucket containing `value`.
    pub fn bucket_count(&self, value: u64) -> u64 {
        self.buckets[Self::bucket_of(value)]
    }

    /// Fold another histogram into this one bucket-wise. Because buckets
    /// are fixed powers of two, merging per-worker histograms loses no
    /// precision relative to recording every sample centrally — which is
    /// what lets serving workers keep thread-local latency histograms and
    /// combine them only at snapshot time.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// `(lower bound, count)` for every non-empty bucket, ascending — the
    /// exporter view. Bucket 0 reports lower bound 0 (it also catches zero);
    /// bucket `i > 0` reports `2^i`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }

    /// Inclusive upper bound of the bucket whose lower bound is `lower`
    /// (as reported by [`Histogram::nonzero_buckets`]).
    pub fn bucket_upper_bound(lower: u64) -> u64 {
        let i = if lower == 0 {
            0
        } else {
            lower.trailing_zeros() as usize
        };
        if i >= 63 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }

    /// Interpolated `q`-quantile estimate, `q ∈ [0, 1]`: find the bucket
    /// holding the `⌈q·n⌉`-th sample and linearly interpolate between
    /// its bounds by the rank's position within the bucket. Much closer
    /// to the exact quantile than [`Histogram::quantile_upper_bound`]
    /// (which can overshoot by up to 2×) while still needing only the
    /// log₂ bucket counts. Returns `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).max(1.0);
        let mut seen = 0.0f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let cf = c as f64;
            if seen + cf >= target {
                // Bucket i covers [2^i, 2^(i+1)); bucket 0 also catches 0.
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = 2.0f64.powi(i as i32 + 1);
                let frac = ((target - seen) / cf).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
            seen += cf;
        }
        // Unreachable with a consistent total; fall back to the top.
        2.0f64.powi(64)
    }

    /// Upper bound `q`-quantile estimate from bucket boundaries,
    /// `q ∈ [0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn online_mean_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = OnlineMean::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn online_mean_default_tracks_extrema() {
        // Regression: a derived `Default` would start min/max at 0.0, so the
        // first push of 5.0 would leave min stuck at 0.0.
        let mut m = OnlineMean::default();
        m.push(5.0);
        assert_eq!(m.min(), 5.0);
        assert_eq!(m.max(), 5.0);
        m.push(-3.0);
        assert_eq!(m.min(), -3.0);
        assert_eq!(m.max(), 5.0);
        m.push(9.0);
        assert_eq!(m.min(), -3.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn nonzero_buckets_cover_all_samples() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 900] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 2), (4, 2), (512, 1)]);
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        assert_eq!(Histogram::bucket_upper_bound(0), 1);
        assert_eq!(Histogram::bucket_upper_bound(4), 7);
        assert_eq!(Histogram::bucket_upper_bound(512), 1023);
        assert_eq!(Histogram::bucket_upper_bound(1u64 << 63), u64::MAX);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        let mut m = OnlineMean::new();
        m.push(42.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_count(0), 2); // 0 and 1
        assert_eq!(h.bucket_count(2), 2); // 2 and 3
        assert_eq!(h.bucket_count(4), 1);
        assert_eq!(h.bucket_count(512), 1); // 1000 lives in [512, 1024)
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile_upper_bound(0.5), 7); // bucket [4,8)
        assert_eq!(h.quantile_upper_bound(1.0), (2u64 << 20) - 1);
        assert_eq!(Histogram::new().quantile_upper_bound(0.9), 0);
    }

    #[test]
    fn interpolated_quantiles_track_exact_quantiles() {
        // Uniform 1..=4096: the exact q-quantile is q·4096. The log₂
        // interpolation assumes samples spread evenly within each
        // bucket — exactly true for this distribution — so the estimate
        // is tight everywhere (and far tighter than the bucket upper
        // bound, which overshoots by up to 2×).
        let mut h = Histogram::new();
        for v in 1..=4096u64 {
            h.record(v);
        }
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
            let exact = q * 4096.0;
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.02, "q={q}: est {est} vs exact {exact}");
        }

        // A known bimodal distribution: 90 samples at 100ns, 10 at
        // ~1ms. p50 must sit in the low mode, p99 in the high mode.
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.50);
        assert!((64.0..128.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((524_288.0..2_097_152.0).contains(&p99), "p99 {p99}");

        // Degenerate inputs.
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
        let mut one = Histogram::new();
        one.record(0);
        assert!(one.quantile(0.99) <= 2.0);
    }

    #[test]
    fn interpolated_quantile_is_monotone_in_q() {
        let mut h = Histogram::new();
        for &v in &[1u64, 3, 3, 8, 20, 900, 901, 4000, 1 << 20] {
            h.record(v);
        }
        let mut prev = 0.0;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}");
            prev = v;
        }
    }

    #[test]
    fn histogram_merge_matches_central_recording() {
        let samples_a = [1u64, 4, 4, 900, 1 << 19];
        let samples_b = [0u64, 7, 63, 64, 1 << 30];
        let mut central = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in &samples_a {
            central.record(v);
            a.record(v);
        }
        for &v in &samples_b {
            central.record(v);
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), central.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile_upper_bound(q), central.quantile_upper_bound(q));
        }
        for &v in samples_a.iter().chain(&samples_b) {
            assert_eq!(a.bucket_count(v), central.bucket_count(v));
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before_count = h.count();
        h.merge(&Histogram::new());
        assert_eq!(h.count(), before_count);
        assert_eq!(h.bucket_count(42), 1);
    }
}
