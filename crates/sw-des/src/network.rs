//! Fat-tree network simulation: the TaihuLight interconnect as explicit
//! queueing resources.
//!
//! Topology (two-level fat tree, per the paper): every node owns a
//! bidirectional link onto its super-node's interconnection board; boards
//! connect through the central routing switch with a tapered up-link. A
//! message traverses, store-and-forward: source node link → (central
//! switch, only when crossing super-nodes) → destination node link. Each
//! stage is a FIFO [`crate::engine::Engine`] resource, so incast, bisection
//! contention and super-node tapering all emerge from queueing rather than
//! being assumed — this is what validates the analytic `CommClass`
//! bandwidths of `perf-model`.

use crate::engine::Engine;
use crate::resource::ResourceId;
use crate::time::SimTime;
use sw_arch::{MachineParams, NodeId};

/// A simulated allocation of `nodes` nodes on the fat tree.
pub struct FatTreeSim {
    engine: Engine,
    /// One bidirectional link per node (NIC + board port).
    node_links: Vec<ResourceId>,
    /// One tapered up-link per super-node toward the central switch.
    supernode_uplinks: Vec<ResourceId>,
    nodes_per_supernode: usize,
}

impl FatTreeSim {
    /// Build the topology for `nodes` nodes under `params`.
    pub fn new(params: &MachineParams, nodes: usize) -> Self {
        assert!(nodes > 0);
        let mut engine = Engine::new();
        let node_links = (0..nodes)
            .map(|i| engine.add_resource(format!("node{i}"), params.net_bw, params.net_lat_intra))
            .collect();
        let supernodes = nodes.div_ceil(params.nodes_per_supernode);
        let supernode_uplinks = (0..supernodes)
            .map(|s| {
                engine.add_resource(
                    format!("sn{s}-uplink"),
                    params.net_bw_inter_supernode,
                    params.net_lat_inter,
                )
            })
            .collect();
        FatTreeSim {
            engine,
            node_links,
            supernode_uplinks,
            nodes_per_supernode: params.nodes_per_supernode,
        }
    }

    fn supernode_of(&self, node: NodeId) -> usize {
        node.0 / self.nodes_per_supernode
    }

    /// Inject a message of `bytes` from `from` to `to`; `on_done` fires at
    /// delivery. Messages between distinct nodes traverse both node links
    /// (and the super-node up-links when crossing); a node-local message
    /// completes immediately.
    pub fn send(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        on_done: impl FnOnce(&mut Engine) + 'static,
    ) {
        assert!(from.0 < self.node_links.len(), "source out of allocation");
        assert!(
            to.0 < self.node_links.len(),
            "destination out of allocation"
        );
        if from == to {
            self.engine.schedule(SimTime::ZERO, on_done);
            return;
        }
        let src = self.node_links[from.0];
        let dst = self.node_links[to.0];
        let (sn_from, sn_to) = (self.supernode_of(from), self.supernode_of(to));
        if sn_from == sn_to {
            // src link → board → dst link (board modelled as non-blocking).
            self.engine.transfer(src, bytes, move |e| {
                e.transfer(dst, bytes, on_done);
            });
        } else {
            let up = self.supernode_uplinks[sn_from];
            let down = self.supernode_uplinks[sn_to];
            self.engine.transfer(src, bytes, move |e| {
                e.transfer(up, bytes, move |e| {
                    e.transfer(down, bytes, move |e| {
                        e.transfer(dst, bytes, on_done);
                    });
                });
            });
        }
    }

    /// Drain all queued traffic; returns the completion time.
    pub fn run(&mut self) -> SimTime {
        self.engine.run()
    }

    /// Access the underlying engine (statistics, scheduling).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Link resource of a node (for statistics).
    pub fn node_link(&self, node: NodeId) -> ResourceId {
        self.node_links[node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn params() -> MachineParams {
        MachineParams::taihulight()
    }

    #[test]
    fn single_message_latency_and_bandwidth() {
        let p = params();
        let mut net = FatTreeSim::new(&p, 4);
        let cell = Rc::new(Cell::new(SimTime::ZERO));
        let c = cell.clone();
        net.send(NodeId(0), NodeId(1), 16 << 20, move |e| c.set(e.now()));
        net.run();
        let done_at = cell.get();
        // Two store-and-forward hops at 16 GB/s + 2 latencies.
        let expected = 2.0 * ((16 << 20) as f64 / p.net_bw + p.net_lat_intra);
        assert!(
            (done_at.as_secs_f64() - expected).abs() / expected < 0.01,
            "{} vs {expected}",
            done_at.as_secs_f64()
        );
    }

    #[test]
    fn local_delivery_is_instant() {
        let mut net = FatTreeSim::new(&params(), 2);
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        net.send(NodeId(1), NodeId(1), 1 << 30, move |_| h.set(true));
        let end = net.run();
        assert!(hit.get());
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn incast_serialises_on_the_destination_link() {
        // 8 nodes all sending to node 0: the destination link is the
        // bottleneck, so total time ≈ 8 × (bytes / net_bw).
        let p = params();
        let mut net = FatTreeSim::new(&p, 9);
        let bytes = 8 << 20;
        for src in 1..=8u32 {
            net.send(NodeId(src as usize), NodeId(0), bytes, |_| {});
        }
        let end = net.run().as_secs_f64();
        let serial = 8.0 * bytes as f64 / p.net_bw;
        assert!(end > serial, "incast must serialise: {end} vs {serial}");
        assert!(end < serial * 1.3);
        // The destination link was busy ~the whole time.
        let stats = net.engine().resource_stats(net.node_link(NodeId(0)));
        assert_eq!(stats.transfers, 8);
    }

    #[test]
    fn crossing_supernodes_is_slower() {
        let p = params();
        // 512 nodes = 2 super-nodes.
        let time_for = |from: usize, to: usize| -> f64 {
            let mut net = FatTreeSim::new(&p, 512);
            let cell = Rc::new(Cell::new(SimTime::ZERO));
            let c = cell.clone();
            net.send(NodeId(from), NodeId(to), 64 << 20, move |e| c.set(e.now()));
            net.run();
            cell.get().as_secs_f64()
        };
        let intra = time_for(0, 200); // same super-node
        let inter = time_for(0, 300); // crosses to super-node 1
        assert!(
            inter > intra * 2.0,
            "tapered uplink must dominate: intra {intra}, inter {inter}"
        );
    }

    #[test]
    fn bisection_contention_on_the_uplink() {
        // Many pairs crossing the super-node boundary share one tapered
        // up-link; the same pairs inside a super-node don't contend.
        let p = params();
        let pairs = 16;
        let bytes = 4 << 20;

        let mut crossing = FatTreeSim::new(&p, 512);
        for i in 0..pairs {
            crossing.send(NodeId(i), NodeId(256 + i), bytes, |_| {});
        }
        let t_cross = crossing.run().as_secs_f64();

        let mut local = FatTreeSim::new(&p, 512);
        for i in 0..pairs {
            local.send(NodeId(i), NodeId(128 + i), bytes, |_| {});
        }
        let t_local = local.run().as_secs_f64();
        // Uplink carries pairs × bytes at the tapered rate.
        let uplink_floor = pairs as f64 * bytes as f64 / p.net_bw_inter_supernode;
        assert!(t_cross >= uplink_floor * 0.99);
        assert!(
            t_cross > 3.0 * t_local,
            "crossing {t_cross} vs local {t_local}"
        );
    }

    #[test]
    fn comm_class_bandwidths_match_simulated_behaviour() {
        // The analytic CommClass::bandwidth values used by perf-model are
        // exactly the rates the simulated links serve at: verify via
        // achieved throughput on a saturated link.
        use sw_arch::{CommClass, Machine};
        let p = params();
        let machine = Machine::taihulight(512);
        let mut net = FatTreeSim::new(&p, 512);
        for i in 1..32 {
            net.send(NodeId(i), NodeId(0), 1 << 20, |_| {});
        }
        let _ = net.run();
        let stats = *net.engine().resource_stats(net.node_link(NodeId(0)));
        let achieved = stats.busy_throughput();
        let class_bw = CommClass::IntraSupernode.bandwidth(&machine.params);
        assert!(
            (achieved - class_bw).abs() / class_bw < 0.05,
            "simulated {achieved} vs class {class_bw}"
        );
    }

    #[test]
    #[should_panic(expected = "out of allocation")]
    fn sending_outside_the_allocation_panics() {
        let mut net = FatTreeSim::new(&params(), 2);
        net.send(NodeId(0), NodeId(5), 1, |_| {});
    }
}
