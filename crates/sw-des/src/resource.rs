//! FIFO resources: bandwidth-limited servers with startup latency.

use crate::time::SimTime;

/// Handle to a resource registered with an [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub(crate) usize);

/// Aggregate statistics of one resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferStats {
    /// Number of transfers serviced (including zero-byte ones).
    pub transfers: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Total time the resource was busy.
    pub busy: SimTime,
    /// Total time requests spent waiting behind earlier requests.
    pub queued: SimTime,
}

impl TransferStats {
    /// Mean utilisation over `[0, horizon]`.
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / horizon.as_secs_f64()
    }

    /// Achieved throughput in bytes/s over the busy period.
    pub fn busy_throughput(&self) -> f64 {
        if self.busy == SimTime::ZERO {
            return 0.0;
        }
        self.bytes as f64 / self.busy.as_secs_f64()
    }
}

/// Internal state of a FIFO resource.
///
/// FIFO service means the completion time of a request issued at `now` is
/// fully determined by when the resource frees up, so no explicit queue data
/// structure is needed — only the `free_at` horizon.
pub(crate) struct ResourceState {
    name: String,
    /// Service rate in bytes per second.
    rate: f64,
    /// Startup latency charged to every request, in seconds.
    latency: f64,
    free_at: SimTime,
    stats: TransferStats,
}

impl ResourceState {
    pub(crate) fn new(name: String, rate: f64, latency: f64) -> Self {
        ResourceState {
            name,
            rate,
            latency,
            free_at: SimTime::ZERO,
            stats: TransferStats::default(),
        }
    }

    fn service_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(self.latency + bytes as f64 / self.rate)
    }

    /// Completion time of a request of `bytes` issued at `now`, without
    /// committing it.
    pub(crate) fn eta(&self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.free_at);
        start + self.service_time(bytes)
    }

    /// Commit a request of `bytes` at `now`; returns its completion time.
    pub(crate) fn enqueue(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.free_at);
        let service = self.service_time(bytes);
        let done = start + service;
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        self.stats.busy += service;
        self.stats.queued += start.saturating_sub(now);
        self.free_at = done;
        done
    }

    pub(crate) fn stats(&self) -> &TransferStats {
        &self.stats
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_includes_latency() {
        let r = ResourceState::new("r".into(), 1e9, 1e-6);
        // 1000 B at 1 GB/s = 1 µs, plus 1 µs latency.
        assert_eq!(r.service_time(1000), SimTime(2000));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut r = ResourceState::new("r".into(), 1e9, 0.0);
        let d1 = r.enqueue(SimTime::ZERO, 1000);
        let d2 = r.enqueue(SimTime::ZERO, 1000);
        assert_eq!(d1, SimTime(1000));
        assert_eq!(d2, SimTime(2000));
        assert_eq!(r.stats().queued, SimTime(1000));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut r = ResourceState::new("r".into(), 1e9, 0.0);
        r.enqueue(SimTime::ZERO, 1000);
        let d = r.enqueue(SimTime(5000), 1000);
        assert_eq!(d, SimTime(6000));
        assert_eq!(r.stats().queued, SimTime::ZERO);
    }

    #[test]
    fn utilisation_and_throughput() {
        let mut r = ResourceState::new("r".into(), 2e9, 0.0);
        r.enqueue(SimTime::ZERO, 2000); // busy 1 µs
        let s = *r.stats();
        assert!((s.utilisation(SimTime(2000)) - 0.5).abs() < 1e-9);
        assert!((s.busy_throughput() - 2e9).abs() < 1e3);
        assert_eq!(s.utilisation(SimTime::ZERO), 0.0);
        assert_eq!(TransferStats::default().busy_throughput(), 0.0);
    }
}
