//! The event calendar and execution loop.

use crate::resource::{ResourceId, ResourceState, TransferStats};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event (monotonically increasing sequence
/// number). Also the deterministic tie-breaker for same-time events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventId(u64);

type EventFn = Box<dyn FnOnce(&mut Engine)>;

/// Heap key: earliest time first, then insertion order.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Key(SimTime, EventId);

/// A deterministic discrete-event simulation engine.
///
/// ```
/// use sw_des::{Engine, SimTime};
///
/// let mut engine = Engine::new();
/// let dma = engine.add_resource("dma", 32.0e9, 1.0e-6);
/// engine.transfer(dma, 1 << 20, |_| {});
/// engine.transfer(dma, 1 << 20, |_| {});
/// let end = engine.run();
/// // Two 1 MiB transfers at 32 GB/s + 1 µs startup each, serviced FIFO.
/// assert!(end.as_secs_f64() > 2.0 * (1e-6 + (1 << 20) as f64 / 32.0e9) * 0.99);
/// ```
pub struct Engine {
    now: SimTime,
    next_id: u64,
    // BinaryHeap is a max-heap; Reverse turns it into the required min-heap.
    calendar: BinaryHeap<Reverse<Key>>,
    // Closures can't live inside the heap key, so they're parked here,
    // indexed by sequence number. The Vec<Option<..>> grows monotonically
    // within one run; `compact` trims it between runs.
    bodies: Vec<Option<EventFn>>,
    resources: Vec<ResourceState>,
    events_executed: u64,
}

impl Engine {
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            next_id: 0,
            calendar: BinaryHeap::new(),
            bodies: Vec::new(),
            resources: Vec::new(),
            events_executed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule(&mut self, delay: SimTime, f: impl FnOnce(&mut Engine) + 'static) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` at an absolute time (must not be in the simulated past).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Engine) + 'static) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past");
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.calendar.push(Reverse(Key(at, id)));
        let idx = id.0 as usize;
        if self.bodies.len() <= idx {
            self.bodies.resize_with(idx + 1, || None);
        }
        self.bodies[idx] = Some(Box::new(f));
        id
    }

    /// Register a FIFO resource with service `rate` (bytes/s) and per-request
    /// startup `latency` (s). Returns its handle.
    pub fn add_resource(&mut self, name: impl Into<String>, rate: f64, latency: f64) -> ResourceId {
        assert!(rate > 0.0, "resource rate must be positive");
        let id = ResourceId(self.resources.len());
        self.resources
            .push(ResourceState::new(name.into(), rate, latency));
        id
    }

    /// Request a transfer of `bytes` over `res`, invoking `on_done` at
    /// completion. The resource services requests in FIFO order: the
    /// transfer starts when the resource frees up and occupies it for
    /// `latency + bytes / rate`.
    pub fn transfer(
        &mut self,
        res: ResourceId,
        bytes: u64,
        on_done: impl FnOnce(&mut Engine) + 'static,
    ) {
        let now = self.now;
        let state = &mut self.resources[res.0];
        let done = state.enqueue(now, bytes);
        self.schedule_at(done, on_done);
    }

    /// Completion time a transfer *would* have, without enqueueing it.
    pub fn transfer_eta(&self, res: ResourceId, bytes: u64) -> SimTime {
        self.resources[res.0].eta(self.now, bytes)
    }

    /// Statistics for a resource.
    pub fn resource_stats(&self, res: ResourceId) -> &TransferStats {
        self.resources[res.0].stats()
    }

    /// Name a resource was registered under.
    pub fn resource_name(&self, res: ResourceId) -> &str {
        self.resources[res.0].name()
    }

    /// Run until the calendar is empty; returns the final time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime(u64::MAX))
    }

    /// Run until the calendar is empty or the next event is after `deadline`;
    /// returns the time reached.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(Reverse(Key(at, id))) =
            self.calendar.peek().map(|r| Reverse(Key(r.0 .0, r.0 .1)))
        {
            if at > deadline {
                break;
            }
            self.calendar.pop();
            let body = self.bodies[id.0 as usize]
                .take()
                .expect("event body executed twice");
            debug_assert!(at >= self.now, "calendar went backwards");
            self.now = at;
            self.events_executed += 1;
            body(self);
        }
        if self.calendar.is_empty() {
            self.bodies.clear();
        }
        self.now
    }

    /// True if no events remain.
    pub fn idle(&self) -> bool {
        self.calendar.is_empty()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for (delay, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = log.clone();
            e.schedule(SimTime(delay), move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(e.events_executed(), 3);
    }

    #[test]
    fn same_time_events_run_in_scheduling_order() {
        let mut e = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..10 {
            let log = log.clone();
            e.schedule(SimTime(5), move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = Engine::new();
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        e.schedule(SimTime(1), move |eng| {
            *h.borrow_mut() += 1;
            let h2 = h.clone();
            eng.schedule(SimTime(1), move |_| {
                *h2.borrow_mut() += 1;
            });
        });
        let end = e.run();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(end, SimTime(2));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new();
        let hits = Rc::new(RefCell::new(0u32));
        for t in [10u64, 20, 30] {
            let h = hits.clone();
            e.schedule(SimTime(t), move |_| *h.borrow_mut() += 1);
        }
        e.run_until(SimTime(20));
        assert_eq!(*hits.borrow(), 2);
        assert!(!e.idle());
        e.run();
        assert_eq!(*hits.borrow(), 3);
        assert!(e.idle());
    }

    #[test]
    fn fifo_resource_serialises_transfers() {
        let mut e = Engine::new();
        // 1 GB/s, zero latency: 1000 bytes take 1 µs.
        let r = e.add_resource("link", 1e9, 0.0);
        let done = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let d = done.clone();
            e.transfer(r, 1000, move |eng| d.borrow_mut().push(eng.now()));
        }
        e.run();
        let times = done.borrow();
        assert_eq!(times.len(), 3);
        assert_eq!(times[0], SimTime(1000));
        assert_eq!(times[1], SimTime(2000));
        assert_eq!(times[2], SimTime(3000));
    }

    #[test]
    fn resource_latency_is_per_request() {
        let mut e = Engine::new();
        let r = e.add_resource("dma", 1e9, 1e-6); // 1 µs startup
        let end_time = Rc::new(RefCell::new(SimTime::ZERO));
        let et = end_time.clone();
        e.transfer(r, 0, move |eng| *et.borrow_mut() = eng.now());
        e.run();
        assert_eq!(*end_time.borrow(), SimTime(1000));
    }

    #[test]
    fn stats_accumulate() {
        let mut e = Engine::new();
        let r = e.add_resource("net", 1e9, 0.0);
        e.transfer(r, 500, |_| {});
        e.transfer(r, 1500, |_| {});
        e.run();
        let s = e.resource_stats(r);
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes, 2000);
        assert_eq!(s.busy, SimTime(2000));
        assert_eq!(e.resource_name(r), "net");
    }

    #[test]
    fn eta_matches_actual_completion() {
        let mut e = Engine::new();
        let r = e.add_resource("link", 2e9, 5e-7);
        let eta = e.transfer_eta(r, 4000);
        let done = Rc::new(RefCell::new(SimTime::ZERO));
        let d = done.clone();
        e.transfer(r, 4000, move |eng| *d.borrow_mut() = eng.now());
        e.run();
        assert_eq!(*done.borrow(), eta);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new();
        e.schedule(SimTime(10), |eng| {
            eng.schedule_at(SimTime(5), |_| {});
        });
        e.run();
    }
}
