//! Fixed-point simulated time.
//!
//! The calendar orders events by time; using integer nanoseconds makes that
//! ordering total and platform-independent, where `f64` timestamps would
//! accumulate rounding differences between accumulation orders.

use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Convert a duration in seconds to simulated nanoseconds, rounding to
    /// the nearest nanosecond (never truncating a positive duration to zero
    /// unless it is below half a nanosecond).
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid duration: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// This time as seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Nanosecond count.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= 1.0 {
            write!(f, "{secs:.6} s")
        } else if secs >= 1e-3 {
            write!(f, "{:.3} ms", secs * 1e3)
        } else if secs >= 1e-6 {
            write!(f, "{:.3} µs", secs * 1e6)
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sub_nanosecond_durations_round() {
        assert_eq!(SimTime::from_secs_f64(0.4e-9), SimTime(0));
        assert_eq!(SimTime::from_secs_f64(0.6e-9), SimTime(1));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(100);
        let b = SimTime(40);
        assert_eq!(a + b, SimTime(140));
        assert_eq!(a - b, SimTime(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime(140));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn checked_sub_panics_on_underflow() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_secs_f64(2.0).to_string(), "2.000000 s");
        assert_eq!(SimTime::from_secs_f64(2e-3).to_string(), "2.000 ms");
        assert_eq!(SimTime::from_secs_f64(2e-6).to_string(), "2.000 µs");
        assert_eq!(SimTime(5).to_string(), "5 ns");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime(3), SimTime(1), SimTime(2)];
        v.sort();
        assert_eq!(v, vec![SimTime(1), SimTime(2), SimTime(3)]);
    }
}
