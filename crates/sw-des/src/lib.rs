//! A small deterministic discrete-event simulation (DES) engine with
//! bandwidth-shared resources.
//!
//! The analytic cost model in `perf-model` prices each phase of a k-means
//! iteration with closed-form formulas. Those formulas assume ideal FIFO
//! pipelining of DMA transfers, register-bus hops and network messages. This
//! crate provides the machinery to *check* that assumption: resources with a
//! service rate and startup latency, an event calendar, and statistics.
//! Contention effects (e.g. 64 CPEs hammering one CG's DMA engine) emerge
//! from the queueing rather than being hand-waved.
//!
//! Design notes:
//! * Time is a fixed-point nanosecond counter ([`SimTime`]), so simulations
//!   are exactly reproducible — no floating-point drift in the calendar.
//! * Events are boxed `FnOnce(&mut Engine)` closures ordered by
//!   `(time, sequence)`; ties resolve in scheduling order, which makes runs
//!   deterministic.
//! * A [`Resource`] is a FIFO server: a transfer of `b` bytes occupies it for
//!   `latency + b / rate`. Completion events re-enter the calendar.

pub mod engine;
pub mod network;
pub mod pipeline;
pub mod resource;
pub mod stats;
pub mod time;

pub use engine::{Engine, EventId};
pub use network::FatTreeSim;
pub use pipeline::{simulate as simulate_pipeline, PipelineConfig, PipelineResult};
pub use resource::{ResourceId, TransferStats};
pub use stats::{Counter, Histogram, OnlineMean};
pub use time::SimTime;
