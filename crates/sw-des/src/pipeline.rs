//! Double-buffered DMA/compute pipeline simulation — one CPE's view of the
//! Level-3 Assign loop.
//!
//! The cost model prices an iteration as `max(compute, read) + comm`,
//! assuming the double-buffered LDM perfectly overlaps DMA with the
//! distance kernel. This module simulates the actual pipeline — two tile
//! buffers, a FIFO DMA engine, a serial compute unit, and the real
//! dependency structure (compute tile `i` needs fetch `i` done; fetch
//! `i+2` needs buffer `i` freed, i.e. compute `i` done) — so the overlap
//! assumption is *checked*, including its failure mode (tiny tiles where
//! DMA startup latency defeats the overlap).

use crate::engine::Engine;
use std::cell::RefCell;
use std::rc::Rc;

/// One pipelined tile loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Sample tiles to stream.
    pub tiles: usize,
    /// DMA bytes per tile.
    pub tile_bytes: u64,
    /// Compute seconds per tile.
    pub compute_per_tile: f64,
    /// DMA bandwidth (bytes/s) and startup latency (s).
    pub dma_bw: f64,
    pub dma_lat: f64,
    /// LDM tile buffers available (2 = classic double buffering).
    pub buffers: usize,
}

/// Simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineResult {
    /// Wall time of the whole loop.
    pub total: f64,
    /// Seconds the DMA engine was busy.
    pub dma_busy: f64,
    /// Seconds the compute unit was busy.
    pub compute_busy: f64,
}

impl PipelineResult {
    /// The ideal fully-overlapped lower bound the analytic model assumes.
    pub fn ideal(&self) -> f64 {
        self.dma_busy.max(self.compute_busy)
    }

    /// Fraction of wall time lost to imperfect overlap.
    pub fn overlap_loss(&self) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        (self.total - self.ideal()) / self.total
    }
}

/// Run the pipeline to completion.
pub fn simulate(cfg: &PipelineConfig) -> PipelineResult {
    assert!(cfg.buffers >= 1, "need at least one buffer");
    assert!(cfg.tiles >= 1);
    let mut engine = Engine::new();
    let dma = engine.add_resource("dma", cfg.dma_bw, cfg.dma_lat);
    // The compute unit is modelled as a resource serving nanoseconds:
    // rate 1e9 "bytes"/s, payload = compute time in nanoseconds.
    let compute = engine.add_resource("compute", 1e9, 0.0);

    struct State {
        next_fetch: usize,
        tiles: usize,
        tile_bytes: u64,
        compute_secs: f64,
        dma: crate::resource::ResourceId,
        compute: crate::resource::ResourceId,
    }
    let state = Rc::new(RefCell::new(State {
        next_fetch: 0,
        tiles: cfg.tiles,
        tile_bytes: cfg.tile_bytes,
        compute_secs: cfg.compute_per_tile.max(0.0),
        dma,
        compute,
    }));

    fn issue_fetch(engine: &mut Engine, state: Rc<RefCell<State>>) {
        let (dma, bytes) = {
            let mut s = state.borrow_mut();
            if s.next_fetch >= s.tiles {
                return;
            }
            s.next_fetch += 1;
            (s.dma, s.tile_bytes)
        };
        let st = state.clone();
        engine.transfer(dma, bytes, move |e| {
            // Fetch complete: enqueue this tile's compute. The compute
            // resource is FIFO, so tiles compute in order.
            let (compute, secs) = {
                let s = st.borrow();
                (s.compute, s.compute_secs)
            };
            let st2 = st.clone();
            e.transfer_scaled_compute(compute, secs, move |e2| {
                // Compute done: its buffer frees — issue the next fetch.
                issue_fetch(e2, st2);
            });
        });
    }

    // Prime the pipeline with as many fetches as there are buffers.
    for _ in 0..cfg.buffers.min(cfg.tiles) {
        issue_fetch(&mut engine, state.clone());
    }
    let end = engine.run();
    let dma_stats = engine.resource_stats(dma);
    let compute_stats = engine.resource_stats(compute);
    PipelineResult {
        total: end.as_secs_f64(),
        dma_busy: dma_stats.busy.as_secs_f64(),
        compute_busy: compute_stats.busy.as_secs_f64(),
    }
}

impl Engine {
    /// Occupy `res` for `secs` seconds of work (compute modelling). The
    /// resource must be registered at rate 1e9 "bytes"/s, so a payload of
    /// `secs·1e9` occupies it for exactly `secs` seconds at nanosecond
    /// granularity.
    pub(crate) fn transfer_scaled_compute(
        &mut self,
        res: crate::resource::ResourceId,
        secs: f64,
        on_done: impl FnOnce(&mut Engine) + 'static,
    ) {
        self.transfer(res, (secs.max(0.0) * 1e9).round() as u64, on_done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(tiles: usize, tile_bytes: u64, compute: f64) -> PipelineConfig {
        PipelineConfig {
            tiles,
            tile_bytes,
            compute_per_tile: compute,
            dma_bw: 0.5e9, // per-CPE DMA share
            dma_lat: 1e-6,
            buffers: 2,
        }
    }

    #[test]
    fn compute_bound_pipeline_hides_dma() {
        // Compute 10× slower than fetch: wall ≈ first fetch + all compute.
        let c = cfg(100, 64 * 1024, 10.0 * (64.0 * 1024.0) / 0.5e9);
        let r = simulate(&c);
        assert!(r.compute_busy > r.dma_busy);
        assert!(
            r.overlap_loss() < 0.02,
            "overlap loss {:.3} (total {}, ideal {})",
            r.overlap_loss(),
            r.total,
            r.ideal()
        );
    }

    #[test]
    fn dma_bound_pipeline_hides_compute() {
        let c = cfg(100, 1 << 20, 1e-5);
        let r = simulate(&c);
        assert!(r.dma_busy > r.compute_busy);
        assert!(r.overlap_loss() < 0.02, "loss {:.3}", r.overlap_loss());
    }

    #[test]
    fn balanced_pipeline_still_overlaps_well() {
        let per_tile = (64.0 * 1024.0) / 0.5e9;
        let c = cfg(200, 64 * 1024, per_tile);
        let r = simulate(&c);
        // max(compute, read) is within a few percent of simulated truth —
        // the assumption CostBreakdown::total makes.
        assert!(r.overlap_loss() < 0.05, "loss {:.3}", r.overlap_loss());
    }

    #[test]
    fn single_buffer_serialises() {
        // Without double buffering there is no overlap: wall ≈ dma + compute.
        let per_tile = (64.0 * 1024.0) / 0.5e9;
        let mut c = cfg(50, 64 * 1024, per_tile);
        c.buffers = 1;
        let r = simulate(&c);
        let serial = r.dma_busy + r.compute_busy;
        assert!(
            (r.total - serial).abs() / serial < 0.02,
            "single buffer must serialise: {} vs {serial}",
            r.total
        );
        assert!(r.overlap_loss() > 0.3);
    }

    #[test]
    fn tiny_tiles_pay_latency() {
        // 64-byte tiles: DMA startup dominates and the overlap assumption
        // under-predicts — the failure mode the model's tile sizes avoid.
        let c = cfg(1_000, 64, 64.0 / 0.5e9);
        let r = simulate(&c);
        // Latency term: 1 µs per fetch ≫ 0.128 µs transfer.
        assert!(r.dma_busy > 1_000.0 * 1e-6 * 0.99);
        assert!(r.total >= r.dma_busy * 0.99);
    }

    #[test]
    fn one_tile_degenerates() {
        let c = cfg(1, 1 << 20, 0.001);
        let r = simulate(&c);
        let expected = 1e-6 + (1 << 20) as f64 / 0.5e9 + 0.001;
        assert!((r.total - expected).abs() / expected < 0.01);
    }
}
