//! Machine model of the SW26010 many-core processor and the Sunway
//! TaihuLight system topology.
//!
//! The SC'18 hierarchical k-means design is inseparable from the hardware it
//! targets: the partition levels map one-to-one onto the hardware hierarchy.
//! This crate captures that hierarchy as plain data so that the algorithm
//! crates (`hier-kmeans`, `perf-model`) can reason about it without any
//! real Sunway hardware:
//!
//! * [`params::MachineParams`] — the published physical constants (LDM size,
//!   DMA / register-communication / network bandwidths, clock frequency).
//! * [`ids`] — strongly-typed identifiers for CPEs, core groups (CGs), nodes
//!   and super-nodes, plus the rank arithmetic between them.
//! * [`ldm`] — the 64 KB user-managed scratchpad of each CPE, modelled as a
//!   budget allocator so layout plans can be *checked*, not assumed.
//! * [`cg`] — the 8×8 CPE mesh with its row/column register-communication
//!   buses, including the step counts of mesh-based reductions.
//! * [`machine`] — the whole system: nodes of 4 CGs, super-nodes of 256
//!   nodes, a central-switch fat tree above them, and communication-class
//!   queries between any two CPEs.
//! * [`placement`] — mapping logical computation units (CG groups, CPE
//!   groups) onto physical resources; topology-aware placement keeps a CG
//!   group inside one super-node whenever it fits.
//!
//! Everything is deterministic and `Copy`-friendly: the model is consumed by
//! both the analytic performance model and the discrete-event simulator.

pub mod cg;
pub mod ids;
pub mod ldm;
pub mod machine;
pub mod params;
pub mod placement;

pub use cg::{CoreGroup, MeshCoord, ReductionSchedule};
pub use ids::{CgId, CpeId, GlobalCpe, NodeId, Rank, SupernodeId};
pub use ldm::{LdmBudget, LdmError, LdmLayout, LdmRegion};
pub use machine::{CommClass, Machine, MachineConfig};
pub use params::MachineParams;
pub use placement::{CgGroupPlacement, PlacementError, PlacementPolicy};
