//! Placement of logical computation units onto physical core groups.
//!
//! Level 3 organises CGs into *CG groups* of `m'_group` members that jointly
//! hold the k centroids; every sample is broadcast to all members of its
//! group, so intra-group traffic dominates. The paper notes that a CG group
//! should be placed inside one super-node whenever possible. This module
//! implements both that topology-aware policy and a naive round-robin
//! scatter, so the benefit can be measured (an ablation the paper asserts but
//! does not plot).

use crate::ids::CgId;
use crate::machine::{CommClass, Machine};
use serde::{Deserialize, Serialize};

/// How logical CG groups are laid out on physical CGs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Consecutive CGs form a group: a group of `g` CGs spans
    /// `ceil(g / cgs_per_node)` adjacent nodes, staying inside one super-node
    /// whenever the group is small enough. This is the paper's recommended
    /// layout.
    TopologyAware,
    /// CG `i` of group `j` is placed at physical CG `i * n_groups + j`:
    /// members of one group are scattered as far apart as possible. Used as
    /// the ablation baseline.
    RoundRobinScatter,
}

/// Error produced when a requested grouping cannot be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// `group_size * n_groups` exceeds the CGs available in the allocation.
    NotEnoughCgs { requested: usize, available: usize },
    /// Group size of zero or group count of zero.
    EmptyGrouping,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NotEnoughCgs {
                requested,
                available,
            } => write!(
                f,
                "placement needs {requested} CGs but the allocation has {available}"
            ),
            PlacementError::EmptyGrouping => write!(f, "group size and count must be non-zero"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A concrete assignment of every CG group to physical CGs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgGroupPlacement {
    /// `groups[g]` lists the physical CGs of logical group `g`, in member
    /// order (member 0 holds the first centroid shard, etc.).
    groups: Vec<Vec<CgId>>,
    policy: PlacementPolicy,
}

impl CgGroupPlacement {
    /// Place `n_groups` groups of `group_size` CGs each on `machine`.
    pub fn new(
        machine: &Machine,
        n_groups: usize,
        group_size: usize,
        policy: PlacementPolicy,
    ) -> Result<Self, PlacementError> {
        if n_groups == 0 || group_size == 0 {
            return Err(PlacementError::EmptyGrouping);
        }
        let needed = n_groups * group_size;
        let available = machine.total_cgs();
        if needed > available {
            return Err(PlacementError::NotEnoughCgs {
                requested: needed,
                available,
            });
        }
        let groups = match policy {
            PlacementPolicy::TopologyAware => (0..n_groups)
                .map(|g| (0..group_size).map(|i| CgId(g * group_size + i)).collect())
                .collect(),
            PlacementPolicy::RoundRobinScatter => (0..n_groups)
                .map(|g| (0..group_size).map(|i| CgId(i * n_groups + g)).collect())
                .collect(),
        };
        Ok(CgGroupPlacement { groups, policy })
    }

    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    pub fn group_size(&self) -> usize {
        self.groups[0].len()
    }

    /// Physical CGs of group `g`.
    pub fn group(&self, g: usize) -> &[CgId] {
        &self.groups[g]
    }

    /// Iterate over all groups.
    pub fn groups(&self) -> impl Iterator<Item = &[CgId]> {
        self.groups.iter().map(|g| g.as_slice())
    }

    /// The worst communication class *within* any single group — the price
    /// of the per-sample argmin merge in Level 3.
    pub fn worst_intra_group_class(&self, machine: &Machine) -> CommClass {
        self.groups
            .iter()
            .map(|g| machine.worst_comm_class(g))
            .max()
            .unwrap_or(CommClass::IntraCg)
    }

    /// The worst communication class *across* groups — the price of the
    /// global centroid AllReduce.
    pub fn worst_inter_group_class(&self, machine: &Machine) -> CommClass {
        // Representatives: member 0 of each group performs the global stage.
        let reps: Vec<CgId> = self.groups.iter().map(|g| g[0]).collect();
        machine.worst_comm_class(&reps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_aware_groups_are_contiguous() {
        let m = Machine::taihulight(8); // 32 CGs
        let p = CgGroupPlacement::new(&m, 4, 8, PlacementPolicy::TopologyAware).unwrap();
        assert_eq!(p.n_groups(), 4);
        assert_eq!(p.group(0), &[0, 1, 2, 3, 4, 5, 6, 7].map(CgId));
        assert_eq!(p.group(3)[0], CgId(24));
    }

    #[test]
    fn scatter_groups_interleave() {
        let m = Machine::taihulight(8);
        let p = CgGroupPlacement::new(&m, 4, 8, PlacementPolicy::RoundRobinScatter).unwrap();
        assert_eq!(p.group(0)[0], CgId(0));
        assert_eq!(p.group(0)[1], CgId(4));
        assert_eq!(p.group(1)[0], CgId(1));
    }

    #[test]
    fn every_cg_used_at_most_once() {
        let m = Machine::taihulight(16); // 64 CGs
        for policy in [
            PlacementPolicy::TopologyAware,
            PlacementPolicy::RoundRobinScatter,
        ] {
            let p = CgGroupPlacement::new(&m, 8, 8, policy).unwrap();
            let mut seen = std::collections::HashSet::new();
            for g in p.groups() {
                for &cg in g {
                    assert!(seen.insert(cg), "CG {cg} placed twice under {policy:?}");
                    assert!(cg.0 < m.total_cgs());
                }
            }
            assert_eq!(seen.len(), 64);
        }
    }

    #[test]
    fn oversubscription_is_rejected() {
        let m = Machine::taihulight(1); // 4 CGs
        let err = CgGroupPlacement::new(&m, 2, 4, PlacementPolicy::TopologyAware).unwrap_err();
        assert_eq!(
            err,
            PlacementError::NotEnoughCgs {
                requested: 8,
                available: 4
            }
        );
        assert!(CgGroupPlacement::new(&m, 0, 4, PlacementPolicy::TopologyAware).is_err());
    }

    #[test]
    fn topology_aware_beats_scatter_on_intra_group_class() {
        // 512 nodes = 2 super-nodes = 2,048 CGs. Groups of 8 CGs (2 nodes).
        let m = Machine::taihulight(512);
        let aware = CgGroupPlacement::new(&m, 256, 8, PlacementPolicy::TopologyAware).unwrap();
        let scatter =
            CgGroupPlacement::new(&m, 256, 8, PlacementPolicy::RoundRobinScatter).unwrap();
        // Contiguous groups of 2 nodes never leave a super-node here.
        assert_eq!(aware.worst_intra_group_class(&m), CommClass::IntraSupernode);
        // Scattered members are ~256 groups apart: guaranteed to cross.
        assert_eq!(
            scatter.worst_intra_group_class(&m),
            CommClass::InterSupernode
        );
    }

    #[test]
    fn inter_group_class_reflects_allocation_size() {
        let small = Machine::taihulight(4);
        let p = CgGroupPlacement::new(&small, 4, 4, PlacementPolicy::TopologyAware).unwrap();
        assert!(p.worst_inter_group_class(&small) <= CommClass::IntraSupernode);
    }
}
