//! The 64 KB Local Directive Memory (LDM / scratchpad) of a CPE, modelled as
//! an explicit budget allocator.
//!
//! On the real machine the LDM is a user-controlled fast buffer: nothing
//! spills automatically, and a layout that does not fit simply cannot run.
//! The paper's feasibility constraints (C1–C3 and their primed variants) are
//! statements about what fits in this budget. We model it as a named-region
//! allocator so execution plans are *validated* against it and an oversized
//! plan produces a typed error listing exactly which region overflowed —
//! never a silently wrong partition.

use crate::params::MachineParams;

/// One named allocation inside the LDM budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdmRegion {
    /// Human-readable purpose, e.g. `"sample"`, `"centroids"`, `"accumulators"`.
    pub label: String,
    /// Size in bytes.
    pub bytes: usize,
}

/// Error returned when a requested layout exceeds the scratchpad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdmError {
    /// The region whose allocation failed.
    pub region: LdmRegion,
    /// Bytes already committed before the failing request.
    pub used: usize,
    /// Total capacity in bytes.
    pub capacity: usize,
}

impl std::fmt::Display for LdmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LDM overflow: region `{}` needs {} B but only {} of {} B remain",
            self.region.label,
            self.region.bytes,
            self.capacity.saturating_sub(self.used),
            self.capacity
        )
    }
}

impl std::error::Error for LdmError {}

/// A running allocation against one CPE's scratchpad capacity.
#[derive(Debug, Clone)]
pub struct LdmBudget {
    capacity: usize,
    regions: Vec<LdmRegion>,
    used: usize,
}

impl LdmBudget {
    /// Budget for one CPE of the given machine.
    pub fn new(params: &MachineParams) -> Self {
        Self::with_capacity(params.ldm_bytes)
    }

    /// Budget with an explicit capacity in bytes (for ablations).
    pub fn with_capacity(capacity: usize) -> Self {
        LdmBudget {
            capacity,
            regions: Vec::new(),
            used: 0,
        }
    }

    /// Reserve `bytes` for `label`, failing if the scratchpad would overflow.
    pub fn alloc(&mut self, label: impl Into<String>, bytes: usize) -> Result<(), LdmError> {
        let region = LdmRegion {
            label: label.into(),
            bytes,
        };
        if self.used + bytes > self.capacity {
            return Err(LdmError {
                region,
                used: self.used,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.regions.push(region);
        Ok(())
    }

    /// Reserve space for `count` elements of `elem_bytes` bytes each.
    pub fn alloc_elems(
        &mut self,
        label: impl Into<String>,
        count: usize,
        elem_bytes: usize,
    ) -> Result<(), LdmError> {
        self.alloc(label, count * elem_bytes)
    }

    /// Bytes committed so far.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.capacity - self.used
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fraction of the scratchpad committed, in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        self.used as f64 / self.capacity as f64
    }

    /// Freeze into an immutable layout description.
    pub fn finish(self) -> LdmLayout {
        LdmLayout {
            capacity: self.capacity,
            regions: self.regions,
            used: self.used,
        }
    }
}

/// A validated, immutable scratchpad layout: the proof that a plan fits.
#[derive(Debug, Clone)]
pub struct LdmLayout {
    capacity: usize,
    regions: Vec<LdmRegion>,
    used: usize,
}

impl LdmLayout {
    pub fn regions(&self) -> &[LdmRegion] {
        &self.regions
    }

    pub fn used(&self) -> usize {
        self.used
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Size in bytes of the region with the given label, if present.
    pub fn region_bytes(&self, label: &str) -> Option<usize> {
        self.regions
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.bytes)
    }
}

impl std::fmt::Display for LdmLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "LDM layout ({}/{} B):", self.used, self.capacity)?;
        for r in &self.regions {
            writeln!(f, "  {:<16} {:>8} B", r.label, r.bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_within_capacity_succeeds() {
        let mut b = LdmBudget::with_capacity(100);
        b.alloc("a", 60).unwrap();
        b.alloc("b", 40).unwrap();
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.utilisation(), 1.0);
    }

    #[test]
    fn overflow_is_a_typed_error() {
        let mut b = LdmBudget::with_capacity(100);
        b.alloc("a", 60).unwrap();
        let err = b.alloc("big", 41).unwrap_err();
        assert_eq!(err.region.label, "big");
        assert_eq!(err.used, 60);
        assert_eq!(err.capacity, 100);
        // Failed allocation must not corrupt the budget.
        assert_eq!(b.used(), 60);
        b.alloc("fits", 40).unwrap();
    }

    #[test]
    fn element_allocation_uses_element_size() {
        let params = MachineParams::taihulight();
        let mut b = LdmBudget::new(&params);
        // 16384 f32s fill the 64 KB scratchpad exactly.
        b.alloc_elems("all", 16384, 4).unwrap();
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn layout_reports_regions() {
        let mut b = LdmBudget::with_capacity(1000);
        b.alloc("sample", 400).unwrap();
        b.alloc("centroids", 500).unwrap();
        let layout = b.finish();
        assert_eq!(layout.region_bytes("sample"), Some(400));
        assert_eq!(layout.region_bytes("centroids"), Some(500));
        assert_eq!(layout.region_bytes("missing"), None);
        assert_eq!(layout.used(), 900);
        let text = layout.to_string();
        assert!(text.contains("sample"));
        assert!(text.contains("centroids"));
    }

    #[test]
    fn display_of_error_mentions_label_and_remaining() {
        let mut b = LdmBudget::with_capacity(10);
        let err = b.alloc("huge", 11).unwrap_err();
        let s = err.to_string();
        assert!(s.contains("huge"));
        assert!(s.contains("11"));
    }
}
