//! Strongly-typed identifiers for every level of the hardware hierarchy.
//!
//! The partition algorithms juggle four different index spaces at once
//! (global CPE rank, CPE-within-CG, CG-within-machine, node-within-machine);
//! newtypes keep them from being mixed up silently. All ids are dense
//! zero-based indices.

use serde::{Deserialize, Serialize};

/// A logical SPMD rank (what MPI would call a rank). Which physical resource
/// a rank denotes depends on the execution plan: Level 1/2 plans rank CPEs,
/// Level 3 plans rank CGs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rank(pub usize);

/// Index of a CPE within its core group: `0..64`, laid out row-major on the
/// 8×8 mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpeId(pub usize);

/// Global index of a core group across the whole machine:
/// `0..nodes * cgs_per_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CgId(pub usize);

/// Global index of a node (one SW26010 processor): `0..nodes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Global index of a super-node (256 nodes sharing one interconnection
/// board).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SupernodeId(pub usize);

/// Fully-resolved physical coordinates of one CPE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalCpe {
    pub node: NodeId,
    /// Core group within the node: `0..4`.
    pub cg_in_node: usize,
    /// CPE within the core group: `0..64`.
    pub cpe: CpeId,
}

impl GlobalCpe {
    /// Global CG index given the number of CGs per node.
    pub fn cg(&self, cgs_per_node: usize) -> CgId {
        CgId(self.node.0 * cgs_per_node + self.cg_in_node)
    }

    /// Flat global CPE rank given the machine shape.
    pub fn flat(&self, cgs_per_node: usize, cpes_per_cg: usize) -> usize {
        (self.node.0 * cgs_per_node + self.cg_in_node) * cpes_per_cg + self.cpe.0
    }
}

impl CgId {
    /// The node this CG lives on.
    pub fn node(&self, cgs_per_node: usize) -> NodeId {
        NodeId(self.0 / cgs_per_node)
    }

    /// Index of this CG within its node.
    pub fn cg_in_node(&self, cgs_per_node: usize) -> usize {
        self.0 % cgs_per_node
    }
}

impl NodeId {
    /// The super-node this node belongs to.
    pub fn supernode(&self, nodes_per_supernode: usize) -> SupernodeId {
        SupernodeId(self.0 / nodes_per_supernode)
    }
}

macro_rules! display_id {
    ($t:ty, $prefix:literal) => {
        impl std::fmt::Display for $t {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl From<usize> for $t {
            fn from(v: usize) -> Self {
                Self(v)
            }
        }
    };
}

display_id!(Rank, "rank");
display_id!(CpeId, "cpe");
display_id!(CgId, "cg");
display_id!(NodeId, "node");
display_id!(SupernodeId, "sn");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_node_arithmetic() {
        // CG 9 with 4 CGs per node is CG 1 of node 2.
        let cg = CgId(9);
        assert_eq!(cg.node(4), NodeId(2));
        assert_eq!(cg.cg_in_node(4), 1);
    }

    #[test]
    fn supernode_arithmetic() {
        assert_eq!(NodeId(0).supernode(256), SupernodeId(0));
        assert_eq!(NodeId(255).supernode(256), SupernodeId(0));
        assert_eq!(NodeId(256).supernode(256), SupernodeId(1));
        assert_eq!(NodeId(4095).supernode(256), SupernodeId(15));
    }

    #[test]
    fn global_cpe_flattening_round_trip() {
        let g = GlobalCpe {
            node: NodeId(3),
            cg_in_node: 2,
            cpe: CpeId(17),
        };
        assert_eq!(g.cg(4), CgId(14));
        assert_eq!(g.flat(4, 64), 14 * 64 + 17);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CgId(5).to_string(), "cg5");
        assert_eq!(NodeId(7).to_string(), "node7");
        assert_eq!(Rank(0).to_string(), "rank0");
    }
}
