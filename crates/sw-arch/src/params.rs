//! Published physical constants of the SW26010 processor and the Sunway
//! TaihuLight interconnect.
//!
//! All values come straight from the paper's experimental-configuration
//! section (and the TaihuLight system paper it cites): 64 KB LDM per CPE,
//! 1.45 GHz clock, 32 GB/s DMA bandwidth per core group, 46.4 GB/s register
//! communication bandwidth, and a 16 GB/s bidirectional node network link.
//! They are plain `f64`/`usize` fields rather than constants so experiments
//! can ablate them (e.g. "what if register communication were no faster than
//! DMA?").

use serde::{Deserialize, Serialize};

/// Physical machine constants used by the cost model, the LDM budget checker
/// and the discrete-event simulator.
///
/// Bandwidths are in **bytes per second**, capacities in **bytes**,
/// frequencies in **Hz** and latencies in **seconds**.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Local Directive Memory (scratchpad) per CPE, in bytes. 64 KB on SW26010.
    pub ldm_bytes: usize,
    /// L1 instruction cache per CPE, in bytes (16 KB). Not used by the cost
    /// model but kept for completeness of the architectural description.
    pub cpe_icache_bytes: usize,
    /// Computing processing elements per core group (an 8×8 mesh).
    pub cpes_per_cg: usize,
    /// Core groups per SW26010 processor (= per node).
    pub cgs_per_node: usize,
    /// Nodes per super-node: 256 nodes share a customized interconnection
    /// board; super-nodes connect through the central routing switch.
    pub nodes_per_supernode: usize,
    /// CPE clock frequency in Hz (1.45 GHz).
    pub clock_hz: f64,
    /// Double-precision FLOPs per cycle per CPE. Each CPE has a 256-bit FMA
    /// vector pipe: 4 lanes × 2 (fused multiply-add) = 8 flop/cycle.
    pub flops_per_cycle: f64,
    /// DMA bandwidth between main memory and the LDMs of one core group,
    /// in bytes/s (32 GB/s theoretical).
    pub dma_bw: f64,
    /// Register-communication bandwidth across the 8×8 CPE mesh, in bytes/s
    /// (46.4 GB/s theoretical). The paper reports a 3–4× speedup of register
    /// communication over DMA/MPI for the reduction bottleneck.
    pub reg_bw: f64,
    /// Bidirectional peak network bandwidth per node, in bytes/s (16 GB/s).
    pub net_bw: f64,
    /// Effective per-node network bandwidth for traffic that crosses
    /// super-node boundaries (the upper fat-tree level is tapered), bytes/s.
    pub net_bw_inter_supernode: f64,
    /// One-way latency of an intra-super-node MPI message, seconds.
    pub net_lat_intra: f64,
    /// One-way latency of an inter-super-node MPI message (through the
    /// central routing server), seconds.
    pub net_lat_inter: f64,
    /// DMA request startup latency, seconds.
    pub dma_lat: f64,
    /// Register-communication per-hop latency, seconds (~10 cycles).
    pub reg_lat: f64,
    /// Main (DDR3) memory per node, bytes (32 GB).
    pub node_mem_bytes: usize,
}

impl MachineParams {
    /// The Sunway TaihuLight configuration as published in the paper.
    pub fn taihulight() -> Self {
        MachineParams {
            ldm_bytes: 64 * 1024,
            cpe_icache_bytes: 16 * 1024,
            cpes_per_cg: 64,
            cgs_per_node: 4,
            nodes_per_supernode: 256,
            clock_hz: 1.45e9,
            flops_per_cycle: 8.0,
            dma_bw: 32.0e9,
            reg_bw: 46.4e9,
            net_bw: 16.0e9,
            // The upper level of the fat tree is tapered 4:1 relative to the
            // intra-super-node boards.
            net_bw_inter_supernode: 4.0e9,
            net_lat_intra: 1.0e-6,
            net_lat_inter: 4.0e-6,
            dma_lat: 1.0e-6,
            reg_lat: 7.0e-9,
            node_mem_bytes: 32 * (1 << 30),
        }
    }

    /// CPEs per node (4 CGs × 64 CPEs = 256).
    pub fn cpes_per_node(&self) -> usize {
        self.cpes_per_cg * self.cgs_per_node
    }

    /// Peak double-precision FLOP/s of one CPE.
    pub fn cpe_flops(&self) -> f64 {
        self.clock_hz * self.flops_per_cycle
    }

    /// Peak double-precision FLOP/s of one core group (CPEs only; the MPE
    /// is reserved for management and communication).
    pub fn cg_flops(&self) -> f64 {
        self.cpe_flops() * self.cpes_per_cg as f64
    }

    /// LDM capacity in `elem_bytes`-sized elements (e.g. 16384 `f32`s).
    pub fn ldm_elems(&self, elem_bytes: usize) -> usize {
        self.ldm_bytes / elem_bytes
    }

    /// An ablation variant where register communication is no faster than
    /// DMA — used to quantify how much the fast on-mesh reduction buys.
    pub fn without_register_communication(mut self) -> Self {
        self.reg_bw = self.dma_bw;
        self.reg_lat = self.dma_lat;
        self
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        Self::taihulight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taihulight_headline_numbers() {
        let p = MachineParams::taihulight();
        assert_eq!(p.ldm_bytes, 65536);
        assert_eq!(p.cpes_per_node(), 256);
        assert_eq!(p.ldm_elems(4), 16384);
        assert_eq!(p.ldm_elems(8), 8192);
        // 1.45 GHz × 8 flops × 64 CPEs ≈ 742.4 GFLOP/s per CG; 4 CGs ≈ 2.97
        // TFLOP/s per node, matching the published ~3.06 TFLOP/s per node to
        // within the MPE contribution we deliberately exclude.
        assert!((p.cg_flops() - 742.4e9).abs() < 1e6);
    }

    #[test]
    fn register_comm_is_faster_than_dma() {
        let p = MachineParams::taihulight();
        assert!(p.reg_bw > p.dma_bw);
        let ablated = p.without_register_communication();
        assert_eq!(ablated.reg_bw, ablated.dma_bw);
    }

    #[test]
    fn copy_round_trip() {
        let p = MachineParams::taihulight();
        let q = p;
        assert_eq!(p, q);
    }
}
