//! The whole Sunway TaihuLight system: nodes of four core groups, super-nodes
//! of 256 nodes, and the central routing switch above them.
//!
//! The machine is pure topology data — no threads, no state. Its job is to
//! answer "how far apart are these two computation units?" so communication
//! can be priced by class: register communication inside a CG, shared memory
//! inside a node, one fat-tree level inside a super-node, two levels across
//! super-nodes.

use crate::cg::CoreGroup;
use crate::ids::{CgId, NodeId, SupernodeId};
use crate::params::MachineParams;
use serde::{Deserialize, Serialize};

/// How many hardware levels separate two communicating units. Ordered from
/// cheapest to most expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CommClass {
    /// Same core group: register communication over the 8×8 mesh buses.
    IntraCg,
    /// Same node, different CG: through shared DDR3 memory.
    IntraNode,
    /// Same super-node, different node: one level of the fat tree.
    IntraSupernode,
    /// Different super-nodes: through the central routing server.
    InterSupernode,
}

impl CommClass {
    /// Bandwidth of this link class in bytes/s under `params`.
    pub fn bandwidth(&self, params: &MachineParams) -> f64 {
        match self {
            CommClass::IntraCg => params.reg_bw,
            CommClass::IntraNode => params.dma_bw,
            CommClass::IntraSupernode => params.net_bw,
            CommClass::InterSupernode => params.net_bw_inter_supernode,
        }
    }

    /// One-way message latency of this link class in seconds under `params`.
    pub fn latency(&self, params: &MachineParams) -> f64 {
        match self {
            CommClass::IntraCg => params.reg_lat,
            CommClass::IntraNode => params.dma_lat,
            CommClass::IntraSupernode => params.net_lat_intra,
            CommClass::InterSupernode => params.net_lat_inter,
        }
    }
}

/// Size of a machine allocation: how many nodes the job runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of SW26010 nodes in the allocation.
    pub nodes: usize,
}

impl MachineConfig {
    pub fn new(nodes: usize) -> Self {
        MachineConfig { nodes }
    }
}

/// A machine allocation: physical constants plus an allocation size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    pub params: MachineParams,
    pub config: MachineConfig,
    pub core_group: CoreGroup,
}

impl Machine {
    /// A TaihuLight allocation of `nodes` nodes.
    pub fn taihulight(nodes: usize) -> Self {
        Machine {
            params: MachineParams::taihulight(),
            config: MachineConfig::new(nodes),
            core_group: CoreGroup::sw26010(),
        }
    }

    /// Total core groups in the allocation.
    pub fn total_cgs(&self) -> usize {
        self.config.nodes * self.params.cgs_per_node
    }

    /// Total CPEs in the allocation (the paper's `m` for Levels 1–2).
    pub fn total_cpes(&self) -> usize {
        self.total_cgs() * self.params.cpes_per_cg
    }

    /// Total cores including the MPE of each CG (how the paper counts
    /// "1,064,496 cores" for 4,096 nodes: 4,096 × 4 × (64 + 1) = 1,064,960;
    /// the paper's printed figure differs by a typo, see EXPERIMENTS.md).
    pub fn total_cores_with_mpes(&self) -> usize {
        self.total_cgs() * (self.params.cpes_per_cg + 1)
    }

    /// Number of super-nodes spanned by the allocation (ceiling division).
    pub fn supernodes(&self) -> usize {
        self.config.nodes.div_ceil(self.params.nodes_per_supernode)
    }

    /// The super-node of a node in the allocation.
    pub fn supernode_of(&self, node: NodeId) -> SupernodeId {
        node.supernode(self.params.nodes_per_supernode)
    }

    /// The node hosting a global CG index.
    pub fn node_of_cg(&self, cg: CgId) -> NodeId {
        cg.node(self.params.cgs_per_node)
    }

    /// Communication class between two global CG indices.
    pub fn comm_class_between_cgs(&self, a: CgId, b: CgId) -> CommClass {
        if a == b {
            return CommClass::IntraCg;
        }
        let (na, nb) = (self.node_of_cg(a), self.node_of_cg(b));
        if na == nb {
            return CommClass::IntraNode;
        }
        if self.supernode_of(na) == self.supernode_of(nb) {
            return CommClass::IntraSupernode;
        }
        CommClass::InterSupernode
    }

    /// The most expensive communication class appearing among a set of CGs —
    /// what a collective over those CGs is priced at.
    pub fn worst_comm_class(&self, cgs: &[CgId]) -> CommClass {
        let mut worst = CommClass::IntraCg;
        for (i, &a) in cgs.iter().enumerate() {
            for &b in &cgs[i + 1..] {
                let c = self.comm_class_between_cgs(a, b);
                if c > worst {
                    worst = c;
                }
            }
        }
        worst
    }

    /// True if the allocation fits inside one super-node.
    pub fn single_supernode(&self) -> bool {
        self.config.nodes <= self.params.nodes_per_supernode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_totals_match_paper_setups() {
        // Level 1 setup: one processor = 4 CGs = 256 CPEs.
        let m1 = Machine::taihulight(1);
        assert_eq!(m1.total_cgs(), 4);
        assert_eq!(m1.total_cpes(), 256);

        // Level 2 setup: 256 processors = 1,024 CGs = 65,536 CPEs.
        let m2 = Machine::taihulight(256);
        assert_eq!(m2.total_cgs(), 1024);
        assert_eq!(m2.total_cpes(), 65_536);

        // Level 3 setup: 4,096 processors = 16,384 CGs.
        let m3 = Machine::taihulight(4096);
        assert_eq!(m3.total_cgs(), 16_384);
        assert_eq!(m3.total_cpes(), 1_048_576);
        assert_eq!(m3.total_cores_with_mpes(), 1_064_960);
        assert_eq!(m3.supernodes(), 16);
    }

    #[test]
    fn comm_class_ordering_matches_cost() {
        assert!(CommClass::IntraCg < CommClass::IntraNode);
        assert!(CommClass::IntraNode < CommClass::IntraSupernode);
        assert!(CommClass::IntraSupernode < CommClass::InterSupernode);
        let p = MachineParams::taihulight();
        assert!(CommClass::IntraCg.bandwidth(&p) > CommClass::IntraSupernode.bandwidth(&p));
        assert!(CommClass::IntraCg.latency(&p) < CommClass::InterSupernode.latency(&p));
    }

    #[test]
    fn comm_class_between_cgs_walks_the_hierarchy() {
        let m = Machine::taihulight(512);
        // Same CG.
        assert_eq!(
            m.comm_class_between_cgs(CgId(5), CgId(5)),
            CommClass::IntraCg
        );
        // CGs 0 and 3 are both on node 0.
        assert_eq!(
            m.comm_class_between_cgs(CgId(0), CgId(3)),
            CommClass::IntraNode
        );
        // CG 4 is on node 1; node 0 and node 1 share super-node 0.
        assert_eq!(
            m.comm_class_between_cgs(CgId(0), CgId(4)),
            CommClass::IntraSupernode
        );
        // Node 256 is in super-node 1: CG 1024 lives there.
        assert_eq!(
            m.comm_class_between_cgs(CgId(0), CgId(1024)),
            CommClass::InterSupernode
        );
    }

    #[test]
    fn worst_comm_class_over_sets() {
        let m = Machine::taihulight(512);
        assert_eq!(m.worst_comm_class(&[CgId(9)]), CommClass::IntraCg);
        assert_eq!(
            m.worst_comm_class(&[CgId(0), CgId(1), CgId(2)]),
            CommClass::IntraNode
        );
        assert_eq!(
            m.worst_comm_class(&[CgId(0), CgId(1), CgId(1025)]),
            CommClass::InterSupernode
        );
    }

    #[test]
    fn single_supernode_boundary() {
        assert!(Machine::taihulight(256).single_supernode());
        assert!(!Machine::taihulight(257).single_supernode());
    }
}
