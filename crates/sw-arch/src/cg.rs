//! The core group: an 8×8 mesh of CPEs with row/column register-communication
//! buses.
//!
//! The fast intra-CG AllReduce that makes the paper's Update step cheap is a
//! mesh reduction: values travel along the 8 row buses to a column, then along
//! that column bus to a root (or are re-broadcast the same way). This module
//! models the *schedule* of such a reduction — how many bus steps it takes and
//! how many bytes cross each bus — so both the analytic model and the
//! discrete-event simulator can price it.

use crate::ids::CpeId;
use serde::{Deserialize, Serialize};

/// Position of a CPE on the 8×8 mesh (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshCoord {
    pub row: usize,
    pub col: usize,
}

impl MeshCoord {
    /// Mesh coordinate of a CPE id (`0..side²`), row-major.
    pub fn of(cpe: CpeId, side: usize) -> Self {
        MeshCoord {
            row: cpe.0 / side,
            col: cpe.0 % side,
        }
    }

    /// Inverse of [`MeshCoord::of`].
    pub fn cpe(&self, side: usize) -> CpeId {
        CpeId(self.row * side + self.col)
    }
}

/// Static description of one core group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreGroup {
    /// Mesh side length (8 on SW26010).
    pub mesh_side: usize,
}

impl CoreGroup {
    /// The SW26010 core group: an 8×8 mesh (64 CPEs + 1 MPE).
    pub fn sw26010() -> Self {
        CoreGroup { mesh_side: 8 }
    }

    /// Number of CPEs in the group.
    pub fn cpes(&self) -> usize {
        self.mesh_side * self.mesh_side
    }

    /// Schedule of a full-mesh AllReduce of `bytes` bytes per CPE using the
    /// row-then-column bus pattern.
    ///
    /// Phase 1: each of the `side` row buses reduces `side` values to the
    /// bus owner in `side - 1` sequential hops. Phase 2: one column bus
    /// reduces the `side` row results in another `side - 1` hops. The
    /// broadcast back retraces the same hops, so an AllReduce is twice the
    /// reduce cost. All row buses operate concurrently in phase 1, so the
    /// *critical path* is `2 * 2 * (side - 1)` hops, each moving `bytes`
    /// bytes over a register bus.
    pub fn allreduce_schedule(&self, bytes: usize) -> ReductionSchedule {
        let side = self.mesh_side;
        let hops = 2 * 2 * (side - 1);
        ReductionSchedule {
            critical_hops: hops,
            bytes_per_hop: bytes,
            concurrent_buses: side,
        }
    }

    /// Schedule of a reduce-to-root (no broadcast back): half the AllReduce.
    pub fn reduce_schedule(&self, bytes: usize) -> ReductionSchedule {
        let side = self.mesh_side;
        ReductionSchedule {
            critical_hops: 2 * (side - 1),
            bytes_per_hop: bytes,
            concurrent_buses: side,
        }
    }

    /// Schedule of a broadcast from one CPE to the whole mesh (column bus
    /// then all row buses).
    pub fn broadcast_schedule(&self, bytes: usize) -> ReductionSchedule {
        self.reduce_schedule(bytes)
    }
}

impl Default for CoreGroup {
    fn default() -> Self {
        Self::sw26010()
    }
}

/// Cost-model view of a mesh collective: how many sequential bus hops sit on
/// the critical path and how many bytes each hop carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionSchedule {
    /// Sequential register-bus hops on the critical path.
    pub critical_hops: usize,
    /// Payload bytes carried by each hop.
    pub bytes_per_hop: usize,
    /// Buses active concurrently during the widest phase (informational; the
    /// critical path already accounts for concurrency).
    pub concurrent_buses: usize,
}

impl ReductionSchedule {
    /// Wall time of the schedule given a per-bus bandwidth (bytes/s) and a
    /// per-hop latency (s).
    pub fn time(&self, bus_bw: f64, hop_lat: f64) -> f64 {
        self.critical_hops as f64 * (hop_lat + self.bytes_per_hop as f64 / bus_bw)
    }

    /// Total bytes moved across all hops of the critical path.
    pub fn critical_bytes(&self) -> usize {
        self.critical_hops * self.bytes_per_hop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_coord_round_trip() {
        let cg = CoreGroup::sw26010();
        for i in 0..cg.cpes() {
            let c = MeshCoord::of(CpeId(i), cg.mesh_side);
            assert_eq!(c.cpe(cg.mesh_side), CpeId(i));
            assert!(c.row < 8 && c.col < 8);
        }
    }

    #[test]
    fn corner_coordinates() {
        assert_eq!(MeshCoord::of(CpeId(0), 8), MeshCoord { row: 0, col: 0 });
        assert_eq!(MeshCoord::of(CpeId(7), 8), MeshCoord { row: 0, col: 7 });
        assert_eq!(MeshCoord::of(CpeId(56), 8), MeshCoord { row: 7, col: 0 });
        assert_eq!(MeshCoord::of(CpeId(63), 8), MeshCoord { row: 7, col: 7 });
    }

    #[test]
    fn allreduce_is_twice_reduce() {
        let cg = CoreGroup::sw26010();
        let r = cg.reduce_schedule(1024);
        let ar = cg.allreduce_schedule(1024);
        assert_eq!(ar.critical_hops, 2 * r.critical_hops);
        assert_eq!(r.critical_hops, 14); // 2 * (8 - 1)
    }

    #[test]
    fn schedule_time_scales_with_bytes_and_hops() {
        let cg = CoreGroup::sw26010();
        let small = cg.allreduce_schedule(64).time(46.4e9, 7e-9);
        let big = cg.allreduce_schedule(64 * 1024).time(46.4e9, 7e-9);
        assert!(big > small);
        // With zero latency, time is linear in bytes.
        let t1 = cg.reduce_schedule(1000).time(1e9, 0.0);
        let t2 = cg.reduce_schedule(2000).time(1e9, 0.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn critical_bytes_accounting() {
        let s = CoreGroup::sw26010().reduce_schedule(100);
        assert_eq!(s.critical_bytes(), 1400);
    }
}
