//! Minimal CSV numeric I/O — load real datasets into a [`Matrix`], export
//! clusterings — with zero external dependencies.
//!
//! Supports: optional header row (auto-detected), `,`/`;`/tab separators,
//! empty-line skipping, and explicit errors naming the offending line.

use kmeans_core::Matrix;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// CSV parsing errors, with 1-based line numbers.
#[derive(Debug)]
pub enum CsvError {
    Io(std::io::Error),
    /// A data cell failed to parse as f32.
    BadNumber {
        line: usize,
        column: usize,
        cell: String,
    },
    /// A row had a different width than the first data row.
    RaggedRow {
        line: usize,
        expected: usize,
        got: usize,
    },
    /// No data rows at all.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::BadNumber { line, column, cell } => {
                write!(f, "line {line}, column {column}: `{cell}` is not a number")
            }
            CsvError::RaggedRow {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected} columns, found {got}"),
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn detect_separator(line: &str) -> char {
    for sep in [',', ';', '\t'] {
        if line.contains(sep) {
            return sep;
        }
    }
    ','
}

/// Parse numeric CSV from a reader. A first row that fails numeric parsing
/// is treated as a header and skipped.
pub fn read_csv<R: Read>(reader: R) -> Result<Matrix<f32>, CsvError> {
    let buf = BufReader::new(reader);
    let mut data: Vec<f32> = Vec::new();
    let mut width: Option<usize> = None;
    let mut rows = 0usize;
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let sep = detect_separator(trimmed);
        let cells: Vec<&str> = trimmed.split(sep).map(|c| c.trim()).collect();
        let mut parsed = Vec::with_capacity(cells.len());
        let mut failed_at = None;
        for (col, cell) in cells.iter().enumerate() {
            match cell.parse::<f32>() {
                Ok(v) => parsed.push(v),
                Err(_) => {
                    failed_at = Some((col, cell.to_string()));
                    break;
                }
            }
        }
        if let Some((col, cell)) = failed_at {
            if rows == 0 && width.is_none() {
                // Header row: skip it.
                continue;
            }
            return Err(CsvError::BadNumber {
                line: idx + 1,
                column: col + 1,
                cell,
            });
        }
        match width {
            None => width = Some(parsed.len()),
            Some(w) if w != parsed.len() => {
                return Err(CsvError::RaggedRow {
                    line: idx + 1,
                    expected: w,
                    got: parsed.len(),
                })
            }
            _ => {}
        }
        data.extend(parsed);
        rows += 1;
    }
    let width = width.ok_or(CsvError::Empty)?;
    if rows == 0 {
        return Err(CsvError::Empty);
    }
    Ok(Matrix::from_vec(rows, width, data))
}

/// Load numeric CSV from a file path.
pub fn load_csv(path: impl AsRef<Path>) -> Result<Matrix<f32>, CsvError> {
    read_csv(std::fs::File::open(path)?)
}

/// Write a matrix (plus optional per-row labels as a trailing column) as
/// CSV.
pub fn write_csv<W: Write>(
    mut w: W,
    data: &Matrix<f32>,
    labels: Option<&[u32]>,
) -> std::io::Result<()> {
    if let Some(labels) = labels {
        assert_eq!(labels.len(), data.rows(), "one label per row");
    }
    for i in 0..data.rows() {
        let row = data.row(i);
        let mut first = true;
        for v in row {
            if !first {
                write!(w, ",")?;
            }
            write!(w, "{v}")?;
            first = false;
        }
        if let Some(labels) = labels {
            write!(w, ",{}", labels[i])?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_csv() {
        let m = read_csv("1,2,3\n4,5,6\n".as_bytes()).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn skips_header_and_blank_lines() {
        let m = read_csv("lon,lat,alt\n\n1.5,2.5,3.5\n\n4.0,5.0,6.0\n".as_bytes()).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.get(0, 0), 1.5);
    }

    #[test]
    fn semicolons_and_tabs_work() {
        let m = read_csv("1;2\n3;4\n".as_bytes()).unwrap();
        assert_eq!(m.cols(), 2);
        let t = read_csv("1\t2\t3\n".as_bytes()).unwrap();
        assert_eq!(t.cols(), 3);
    }

    #[test]
    fn reports_bad_cells_precisely() {
        let err = read_csv("1,2\n3,oops\n".as_bytes()).unwrap_err();
        match err {
            CsvError::BadNumber { line, column, cell } => {
                assert_eq!((line, column), (2, 2));
                assert_eq!(cell, "oops");
            }
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = read_csv("1,2\n3,4,5\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::RaggedRow {
                line: 2,
                expected: 2,
                got: 3
            }
        ));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(read_csv("".as_bytes()), Err(CsvError::Empty)));
        assert!(matches!(
            read_csv("only,a,header\n".as_bytes()),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn round_trips_with_labels() {
        let m = Matrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        let mut buf = Vec::new();
        write_csv(&mut buf, &m, Some(&[7, 8])).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text, "1,2,7\n3,4,8\n");
        // Reload (labels come back as a data column).
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.cols(), 3);
        assert_eq!(back.get(1, 2), 8.0);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("swkm_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        let m = Matrix::from_vec(3, 2, vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]);
        write_csv(std::fs::File::create(&path).unwrap(), &m, None).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(back, m);
        assert!(load_csv(dir.join("missing.csv")).is_err());
    }
}
