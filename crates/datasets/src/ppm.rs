//! Minimal binary PPM (P6) images — enough for the examples to emit
//! viewable classification maps with zero image-crate dependencies.

use std::io::{self, Read, Write};
use std::path::Path;

/// An RGB image with 8-bit channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Image {
    /// A black image.
    pub fn new(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            data: vec![0; width * height * 3],
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// Set pixel `(x, y)`.
    pub fn put(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        assert!(x < self.width && y < self.height, "({x},{y}) out of bounds");
        self.put_index(y * self.width + x, rgb);
    }

    /// Set pixel by row-major index.
    pub fn put_index(&mut self, i: usize, rgb: [u8; 3]) {
        self.data[i * 3..i * 3 + 3].copy_from_slice(&rgb);
    }

    /// Pixel `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let i = (y * self.width + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Encode as binary PPM (P6).
    pub fn write_ppm<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        w.write_all(&self.data)
    }

    /// Write to a file path.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_ppm(io::BufWriter::new(file))
    }

    /// Decode a binary PPM (P6) produced by [`Image::write_ppm`].
    pub fn read_ppm<R: Read>(mut r: R) -> io::Result<Self> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let header_err = || io::Error::new(io::ErrorKind::InvalidData, "bad PPM header");
        // Parse exactly three whitespace-separated tokens after "P6".
        let mut pos = 0usize;
        let mut token = |bytes: &[u8]| -> io::Result<String> {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            let start = pos;
            while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if start == pos {
                return Err(header_err());
            }
            Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
        };
        if token(&bytes)? != "P6" {
            return Err(header_err());
        }
        let width: usize = token(&bytes)?.parse().map_err(|_| header_err())?;
        let height: usize = token(&bytes)?.parse().map_err(|_| header_err())?;
        let maxval: usize = token(&bytes)?.parse().map_err(|_| header_err())?;
        if maxval != 255 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "only 8-bit PPM supported",
            ));
        }
        let data_start = pos + 1; // single whitespace after maxval
        let expected = width * height * 3;
        if bytes.len() < data_start + expected {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated PPM payload",
            ));
        }
        Ok(Image {
            width,
            height,
            data: bytes[data_start..data_start + expected].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut img = Image::new(4, 3);
        img.put(2, 1, [10, 20, 30]);
        assert_eq!(img.get(2, 1), [10, 20, 30]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn ppm_encode_decode_round_trip() {
        let mut img = Image::new(5, 7);
        for y in 0..7 {
            for x in 0..5 {
                img.put(x, y, [(x * 40) as u8, (y * 30) as u8, 200]);
            }
        }
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n5 7\n255\n"));
        let back = Image::read_ppm(buf.as_slice()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        assert!(Image::read_ppm(&b"P5\n2 2\n255\n"[..]).is_err());
        assert!(Image::read_ppm(&b"P6\n2\n"[..]).is_err());
        assert!(Image::read_ppm(&b"P6\n2 2\n65535\n"[..]).is_err());
        // Truncated payload.
        assert!(Image::read_ppm(&b"P6\n2 2\n255\nxx"[..]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_put_panics() {
        let mut img = Image::new(2, 2);
        img.put(2, 0, [0, 0, 0]);
    }
}
