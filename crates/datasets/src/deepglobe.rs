//! DeepGlobe-2018-like synthetic satellite scenes (Fig. 10's application).
//!
//! The paper's land-cover case study clusters one 2,448×2,448 satellite
//! image (n = 5,838,480 pixel-block samples, d = 4,096, k = 7 land
//! classes). This module builds the synthetic equivalent: a ground-truth
//! class map with large contiguous regions (Voronoi cells of random sites,
//! the spatial statistics of land parcels), rendered to RGB with per-class
//! colour and texture. The example then recovers the classes with Level-3
//! k-means and writes both maps as PPM for eyeballing — the full path of
//! the paper's Fig. 10.

use crate::ppm::Image;
use kmeans_core::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The seven DeepGlobe land-cover classes with their conventional mask
/// colours (cyan urban, yellow agriculture, magenta rangeland, green
/// forest, blue water, white barren, black unknown).
pub const LAND_CLASSES: [(&str, [u8; 3]); 7] = [
    ("urban", [0, 255, 255]),
    ("agriculture", [255, 255, 0]),
    ("rangeland", [255, 0, 255]),
    ("forest", [0, 255, 0]),
    ("water", [0, 0, 255]),
    ("barren", [255, 255, 255]),
    ("unknown", [0, 0, 0]),
];

/// Per-class mean surface colour (what the "satellite" sees, unlike the
/// mask colours above) and texture amplitude.
const CLASS_APPEARANCE: [([f32; 3], f32); 7] = [
    ([0.45, 0.42, 0.40], 0.12), // urban: grey, high texture
    ([0.55, 0.50, 0.25], 0.05), // agriculture: tan, smooth fields
    ([0.45, 0.55, 0.30], 0.08), // rangeland
    ([0.10, 0.30, 0.12], 0.07), // forest: dark green
    ([0.05, 0.10, 0.25], 0.02), // water: dark blue, very smooth
    ([0.60, 0.55, 0.45], 0.06), // barren: light brown
    ([0.30, 0.30, 0.30], 0.15), // unknown: mixed
];

/// Scene dimensions and generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneConfig {
    pub width: usize,
    pub height: usize,
    /// Voronoi sites per class — more sites, smaller parcels.
    pub sites_per_class: usize,
    pub seed: u64,
}

impl SceneConfig {
    /// A laptop-scale scene exercising the full Fig. 10 path.
    pub fn small(seed: u64) -> Self {
        SceneConfig {
            width: 192,
            height: 192,
            sites_per_class: 3,
            seed,
        }
    }

    /// The paper's full 2,448×2,448 tile shape.
    pub fn paper() -> Self {
        SceneConfig {
            width: 2_448,
            height: 2_448,
            sites_per_class: 40,
            seed: 2018,
        }
    }
}

/// A generated scene: ground truth plus rendered pixels.
#[derive(Debug, Clone)]
pub struct SyntheticScene {
    pub config: SceneConfig,
    /// Ground-truth class per pixel, row-major.
    pub truth: Vec<u8>,
    /// Rendered RGB pixels in `[0,1]`, row-major, 3 floats per pixel.
    pub pixels: Vec<f32>,
}

impl SyntheticScene {
    /// Generate the scene deterministically from its config.
    pub fn generate(config: SceneConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let n_classes = LAND_CLASSES.len();
        // Voronoi sites: (x, y, class).
        let sites: Vec<(f32, f32, u8)> = (0..n_classes * config.sites_per_class)
            .map(|i| {
                (
                    rng.gen_range(0.0..config.width as f32),
                    rng.gen_range(0.0..config.height as f32),
                    (i % n_classes) as u8,
                )
            })
            .collect();
        let mut truth = Vec::with_capacity(config.width * config.height);
        let mut pixels = Vec::with_capacity(config.width * config.height * 3);
        for y in 0..config.height {
            for x in 0..config.width {
                let class = sites
                    .iter()
                    .min_by(|a, b| {
                        let da = (a.0 - x as f32).powi(2) + (a.1 - y as f32).powi(2);
                        let db = (b.0 - x as f32).powi(2) + (b.1 - y as f32).powi(2);
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap()
                    .2;
                truth.push(class);
                let (mean, texture) = CLASS_APPEARANCE[class as usize];
                for m in mean {
                    let noise: f32 = rng.gen_range(-1.0f32..1.0) * texture;
                    pixels.push((m + noise).clamp(0.0, 1.0));
                }
            }
        }
        SyntheticScene {
            config,
            truth,
            pixels,
        }
    }

    pub fn n_pixels(&self) -> usize {
        self.config.width * self.config.height
    }

    /// Per-pixel block features: the `block × block` RGB neighbourhood of
    /// each pixel, flattened — `d = block²·3` (the paper's d = 4,096 comes
    /// from such block features). Pixels near the border clamp to the edge.
    pub fn block_features(&self, block: usize) -> Matrix<f32> {
        assert!(block >= 1);
        let (w, h) = (self.config.width, self.config.height);
        let d = block * block * 3;
        let half = block / 2;
        let mut data = vec![0.0f32; self.n_pixels() * d];
        for y in 0..h {
            for x in 0..w {
                let out = &mut data[(y * w + x) * d..(y * w + x + 1) * d];
                let mut o = 0;
                for by in 0..block {
                    let sy = (y + by).saturating_sub(half).min(h - 1);
                    for bx in 0..block {
                        let sx = (x + bx).saturating_sub(half).min(w - 1);
                        let p = (sy * w + sx) * 3;
                        out[o..o + 3].copy_from_slice(&self.pixels[p..p + 3]);
                        o += 3;
                    }
                }
            }
        }
        Matrix::from_vec(self.n_pixels(), d, data)
    }

    /// Render the ground-truth mask with the DeepGlobe class colours.
    pub fn truth_mask(&self) -> Image {
        let mut img = Image::new(self.config.width, self.config.height);
        for (i, &class) in self.truth.iter().enumerate() {
            img.put_index(i, LAND_CLASSES[class as usize].1);
        }
        img
    }

    /// Render a clustering result as a mask, colouring each cluster with a
    /// DeepGlobe class colour (cluster id order).
    pub fn label_mask(&self, labels: &[u32]) -> Image {
        assert_eq!(labels.len(), self.n_pixels());
        let mut img = Image::new(self.config.width, self.config.height);
        for (i, &l) in labels.iter().enumerate() {
            let colour = LAND_CLASSES[l as usize % LAND_CLASSES.len()].1;
            img.put_index(i, colour);
        }
        img
    }

    /// Render the satellite view itself.
    pub fn satellite(&self) -> Image {
        let mut img = Image::new(self.config.width, self.config.height);
        for i in 0..self.n_pixels() {
            let p = &self.pixels[i * 3..i * 3 + 3];
            img.put_index(
                i,
                [
                    (p[0] * 255.0) as u8,
                    (p[1] * 255.0) as u8,
                    (p[2] * 255.0) as u8,
                ],
            );
        }
        img
    }

    /// Best-case accuracy of a clustering against ground truth under the
    /// optimal greedy cluster→class matching (clusters are unordered).
    pub fn clustering_accuracy(&self, labels: &[u32], k: usize) -> f64 {
        assert_eq!(labels.len(), self.truth.len());
        let n_classes = LAND_CLASSES.len();
        // Confusion counts cluster × class.
        let mut conf = vec![vec![0u64; n_classes]; k];
        for (l, t) in labels.iter().zip(&self.truth) {
            conf[*l as usize][*t as usize] += 1;
        }
        // Greedy assignment: repeatedly take the largest remaining cell.
        let mut used_cluster = vec![false; k];
        let mut used_class = vec![false; n_classes];
        let mut correct = 0u64;
        for _ in 0..k.min(n_classes) {
            let mut best = (0u64, 0usize, 0usize);
            for c in 0..k {
                if used_cluster[c] {
                    continue;
                }
                for t in 0..n_classes {
                    if used_class[t] {
                        continue;
                    }
                    if conf[c][t] > best.0 {
                        best = (conf[c][t], c, t);
                    }
                }
            }
            if best.0 == 0 {
                break;
            }
            correct += best.0;
            used_cluster[best.1] = true;
            used_class[best.2] = true;
        }
        correct as f64 / labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_is_deterministic_and_sized() {
        let a = SyntheticScene::generate(SceneConfig::small(4));
        let b = SyntheticScene::generate(SceneConfig::small(4));
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.pixels, b.pixels);
        assert_eq!(a.n_pixels(), 192 * 192);
        assert_eq!(a.pixels.len(), a.n_pixels() * 3);
    }

    #[test]
    fn all_classes_appear_in_a_reasonable_scene() {
        let scene = SyntheticScene::generate(SceneConfig::small(7));
        let mut seen = [false; 7];
        for &t in &scene.truth {
            seen[t as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 6, "{seen:?}");
    }

    #[test]
    fn regions_are_contiguous() {
        // Voronoi parcels: the overwhelming majority of pixels share their
        // class with the pixel to their right.
        let scene = SyntheticScene::generate(SceneConfig::small(1));
        let w = scene.config.width;
        let mut same = 0usize;
        let mut total = 0usize;
        for y in 0..scene.config.height {
            for x in 0..w - 1 {
                total += 1;
                if scene.truth[y * w + x] == scene.truth[y * w + x + 1] {
                    same += 1;
                }
            }
        }
        assert!(same as f64 / total as f64 > 0.95);
    }

    #[test]
    fn block_features_shape_and_center() {
        let scene = SyntheticScene::generate(SceneConfig {
            width: 16,
            height: 16,
            sites_per_class: 1,
            seed: 2,
        });
        let feats = scene.block_features(4);
        assert_eq!(feats.rows(), 256);
        assert_eq!(feats.cols(), 48);
        // A 1-block feature is exactly the pixel itself.
        let single = scene.block_features(1);
        assert_eq!(single.cols(), 3);
        for i in 0..256 {
            assert_eq!(single.row(i), &scene.pixels[i * 3..i * 3 + 3]);
        }
    }

    #[test]
    fn paper_scale_d_is_4096ish() {
        // Block 37 → d = 37²·3 = 4,107 ≈ the paper's 4,096; the example
        // uses block features for the same reason the paper does.
        let d = 37 * 37 * 3;
        assert!((4_000..4_200).contains(&d));
    }

    #[test]
    fn perfect_labels_score_1() {
        let scene = SyntheticScene::generate(SceneConfig::small(3));
        let labels: Vec<u32> = scene.truth.iter().map(|&t| t as u32).collect();
        assert_eq!(scene.clustering_accuracy(&labels, 7), 1.0);
    }

    #[test]
    fn permuted_labels_still_score_1() {
        let scene = SyntheticScene::generate(SceneConfig::small(3));
        let labels: Vec<u32> = scene.truth.iter().map(|&t| (t as u32 + 3) % 7).collect();
        assert_eq!(scene.clustering_accuracy(&labels, 7), 1.0);
    }

    #[test]
    fn random_labels_score_low() {
        let scene = SyntheticScene::generate(SceneConfig::small(3));
        let labels: Vec<u32> = (0..scene.n_pixels()).map(|i| (i % 7) as u32).collect();
        assert!(scene.clustering_accuracy(&labels, 7) < 0.5);
    }

    #[test]
    fn masks_have_image_dimensions() {
        let scene = SyntheticScene::generate(SceneConfig::small(9));
        let mask = scene.truth_mask();
        assert_eq!(mask.width(), 192);
        assert_eq!(mask.height(), 192);
        let sat = scene.satellite();
        assert_eq!(sat.width(), 192);
    }
}
