//! Synthetic workload generators shape-matched to the paper's benchmarks.
//!
//! The paper evaluates on UCI datasets (Kegg Network, Road Network, US
//! Census 1990), ILSVRC2012 pixels and DeepGlobe 2018 satellite imagery —
//! none of which ship with this repository. Per-iteration Lloyd time
//! depends only on the shape `(n, k, d)` (every sample is compared against
//! every centroid regardless of content), so seeded generators matched in
//! shape and rough distributional character preserve everything the
//! evaluation measures, while also giving the *correctness* tests
//! ground-truth cluster structure to recover. Each generator documents the
//! original it stands in for.
//!
//! * [`synthetic`] — the general seeded Gaussian-mixture generator.
//! * [`uci`] — the three UCI stand-ins with the paper's exact `(n, d)`.
//! * [`imagenet`] — a streaming, virtual ILSVRC2012-like source: samples
//!   are generated on demand from the seed, so `d = 196,608` shapes never
//!   need 1 TB of RAM; small subsets materialise for functional runs.
//! * [`deepglobe`] — DeepGlobe-like synthetic scenes: a spatially-correlated
//!   7-class ground-truth map rendered to pixels, plus the block
//!   featurisation the land-cover example clusters.
//! * [`ppm`] — a minimal binary PPM writer/reader so examples can emit
//!   viewable classification maps without an image dependency.

pub mod csv;
pub mod deepglobe;
pub mod imagenet;
pub mod ppm;
pub mod synthetic;
pub mod uci;

pub use csv::{load_csv, read_csv, write_csv, CsvError};
pub use deepglobe::{SceneConfig, SyntheticScene, LAND_CLASSES};
pub use imagenet::ImageNetSource;
pub use synthetic::{GaussianMixture, LabelledData};
pub use uci::{kegg_network, road_network, us_census_1990, UciDataset};

/// Re-export of the streaming-source contract (defined in `kmeans-core`
/// so executors can consume sources without depending on this crate).
pub use kmeans_core::source::SampleSource;
