//! A streaming ILSVRC2012-like pixel source.
//!
//! The paper clusters raw ImageNet pixels at d ∈ {3,072 (32×32×3); 12,288
//! (64×64×3); 196,608 (256×256×3)} over n = 1,265,723 images — roughly a
//! terabyte at full resolution. This stand-in generates sample `i`
//! deterministically from `(seed, i)`: a few low-frequency cosine color
//! fields (images are spatially correlated, the property that matters for
//! clusterability) plus hash noise. Nothing is stored; full-scale shapes
//! exist only as recipes, and functional runs materialise small windows.

use crate::SampleSource;

/// Valid side×side×3 dimensionalities used in the paper.
pub const PAPER_DIMS: [usize; 3] = [3_072, 12_288, 196_608];

/// The paper's ILSVRC2012 subset size.
pub const PAPER_N: u64 = 1_265_723;

/// A virtual image dataset: `len` images of `side × side × 3` float pixels
/// in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageNetSource {
    len: u64,
    side: usize,
    seed: u64,
}

impl ImageNetSource {
    /// A source of `len` images with `d = side²·3` dimensions.
    pub fn new(len: u64, d: usize, seed: u64) -> Self {
        assert!(d.is_multiple_of(3), "d must be side²×3");
        let pixels = d / 3;
        let side = (pixels as f64).sqrt() as usize;
        assert_eq!(side * side * 3, d, "d = {d} is not a square image×3");
        ImageNetSource { len, side, seed }
    }

    /// The paper's configuration at one of its three resolutions.
    pub fn paper(d: usize) -> Self {
        assert!(PAPER_DIMS.contains(&d), "paper used d ∈ {PAPER_DIMS:?}");
        Self::new(PAPER_N, d, 0x1357)
    }

    pub fn side(&self) -> usize {
        self.side
    }
}

/// SplitMix64: cheap, high-quality stateless hashing for pixel noise.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn unit(x: u64) -> f32 {
    (x >> 40) as f32 / (1u64 << 24) as f32
}

impl SampleSource for ImageNetSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn dims(&self) -> usize {
        self.side * self.side * 3
    }

    fn fill(&self, index: u64, out: &mut [f32]) {
        assert_eq!(out.len(), self.dims());
        assert!(index < self.len, "image {index} out of {}", self.len);
        let img = splitmix(self.seed ^ index.wrapping_mul(0x2545F4914F6CDD1D));
        // Each image: 3 cosine fields with random phase/frequency per
        // channel (low-frequency structure), plus 20% hash noise.
        let mut params = [[0.0f32; 4]; 3];
        for (ch, p) in params.iter_mut().enumerate() {
            let h = splitmix(img ^ (ch as u64 + 1));
            p[0] = unit(h) * 0.8 + 0.1; // base level
            p[1] = unit(splitmix(h)) * 6.0; // x frequency
            p[2] = unit(splitmix(h ^ 2)) * 6.0; // y frequency
            p[3] = unit(splitmix(h ^ 3)) * std::f32::consts::TAU; // phase
        }
        let side = self.side;
        let inv = 1.0 / side as f32;
        for y in 0..side {
            for x in 0..side {
                let base = (y * side + x) * 3;
                for ch in 0..3 {
                    let p = &params[ch];
                    let wave =
                        0.25 * ((p[1] * x as f32 * inv + p[2] * y as f32 * inv + p[3]).cos());
                    let noise = 0.2 * (unit(splitmix(img ^ ((base + ch) as u64) << 3)) - 0.5);
                    out[base + ch] = (p[0] + wave + noise).clamp(0.0, 1.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shapes() {
        for d in PAPER_DIMS {
            let src = ImageNetSource::paper(d);
            assert_eq!(src.dims(), d);
            assert_eq!(src.len(), PAPER_N);
        }
        assert_eq!(ImageNetSource::paper(196_608).side(), 256);
    }

    #[test]
    #[should_panic(expected = "square image")]
    fn non_square_rejected() {
        let _ = ImageNetSource::new(10, 3 * 35, 0);
    }

    #[test]
    fn deterministic_and_distinct() {
        let src = ImageNetSource::new(100, 3_072, 5);
        let mut a = vec![0.0; 3_072];
        let mut b = vec![0.0; 3_072];
        src.fill(7, &mut a);
        src.fill(7, &mut b);
        assert_eq!(a, b);
        src.fill(8, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn pixels_are_normalised() {
        let src = ImageNetSource::new(10, 12_288, 1);
        let m = src.materialize(0, 10);
        for &v in m.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn images_are_spatially_correlated() {
        // Adjacent pixels must be far more similar than random pairs.
        let src = ImageNetSource::new(4, 3_072, 9);
        let mut img = vec![0.0f32; 3_072];
        src.fill(0, &mut img);
        let side = 32;
        let mut adjacent = 0.0f64;
        let mut distant = 0.0f64;
        let mut count = 0;
        for y in 0..side - 1 {
            for x in 0..side - 1 {
                let p = (y * side + x) * 3;
                let right = (y * side + x + 1) * 3;
                let far = (((y + side / 2) % side) * side + ((x + side / 2) % side)) * 3;
                adjacent += (img[p] - img[right]).abs() as f64;
                distant += (img[p] - img[far]).abs() as f64;
                count += 1;
            }
        }
        assert!(
            adjacent / count as f64 * 1.5 < distant / count as f64,
            "adjacent {adjacent} vs distant {distant}"
        );
    }

    #[test]
    fn materialize_windows_agree_with_fill() {
        let src = ImageNetSource::new(50, 3_072, 3);
        let m = src.materialize(10, 5);
        assert_eq!(m.rows(), 5);
        let mut direct = vec![0.0f32; 3_072];
        src.fill(12, &mut direct);
        assert_eq!(m.row(2), direct.as_slice());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_index_panics() {
        let src = ImageNetSource::new(5, 3_072, 0);
        let mut buf = vec![0.0f32; 3_072];
        src.fill(5, &mut buf);
    }
}
