//! Shape-matched stand-ins for the paper's three UCI benchmarks (Table II).
//!
//! | Stand-in            | Original                  | n         | d  |
//! |---------------------|---------------------------|-----------|----|
//! | [`kegg_network`]    | KEGG Metabolic Network    | 65,554    | 28 |
//! | [`road_network`]    | 3D Road Network (Jutland) | 434,874   | 4  |
//! | [`us_census_1990`]  | US Census 1990            | 2,458,285 | 68 |
//!
//! Substitution rationale (DESIGN.md §2): Lloyd per-iteration cost is
//! content-independent, so matching `(n, d)` preserves the performance
//! experiments exactly; the generators additionally mimic each dataset's
//! coarse character (road networks are near-planar coordinates, census
//! columns are small discrete codes, KEGG features are heavy-tailed
//! positive counts) so the *examples* cluster something meaningful.

use crate::synthetic::GaussianMixture;
use kmeans_core::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, LogNormal};

/// A named benchmark with the paper's shape and a scalable generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UciDataset {
    pub name: &'static str,
    /// Full sample count as reported in Table II.
    pub full_n: usize,
    pub d: usize,
    seed: u64,
    kind: Kind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Kegg,
    Road,
    Census,
}

/// KEGG Metabolic Relation Network (directed): 65,554 × 28 heavy-tailed
/// graph statistics.
pub fn kegg_network() -> UciDataset {
    UciDataset {
        name: "Kegg Network",
        full_n: 65_554,
        d: 28,
        seed: 0x6b65,
        kind: Kind::Kegg,
    }
}

/// 3D Road Network: 434,874 × 4 — near-planar spatial coordinates.
pub fn road_network() -> UciDataset {
    UciDataset {
        name: "Road Network",
        full_n: 434_874,
        d: 4,
        seed: 0x726f,
        kind: Kind::Road,
    }
}

/// US Census 1990: 2,458,285 × 68 small discrete demographic codes.
pub fn us_census_1990() -> UciDataset {
    UciDataset {
        name: "US Census 1990",
        full_n: 2_458_285,
        d: 68,
        seed: 0x6373,
        kind: Kind::Census,
    }
}

/// The three benchmarks in Table II order.
pub fn all() -> [UciDataset; 3] {
    [kegg_network(), road_network(), us_census_1990()]
}

impl UciDataset {
    /// Generate the first `n` samples (`n ≤ full_n`); use `full_n` for the
    /// paper's size. Deterministic per dataset.
    pub fn generate(&self, n: usize) -> Matrix<f32> {
        assert!(
            n <= self.full_n,
            "{} has only {} samples",
            self.name,
            self.full_n
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        match self.kind {
            Kind::Kegg => {
                // Heavy-tailed positive counts: log-normal per column with
                // column-specific scale.
                let scales: Vec<LogNormal<f64>> = (0..self.d)
                    .map(|c| LogNormal::new((c % 7) as f64 * 0.4, 1.0).unwrap())
                    .collect();
                let mut data = vec![0.0f32; n * self.d];
                for row in data.chunks_exact_mut(self.d) {
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = scales[c].sample(&mut rng) as f32;
                    }
                }
                Matrix::from_vec(n, self.d, data)
            }
            Kind::Road => {
                // Roads: points along jittered polylines in a lat/lon box
                // plus an altitude column and a segment-id-like column.
                let mut data = vec![0.0f32; n * self.d];
                let mut lat = 56.0f64;
                let mut lon = 9.5f64;
                for (i, row) in data.chunks_exact_mut(self.d).enumerate() {
                    if i % 257 == 0 {
                        lat = rng.gen_range(55.0..58.0);
                        lon = rng.gen_range(8.0..11.0);
                    }
                    lat += rng.gen_range(-0.001..0.001);
                    lon += rng.gen_range(-0.001..0.001);
                    row[0] = lon as f32;
                    row[1] = lat as f32;
                    row[2] = rng.gen_range(0.0..150.0); // altitude
                    row[3] = (i % 257) as f32; // position along segment
                }
                Matrix::from_vec(n, self.d, data)
            }
            Kind::Census => {
                // Discrete codes drawn from a mixture so clusters exist:
                // underlying demographic "profiles" quantised to integers.
                let mixture = GaussianMixture::new(n, self.d, 12)
                    .with_seed(self.seed)
                    .with_spread(4.0)
                    .with_noise(1.2);
                let mut m: Matrix<f32> = mixture.generate().data;
                for v in m.as_mut_slice() {
                    *v = v.round().clamp(-9.0, 9.0);
                }
                m
            }
        }
    }

    /// The k-sweep this dataset gets in Fig. 3 (Level 1).
    pub fn fig3_k_values(&self) -> &'static [usize] {
        match self.kind {
            Kind::Census => &[4, 8, 16, 32, 64],
            Kind::Road => &[64, 128, 256, 512, 1024],
            Kind::Kegg => &[16, 32, 64, 128, 256],
        }
    }

    /// The k-sweep this dataset gets in Fig. 4 (Level 2).
    pub fn fig4_k_values(&self) -> &'static [usize] {
        match self.kind {
            Kind::Census => &[256, 512, 1024, 2048, 4096],
            Kind::Road => &[6_250, 12_500, 25_000, 50_000, 100_000],
            Kind::Kegg => &[512, 1024, 2048, 4096, 8192],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_table2() {
        assert_eq!(kegg_network().full_n, 65_554);
        assert_eq!(kegg_network().d, 28);
        assert_eq!(road_network().full_n, 434_874);
        assert_eq!(road_network().d, 4);
        assert_eq!(us_census_1990().full_n, 2_458_285);
        assert_eq!(us_census_1990().d, 68);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = kegg_network().generate(100);
        let b = kegg_network().generate(100);
        assert_eq!(a, b);
    }

    #[test]
    fn kegg_is_positive_and_heavy_tailed() {
        let m = kegg_network().generate(2_000);
        let vals: Vec<f32> = m.as_slice().to_vec();
        assert!(vals.iter().all(|&v| v > 0.0));
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        let above = vals.iter().filter(|&&v| v > 3.0 * mean).count();
        // A log-normal tail: some extreme values, but a small minority.
        assert!(above > 0);
        assert!((above as f64) < 0.15 * vals.len() as f64);
    }

    #[test]
    fn road_points_live_in_jutland_box() {
        let m = road_network().generate(5_000);
        for i in 0..m.rows() {
            let row = m.row(i);
            assert!((7.5..11.5).contains(&row[0]), "lon {}", row[0]);
            assert!((54.5..58.5).contains(&row[1]), "lat {}", row[1]);
            assert!((0.0..150.0).contains(&row[2]));
        }
    }

    #[test]
    fn census_codes_are_small_integers() {
        let m = us_census_1990().generate(3_000);
        for &v in m.as_slice() {
            assert!(v.fract() == 0.0, "non-integer code {v}");
            assert!((-9.0..=9.0).contains(&v));
        }
    }

    #[test]
    fn k_sweeps_match_the_figures() {
        assert_eq!(us_census_1990().fig3_k_values().last(), Some(&64));
        assert_eq!(road_network().fig3_k_values().last(), Some(&1024));
        assert_eq!(kegg_network().fig3_k_values().last(), Some(&256));
        assert_eq!(road_network().fig4_k_values().last(), Some(&100_000));
    }

    #[test]
    #[should_panic(expected = "only")]
    fn oversampling_rejected() {
        let _ = kegg_network().generate(70_000);
    }
}
