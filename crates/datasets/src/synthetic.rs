//! Seeded Gaussian-mixture generation — the workhorse behind the UCI
//! stand-ins and the correctness tests.

use kmeans_core::{Matrix, Scalar};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Normal};

/// A dataset with its generating ground truth.
#[derive(Debug, Clone)]
pub struct LabelledData<S: Scalar> {
    pub data: Matrix<S>,
    /// Mixture component each sample was drawn from.
    pub truth: Vec<u32>,
    /// The component means.
    pub centers: Matrix<S>,
}

/// Configuration of a Gaussian mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianMixture {
    /// Samples to draw.
    pub n: usize,
    /// Dimensions.
    pub d: usize,
    /// Mixture components.
    pub components: usize,
    /// Half-width of the uniform cube the component means are drawn from.
    pub center_spread: f64,
    /// Standard deviation of each component.
    pub noise: f64,
    pub seed: u64,
}

impl GaussianMixture {
    pub fn new(n: usize, d: usize, components: usize) -> Self {
        GaussianMixture {
            n,
            d,
            components,
            center_spread: 10.0,
            noise: 1.0,
            seed: 0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    pub fn with_spread(mut self, spread: f64) -> Self {
        self.center_spread = spread;
        self
    }

    /// Draw the dataset. Samples rotate through components round-robin so
    /// every component has `≈ n / components` members.
    pub fn generate<S: Scalar>(&self) -> LabelledData<S> {
        assert!(self.components > 0 && self.d > 0);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut centers = Matrix::<S>::zeros(self.components, self.d);
        for j in 0..self.components {
            for u in 0..self.d {
                centers.set(
                    j,
                    u,
                    S::from_f64(rng.gen_range(-self.center_spread..self.center_spread)),
                );
            }
        }
        let normal = Normal::new(0.0, self.noise).expect("valid noise");
        let mut data = Matrix::<S>::zeros(self.n, self.d);
        let mut truth = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let j = i % self.components;
            truth.push(j as u32);
            for u in 0..self.d {
                let v = centers.get(j, u).to_f64() + normal.sample(&mut rng);
                data.set(i, u, S::from_f64(v));
            }
        }
        LabelledData {
            data,
            truth,
            centers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::{init_centroids, InitMethod, KMeansConfig, Lloyd};

    #[test]
    fn shape_and_balance() {
        let gm = GaussianMixture::new(100, 5, 4).with_seed(1);
        let out: LabelledData<f64> = gm.generate();
        assert_eq!(out.data.rows(), 100);
        assert_eq!(out.data.cols(), 5);
        assert_eq!(out.centers.rows(), 4);
        assert_eq!(out.truth.len(), 100);
        let counts = kmeans_core::objective::cluster_sizes(&out.truth, 4);
        assert_eq!(counts, vec![25, 25, 25, 25]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: LabelledData<f32> = GaussianMixture::new(50, 3, 2).with_seed(7).generate();
        let b: LabelledData<f32> = GaussianMixture::new(50, 3, 2).with_seed(7).generate();
        let c: LabelledData<f32> = GaussianMixture::new(50, 3, 2).with_seed(8).generate();
        assert_eq!(a.data, b.data);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn kmeans_recovers_well_separated_mixture() {
        let gm = GaussianMixture::new(300, 8, 3)
            .with_seed(42)
            .with_spread(50.0)
            .with_noise(0.5);
        let out: LabelledData<f64> = gm.generate();
        let init = init_centroids(&out.data, 3, InitMethod::KMeansPlusPlus, 9);
        let res = Lloyd::run_from(&out.data, init, &KMeansConfig::new(3)).unwrap();
        // Recovered centroids sit close to true centers: for each true
        // center there is a recovered centroid within a few noise σ.
        for j in 0..3 {
            let best = (0..3)
                .map(|r| kmeans_core::sq_euclidean(out.centers.row(j), res.centroids.row(r)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(best < 2.0, "true center {j} missed by {best}");
        }
    }

    #[test]
    fn noise_controls_tightness() {
        let tight: LabelledData<f64> = GaussianMixture::new(200, 4, 2)
            .with_noise(0.1)
            .with_seed(3)
            .generate();
        let loose: LabelledData<f64> = GaussianMixture::new(200, 4, 2)
            .with_noise(5.0)
            .with_seed(3)
            .generate();
        let spread = |ld: &LabelledData<f64>| {
            (0..ld.data.rows())
                .map(|i| {
                    kmeans_core::sq_euclidean(ld.data.row(i), ld.centers.row(ld.truth[i] as usize))
                })
                .sum::<f64>()
        };
        assert!(spread(&tight) < spread(&loose));
    }
}
