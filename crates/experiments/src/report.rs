//! Report tables: aligned console output plus CSV artifacts.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A rendered experiment: a title, column headers and string rows.
#[derive(Debug, Clone)]
pub struct Report {
    pub id: &'static str,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (deviations, context).
    pub notes: Vec<String>,
}

impl Report {
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            id,
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render the aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} — {} ===", self.id, self.title);
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Serialise as CSV (headers + rows; notes as trailing comments).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        for note in &self.notes {
            let _ = writeln!(out, "# {note}");
        }
        out
    }

    /// Print to stdout and save `out_dir/<id>.csv`.
    pub fn emit(&self, out_dir: &Path) -> PathBuf {
        print!("{}", self.render());
        std::fs::create_dir_all(out_dir).expect("create output dir");
        let path = out_dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv()).expect("write csv");
        println!("  -> {}", path.display());
        path
    }
}

/// Format seconds with sensible precision.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else if t >= 0.001 {
        format!("{t:.4}")
    } else {
        format!("{t:.2e}")
    }
}

/// Format an infeasible cell.
pub fn infeasible() -> String {
    "—".to_string()
}
