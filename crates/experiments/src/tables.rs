//! Tables I–III of the paper.

use crate::report::{secs, Report};
use perf_model::related::{table3_rows, BenderModel};
use perf_model::{best_level, CostModel, ProblemShape};

/// Table I: capability matrix of parallel k-means implementations. The
/// literature rows are the paper's own survey (fixed data); our row is
/// *derived* from the implemented constraint system rather than quoted.
pub fn table1() -> Report {
    let mut r = Report::new(
        "table1",
        "Parallel k-means implementations (capability matrix)",
        &["Approach", "Hardware", "Model", "n", "k", "d"],
    );
    let lit: [(&str, &str, &str, &str, &str, &str); 9] = [
        ("Böhm et al.", "Multi-core", "MIMD/SIMD", "1e7", "40", "20"),
        (
            "Hadian & Shahrivari",
            "Multi-core",
            "threads",
            "1e9",
            "100",
            "68",
        ),
        ("Zechner & Granitzer", "GPU", "CUDA", "1e6", "128", "200"),
        ("Li et al.", "GPU", "CUDA", "1e7", "512", "160"),
        ("Haut et al.", "Cloud", "OpenStack", "1e8", "8", "58"),
        ("Cui et al.", "Cluster", "Hadoop", "1e5", "100", "9"),
        ("Kumar et al.", "Jaguar (ORNL)", "MPI", "1e10", "1000", "30"),
        ("Cai et al.", "Gordon (SDSC)", "parallel R", "1e6", "8", "8"),
        (
            "Bender et al.",
            "Trinity (NNSA)",
            "OpenMP",
            "370",
            "18",
            "140,256",
        ),
    ];
    for (a, h, m, n, k, d) in lit {
        r.row(vec![
            a.into(),
            h.into(),
            m.into(),
            n.into(),
            k.into(),
            d.into(),
        ]);
    }
    // Our capability row, demonstrated by the constraint system: the
    // headline shape must be feasible under Level 3 on a large allocation.
    let model = CostModel::taihulight(4096);
    let headline = ProblemShape::f32(1_265_723, 160_000, 196_608);
    let feasible = model
        .iteration_time(&headline, perf_model::Level::L3)
        .is_ok();
    r.row(vec![
        "This repo (Level 3)".into(),
        "Sunway (simulated)".into(),
        "DMA/MPI".into(),
        "1e6".into(),
        "160,000".into(),
        "196,608".into(),
    ]);
    r.note(format!(
        "capability row verified against the implemented C1'' solver: feasible = {feasible}"
    ));
    let bender = BenderModel::trinity_knl();
    r.note(format!(
        "Bender two-level window check: k=18,d=140,256 feasible = {}, k=160,000,d=196,608 feasible = {}",
        bender.is_feasible(&ProblemShape::f32(370, 18, 140_256)),
        bender.is_feasible(&headline),
    ));
    r
}

/// Table II: benchmark inventory, cross-checked against the generators.
pub fn table2() -> Report {
    let mut r = Report::new(
        "table2",
        "Benchmarks (UCI + ImgNet stand-ins)",
        &["Data set", "n", "k (max used)", "d", "generator check"],
    );
    for ds in datasets::uci::all() {
        let sample = ds.generate(64);
        let check = format!("{}×{} ok", sample.rows(), sample.cols());
        let kmax = *ds.fig4_k_values().last().unwrap();
        r.row(vec![
            ds.name.into(),
            ds.full_n.to_string(),
            kmax.to_string(),
            ds.d.to_string(),
            check,
        ]);
    }
    let img = datasets::ImageNetSource::paper(196_608);
    use datasets::SampleSource;
    let m = img.materialize(0, 2);
    r.row(vec![
        "ILSVRC2012 (ImgNet)".into(),
        "1,265,723".into(),
        "160,000".into(),
        "196,608".into(),
        format!("{}×{} ok", m.rows(), m.cols()),
    ]);
    r.note("UCI/ImgNet data are seeded synthetic stand-ins — see DESIGN.md §2");
    r
}

/// Table III: execution-time comparison with other architectures. Published
/// baseline times are quoted; the Sunway column is *our model's* prediction
/// at the paper's node allotment, compared against the paper's reported
/// time and speedup.
pub fn table3() -> Report {
    let mut r = Report::new(
        "table3",
        "Execution time per iteration vs other architectures",
        &[
            "Approach",
            "n",
            "k",
            "d",
            "published (s)",
            "paper Sunway (s)",
            "model Sunway (s)",
            "paper speedup",
            "model speedup",
            "level",
        ],
    );
    for row in table3_rows() {
        let model = CostModel::taihulight(row.sunway_nodes);
        let shape = ProblemShape::f32(row.n, row.k, row.d);
        let (level, cost) = best_level(&model, &shape).expect("comparison shape must run");
        let ours = cost.total();
        r.row(vec![
            row.approach.into(),
            row.n.to_string(),
            row.k.to_string(),
            row.d.to_string(),
            secs(row.seconds_per_iter),
            secs(row.paper_sunway_seconds),
            secs(ours),
            format!("{:.0}x", row.paper_speedup),
            format!("{:.1}x", row.seconds_per_iter / ours),
            level.to_string(),
        ]);
    }
    r.note("published times are quoted from the cited papers; Sunway times are modelled");
    r.note(
        "per-phase composition of the modelled Sunway times: see `phase_trace` for the \
         measured breakdown and EXPERIMENTS.md for how to read it",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_ten_rows() {
        let t = table1();
        assert_eq!(t.rows.len(), 10);
        assert!(t.notes[0].contains("feasible = true"));
    }

    #[test]
    fn table2_lists_four_datasets() {
        let t = table2();
        assert_eq!(t.rows.len(), 4);
        assert!(t.rows[3][3].contains("196,608") || t.rows[3][3].contains("196608"));
    }

    #[test]
    fn table3_speedups_in_paper_ballpark() {
        let t = table3();
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let paper: f64 = row[7].trim_end_matches('x').parse().unwrap();
            let ours: f64 = row[8].trim_end_matches('x').parse().unwrap();
            // Within an order of magnitude of the paper's speedup in both
            // directions, and the win direction must match (speedup > 1).
            assert!(ours >= 1.0, "{}: model predicts a loss ({ours}x)", row[0]);
            assert!(
                ours / paper < 12.0 && paper / ours < 12.0,
                "{}: paper {paper}x vs model {ours}x",
                row[0]
            );
        }
    }
}
