//! Figures 3–9: the scaling studies, regenerated from the cost model with
//! scaled-down functional validation runs where the shape fits a host.

use crate::report::{infeasible, secs, Report};
use hier_kmeans::{fit, HierConfig};
use kmeans_core::{init_centroids, InitMethod, Matrix};
use perf_model::{find_crossover_d, CostModel, Level, ProblemShape};
use std::time::Instant;

/// Measured wall-time (ms) of one functional iteration at a scaled-down
/// shape, exercising the actual executor code path for `level`.
fn functional_ms(level: Level, data: &Matrix<f32>, k: usize, group_units: usize) -> f64 {
    let init = init_centroids(data, k, InitMethod::Forgy, 1);
    let units = match level {
        Level::L1 => 8,
        _ => 8,
    };
    let cfg = HierConfig {
        level,
        units,
        group_units: if level == Level::L1 { 1 } else { group_units },
        cpes_per_cg: 8,
        max_iters: 2,
        tol: 0.0,
        kernel: kmeans_core::AssignKernel::Scalar,
        ..HierConfig::new(level)
    };
    let start = Instant::now();
    let result = fit(data, init, &cfg).expect("functional run");
    assert_eq!(result.iterations, 2);
    start.elapsed().as_secs_f64() * 1e3 / 2.0
}

/// Fig. 3 — Level 1 over the three UCI datasets, one node.
pub fn fig3() -> Report {
    let mut r = Report::new(
        "fig3",
        "Level 1 (n-partition): iteration time vs k, 1 node",
        &[
            "dataset",
            "n",
            "d",
            "k",
            "model (s)",
            "paper axis (s)",
            "functional scaled (ms)",
        ],
    );
    let model = CostModel::taihulight(1);
    for ds in datasets::uci::all() {
        // Paper plot y-axis upper bounds, for magnitude comparison.
        let paper_axis = match ds.name {
            "Kegg Network" => 0.01,
            _ => 0.1,
        };
        // Scaled-down functional data: first min(n, 4096) samples.
        let n_func = ds.full_n.min(4_096);
        let data = ds.generate(n_func);
        for &k in ds.fig3_k_values() {
            let shape = ProblemShape::f32(ds.full_n as u64, k as u64, ds.d as u64);
            let cost = model
                .iteration_time(&shape, Level::L1)
                .expect("Fig. 3 configs are L1-feasible");
            let func = if k <= n_func / 4 {
                format!("{:.2}", functional_ms(Level::L1, &data, k, 1))
            } else {
                infeasible()
            };
            r.row(vec![
                ds.name.into(),
                ds.full_n.to_string(),
                ds.d.to_string(),
                k.to_string(),
                secs(cost.total()),
                secs(paper_axis),
                func,
            ]);
        }
    }
    r.note("time grows linearly in k within each dataset (paper's stated trend)");
    r.note("functional column: measured host ms/iter on a ≤4096-sample subset, 8 virtual CPEs");
    r
}

/// Fig. 4 — Level 2 over the three UCI datasets, up to 256 nodes.
pub fn fig4() -> Report {
    let mut r = Report::new(
        "fig4",
        "Level 2 (nk-partition): iteration time vs large k, 256 nodes",
        &[
            "dataset",
            "k",
            "group CPEs",
            "model (s)",
            "paper axis (s)",
            "functional scaled (ms)",
        ],
    );
    let model = CostModel::taihulight(256);
    for ds in datasets::uci::all() {
        let paper_axis = match ds.name {
            "Kegg Network" => 0.2,
            "Road Network" => 10.0,
            _ => 5.0,
        };
        let n_func = ds.full_n.min(2_048);
        let data = ds.generate(n_func);
        for &k in ds.fig4_k_values() {
            let shape = ProblemShape::f32(ds.full_n as u64, k as u64, ds.d as u64);
            let cost = model
                .iteration_time(&shape, Level::L2)
                .expect("Fig. 4 configs are L2-feasible");
            let func = if k <= 512 && k <= n_func / 4 {
                format!("{:.2}", functional_ms(Level::L2, &data, k, 4))
            } else {
                infeasible()
            };
            r.row(vec![
                ds.name.into(),
                k.to_string(),
                cost.plan.group_units.to_string(),
                secs(cost.total()),
                secs(paper_axis),
                func,
            ]);
        }
    }
    r.note("linear growth in k; Level 2 reaches k-ranges Level 1's C1 forbids");
    r
}

/// Fig. 5 — Level 3 over ImgNet: k × d sweep on 4,096 nodes.
pub fn fig5() -> Report {
    let mut r = Report::new(
        "fig5",
        "Level 3 (nkd-partition): ImgNet, k and d sweeps, 4,096 nodes",
        &["d", "k", "CG group", "model (s)", "phase"],
    );
    let model = CostModel::taihulight(4_096);
    for &d in &[3_072u64, 12_288, 196_608] {
        for &k in &[128u64, 256, 512, 1_024, 2_048] {
            let shape = ProblemShape::f32(datasets::imagenet::PAPER_N, k, d);
            let cost = model
                .iteration_time(&shape, Level::L3)
                .expect("Fig. 5 configs are L3-feasible");
            r.row(vec![
                d.to_string(),
                k.to_string(),
                cost.plan.group_units.to_string(),
                secs(cost.total()),
                cost.dominant_phase().into(),
            ]);
        }
    }
    r.note("paper headline: < 18 s/iter at d=196,608, k=2,000 (see fig6b)");
    r.note(
        "the `phase` column is the model's dominant phase; run `phase_trace` for the \
         measured per-phase breakdown of the same executors",
    );
    r
}

/// Fig. 6a — Level 3 extreme centroid scaling at d=3,072, 128 nodes.
pub fn fig6a() -> Report {
    let mut r = Report::new(
        "fig6a",
        "Level 3: scaling k to 160,000 at d=3,072, 128 nodes",
        &["k", "CG group", "spilled", "model (s)"],
    );
    let model = CostModel::taihulight(128);
    for &k in &[10_000u64, 20_000, 40_000, 80_000, 160_000] {
        let shape = ProblemShape::f32(datasets::imagenet::PAPER_N, k, 3_072);
        let cost = model
            .iteration_time(&shape, Level::L3)
            .expect("spill mode admits all Fig. 6a points");
        r.row(vec![
            k.to_string(),
            cost.plan.group_units.to_string(),
            cost.plan.spilled.to_string(),
            secs(cost.total()),
        ]);
    }
    r.note(
        "k=160,000 at 128 nodes violates the paper's own C1'' (needs ≥947 resident CGs, 512 \
         exist); our model runs it in documented DDR-spill mode — see EXPERIMENTS.md",
    );
    r
}

/// Fig. 6b — Level 3 node scaling at d=196,608, k=2,000 (the headline).
pub fn fig6b() -> Report {
    let mut r = Report::new(
        "fig6b",
        "Level 3: scaling nodes at d=196,608, k=2,000",
        &["nodes", "cores", "CG group", "spilled", "model (s)"],
    );
    for &nodes in &[256usize, 512, 1_024, 2_048, 4_096] {
        let model = CostModel::taihulight(nodes);
        let cost = model
            .iteration_time(&ProblemShape::imgnet_headline(), Level::L3)
            .expect("headline runs at every Fig. 6b allocation");
        r.row(vec![
            nodes.to_string(),
            (nodes * 260).to_string(),
            cost.plan.group_units.to_string(),
            cost.plan.spilled.to_string(),
            secs(cost.total()),
        ]);
    }
    r.note("paper headline: < 18 s per iteration at 4,096 nodes — compare the last row");
    r
}

/// Fig. 7 — Level 2 vs Level 3 over d at k=2,000, 128 nodes.
pub fn fig7() -> Report {
    let mut r = Report::new(
        "fig7",
        "L2 vs L3: varying d, k=2,000, n=1,265,723, 128 nodes",
        &["d", "L2 (s)", "L2 group", "L3 (s)", "L3 group", "winner"],
    );
    let model = CostModel::taihulight(128);
    for step in 1..=16u64 {
        let d = step * 512;
        let shape = ProblemShape::f32(1_265_723, 2_000, d);
        let l2 = model.iteration_time_strict(&shape, Level::L2);
        let l3 = model.iteration_time(&shape, Level::L3).unwrap();
        let (l2_s, l2_g, winner) = match &l2 {
            Ok(c) => (
                secs(c.total()),
                c.plan.group_units.to_string(),
                if c.total() < l3.total() { "L2" } else { "L3" },
            ),
            Err(_) => (infeasible(), infeasible(), "L3 (L2 infeasible)"),
        };
        r.row(vec![
            d.to_string(),
            l2_s,
            l2_g,
            secs(l3.total()),
            l3.plan.group_units.to_string(),
            winner.into(),
        ]);
    }
    let crossover = find_crossover_d(&model, 1_265_723, 2_000, 512, 8_192, 512);
    r.note(format!(
        "model crossover at d = {:?}; paper reports Level 3 winning for d > 2,560",
        crossover
    ));
    r.note("paper: Level 2 cannot run d > 4,096 (memory) — matches the strict C2' wall");
    r
}

/// Fig. 8 — Level 2 vs Level 3 over k at d=4,096, 128 nodes.
pub fn fig8() -> Report {
    let mut r = Report::new(
        "fig8",
        "L2 vs L3: varying k, d=4,096, 128 nodes",
        &[
            "k",
            "L2 (s)",
            "L2 spilled",
            "L3 (s)",
            "L3 spilled",
            "L3/L2 gap (s)",
        ],
    );
    let model = CostModel::taihulight(128);
    let mut k = 256u64;
    while k <= 131_072 {
        let shape = ProblemShape::f32(1_265_723, k, 4_096);
        let l3 = model.iteration_time(&shape, Level::L3).unwrap();
        let l2 = model.iteration_time(&shape, Level::L2);
        let (l2_s, l2_spill, gap) = match &l2 {
            Ok(c) => (
                secs(c.total()),
                c.plan.spilled.to_string(),
                secs(c.total() - l3.total()),
            ),
            Err(_) => (infeasible(), infeasible(), infeasible()),
        };
        r.row(vec![
            k.to_string(),
            l2_s,
            l2_spill,
            secs(l3.total()),
            l3.plan.spilled.to_string(),
            gap,
        ]);
        k *= 2;
    }
    r.note("paper: at d=4,096 Level 3 always outperforms Level 2, gap grows with k");
    r
}

/// Fig. 9 — Level 2 vs Level 3 over nodes at d=4,096, k=2,000.
pub fn fig9() -> Report {
    let mut r = Report::new(
        "fig9",
        "L2 vs L3: varying nodes, d=4,096, k=2,000",
        &["nodes", "L2 (s)", "L3 (s)", "gap (s)"],
    );
    let shape = ProblemShape::f32(1_265_723, 2_000, 4_096);
    for &nodes in &[2usize, 4, 8, 16, 32, 64, 128, 256] {
        let model = CostModel::taihulight(nodes);
        let l2 = model.iteration_time(&shape, Level::L2).unwrap();
        let l3 = model.iteration_time(&shape, Level::L3).unwrap();
        r.row(vec![
            nodes.to_string(),
            secs(l2.total()),
            secs(l3.total()),
            secs(l2.total() - l3.total()),
        ]);
    }
    r.note("paper: Level 3 wins at every allocation; the absolute gap narrows with nodes");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shows_linear_growth_in_k() {
        let r = fig3();
        assert_eq!(r.rows.len(), 15);
        // Within each dataset the model column is non-decreasing in k.
        for ds in 0..3 {
            let times: Vec<f64> = (0..5)
                .map(|i| r.rows[ds * 5 + i][4].parse().unwrap())
                .collect();
            for w in times.windows(2) {
                assert!(w[1] >= w[0] * 0.99, "{times:?}");
            }
        }
    }

    #[test]
    fn fig7_l2_dies_after_4096() {
        let r = fig7();
        assert_eq!(r.rows.len(), 16);
        for row in &r.rows {
            let d: u64 = row[0].parse().unwrap();
            if d > 4_096 {
                assert_eq!(row[1], "—", "L2 must be infeasible at d={d}");
            } else {
                assert_ne!(row[1], "—", "L2 must run at d={d}");
            }
        }
    }

    #[test]
    fn fig8_l3_always_wins() {
        let r = fig8();
        for row in &r.rows {
            if row[1] == "—" {
                continue;
            }
            let l2: f64 = row[1].parse().unwrap();
            let l3: f64 = row[3].parse().unwrap();
            assert!(l3 < l2, "k={}: L3 {l3} vs L2 {l2}", row[0]);
        }
    }

    #[test]
    fn fig6b_headline_under_18s() {
        let r = fig6b();
        let last: f64 = r.rows.last().unwrap()[4].parse().unwrap();
        assert!(last < 18.0, "headline {last} s");
    }

    #[test]
    fn fig9_monotone_scaling() {
        let r = fig9();
        let l3: Vec<f64> = r.rows.iter().map(|row| row[2].parse().unwrap()).collect();
        for w in l3.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "{l3:?}");
        }
    }

    #[test]
    fn functional_runs_execute() {
        // Smoke: the scaled functional path actually runs both levels.
        let data = datasets::uci::kegg_network().generate(256);
        let ms1 = functional_ms(Level::L1, &data, 8, 1);
        let ms2 = functional_ms(Level::L2, &data, 8, 4);
        let ms3 = functional_ms(Level::L3, &data, 8, 2);
        assert!(ms1 > 0.0 && ms2 > 0.0 && ms3 > 0.0);
    }
}
