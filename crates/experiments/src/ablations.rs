//! Ablation experiments: quantifying the design choices DESIGN.md calls
//! out, beyond what the paper itself plots.

use crate::report::{secs, Report};
use perf_model::{Calibration, CostModel, Level, ProblemShape};
use sw_arch::{CgGroupPlacement, Machine, MachineParams, PlacementPolicy};

/// Register communication vs DMA-only intra-CG reduction: how much the
/// 8×8 mesh buses buy the Assign merge, across the Fig. 7 d-sweep.
pub fn abl_regcomm() -> Report {
    let mut r = Report::new(
        "abl_regcomm",
        "Ablation: register communication vs DMA-only mesh reduction",
        &[
            "d",
            "assign_comm with reg (s)",
            "assign_comm without (s)",
            "slowdown",
        ],
    );
    let stock = CostModel::taihulight(128);
    let mut no_reg = stock;
    no_reg.machine.params = MachineParams::taihulight().without_register_communication();
    for &d in &[1_024u64, 4_096, 49_152, 196_608] {
        let shape = ProblemShape::f32(1_265_723, 2_000, d);
        let with = stock.iteration_time(&shape, Level::L3).unwrap();
        let without = no_reg.iteration_time(&shape, Level::L3).unwrap();
        r.row(vec![
            d.to_string(),
            secs(with.assign_comm),
            secs(without.assign_comm),
            format!("{:.2}x", without.assign_comm / with.assign_comm),
        ]);
    }
    r.note("the paper cites a 3–4× register-comm advantage for the reduction bottleneck");
    r
}

/// Topology-aware vs scattered CG-group placement: the paper asserts a CG
/// group should stay inside one super-node; quantify the link-class
/// downgrade when it doesn't.
pub fn abl_placement() -> Report {
    let mut r = Report::new(
        "abl_placement",
        "Ablation: topology-aware vs round-robin CG-group placement",
        &[
            "nodes",
            "groups × size",
            "aware intra-class",
            "scatter intra-class",
            "update slowdown",
        ],
    );
    for &nodes in &[512usize, 1_024, 4_096] {
        let machine = Machine::taihulight(nodes);
        let cgs = machine.total_cgs();
        let group_size = 64;
        let n_groups = cgs / group_size;
        let aware = CgGroupPlacement::new(
            &machine,
            n_groups,
            group_size,
            PlacementPolicy::TopologyAware,
        )
        .unwrap();
        let scatter = CgGroupPlacement::new(
            &machine,
            n_groups,
            group_size,
            PlacementPolicy::RoundRobinScatter,
        )
        .unwrap();
        let aware_class = aware.worst_intra_group_class(&machine);
        let scatter_class = scatter.worst_intra_group_class(&machine);
        let slowdown =
            aware_class.bandwidth(&machine.params) / scatter_class.bandwidth(&machine.params);
        r.row(vec![
            nodes.to_string(),
            format!("{n_groups} × {group_size}"),
            format!("{aware_class:?}"),
            format!("{scatter_class:?}"),
            format!("{slowdown:.1}x"),
        ]);
    }
    r.note("scattered groups cross super-nodes and pay the tapered up-link on every sample merge");
    r
}

/// Merge batching: the per-sample argmin merges are latency-bound; sweep
/// the batch size on the headline configuration.
pub fn abl_batch() -> Report {
    let mut r = Report::new(
        "abl_batch",
        "Ablation: argmin-merge batch size (headline config, 4,096 nodes)",
        &["batch", "assign_comm (s)", "total (s)"],
    );
    let shape = ProblemShape::imgnet_headline();
    for &batch in &[1.0f64, 4.0, 32.0, 256.0] {
        let model = CostModel::new(
            Machine::taihulight(4_096),
            Calibration {
                merge_batch: batch,
                ..Calibration::default()
            },
        );
        let cost = model.iteration_time(&shape, Level::L3).unwrap();
        r.row(vec![
            format!("{batch:.0}"),
            secs(cost.assign_comm),
            secs(cost.total()),
        ]);
    }
    r.note("unbatched merges pay a network latency per sample per round — untenable at n=1.27M");
    r
}

/// Hypothetical-hardware ablation: how much scratchpad would fix Fig. 6a's
/// spill? Sweep the per-CPE LDM size at k=160,000, d=3,072 on 128 nodes.
pub fn abl_spill() -> Report {
    let mut r = Report::new(
        "abl_spill",
        "Ablation: LDM capacity (k=160,000, d=3,072, 128 nodes)",
        &["LDM per CPE", "spilled", "CG group", "model (s)"],
    );
    let shape = ProblemShape::f32(1_265_723, 160_000, 3_072);
    for &kb in &[64usize, 128, 256, 512] {
        let mut machine = Machine::taihulight(128);
        machine.params.ldm_bytes = kb * 1024;
        let model = CostModel::new(machine, Calibration::default());
        let cost = model.iteration_time(&shape, Level::L3).unwrap();
        r.row(vec![
            format!("{kb} KB"),
            cost.plan.spilled.to_string(),
            cost.plan.group_units.to_string(),
            secs(cost.total()),
        ]);
    }
    r.note("the 64 KB SW26010 scratchpad spills at this shape; ~2x more LDM makes it resident");
    r
}

/// Weak scaling (beyond the paper): constant samples per node — near-flat
/// iteration time is the design goal C1'' enables.
pub fn weak_scaling() -> Report {
    let mut r = Report::new(
        "weak_scaling",
        "Weak scaling: 10,000 samples/node, k=1,024, d=3,072 (Level 3)",
        &["nodes", "n", "model (s)", "efficiency"],
    );
    let series =
        perf_model::weak_scaling(10_000, 1_024, 3_072, Level::L3, &[64, 128, 256, 512, 1_024]);
    let base = series[0].1.unwrap();
    for (nodes, t) in series {
        let t = t.unwrap();
        r.row(vec![
            nodes.to_string(),
            (10_000 * nodes).to_string(),
            secs(t),
            format!("{:.2}", base / t),
        ]);
    }
    r.note("ideal weak scaling holds time constant; collective terms grow logarithmically");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regcomm_ablation_shows_a_slowdown() {
        let r = abl_regcomm();
        for row in &r.rows {
            let slowdown: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(slowdown >= 1.0, "{row:?}");
        }
    }

    #[test]
    fn placement_ablation_downgrades_link_class() {
        let r = abl_placement();
        // At 512+ nodes, scattered groups always cross super-nodes.
        for row in &r.rows {
            assert!(row[3].contains("InterSupernode"), "{row:?}");
        }
    }

    #[test]
    fn batch_ablation_is_monotone() {
        let r = abl_batch();
        let times: Vec<f64> = r.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        for w in times.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "{times:?}");
        }
        // Unbatched must be dramatically worse.
        assert!(times[0] > times.last().unwrap() * 10.0);
    }

    #[test]
    fn weak_scaling_is_near_flat() {
        let r = weak_scaling();
        let eff: Vec<f64> = r.rows.iter().map(|row| row[3].parse().unwrap()).collect();
        for e in &eff {
            assert!(*e > 0.5, "weak-scaling efficiency collapsed: {eff:?}");
        }
    }

    #[test]
    fn ldm_ablation_unspills_and_speeds_up() {
        let r = abl_spill();
        assert_eq!(r.rows[0][1], "true", "64 KB must spill: {:?}", r.rows[0]);
        assert_eq!(
            r.rows.last().unwrap()[1],
            "false",
            "512 KB must be resident"
        );
        let t0: f64 = r.rows[0][3].parse().unwrap();
        let t3: f64 = r.rows.last().unwrap()[3].parse().unwrap();
        assert!(t3 < t0, "more LDM must not slow things down: {t0} -> {t3}");
    }
}
