//! `phase_trace`: the observability layer read back through its own
//! registry. Runs an instrumented scaled-down fit at every hierarchy
//! level and reports the measured per-phase critical path, communication
//! volume and assign imbalance — the measured counterpart to the modelled
//! phase columns of Fig. 5 and Table III.

use crate::report::Report;
use hier_kmeans::{fit, HierConfig};
use kmeans_core::{init_centroids, AssignKernel, InitMethod};
use perf_model::Level;
use swkm_obs::MetricsRegistry;

/// One instrumented run, reported exclusively through the registry —
/// exactly what a `--metrics-json` consumer sees.
fn traced_row(level: Level, k: usize, group_units: usize, kernel: AssignKernel) -> Vec<String> {
    let data = datasets::uci::kegg_network().generate(1_024);
    let init = init_centroids(&data, k, InitMethod::Forgy, 1);
    let cfg = HierConfig {
        level,
        units: 8,
        group_units: if level == Level::L1 { 1 } else { group_units },
        cpes_per_cg: 8,
        max_iters: 3,
        tol: 0.0,
        kernel,
        ..HierConfig::new(level)
    };
    let result = fit(&data, init, &cfg).expect("phase_trace run");
    let registry = MetricsRegistry::new();
    result.export_metrics(&registry);

    let ms = |name: &str| format!("{:.2}", registry.gauge(name).expect("exported gauge") * 1e3);
    let wall = registry.gauge("train_wall_s").expect("exported gauge");
    let phase_sum = ["assign", "merge", "update", "exchange"]
        .iter()
        .map(|p| registry.gauge(&format!("train_{p}_s")).unwrap())
        .sum::<f64>();
    let short = match level {
        Level::L1 => "L1",
        Level::L2 => "L2",
        Level::L3 => "L3",
    };
    vec![
        short.to_string(),
        ms("train_assign_s"),
        ms("train_merge_s"),
        ms("train_update_s"),
        ms("train_exchange_s"),
        format!("{:.2}", wall * 1e3),
        format!("{:.2}", phase_sum / wall.max(1e-12)),
        registry.counter("comm_total_bytes").to_string(),
        registry.counter("comm_total_messages").to_string(),
        format!(
            "{:.2}x",
            registry.gauge("train_assign_imbalance").expect("gauge")
        ),
    ]
}

/// The `phase_trace` experiment: measured per-phase breakdown per level,
/// with every level's Assign routed through `kernel`.
pub fn phase_trace_with(kernel: AssignKernel) -> Report {
    let mut r = Report::new(
        "phase_trace",
        "Measured per-phase critical path via the metrics registry (Kegg 1024×28, k=16, 3 iters)",
        &[
            "level",
            "assign (ms)",
            "merge (ms)",
            "update (ms)",
            "exchange (ms)",
            "wall (ms)",
            "sum/wall",
            "comm bytes",
            "comm msgs",
            "imbalance",
        ],
    );
    for (level, group_units) in [(Level::L1, 1), (Level::L2, 4), (Level::L3, 2)] {
        r.row(traced_row(level, 16, group_units, kernel));
    }
    r.note(format!("assign kernel: {kernel}"));
    r.note("values read back through swkm_obs::MetricsRegistry — same source as `swkm fit --metrics-json`");
    r.note(
        "sum/wall is critical-path phase total over max-rank wall; it can exceed 1 \
         when the per-phase maxima land on different ranks",
    );
    r.note("exchange is nonzero only at Level 3 (the dimension-sliced accumulation)");
    r
}

/// The `event_trace` experiment: the same scaled-down fit, observed at
/// event level. Each hierarchy level runs with a `TraceBuffer` attached
/// and the report counts the per-rank phase and collective spans the run
/// emitted — the raw material `swkm fit --trace-out` exports for
/// Perfetto — and checks the traced durations against the registry
/// aggregates (same measurements, so the ratio is ~1).
pub fn event_trace() -> Report {
    let mut r = Report::new(
        "event_trace",
        "Event-level trace census per level (Kegg 1024×28, k=16, 3 iters)",
        &[
            "level",
            "events",
            "phase spans",
            "comm spans",
            "ranks",
            "traced/registry assign",
            "dropped",
        ],
    );
    for (level, group_units) in [(Level::L1, 1), (Level::L2, 4), (Level::L3, 2)] {
        let data = datasets::uci::kegg_network().generate(1_024);
        let init = init_centroids(&data, 16, InitMethod::Forgy, 1);
        let buf = swkm_obs::TraceBuffer::shared(1 << 15);
        let cfg = HierConfig {
            level,
            units: 8,
            group_units: if level == Level::L1 { 1 } else { group_units },
            cpes_per_cg: 8,
            max_iters: 3,
            tol: 0.0,
            trace: Some(std::sync::Arc::clone(&buf)),
            ..HierConfig::new(level)
        };
        let result = fit(&data, init, &cfg).expect("event_trace run");
        let registry = MetricsRegistry::new();
        result.export_metrics(&registry);
        let events = buf.snapshot();
        let phase_spans = events.iter().filter(|e| e.proc == "train").count();
        let comm_spans = events.iter().filter(|e| e.proc == "comm").count();
        let ranks = events.iter().map(|e| e.track).max().map_or(0, |t| t + 1);
        let traced_assign: f64 = events
            .iter()
            .filter(|e| e.proc == "train" && e.name == "assign")
            .map(|e| e.dur_ns as f64 / 1e9)
            .sum();
        let registry_assign: f64 = (0..ranks)
            .map(|rank| result.trace.rank_total(rank as usize).assign)
            .sum();
        let short = match level {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::L3 => "L3",
        };
        r.row(vec![
            short.to_string(),
            events.len().to_string(),
            phase_spans.to_string(),
            comm_spans.to_string(),
            ranks.to_string(),
            format!("{:.3}", traced_assign / registry_assign.max(1e-12)),
            buf.stats().dropped.to_string(),
        ]);
    }
    r.note("phase spans: assign/merge/update/exchange/iteration per rank per iteration");
    r.note("comm spans: one per collective per participating rank");
    r.note("export the same events with `swkm fit --trace-out trace.json` and open in Perfetto");
    r
}

/// The `phase_trace` experiment with the default (exact scalar) kernel.
#[cfg(test)]
fn phase_trace() -> Report {
    phase_trace_with(AssignKernel::Scalar)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_trace_covers_all_levels() {
        let r = phase_trace();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], "L1");
        assert_eq!(r.rows[2][0], "L3");
        // L1/L2 have no exchange phase; L3 must report one.
        assert_eq!(r.rows[0][4], "0.00");
        let l3_exchange: f64 = r.rows[2][4].parse().unwrap();
        assert!(l3_exchange > 0.0, "L3 exchange phase missing: {r:?}");
        // Communication happened and was accounted at every level.
        for row in &r.rows {
            let bytes: u64 = row[7].parse().unwrap();
            let msgs: u64 = row[8].parse().unwrap();
            assert!(bytes > 0 && msgs > 0, "{row:?}");
        }
    }

    #[test]
    fn phase_trace_runs_with_the_tiled_kernel() {
        let r = phase_trace_with(AssignKernel::Tiled);
        assert_eq!(r.rows.len(), 3);
        assert!(r.notes.iter().any(|n| n.contains("tiled")), "{:?}", r.notes);
    }

    #[test]
    fn event_trace_counts_are_balanced_and_agree_with_the_registry() {
        let r = event_trace();
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            let events: usize = row[1].parse().unwrap();
            let phase: usize = row[2].parse().unwrap();
            let comm: usize = row[3].parse().unwrap();
            let dropped: u64 = row[6].parse().unwrap();
            assert_eq!(events, phase + comm, "{row:?}");
            assert!(phase > 0 && comm > 0, "{row:?}");
            assert_eq!(dropped, 0, "{row:?}");
            // Traced and registry assign totals are the same measurement.
            let ratio: f64 = row[5].parse().unwrap();
            assert!((ratio - 1.0).abs() < 0.05, "{}: ratio {ratio}", row[0]);
        }
    }

    #[test]
    fn phase_sum_tracks_wall() {
        let r = phase_trace();
        for row in &r.rows {
            let ratio: f64 = row[6].parse().unwrap();
            // The traced phases must account for most of the wall time
            // (they exclude only convergence checks and loop overhead) and
            // cannot exceed it by more than the cross-rank maxima slack.
            assert!(
                ratio > 0.5 && ratio < 2.5,
                "{}: phase sum / wall = {ratio}",
                row[0]
            );
        }
    }
}
