//! Fig. 10 — the land-cover classification application, end to end.
//!
//! A synthetic DeepGlobe-like scene is generated, featurised into per-pixel
//! blocks, clustered into 7 classes with the Level-3 executor, rendered to
//! PPM masks (ground truth, satellite view, recovered classes), and scored
//! against ground truth. The paper-scale configuration (n = 5,838,480,
//! d = 4,096, k = 7 on 400 nodes) is additionally priced by the model.

use crate::report::{secs, Report};
use datasets::{SceneConfig, SyntheticScene};
use hier_kmeans::{fit, HierConfig};
use kmeans_core::{init_centroids, AssignKernel, InitMethod};
use perf_model::{CostModel, Level, ProblemShape};
use std::path::Path;

pub fn fig10(out_dir: &Path) -> Report {
    let mut r = Report::new(
        "fig10",
        "Land-cover classification (DeepGlobe-like, Level 3)",
        &["stage", "value"],
    );
    // ---- Functional run at laptop scale. ----
    let scene = SyntheticScene::generate(SceneConfig::small(2018));
    let block = 3; // d = 27 features per pixel
    let features = scene.block_features(block);
    let k = 7;
    let init = init_centroids(&features, k, InitMethod::KMeansPlusPlus, 42);
    let cfg = HierConfig {
        level: Level::L3,
        units: 8,
        group_units: 2,
        cpes_per_cg: 4,
        max_iters: 30,
        tol: 1e-6,
        kernel: AssignKernel::Scalar,
        ..HierConfig::new(Level::L3)
    };
    let result = fit(&features, init, &cfg).expect("landcover clustering");
    let accuracy = scene.clustering_accuracy(&result.labels, k);
    r.row(vec![
        "scene".into(),
        format!(
            "{}×{} px, {} classes, block {block} → d={}",
            scene.config.width,
            scene.config.height,
            datasets::LAND_CLASSES.len(),
            features.cols()
        ),
    ]);
    r.row(vec![
        "clustering".into(),
        format!(
            "{} iterations, converged = {}, objective = {:.4}",
            result.iterations, result.converged, result.objective
        ),
    ]);
    r.row(vec![
        "class recovery".into(),
        format!(
            "{:.1}% of pixels (optimal cluster→class matching)",
            accuracy * 100.0
        ),
    ]);

    std::fs::create_dir_all(out_dir).expect("output dir");
    for (name, image) in [
        ("fig10_truth.ppm", scene.truth_mask()),
        ("fig10_satellite.ppm", scene.satellite()),
        ("fig10_clusters.ppm", scene.label_mask(&result.labels)),
    ] {
        let path = out_dir.join(name);
        image.save_ppm(&path).expect("write ppm");
        r.row(vec!["image".into(), path.display().to_string()]);
    }

    // ---- Paper-scale cost. ----
    let paper_shape = ProblemShape::f32(5_838_480, 7, 4_096);
    let model = CostModel::taihulight(400);
    match model.iteration_time(&paper_shape, Level::L3) {
        Ok(cost) => r.row(vec![
            "paper scale".into(),
            format!(
                "n=5,838,480 d=4,096 k=7 on 400 nodes → {} s/iter (model)",
                secs(cost.total())
            ),
        ]),
        Err(e) => r.row(vec!["paper scale".into(), format!("infeasible: {e}")]),
    }
    r.note("paper processes one DeepGlobe tile with 400 SW26010 processors");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn landcover_pipeline_recovers_most_classes() {
        let dir = std::env::temp_dir().join("sunway_kmeans_fig10_test");
        let r = fig10(&dir);
        let recovery_row = r
            .rows
            .iter()
            .find(|row| row[0] == "class recovery")
            .unwrap();
        let pct: f64 = recovery_row[1].split('%').next().unwrap().parse().unwrap();
        assert!(pct > 60.0, "class recovery only {pct}%");
        // The three PPMs exist and parse back.
        for name in [
            "fig10_truth.ppm",
            "fig10_satellite.ppm",
            "fig10_clusters.ppm",
        ] {
            let bytes = std::fs::read(dir.join(name)).unwrap();
            let img = datasets::ppm::Image::read_ppm(bytes.as_slice()).unwrap();
            assert_eq!(img.width(), 192);
        }
    }
}
