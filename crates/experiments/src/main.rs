//! Experiment harness: regenerates every table and figure of the SC'18
//! evaluation.
//!
//! ```text
//! cargo run -p experiments --release -- all
//! cargo run -p experiments --release -- fig7 fig8
//! cargo run -p experiments --release -- --out /tmp/exp fig10
//! ```
//!
//! Each experiment prints an aligned table (with the paper's reference
//! values or axis magnitudes alongside) and writes a CSV under the output
//! directory (default `target/experiments`).

mod ablations;
mod fig10;
mod figs;
mod obs_trace;
mod report;
mod tables;

use report::Report;
use std::path::{Path, PathBuf};

const EXPERIMENTS: [&str; 19] = [
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "abl_regcomm",
    "abl_placement",
    "abl_batch",
    "abl_spill",
    "weak_scaling",
    "phase_trace",
    "event_trace",
];

fn usage() -> ! {
    eprintln!("usage: experiments [--out DIR] [--kernel scalar|expanded|tiled] <experiment>...");
    eprintln!("experiments: {} | all", EXPERIMENTS.join(" | "));
    std::process::exit(2);
}

fn run_one(name: &str, out_dir: &Path, kernel: kmeans_core::AssignKernel) -> Report {
    match name {
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "table3" => tables::table3(),
        "fig3" => figs::fig3(),
        "fig4" => figs::fig4(),
        "fig5" => figs::fig5(),
        "fig6a" => figs::fig6a(),
        "fig6b" => figs::fig6b(),
        "fig7" => figs::fig7(),
        "fig8" => figs::fig8(),
        "fig9" => figs::fig9(),
        "fig10" => fig10::fig10(out_dir),
        "abl_regcomm" => ablations::abl_regcomm(),
        "abl_placement" => ablations::abl_placement(),
        "abl_batch" => ablations::abl_batch(),
        "abl_spill" => ablations::abl_spill(),
        "weak_scaling" => ablations::weak_scaling(),
        "phase_trace" => obs_trace::phase_trace_with(kernel),
        "event_trace" => obs_trace::event_trace(),
        other => {
            eprintln!("unknown experiment `{other}`");
            usage()
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("target/experiments");
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        if pos + 1 >= args.len() {
            usage();
        }
        out_dir = PathBuf::from(args.remove(pos + 1));
        args.remove(pos);
    }
    // `--kernel` selects the assign kernel for the experiments that run
    // real training loops (currently `phase_trace`).
    let mut kernel = kmeans_core::AssignKernel::Scalar;
    if let Some(pos) = args.iter().position(|a| a == "--kernel") {
        if pos + 1 >= args.len() {
            usage();
        }
        match kmeans_core::AssignKernel::parse(&args.remove(pos + 1)) {
            Ok(k) => kernel = k,
            Err(e) => {
                eprintln!("{e}");
                usage();
            }
        }
        args.remove(pos);
    }
    if args.is_empty() {
        usage();
    }
    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    println!(
        "Regenerating {} experiment(s); CSV output in {}",
        selected.len(),
        out_dir.display()
    );
    for name in selected {
        let report = run_one(name, &out_dir, kernel);
        report.emit(&out_dir);
    }
}
