//! Adapter from the store's [`Vfs`] backends to the flight recorder's
//! [`DumpSink`](swkm_obs::DumpSink).
//!
//! `swkm-obs` sits below this crate in the dependency graph, so the
//! recorder cannot name `Vfs` directly; this adapter closes the loop.
//! Dumps inherit whatever atomicity the backend provides — with
//! [`StdVfs`](crate::StdVfs) that is the temp-file + fsync + rename
//! protocol, so a flight dump can never be observed half-written even if
//! the process dies mid-trigger.

use crate::vfs::Vfs;
use swkm_obs::DumpSink;

/// Wrap any thread-safe [`Vfs`] as a flight-recorder dump sink.
#[derive(Debug, Clone)]
pub struct VfsSink<V> {
    vfs: V,
}

impl<V: Vfs + Send + Sync> VfsSink<V> {
    pub fn new(vfs: V) -> Self {
        VfsSink { vfs }
    }

    pub fn into_inner(self) -> V {
        self.vfs
    }
}

impl<V: Vfs + Send + Sync> DumpSink for VfsSink<V> {
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), String> {
        self.vfs
            .write_atomic(name, bytes)
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::SharedMemVfs;
    use std::sync::Arc;
    use swkm_obs::{FlightRecorder, TraceBuffer, Tracer};

    #[test]
    fn flight_recorder_dumps_through_a_vfs() {
        let buf = TraceBuffer::shared(64);
        let t = Tracer::new(Arc::clone(&buf), "serve", 0);
        let s = t.begin();
        t.complete("execute", s);
        let vfs = SharedMemVfs::new();
        let rec = FlightRecorder::new(
            Arc::clone(&buf),
            Box::new(VfsSink::new(vfs.clone())),
            4,
            1024,
        );
        let name = rec.trigger("all_shards_down").unwrap();
        let body = vfs.read(&name).unwrap();
        let text = String::from_utf8(body).unwrap();
        assert!(text.starts_with('{'));
        assert!(text.contains("\"execute\""));
        // The dump is listed like any other store file.
        assert!(vfs.list().unwrap().contains(&name));
    }

    #[test]
    fn sink_reports_vfs_errors_as_strings() {
        let sink = VfsSink::new(SharedMemVfs::new());
        let err = sink.write_atomic("bad/name", b"x").unwrap_err();
        assert!(err.contains("bad/name"));
    }
}
