//! The write-ahead manifest log.
//!
//! Every edit to the store — a new artifact generation, a live-generation
//! bump, a model deletion — is appended to `MANIFEST.log` *before* the
//! in-memory registry reflects it. Each record is framed as
//!
//! ```text
//! [ payload len u32 ][ crc32(payload) u32 ][ payload … ]
//! ```
//!
//! so replay after a crash walks the log record by record and stops at the
//! first frame that is incomplete or fails its checksum: everything before
//! the tear is exactly the committed history, everything after it never
//! happened. Artifact files are written (atomically) before their `Put`
//! record is appended, so a record that survives replay always points at a
//! complete, CRC-clean artifact.
//!
//! Compaction rewrites the whole log to just the live state (one `Put` +
//! `Promote` pair per model) through an atomic whole-file replacement, so
//! a crash mid-compaction leaves either the old log or the new.

use crate::vfs::{Vfs, VfsError};
use serde::{Deserialize, Serialize};
use swkm_serve::artifact::crc32;

/// Name of the manifest log inside a store directory.
pub const MANIFEST: &str = "MANIFEST.log";

/// One committed edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestRecord {
    /// Generation `generation` of `model` was durably written to its
    /// artifact file (`bytes` long, artifact-CRC `crc`, element width
    /// `dtype`). Not yet visible to readers.
    Put {
        model: String,
        generation: u64,
        bytes: u64,
        crc: u32,
        dtype: u8,
    },
    /// `generation` became the live generation of `model` — the atomic
    /// version bump readers observe.
    Promote { model: String, generation: u64 },
    /// `model` was removed from the registry (its files linger until
    /// compaction garbage-collects them).
    Delete { model: String },
}

const TAG_PUT: u8 = 1;
const TAG_PROMOTE: u8 = 2;
const TAG_DELETE: u8 = 3;

impl Serialize for ManifestRecord {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            ManifestRecord::Put {
                model,
                generation,
                bytes,
                crc,
                dtype,
            } => {
                out.push(TAG_PUT);
                model.serialize(out);
                generation.serialize(out);
                bytes.serialize(out);
                crc.serialize(out);
                dtype.serialize(out);
            }
            ManifestRecord::Promote { model, generation } => {
                out.push(TAG_PROMOTE);
                model.serialize(out);
                generation.serialize(out);
            }
            ManifestRecord::Delete { model } => {
                out.push(TAG_DELETE);
                model.serialize(out);
            }
        }
    }
}

impl Deserialize for ManifestRecord {
    fn deserialize(input: &mut &[u8]) -> Result<Self, serde::DecodeError> {
        match u8::deserialize(input)? {
            TAG_PUT => Ok(ManifestRecord::Put {
                model: String::deserialize(input)?,
                generation: u64::deserialize(input)?,
                bytes: u64::deserialize(input)?,
                crc: u32::deserialize(input)?,
                dtype: u8::deserialize(input)?,
            }),
            TAG_PROMOTE => Ok(ManifestRecord::Promote {
                model: String::deserialize(input)?,
                generation: u64::deserialize(input)?,
            }),
            TAG_DELETE => Ok(ManifestRecord::Delete {
                model: String::deserialize(input)?,
            }),
            _ => Err(serde::DecodeError::Invalid("manifest record tag")),
        }
    }
}

/// Frame one record for appending to the log.
pub fn encode_record(record: &ManifestRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    record.serialize(&mut payload);
    let mut framed = Vec::with_capacity(payload.len() + 8);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    framed
}

/// What replay saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Complete, checksum-clean records applied.
    pub records: usize,
    /// Bytes after the last committed record (a torn append, or garbage).
    /// Nonzero means the process died mid-append; the tail is ignored.
    pub torn_bytes: usize,
}

/// Decode every committed record from raw log bytes. Stops — without
/// erroring — at the first incomplete or corrupt frame; the remainder is
/// reported as [`ReplayReport::torn_bytes`].
pub fn replay(bytes: &[u8]) -> (Vec<ManifestRecord>, ReplayReport) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= 8 {
        let len = u32::from_le_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]) as usize;
        let stored_crc = u32::from_le_bytes([
            bytes[offset + 4],
            bytes[offset + 5],
            bytes[offset + 6],
            bytes[offset + 7],
        ]);
        let start = offset + 8;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            break; // frame extends past the tear
        };
        let payload = &bytes[start..end];
        if crc32(payload) != stored_crc {
            break; // torn or corrupted mid-log: nothing after it is trusted
        }
        let mut cursor = payload;
        match ManifestRecord::deserialize(&mut cursor) {
            Ok(record) if cursor.is_empty() => records.push(record),
            _ => break, // checksum-clean but undecodable: treat as a tear
        }
        offset = end;
    }
    let report = ReplayReport {
        records: records.len(),
        torn_bytes: bytes.len() - offset,
    };
    (records, report)
}

/// Append one record to the store's manifest.
pub fn append_record<V: Vfs>(vfs: &V, record: &ManifestRecord) -> Result<(), VfsError> {
    vfs.append(MANIFEST, &encode_record(record))
}

/// Read and replay the store's manifest; a missing manifest is an empty
/// history, not an error.
pub fn load<V: Vfs>(vfs: &V) -> Result<(Vec<ManifestRecord>, ReplayReport), VfsError> {
    match vfs.read(MANIFEST) {
        Ok(bytes) => Ok(replay(&bytes)),
        Err(VfsError::NotFound { .. }) => Ok((Vec::new(), ReplayReport::default())),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<ManifestRecord> {
        vec![
            ManifestRecord::Put {
                model: "census".to_string(),
                generation: 1,
                bytes: 4096,
                crc: 0xDEAD_BEEF,
                dtype: 4,
            },
            ManifestRecord::Promote {
                model: "census".to_string(),
                generation: 1,
            },
            ManifestRecord::Put {
                model: "roads".to_string(),
                generation: 1,
                bytes: 128,
                crc: 7,
                dtype: 8,
            },
            ManifestRecord::Delete {
                model: "roads".to_string(),
            },
        ]
    }

    fn log_bytes(records: &[ManifestRecord]) -> Vec<u8> {
        records.iter().flat_map(encode_record).collect()
    }

    #[test]
    fn records_round_trip_through_the_log() {
        let records = sample_records();
        let (back, report) = replay(&log_bytes(&records));
        assert_eq!(back, records);
        assert_eq!(report.records, 4);
        assert_eq!(report.torn_bytes, 0);
    }

    #[test]
    fn truncation_at_any_byte_keeps_exactly_the_committed_prefix() {
        let records = sample_records();
        let bytes = log_bytes(&records);
        // Committed-record boundaries, for computing the expected prefix.
        let mut boundaries = vec![0usize];
        for r in &records {
            boundaries.push(boundaries.last().unwrap() + encode_record(r).len());
        }
        for cut in 0..=bytes.len() {
            let (back, report) = replay(&bytes[..cut]);
            let committed = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(back.len(), committed, "cut at {cut}");
            assert_eq!(back, records[..committed], "cut at {cut}");
            assert_eq!(
                report.torn_bytes,
                cut - boundaries[committed],
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_frame_stops_replay_at_the_last_good_record() {
        let records = sample_records();
        let mut bytes = log_bytes(&records);
        let second_start = encode_record(&records[0]).len();
        bytes[second_start + 10] ^= 0xFF; // flip a payload byte of record 2
        let (back, report) = replay(&bytes);
        assert_eq!(back, records[..1]);
        assert!(report.torn_bytes > 0);
    }

    #[test]
    fn absurd_length_prefix_is_a_tear_not_a_panic() {
        let mut bytes = log_bytes(&sample_records()[..1]);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        let (back, report) = replay(&bytes);
        assert_eq!(back.len(), 1);
        assert_eq!(report.torn_bytes, 16);
    }

    #[test]
    fn append_and_load_through_a_vfs() {
        let vfs = crate::vfs::MemVfs::new();
        let (empty, report) = load(&vfs).unwrap();
        assert!(empty.is_empty());
        assert_eq!(report, ReplayReport::default());
        for record in sample_records() {
            append_record(&vfs, &record).unwrap();
        }
        let (back, report) = load(&vfs).unwrap();
        assert_eq!(back, sample_records());
        assert_eq!(report.records, 4);
    }
}
