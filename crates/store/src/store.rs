//! The multi-model store: a registry of named models, each a set of
//! generation-numbered immutable artifact files with one *live* generation,
//! recovered from the write-ahead manifest on open and garbage-collected by
//! compaction.

use crate::manifest::{self, ManifestRecord, ReplayReport, MANIFEST};
use crate::vfs::{Vfs, VfsError};
use kmeans_core::Scalar;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use swkm_obs::MetricsRegistry;
use swkm_serve::artifact::{crc32, ArtifactError, ModelArtifact, MAGIC};

/// What can go wrong at the store layer.
#[derive(Debug)]
pub enum StoreError {
    /// The storage backend failed.
    Vfs(VfsError),
    /// The bytes being stored or loaded are not a valid model artifact.
    Artifact(ArtifactError),
    /// Model names become file names; only `[A-Za-z0-9._-]` (not starting
    /// with a dot) is allowed.
    BadModelName { name: String },
    /// The named model is not in the registry.
    UnknownModel { name: String },
    /// The model exists but has no such generation.
    UnknownGeneration { name: String, generation: u64 },
    /// The model exists but nothing was ever promoted live.
    NotPromoted { name: String },
    /// The manifest references an artifact file that is missing or does
    /// not match its recorded length/checksum — external corruption, since
    /// files are durably written before their manifest record.
    ArtifactSkew {
        name: String,
        generation: u64,
        file: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Vfs(e) => write!(f, "{e}"),
            StoreError::Artifact(e) => write!(f, "{e}"),
            StoreError::BadModelName { name } => {
                write!(f, "bad model name `{name}` (use [A-Za-z0-9._-])")
            }
            StoreError::UnknownModel { name } => write!(f, "no model named `{name}` in the store"),
            StoreError::UnknownGeneration { name, generation } => {
                write!(f, "model `{name}` has no generation {generation}")
            }
            StoreError::NotPromoted { name } => {
                write!(f, "model `{name}` has no live generation (never promoted)")
            }
            StoreError::ArtifactSkew {
                name,
                generation,
                file,
            } => write!(
                f,
                "artifact file `{file}` for {name}@g{generation} is missing or corrupt"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<VfsError> for StoreError {
    fn from(e: VfsError) -> Self {
        StoreError::Vfs(e)
    }
}

impl From<ArtifactError> for StoreError {
    fn from(e: ArtifactError) -> Self {
        StoreError::Artifact(e)
    }
}

/// One durably-stored generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenInfo {
    /// Artifact file length.
    pub bytes: u64,
    /// The artifact's own trailing CRC-32 (over everything before it).
    pub crc: u32,
    /// Element width in bytes (4 = f32, 8 = f64).
    pub dtype: u8,
}

/// Registry state of one model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelState {
    /// The generation readers see, if one was promoted.
    pub live: Option<u64>,
    /// Every durably-written generation still on record.
    pub generations: BTreeMap<u64, GenInfo>,
}

/// A row of [`ModelStore::models`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelEntry {
    pub name: String,
    pub live: Option<u64>,
    pub generations: usize,
    /// Total artifact bytes on record across generations.
    pub bytes: u64,
    /// Element width of the live (or newest) generation.
    pub dtype: u8,
}

/// What a compaction pass reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// Artifact files deleted (stale generations + orphans).
    pub files_removed: usize,
    /// Bytes those files held.
    pub bytes_reclaimed: u64,
    /// Manifest size before and after the rewrite.
    pub manifest_bytes_before: u64,
    pub manifest_bytes_after: u64,
}

/// Persistent multi-model store over a [`Vfs`] backend.
///
/// All mutations are write-ahead logged: the artifact file lands
/// (atomically) first, then the manifest record, then the in-memory
/// registry — so a crash at any byte leaves the store recoverable to
/// exactly the last committed record.
#[derive(Debug)]
pub struct ModelStore<V: Vfs> {
    vfs: V,
    models: BTreeMap<String, ModelState>,
    replay: ReplayReport,
    registry: Option<Arc<MetricsRegistry>>,
}

/// `model` + generation → immutable artifact file name.
pub fn artifact_file(model: &str, generation: u64) -> String {
    format!("{model}.g{generation:06}.art")
}

fn check_model_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && name != MANIFEST;
    if ok {
        Ok(())
    } else {
        Err(StoreError::BadModelName {
            name: name.to_string(),
        })
    }
}

/// Validate raw bytes as a framed artifact without committing to a scalar
/// type: magic + overall CRC. Returns `(artifact crc, dtype byte)`.
fn validate_artifact_bytes(bytes: &[u8]) -> Result<(u32, u8), StoreError> {
    if bytes.len() < MAGIC.len() + 4 + 1 + 4 || bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::Artifact(ArtifactError::BadMagic));
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let computed = crc32(payload);
    if stored != computed {
        return Err(StoreError::Artifact(ArtifactError::ChecksumMismatch {
            stored,
            computed,
        }));
    }
    Ok((stored, bytes[12]))
}

impl<V: Vfs> ModelStore<V> {
    /// Open a store over `vfs`, replaying the manifest into the registry
    /// and verifying that every *live* generation's artifact file is
    /// present with its recorded length (cheap skew check; full CRC
    /// validation happens on load).
    pub fn open(vfs: V) -> Result<Self, StoreError> {
        Self::open_with_registry(vfs, None)
    }

    /// [`ModelStore::open`] recording `store_*` metrics into `registry`.
    pub fn open_with_registry(
        vfs: V,
        registry: Option<Arc<MetricsRegistry>>,
    ) -> Result<Self, StoreError> {
        let (records, replay) = manifest::load(&vfs)?;
        let mut models: BTreeMap<String, ModelState> = BTreeMap::new();
        for record in records {
            match record {
                ManifestRecord::Put {
                    model,
                    generation,
                    bytes,
                    crc,
                    dtype,
                } => {
                    models
                        .entry(model)
                        .or_default()
                        .generations
                        .insert(generation, GenInfo { bytes, crc, dtype });
                }
                ManifestRecord::Promote { model, generation } => {
                    // A Promote is only ever logged after its Put, so a
                    // committed prefix always has the generation on record.
                    if let Some(state) = models.get_mut(&model) {
                        if state.generations.contains_key(&generation) {
                            state.live = Some(generation);
                        }
                    }
                }
                ManifestRecord::Delete { model } => {
                    models.remove(&model);
                }
            }
        }
        let store = ModelStore {
            vfs,
            models,
            replay,
            registry,
        };
        for (name, state) in &store.models {
            if let Some(live) = state.live {
                let info = state.generations[&live];
                let file = artifact_file(name, live);
                if store.vfs.size(&file).ok() != Some(info.bytes) {
                    return Err(StoreError::ArtifactSkew {
                        name: name.clone(),
                        generation: live,
                        file,
                    });
                }
            }
        }
        if let Some(reg) = &store.registry {
            reg.counter_add("store_replay_records_total", store.replay.records as u64);
            reg.counter_add(
                "store_replay_torn_bytes_total",
                store.replay.torn_bytes as u64,
            );
        }
        store.refresh_gauges();
        Ok(store)
    }

    /// The replay outcome of the open that built this store.
    pub fn replay_report(&self) -> ReplayReport {
        self.replay
    }

    /// The backing filesystem.
    pub fn vfs(&self) -> &V {
        &self.vfs
    }

    fn count(&self, name: &str) {
        if let Some(reg) = &self.registry {
            reg.counter_inc(name);
        }
    }

    fn refresh_gauges(&self) {
        let Some(reg) = &self.registry else { return };
        let generations: usize = self.models.values().map(|s| s.generations.len()).sum();
        let bytes: u64 = self
            .models
            .values()
            .flat_map(|s| s.generations.values())
            .map(|g| g.bytes)
            .sum();
        reg.gauge_set("store_models", self.models.len() as f64);
        reg.gauge_set("store_generations", generations as f64);
        reg.gauge_set("store_bytes", bytes as f64);
        reg.gauge_set(
            "store_manifest_bytes",
            self.vfs.size(MANIFEST).unwrap_or(0) as f64,
        );
    }

    /// Durably add `bytes` (a complete framed artifact) as the next
    /// generation of `model`. The generation is on record but **not live**
    /// until [`ModelStore::promote`]. Returns the new generation number.
    pub fn put_bytes(&mut self, model: &str, bytes: &[u8]) -> Result<u64, StoreError> {
        check_model_name(model)?;
        let (crc, dtype) = validate_artifact_bytes(bytes)?;
        let state = self.models.entry(model.to_string()).or_default();
        let generation = state.generations.keys().next_back().copied().unwrap_or(0) + 1;
        // Artifact file first (atomic), manifest record second: a record
        // that survives replay always points at a complete file.
        self.vfs
            .write_atomic(&artifact_file(model, generation), bytes)?;
        manifest::append_record(
            &self.vfs,
            &ManifestRecord::Put {
                model: model.to_string(),
                generation,
                bytes: bytes.len() as u64,
                crc,
                dtype,
            },
        )?;
        self.models
            .entry(model.to_string())
            .or_default()
            .generations
            .insert(
                generation,
                GenInfo {
                    bytes: bytes.len() as u64,
                    crc,
                    dtype,
                },
            );
        self.count("store_put_total");
        self.refresh_gauges();
        Ok(generation)
    }

    /// Durably add an artifact as the next generation of `model` (not yet
    /// live).
    pub fn put<S: Scalar + Serialize + Deserialize>(
        &mut self,
        model: &str,
        artifact: &ModelArtifact<S>,
    ) -> Result<u64, StoreError> {
        self.put_bytes(model, &artifact.to_bytes())
    }

    /// Atomically bump the live generation of `model` to `generation` —
    /// the zero-downtime hot-swap commit point. Promoting an older
    /// generation is a rollback.
    pub fn promote(&mut self, model: &str, generation: u64) -> Result<(), StoreError> {
        let state = self
            .models
            .get_mut(model)
            .ok_or_else(|| StoreError::UnknownModel {
                name: model.to_string(),
            })?;
        if !state.generations.contains_key(&generation) {
            return Err(StoreError::UnknownGeneration {
                name: model.to_string(),
                generation,
            });
        }
        manifest::append_record(
            &self.vfs,
            &ManifestRecord::Promote {
                model: model.to_string(),
                generation,
            },
        )?;
        // The registry only moves after the record is durable.
        if let Some(state) = self.models.get_mut(model) {
            state.live = Some(generation);
        }
        self.count("store_promote_total");
        self.refresh_gauges();
        Ok(())
    }

    /// [`ModelStore::put`] + [`ModelStore::promote`] in one call: write the
    /// next generation and make it live. Returns the generation.
    pub fn publish<S: Scalar + Serialize + Deserialize>(
        &mut self,
        model: &str,
        artifact: &ModelArtifact<S>,
    ) -> Result<u64, StoreError> {
        let generation = self.put(model, artifact)?;
        self.promote(model, generation)?;
        Ok(generation)
    }

    /// Live generation of `model`, if promoted.
    pub fn live_generation(&self, model: &str) -> Option<u64> {
        self.models.get(model).and_then(|s| s.live)
    }

    /// Registry state of `model`.
    pub fn state(&self, model: &str) -> Option<&ModelState> {
        self.models.get(model)
    }

    /// Load and fully validate (CRC, dtype, shape) a specific generation.
    pub fn load_generation<S: Scalar + Serialize + Deserialize>(
        &self,
        model: &str,
        generation: u64,
    ) -> Result<ModelArtifact<S>, StoreError> {
        let state = self
            .models
            .get(model)
            .ok_or_else(|| StoreError::UnknownModel {
                name: model.to_string(),
            })?;
        if !state.generations.contains_key(&generation) {
            return Err(StoreError::UnknownGeneration {
                name: model.to_string(),
                generation,
            });
        }
        let bytes = self.vfs.read(&artifact_file(model, generation))?;
        Ok(ModelArtifact::from_bytes(&bytes)?)
    }

    /// Load the live generation. Returns `(generation, artifact)`.
    pub fn load_live<S: Scalar + Serialize + Deserialize>(
        &self,
        model: &str,
    ) -> Result<(u64, ModelArtifact<S>), StoreError> {
        let state = self
            .models
            .get(model)
            .ok_or_else(|| StoreError::UnknownModel {
                name: model.to_string(),
            })?;
        let live = state.live.ok_or_else(|| StoreError::NotPromoted {
            name: model.to_string(),
        })?;
        Ok((live, self.load_generation(model, live)?))
    }

    /// Remove `model` from the registry. Its artifact files linger until
    /// [`ModelStore::compact`] garbage-collects them (LSM-style deferred
    /// deletion: the delete itself is one cheap log append).
    pub fn delete(&mut self, model: &str) -> Result<(), StoreError> {
        if !self.models.contains_key(model) {
            return Err(StoreError::UnknownModel {
                name: model.to_string(),
            });
        }
        manifest::append_record(
            &self.vfs,
            &ManifestRecord::Delete {
                model: model.to_string(),
            },
        )?;
        self.models.remove(model);
        self.count("store_delete_total");
        self.refresh_gauges();
        Ok(())
    }

    /// Every model on record, sorted by name.
    pub fn models(&self) -> Vec<ModelEntry> {
        self.models
            .iter()
            .map(|(name, state)| {
                let dtype = state
                    .live
                    .or_else(|| state.generations.keys().next_back().copied())
                    .and_then(|g| state.generations.get(&g))
                    .map_or(0, |info| info.dtype);
                ModelEntry {
                    name: name.clone(),
                    live: state.live,
                    generations: state.generations.len(),
                    bytes: state.generations.values().map(|g| g.bytes).sum(),
                    dtype,
                }
            })
            .collect()
    }

    /// Total artifact bytes on record.
    pub fn total_bytes(&self) -> u64 {
        self.models
            .values()
            .flat_map(|s| s.generations.values())
            .map(|g| g.bytes)
            .sum()
    }

    /// Garbage-collect: drop every non-live generation from the registry,
    /// rewrite the manifest to just the live state (atomic whole-file
    /// replacement), and delete artifact files no surviving generation
    /// references — including orphans from crashes between an artifact
    /// write and its manifest append.
    pub fn compact(&mut self) -> Result<CompactReport, StoreError> {
        let manifest_bytes_before = self.vfs.size(MANIFEST).unwrap_or(0);
        // Retain only live generations.
        for state in self.models.values_mut() {
            let live = state.live;
            state.generations.retain(|g, _| Some(*g) == live);
        }
        self.models.retain(|_, s| !s.generations.is_empty());
        // Rewrite the manifest first: after the (atomic) swap, no record
        // references the files about to be deleted.
        let mut log = Vec::new();
        for (name, state) in &self.models {
            for (&generation, info) in &state.generations {
                log.extend_from_slice(&manifest::encode_record(&ManifestRecord::Put {
                    model: name.clone(),
                    generation,
                    bytes: info.bytes,
                    crc: info.crc,
                    dtype: info.dtype,
                }));
            }
            if let Some(live) = state.live {
                log.extend_from_slice(&manifest::encode_record(&ManifestRecord::Promote {
                    model: name.clone(),
                    generation: live,
                }));
            }
        }
        self.vfs.write_atomic(MANIFEST, &log)?;
        // Now delete unreferenced artifact files.
        let referenced: std::collections::BTreeSet<String> = self
            .models
            .iter()
            .flat_map(|(name, state)| {
                state
                    .generations
                    .keys()
                    .map(move |&g| artifact_file(name, g))
            })
            .collect();
        let mut report = CompactReport {
            manifest_bytes_before,
            manifest_bytes_after: log.len() as u64,
            ..CompactReport::default()
        };
        for file in self.vfs.list()? {
            if file != MANIFEST && !referenced.contains(&file) {
                report.bytes_reclaimed += self.vfs.size(&file).unwrap_or(0);
                self.vfs.remove(&file)?;
                report.files_removed += 1;
            }
        }
        if let Some(reg) = &self.registry {
            reg.counter_inc("store_compact_runs_total");
            reg.counter_add("store_gc_files_total", report.files_removed as u64);
            reg.counter_add("store_gc_bytes_total", report.bytes_reclaimed);
        }
        self.refresh_gauges();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use kmeans_core::Matrix;

    fn artifact(seed: f32, k: usize, d: usize) -> ModelArtifact<f32> {
        let data = (0..k * d).map(|i| seed + i as f32 * 0.5).collect();
        ModelArtifact::from_centroids(Matrix::from_vec(k, d, data))
    }

    fn store() -> ModelStore<MemVfs> {
        ModelStore::open(MemVfs::new()).unwrap()
    }

    #[test]
    fn publish_load_round_trip() {
        let mut s = store();
        let a = artifact(1.0, 4, 3);
        assert_eq!(s.publish("m", &a).unwrap(), 1);
        let (generation, back) = s.load_live::<f32>("m").unwrap();
        assert_eq!(generation, 1);
        assert_eq!(back, a);
        assert_eq!(s.live_generation("m"), Some(1));
    }

    #[test]
    fn generations_are_immutable_and_monotone() {
        let mut s = store();
        let g1 = s.publish("m", &artifact(1.0, 2, 2)).unwrap();
        let g2 = s.publish("m", &artifact(9.0, 2, 2)).unwrap();
        assert_eq!((g1, g2), (1, 2));
        // Both generations remain loadable; live is the newest.
        assert_eq!(
            s.load_generation::<f32>("m", 1).unwrap(),
            artifact(1.0, 2, 2)
        );
        assert_eq!(s.load_live::<f32>("m").unwrap().0, 2);
    }

    #[test]
    fn promote_rolls_back_to_an_older_generation() {
        let mut s = store();
        s.publish("m", &artifact(1.0, 2, 2)).unwrap();
        s.publish("m", &artifact(2.0, 2, 2)).unwrap();
        s.promote("m", 1).unwrap();
        assert_eq!(s.load_live::<f32>("m").unwrap().0, 1);
        // Unknown generation / model are typed errors.
        assert!(matches!(
            s.promote("m", 9),
            Err(StoreError::UnknownGeneration { generation: 9, .. })
        ));
        assert!(matches!(
            s.promote("ghost", 1),
            Err(StoreError::UnknownModel { .. })
        ));
    }

    #[test]
    fn put_without_promote_is_not_visible() {
        let mut s = store();
        s.put("m", &artifact(1.0, 2, 2)).unwrap();
        assert_eq!(s.live_generation("m"), None);
        assert!(matches!(
            s.load_live::<f32>("m"),
            Err(StoreError::NotPromoted { .. })
        ));
    }

    #[test]
    fn corrupt_bytes_are_rejected_before_touching_storage() {
        let mut s = store();
        let mut bytes = artifact(1.0, 2, 2).to_bytes();
        bytes[20] ^= 1;
        assert!(matches!(
            s.put_bytes("m", &bytes),
            Err(StoreError::Artifact(ArtifactError::ChecksumMismatch { .. }))
        ));
        assert!(matches!(
            s.put_bytes("m", b"not an artifact"),
            Err(StoreError::Artifact(ArtifactError::BadMagic))
        ));
        assert!(s.models().is_empty());
        assert_eq!(s.vfs().list().unwrap(), Vec::<String>::new());
    }

    #[test]
    fn bad_model_names_are_rejected() {
        let mut s = store();
        for name in ["", "a/b", ".hidden", "MANIFEST.log", "sp ace"] {
            assert!(
                matches!(
                    s.put(name, &artifact(1.0, 2, 2)),
                    Err(StoreError::BadModelName { .. })
                ),
                "`{name}` accepted"
            );
        }
    }

    #[test]
    fn reopen_recovers_the_registry() {
        let vfs = crate::vfs::SharedMemVfs::new();
        let mut s = ModelStore::open(vfs.clone()).unwrap();
        s.publish("a", &artifact(1.0, 3, 2)).unwrap();
        s.publish("a", &artifact(2.0, 3, 2)).unwrap();
        s.publish("b", &artifact(3.0, 2, 4)).unwrap();
        s.delete("b").unwrap();
        let before = s.models();
        drop(s);
        let reopened = ModelStore::open(vfs).unwrap();
        assert_eq!(reopened.models(), before);
        assert_eq!(reopened.load_live::<f32>("a").unwrap().0, 2);
        assert!(matches!(
            reopened.load_live::<f32>("b"),
            Err(StoreError::UnknownModel { .. })
        ));
    }

    #[test]
    fn compaction_drops_stale_generations_and_orphans() {
        let mut s = store();
        s.publish("m", &artifact(1.0, 2, 2)).unwrap();
        s.publish("m", &artifact(2.0, 2, 2)).unwrap();
        s.publish("m", &artifact(3.0, 2, 2)).unwrap();
        s.publish("dead", &artifact(4.0, 2, 2)).unwrap();
        s.delete("dead").unwrap();
        // An orphan from a simulated crash between file write and append.
        s.vfs()
            .write_atomic(&artifact_file("m", 99), b"orphan")
            .unwrap();
        let report = s.compact().unwrap();
        // Stale m@1, m@2, dead@1 and the orphan are gone; live m@3 stays.
        assert_eq!(report.files_removed, 4);
        assert!(report.bytes_reclaimed > 0);
        assert!(report.manifest_bytes_after < report.manifest_bytes_before);
        assert_eq!(
            s.vfs().list().unwrap(),
            vec![MANIFEST.to_string(), artifact_file("m", 3)]
        );
        assert_eq!(s.load_live::<f32>("m").unwrap().0, 3);
        // The next generation after compaction keeps counting upward.
        assert_eq!(s.publish("m", &artifact(5.0, 2, 2)).unwrap(), 4);
    }

    #[test]
    fn dtype_is_tracked_and_mismatches_are_typed() {
        let mut s = store();
        let f64_artifact =
            ModelArtifact::<f64>::from_centroids(Matrix::from_rows(&[&[1.0f64, 2.0]]));
        s.publish("wide", &f64_artifact).unwrap();
        assert_eq!(s.models()[0].dtype, 8);
        assert!(matches!(
            s.load_live::<f32>("wide"),
            Err(StoreError::Artifact(ArtifactError::DtypeMismatch { .. }))
        ));
        assert!(s.load_live::<f64>("wide").is_ok());
    }

    #[test]
    fn metrics_flow_into_the_registry() {
        let reg = MetricsRegistry::shared();
        let mut s = ModelStore::open_with_registry(MemVfs::new(), Some(Arc::clone(&reg))).unwrap();
        s.publish("m", &artifact(1.0, 2, 2)).unwrap();
        s.publish("m", &artifact(2.0, 2, 2)).unwrap();
        s.compact().unwrap();
        assert_eq!(reg.counter("store_put_total"), 2);
        assert_eq!(reg.counter("store_promote_total"), 2);
        assert_eq!(reg.counter("store_compact_runs_total"), 1);
        assert_eq!(reg.counter("store_gc_files_total"), 1);
        assert_eq!(reg.gauge("store_models"), Some(1.0));
        assert_eq!(reg.gauge("store_generations"), Some(1.0));
        assert!(reg.gauge("store_bytes").unwrap() > 0.0);
    }
}
