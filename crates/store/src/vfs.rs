//! The virtual filesystem beneath the model store.
//!
//! [`ModelStore`](crate::ModelStore) never touches `std::fs` directly; it
//! speaks this small trait, so the same store logic runs over three
//! backends (mirroring the anchored-leveldb layering):
//!
//! * [`StdVfs`] — a directory on the real filesystem. Writes are made
//!   durable: whole-file replacement goes through a unique sibling temp
//!   file + `fsync` + atomic rename, and every log append is flushed
//!   before it is acknowledged.
//! * [`MemVfs`] — an in-memory map for single-threaded tests; cheap enough
//!   to rebuild at every byte-boundary of a crash-recovery sweep.
//! * [`SharedMemVfs`] — the thread-safe in-memory backend; clones share
//!   one underlying map, so a "restarted" store opened from a clone sees
//!   exactly what the "crashed" store had durably written.
//!
//! The namespace is flat: a store owns one directory, and names like
//! `MANIFEST.log` or `census.g000003.art` never contain separators.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What can go wrong at the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// The named file does not exist.
    NotFound { name: String },
    /// An underlying I/O operation failed (std backend only).
    Io {
        name: String,
        op: &'static str,
        message: String,
    },
    /// The name is not usable in this flat namespace (empty, contains a
    /// separator, or starts with the temp-file marker).
    BadName { name: String },
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::NotFound { name } => write!(f, "no such store file `{name}`"),
            VfsError::Io { name, op, message } => {
                write!(f, "store I/O error: {op} `{name}`: {message}")
            }
            VfsError::BadName { name } => write!(f, "bad store file name `{name}`"),
        }
    }
}

impl std::error::Error for VfsError {}

/// Leading marker for scratch files; [`Vfs::list`] hides them and
/// [`check_name`] rejects them, so a crash mid-replacement can never leave
/// a half-written file masquerading as a store file.
const TEMP_PREFIX: &str = ".tmp.";

fn check_name(name: &str) -> Result<(), VfsError> {
    if name.is_empty()
        || name.contains(['/', '\\'])
        || name.starts_with(TEMP_PREFIX)
        || name == "."
        || name == ".."
    {
        return Err(VfsError::BadName {
            name: name.to_string(),
        });
    }
    Ok(())
}

/// Storage operations the model store needs — object-safe, so callers can
/// hold a `Box<dyn Vfs + Send>` and pick the backend at runtime.
pub trait Vfs {
    /// Entire contents of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>, VfsError>;

    /// Durably replace `name` with `bytes`. All-or-nothing: a crash during
    /// the call leaves either the old contents or the new, never a mix.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError>;

    /// Append `bytes` to `name` (creating it empty first if absent),
    /// flushed to stable storage before returning — the WAL primitive.
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError>;

    /// Delete `name`. Deleting a missing file is `NotFound`.
    fn remove(&self, name: &str) -> Result<(), VfsError>;

    /// Does `name` exist?
    fn exists(&self, name: &str) -> bool;

    /// All store files, sorted by name (scratch files excluded).
    fn list(&self) -> Result<Vec<String>, VfsError>;

    /// Size of `name` in bytes.
    fn size(&self, name: &str) -> Result<u64, VfsError>;
}

impl<V: Vfs + ?Sized> Vfs for &V {
    fn read(&self, name: &str) -> Result<Vec<u8>, VfsError> {
        (**self).read(name)
    }
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        (**self).write_atomic(name, bytes)
    }
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        (**self).append(name, bytes)
    }
    fn remove(&self, name: &str) -> Result<(), VfsError> {
        (**self).remove(name)
    }
    fn exists(&self, name: &str) -> bool {
        (**self).exists(name)
    }
    fn list(&self) -> Result<Vec<String>, VfsError> {
        (**self).list()
    }
    fn size(&self, name: &str) -> Result<u64, VfsError> {
        (**self).size(name)
    }
}

impl<V: Vfs + ?Sized> Vfs for Box<V> {
    fn read(&self, name: &str) -> Result<Vec<u8>, VfsError> {
        (**self).read(name)
    }
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        (**self).write_atomic(name, bytes)
    }
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        (**self).append(name, bytes)
    }
    fn remove(&self, name: &str) -> Result<(), VfsError> {
        (**self).remove(name)
    }
    fn exists(&self, name: &str) -> bool {
        (**self).exists(name)
    }
    fn list(&self) -> Result<Vec<String>, VfsError> {
        (**self).list()
    }
    fn size(&self, name: &str) -> Result<u64, VfsError> {
        (**self).size(name)
    }
}

// ---------------------------------------------------------------------------
// Std filesystem backend
// ---------------------------------------------------------------------------

/// A store directory on the real filesystem.
#[derive(Debug)]
pub struct StdVfs {
    root: PathBuf,
}

/// Process-wide sequence for unique scratch names, so concurrent
/// replacements of sibling files never share a temp file.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(name: &str, op: &'static str, e: std::io::Error) -> VfsError {
    if e.kind() == std::io::ErrorKind::NotFound {
        VfsError::NotFound {
            name: name.to_string(),
        }
    } else {
        VfsError::Io {
            name: name.to_string(),
            op,
            message: e.to_string(),
        }
    }
}

impl StdVfs {
    /// Open (creating if needed) the store directory at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, VfsError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err(&root.display().to_string(), "create dir", e))?;
        Ok(StdVfs { root })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Vfs for StdVfs {
    fn read(&self, name: &str) -> Result<Vec<u8>, VfsError> {
        check_name(name)?;
        std::fs::read(self.path(name)).map_err(|e| io_err(name, "read", e))
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        check_name(name)?;
        let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self.path(&format!("{TEMP_PREFIX}{name}.{}.{seq}", std::process::id()));
        let write = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            // Contents must hit the disk before the rename publishes them.
            f.sync_all()
        })();
        if let Err(e) = write {
            let _ = std::fs::remove_file(&tmp);
            return Err(io_err(name, "write temp", e));
        }
        std::fs::rename(&tmp, self.path(name)).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            io_err(name, "rename temp into place", e)
        })
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        check_name(name)?;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| io_err(name, "open for append", e))?;
        f.write_all(bytes)
            .and_then(|()| f.sync_all())
            .map_err(|e| io_err(name, "append", e))
    }

    fn remove(&self, name: &str) -> Result<(), VfsError> {
        check_name(name)?;
        std::fs::remove_file(self.path(name)).map_err(|e| io_err(name, "remove", e))
    }

    fn exists(&self, name: &str) -> bool {
        check_name(name).is_ok() && self.path(name).exists()
    }

    fn list(&self) -> Result<Vec<String>, VfsError> {
        let dir = std::fs::read_dir(&self.root)
            .map_err(|e| io_err(&self.root.display().to_string(), "list", e))?;
        let mut names = Vec::new();
        for entry in dir {
            let entry =
                entry.map_err(|e| io_err(&self.root.display().to_string(), "list entry", e))?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.starts_with(TEMP_PREFIX) {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn size(&self, name: &str) -> Result<u64, VfsError> {
        check_name(name)?;
        std::fs::metadata(self.path(name))
            .map(|m| m.len())
            .map_err(|e| io_err(name, "stat", e))
    }
}

// ---------------------------------------------------------------------------
// In-memory backends
// ---------------------------------------------------------------------------

fn mem_read(files: &BTreeMap<String, Vec<u8>>, name: &str) -> Result<Vec<u8>, VfsError> {
    files.get(name).cloned().ok_or_else(|| VfsError::NotFound {
        name: name.to_string(),
    })
}

fn mem_remove(files: &mut BTreeMap<String, Vec<u8>>, name: &str) -> Result<(), VfsError> {
    files
        .remove(name)
        .map(|_| ())
        .ok_or_else(|| VfsError::NotFound {
            name: name.to_string(),
        })
}

fn mem_size(files: &BTreeMap<String, Vec<u8>>, name: &str) -> Result<u64, VfsError> {
    files
        .get(name)
        .map(|b| b.len() as u64)
        .ok_or_else(|| VfsError::NotFound {
            name: name.to_string(),
        })
}

/// Single-threaded in-memory backend. `Send` but not `Sync`; for a store
/// shared across threads use [`SharedMemVfs`].
#[derive(Debug, Default)]
pub struct MemVfs {
    files: RefCell<BTreeMap<String, Vec<u8>>>,
}

impl MemVfs {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Vfs for MemVfs {
    fn read(&self, name: &str) -> Result<Vec<u8>, VfsError> {
        check_name(name)?;
        mem_read(&self.files.borrow(), name)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        check_name(name)?;
        self.files
            .borrow_mut()
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        check_name(name)?;
        self.files
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), VfsError> {
        check_name(name)?;
        mem_remove(&mut self.files.borrow_mut(), name)
    }

    fn exists(&self, name: &str) -> bool {
        self.files.borrow().contains_key(name)
    }

    fn list(&self) -> Result<Vec<String>, VfsError> {
        Ok(self.files.borrow().keys().cloned().collect())
    }

    fn size(&self, name: &str) -> Result<u64, VfsError> {
        check_name(name)?;
        mem_size(&self.files.borrow(), name)
    }
}

/// Thread-safe in-memory backend. Cloning shares the underlying map, so a
/// crash-recovery test can "restart" a store over the same bytes while the
/// first handle is still in scope.
#[derive(Debug, Clone, Default)]
pub struct SharedMemVfs {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl SharedMemVfs {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Vec<u8>>> {
        self.files.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Vfs for SharedMemVfs {
    fn read(&self, name: &str) -> Result<Vec<u8>, VfsError> {
        check_name(name)?;
        mem_read(&self.lock(), name)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        check_name(name)?;
        self.lock().insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), VfsError> {
        check_name(name)?;
        self.lock()
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), VfsError> {
        check_name(name)?;
        mem_remove(&mut self.lock(), name)
    }

    fn exists(&self, name: &str) -> bool {
        self.lock().contains_key(name)
    }

    fn list(&self) -> Result<Vec<String>, VfsError> {
        Ok(self.lock().keys().cloned().collect())
    }

    fn size(&self, name: &str) -> Result<u64, VfsError> {
        check_name(name)?;
        mem_size(&self.lock(), name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(vfs: &dyn Vfs) {
        assert!(!vfs.exists("a"));
        assert_eq!(
            vfs.read("a"),
            Err(VfsError::NotFound {
                name: "a".to_string()
            })
        );
        vfs.write_atomic("a", b"one").unwrap();
        assert_eq!(vfs.read("a").unwrap(), b"one");
        vfs.write_atomic("a", b"two").unwrap();
        assert_eq!(vfs.read("a").unwrap(), b"two");
        vfs.append("log", b"x").unwrap();
        vfs.append("log", b"yz").unwrap();
        assert_eq!(vfs.read("log").unwrap(), b"xyz");
        assert_eq!(vfs.size("log").unwrap(), 3);
        assert_eq!(
            vfs.list().unwrap(),
            vec!["a".to_string(), "log".to_string()]
        );
        vfs.remove("a").unwrap();
        assert!(!vfs.exists("a"));
        assert!(matches!(vfs.remove("a"), Err(VfsError::NotFound { .. })));
        // Names that would escape the flat namespace are rejected, not
        // passed through to the backing storage.
        for bad in ["", "a/b", "a\\b", ".", "..", ".tmp.sneaky"] {
            assert!(
                matches!(vfs.write_atomic(bad, b""), Err(VfsError::BadName { .. })),
                "`{bad}` accepted"
            );
        }
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&MemVfs::new());
    }

    #[test]
    fn shared_mem_backend_contract() {
        exercise(&SharedMemVfs::new());
    }

    #[test]
    fn std_backend_contract() {
        let dir = std::env::temp_dir().join(format!("swkm_vfs_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        exercise(&StdVfs::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_mem_clones_share_state() {
        let a = SharedMemVfs::new();
        let b = a.clone();
        a.write_atomic("f", b"shared").unwrap();
        assert_eq!(b.read("f").unwrap(), b"shared");
    }

    #[test]
    fn std_write_atomic_leaves_no_scratch_files() {
        let dir = std::env::temp_dir().join(format!("swkm_vfs_scratch_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let vfs = StdVfs::open(&dir).unwrap();
        for i in 0..10 {
            vfs.write_atomic("f", format!("v{i}").as_bytes()).unwrap();
        }
        let all: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(all, vec!["f".to_string()], "{all:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn boxed_dyn_vfs_is_usable() {
        let vfs: Box<dyn Vfs + Send> = Box::new(SharedMemVfs::new());
        vfs.write_atomic("f", b"boxed").unwrap();
        assert_eq!(vfs.read("f").unwrap(), b"boxed");
    }
}
