//! `swkm-store` — the persistent multi-model store beneath the serving
//! tier.
//!
//! `swkm-serve` (PR 1) loads exactly one CRC-checked artifact into RAM at
//! startup; production serving needs many models, online replacement and
//! restart durability. This crate supplies the durable half of that story,
//! LSM-flavored:
//!
//! * [`vfs`] — a small storage trait ([`Vfs`]) with std-filesystem
//!   ([`StdVfs`]), in-memory ([`MemVfs`]) and thread-safe in-memory
//!   ([`SharedMemVfs`]) backends, so crash-recovery properties are testable
//!   at every byte boundary without touching a disk.
//! * [`manifest`] — a write-ahead log of `Put` / `Promote` / `Delete`
//!   edits in CRC-framed records; replay after a crash stops at the first
//!   torn frame, recovering exactly the committed history.
//! * [`store`] — the [`ModelStore`]: a registry of named models, each a
//!   set of generation-numbered immutable artifact files (the
//!   `ModelArtifact` wire format from `swkm-serve`, unchanged) with one
//!   *live* generation. [`ModelStore::promote`] is the atomic version bump
//!   behind zero-downtime hot swap; [`ModelStore::compact`]
//!   garbage-collects stale generations and rewrites the log.
//!
//! End to end:
//!
//! ```
//! use kmeans_core::Matrix;
//! use swkm_serve::ModelArtifact;
//! use swkm_store::{MemVfs, ModelStore};
//!
//! let mut store = ModelStore::open(MemVfs::new()).unwrap();
//! let v1 = ModelArtifact::from_centroids(Matrix::from_rows(&[&[0.0f32, 0.0]]));
//! let v2 = ModelArtifact::from_centroids(Matrix::from_rows(&[&[9.0f32, 9.0]]));
//! assert_eq!(store.publish("demo", &v1).unwrap(), 1);
//! assert_eq!(store.publish("demo", &v2).unwrap(), 2);
//! let (generation, live) = store.load_live::<f32>("demo").unwrap();
//! assert_eq!(generation, 2);
//! assert_eq!(live, v2);
//! store.promote("demo", 1).unwrap(); // rollback is just another promote
//! assert_eq!(store.load_live::<f32>("demo").unwrap().0, 1);
//! ```

pub mod manifest;
pub mod sink;
pub mod store;
pub mod vfs;

pub use manifest::{ManifestRecord, ReplayReport, MANIFEST};
pub use sink::VfsSink;
pub use store::{
    artifact_file, CompactReport, GenInfo, ModelEntry, ModelState, ModelStore, StoreError,
};
pub use vfs::{MemVfs, SharedMemVfs, StdVfs, Vfs, VfsError};

/// One-stop imports for store call sites.
pub mod prelude {
    pub use crate::manifest::{ManifestRecord, ReplayReport, MANIFEST};
    pub use crate::sink::VfsSink;
    pub use crate::store::{artifact_file, CompactReport, ModelEntry, ModelStore, StoreError};
    pub use crate::vfs::{MemVfs, SharedMemVfs, StdVfs, Vfs, VfsError};
}
