//! Fig. 7 bench — Level 2 vs Level 3 as dimensionality grows (host-scaled):
//! the functional analogue of the paper's crossover study.

use bench::{bench_config, bench_init, BENCH_ITERS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hier_kmeans::fit;
use perf_model::Level;

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_vary_d");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for &d in &[32usize, 128, 512, 2_048] {
        let data = bench::bench_data(1_024, d, 5);
        let init = bench_init(&data, 32);
        for (label, level, g) in [("L2", Level::L2, 4), ("L3", Level::L3, 4)] {
            let cfg = bench_config(level, 8, g);
            group.bench_with_input(BenchmarkId::new(label, d), &d, |b, _| {
                b.iter(|| {
                    let r = fit(&data, init.clone(), &cfg).unwrap();
                    assert_eq!(r.iterations, BENCH_ITERS);
                    r.objective
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
