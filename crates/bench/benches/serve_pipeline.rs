//! Serving-path benchmarks: the sharded index scan (exact vs norm-trick,
//! varying shard counts) and the end-to-end request pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kmeans_core::Matrix;
use std::sync::Arc;
use swkm_obs::TraceBuffer;
use swkm_serve::{Kernel, PipelineConfig, ServeTracing, Server, ShardedIndex};

fn synthetic_centroids(k: usize, d: usize) -> Matrix<f32> {
    Matrix::from_vec(k, d, (0..k * d).map(|i| (i as f32 * 0.13).sin()).collect())
}

fn synthetic_queries(n: usize, d: usize) -> Matrix<f32> {
    Matrix::from_vec(n, d, (0..n * d).map(|i| (i as f32 * 0.71).cos()).collect())
}

fn sharded_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_sharded_scan");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let (k, d, n) = (512usize, 128usize, 64usize);
    let centroids = synthetic_centroids(k, d);
    let queries = synthetic_queries(n, d);
    group.throughput(Throughput::Elements((n * k * d) as u64));
    for &shards in &[1usize, 2, 4, 8] {
        let exact = ShardedIndex::new(centroids.clone(), shards);
        group.bench_with_input(BenchmarkId::new("exact", shards), &shards, |b, _| {
            b.iter(|| exact.assign_batch(&queries))
        });
        let norm = ShardedIndex::new(centroids.clone(), shards).with_kernel(Kernel::Expanded);
        group.bench_with_input(BenchmarkId::new("norm_trick", shards), &shards, |b, _| {
            b.iter(|| norm.assign_batch(&queries))
        });
    }
    group.finish();
}

fn pipeline_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_pipeline_round_trip");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let (k, d) = (256usize, 64usize);
    let index = ShardedIndex::new(synthetic_centroids(k, d), 4);
    let server = Server::start(index, PipelineConfig::default());
    let client = server.client();
    let sample: Vec<f32> = (0..d).map(|i| (i as f32 * 0.7).cos()).collect();
    group.throughput(Throughput::Elements(1));
    group.bench_function("predict", |b| {
        b.iter(|| client.predict(sample.clone()).unwrap())
    });
    drop(client);
    server.shutdown();

    // Tracing compiled in but switched off must be indistinguishable from
    // no tracing at all (<2%): the push path is one relaxed atomic load.
    let disabled = TraceBuffer::shared(1 << 14);
    disabled.set_enabled(false);
    let index = ShardedIndex::new(synthetic_centroids(k, d), 4);
    let server = Server::start_traced(
        index,
        PipelineConfig::default(),
        swkm_obs::MetricsRegistry::shared(),
        ServeTracing::new(Arc::clone(&disabled), None),
    );
    let client = server.client();
    group.bench_function("predict_trace_disabled", |b| {
        b.iter(|| client.predict(sample.clone()).unwrap())
    });
    drop(client);
    server.shutdown();

    // Sampled tracing (1-in-64) bounds the enabled-path cost.
    let sampled = Arc::new(TraceBuffer::with_sampling(1 << 14, 64));
    let index = ShardedIndex::new(synthetic_centroids(k, d), 4);
    let server = Server::start_traced(
        index,
        PipelineConfig::default(),
        swkm_obs::MetricsRegistry::shared(),
        ServeTracing::new(Arc::clone(&sampled), None),
    );
    let client = server.client();
    group.bench_function("predict_trace_1_in_64", |b| {
        b.iter(|| client.predict(sample.clone()).unwrap())
    });
    group.finish();
    drop(client);
    server.shutdown();
}

criterion_group!(benches, sharded_scan, pipeline_round_trip);
criterion_main!(benches);
