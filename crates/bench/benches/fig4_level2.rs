//! Fig. 4 bench — Level 2 (nk-partition) per-iteration time vs k, on
//! host-scaled UCI stand-ins with centroid sharding over CPE groups.

use bench::{bench_config, bench_init, BENCH_ITERS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hier_kmeans::fit;
use perf_model::Level;

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_level2");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for ds in datasets::uci::all() {
        let n = ds.full_n.min(2_048);
        let data = ds.generate(n);
        // Host-scaled large-k sweep (the paper's ranges shrunk 64×).
        for &k in &[64usize, 128, 256] {
            let init = bench_init(&data, k);
            let cfg = bench_config(Level::L2, 8, 4);
            group.bench_with_input(
                BenchmarkId::new(ds.name.replace(' ', "_"), k),
                &k,
                |b, _| {
                    b.iter(|| {
                        let r = fit(&data, init.clone(), &cfg).unwrap();
                        assert_eq!(r.iterations, BENCH_ITERS);
                        r.objective
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
