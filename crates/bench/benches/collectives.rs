//! Micro-benchmarks of the msg runtime's collectives across world sizes
//! and payload sizes — the operations whose byte counts the cost model
//! prices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msg::World;

fn allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_allreduce");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for &ranks in &[2usize, 4, 8] {
        for &len in &[1_024usize, 65_536] {
            group.throughput(Throughput::Bytes((len * 8) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("r{ranks}"), len),
                &len,
                |b, &len| {
                    b.iter(|| {
                        World::run(ranks, |comm| {
                            let mut v = vec![comm.rank() as f64; len];
                            comm.allreduce_sum_f64(&mut v);
                            v[0]
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

fn min_loc(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_minloc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for &len in &[1_024usize, 65_536] {
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter(|| {
                World::run(8, |comm| {
                    let mut pairs: Vec<(f64, u64)> = (0..len)
                        .map(|i| ((comm.rank() * 31 + i) as f64, i as u64))
                        .collect();
                    comm.allreduce_min_loc(&mut pairs);
                    pairs[0].1
                })
            })
        });
    }
    group.finish();
}

fn barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_barrier");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for &ranks in &[2usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                World::run(ranks, |comm| {
                    for _ in 0..10 {
                        comm.barrier();
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, allreduce, min_loc, barrier);
criterion_main!(benches);
