//! Fig. 6 bench — Level 3 extreme scaling: (a) centroid count at fixed d,
//! (b) unit count at fixed shape (the host-scale analogue of node scaling).

use bench::{bench_config, bench_init, BENCH_ITERS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hier_kmeans::fit;
use perf_model::Level;

fn fig6a_centroids(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_scale_k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    let data = bench::bench_data(1_024, 96, 3);
    for &k in &[64usize, 128, 256, 512] {
        let init = bench_init(&data, k);
        let cfg = bench_config(Level::L3, 8, 8);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let r = fit(&data, init.clone(), &cfg).unwrap();
                assert_eq!(r.iterations, BENCH_ITERS);
                r.objective
            })
        });
    }
    group.finish();
}

fn fig6b_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_scale_units");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    let data = bench::bench_data(4_096, 192, 4);
    let init = bench_init(&data, 32);
    for &units in &[2usize, 4, 8, 16] {
        let cfg = bench_config(Level::L3, units, 2);
        group.bench_with_input(BenchmarkId::from_parameter(units), &units, |b, _| {
            b.iter(|| {
                let r = fit(&data, init.clone(), &cfg).unwrap();
                assert_eq!(r.iterations, BENCH_ITERS);
                r.objective
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig6a_centroids, fig6b_units);
criterion_main!(benches);
