//! Fig. 3 bench — Level 1 (n-partition) per-iteration time vs k, on
//! host-scaled versions of the three UCI stand-ins.

use bench::{bench_config, bench_init, BENCH_ITERS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hier_kmeans::fit;
use perf_model::Level;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_level1");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for ds in datasets::uci::all() {
        let n = ds.full_n.min(4_096);
        let data = ds.generate(n);
        // Scale the paper's k sweep down to the subset size.
        for &k in &ds.fig3_k_values()[..3] {
            let init = bench_init(&data, k);
            let cfg = bench_config(Level::L1, 8, 1);
            group.bench_with_input(
                BenchmarkId::new(ds.name.replace(' ', "_"), k),
                &k,
                |b, _| {
                    b.iter(|| {
                        let r = fit(&data, init.clone(), &cfg).unwrap();
                        assert_eq!(r.iterations, BENCH_ITERS);
                        r.objective
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
