//! Table III bench — architecture comparison at host scale: serial Lloyd
//! vs rayon shared-memory baseline vs the three hierarchical executors on
//! one workload (the Ding et al. Yinyang row's shape, scaled down).

use bench::{bench_config, bench_init, BENCH_ITERS};
use criterion::{criterion_group, criterion_main, Criterion};
use hier_kmeans::baseline::{self, BaselineConfig};
use hier_kmeans::fit;
use kmeans_core::{elkan, minibatch, yinyang, KMeansConfig, Lloyd, MiniBatchConfig};
use perf_model::Level;

fn table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_architectures");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    // Ding et al.: n=2.5e6, k=10,000, d=68 — scaled 256× to n=10,000, k=40.
    let data = bench::bench_data(10_000, 68, 9);
    let k = 40;
    let init = bench_init(&data, k);

    group.bench_function("serial_lloyd", |b| {
        let cfg = KMeansConfig::new(k)
            .with_max_iters(BENCH_ITERS)
            .with_tol(0.0);
        b.iter(|| {
            Lloyd::run_from(&data, init.clone(), &cfg)
                .unwrap()
                .objective
        })
    });
    group.bench_function("elkan", |b| {
        let cfg = KMeansConfig::new(k)
            .with_max_iters(BENCH_ITERS)
            .with_tol(0.0);
        b.iter(|| {
            elkan::run_from(&data, init.clone(), &cfg)
                .unwrap()
                .0
                .objective
        })
    });
    group.bench_function("yinyang", |b| {
        let cfg = KMeansConfig::new(k)
            .with_max_iters(BENCH_ITERS)
            .with_tol(0.0);
        b.iter(|| {
            yinyang::run_from(&data, init.clone(), &cfg)
                .unwrap()
                .0
                .objective
        })
    });
    group.bench_function("minibatch", |b| {
        let mb = MiniBatchConfig {
            batch: 1_024,
            batches: BENCH_ITERS,
            seed: 1,
        };
        b.iter(|| {
            minibatch::run_from(&data, init.clone(), &mb, &KMeansConfig::new(k))
                .unwrap()
                .objective
        })
    });
    group.bench_function("rayon_baseline", |b| {
        let cfg = BaselineConfig {
            max_iters: BENCH_ITERS,
            tol: 0.0,
            chunk: 512,
        };
        b.iter(|| baseline::run(&data, init.clone(), &cfg).unwrap().objective)
    });
    for (label, level, g) in [
        ("hier_L1", Level::L1, 1),
        ("hier_L2", Level::L2, 4),
        ("hier_L3", Level::L3, 4),
    ] {
        let cfg = bench_config(level, 8, g);
        group.bench_function(label, |b| {
            b.iter(|| fit(&data, init.clone(), &cfg).unwrap().objective)
        });
    }
    group.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
