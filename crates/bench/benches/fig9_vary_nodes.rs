//! Fig. 9 bench — Level 2 vs Level 3 across unit counts (the host-scale
//! analogue of varying node allocations).

use bench::{bench_config, bench_init, BENCH_ITERS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hier_kmeans::fit;
use perf_model::Level;

fn fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_vary_nodes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    let data = bench::bench_data(2_048, 256, 8);
    let init = bench_init(&data, 32);
    for &units in &[2usize, 4, 8, 16] {
        for (label, level) in [("L2", Level::L2), ("L3", Level::L3)] {
            let cfg = bench_config(level, units, 2);
            group.bench_with_input(BenchmarkId::new(label, units), &units, |b, _| {
                b.iter(|| {
                    let r = fit(&data, init.clone(), &cfg).unwrap();
                    assert_eq!(r.iterations, BENCH_ITERS);
                    r.objective
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
