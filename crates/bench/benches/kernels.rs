//! Micro-benchmarks of the distance kernels: straightforward vs unrolled
//! vs Level-3 sliced, the argmin scan, and the batch-assign kernels
//! (scalar / expanded / tiled) at paper-like shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kmeans_core::distance::{argmin_centroid, sq_euclidean, sq_euclidean_unrolled, CentroidNorms};
use kmeans_core::{AssignKernel, AssignPlan, Matrix};

fn distance_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_distance");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for &d in &[64usize, 1_024, 16_384, 196_608] {
        let a: Vec<f32> = (0..d).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..d).map(|i| (i as f32 * 0.71).cos()).collect();
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::new("simple", d), &d, |bch, _| {
            bch.iter(|| sq_euclidean(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("unrolled", d), &d, |bch, _| {
            bch.iter(|| sq_euclidean_unrolled(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("sliced_64cpe", d), &d, |bch, _| {
            bch.iter(|| {
                // The Level-3 per-CPE partial pattern.
                let mut acc = 0.0f32;
                for cpe in 0..64 {
                    let r = hier_kmeans::split_range(d, 64, cpe);
                    acc += sq_euclidean_unrolled(&a[r.clone()], &b[r]);
                }
                acc
            })
        });
    }
    group.finish();
}

fn argmin_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_argmin");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for &k in &[16usize, 256, 2_048] {
        let d = 128;
        let centroids =
            Matrix::from_vec(k, d, (0..k * d).map(|i| (i as f32 * 0.13).sin()).collect());
        let sample: Vec<f32> = (0..d).map(|i| (i as f32 * 0.7).cos()).collect();
        group.throughput(Throughput::Elements((k * d) as u64));
        group.bench_with_input(BenchmarkId::new("direct", k), &k, |b, _| {
            b.iter(|| argmin_centroid(&sample, &centroids))
        });
        let norms = CentroidNorms::new(&centroids);
        group.bench_with_input(BenchmarkId::new("norm_trick", k), &k, |b, _| {
            b.iter(|| norms.argmin(&sample, &centroids))
        });
    }
    group.finish();
}

/// The batch-assign kernels across the C1 boundary: `k·d·4 B` below,
/// near, and far above the 64 KB LDM budget — the regimes where tiling
/// is pointless, ideal, and forced to spill respectively.
fn assign_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_assign");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    // (n, k, d): k·d·4 = 16 KB (fits), 64 KB (the boundary), 1 MB (spills).
    for &(n, k, d) in &[
        (2_048usize, 64usize, 64usize),
        (2_048, 256, 64),
        (512, 256, 1_024),
    ] {
        let data = bench::bench_data(n, d, 3);
        let centroids = bench::bench_init(&data, k);
        group.throughput(Throughput::Elements((n * k * d) as u64));
        for kernel in AssignKernel::ALL {
            let plan = AssignPlan::new(kernel, &centroids);
            let label = format!("n{n}_k{k}_d{d}");
            group.bench_with_input(BenchmarkId::new(kernel.name(), &label), &label, |b, _| {
                let mut out: Vec<(u32, f32)> = Vec::with_capacity(n);
                b.iter(|| {
                    out.clear();
                    plan.assign_batch_into(&data, 0..n, &centroids, 0..k, 0, &mut out);
                    out.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, distance_kernels, argmin_scan, assign_kernels);
criterion_main!(benches);
