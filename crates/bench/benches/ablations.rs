//! Ablation benches for the design choices DESIGN.md calls out. These run
//! the *cost model* (the quantity the paper's figures plot) under modified
//! machine assumptions, plus a functional f32-vs-f64 kernel ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmeans_core::distance::sq_euclidean_unrolled;
use perf_model::{Calibration, CostModel, Level, ProblemShape};
use sw_arch::{Machine, MachineParams};

/// How much the register-communication buses buy: price Fig. 7's sweep with
/// and without them. (A model-evaluation bench; the printed per-eval times
/// are microseconds, the interesting output is the report in EXPERIMENTS.md.)
fn register_comm_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_register_comm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let shape = ProblemShape::f32(1_265_723, 2_000, 4_096);
    let stock = CostModel::taihulight(128);
    let mut no_reg = stock;
    no_reg.machine.params = MachineParams::taihulight().without_register_communication();
    for (label, model) in [("with_reg", &stock), ("without_reg", &no_reg)] {
        group.bench_function(label, |b| {
            b.iter(|| model.iteration_time(&shape, Level::L3).unwrap().total())
        });
    }
    // Report the actual ablation outcome once.
    let t_with = stock.iteration_time(&shape, Level::L3).unwrap();
    let t_without = no_reg.iteration_time(&shape, Level::L3).unwrap();
    println!(
        "\nablation register-comm: assign_comm {:.4} s -> {:.4} s ({}x)",
        t_with.assign_comm,
        t_without.assign_comm,
        t_without.assign_comm / t_with.assign_comm
    );
    group.finish();
}

/// Merge batching: per-sample argmin merges amortise message latency over
/// tiles; sweep the tile size.
fn merge_batch_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_merge_batch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let shape = ProblemShape::f32(1_265_723, 2_000, 196_608);
    for &batch in &[1.0f64, 8.0, 32.0, 128.0] {
        let model = CostModel::new(
            Machine::taihulight(4_096),
            Calibration {
                merge_batch: batch,
                ..Calibration::default()
            },
        );
        let total = model.iteration_time(&shape, Level::L3).unwrap().total();
        println!("merge_batch {batch}: {total:.3} s/iter");
        group.bench_with_input(BenchmarkId::from_parameter(batch as u64), &batch, |b, _| {
            b.iter(|| model.iteration_time(&shape, Level::L3).unwrap().total())
        });
    }
    group.finish();
}

/// Precision ablation: the distance kernel at f32 vs f64.
fn precision_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_precision");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let d = 16_384;
    let a32: Vec<f32> = (0..d).map(|i| (i as f32 * 0.3).sin()).collect();
    let b32: Vec<f32> = (0..d).map(|i| (i as f32 * 0.7).cos()).collect();
    let a64: Vec<f64> = a32.iter().map(|&v| v as f64).collect();
    let b64: Vec<f64> = b32.iter().map(|&v| v as f64).collect();
    group.bench_function("f32", |b| b.iter(|| sq_euclidean_unrolled(&a32, &b32)));
    group.bench_function("f64", |b| b.iter(|| sq_euclidean_unrolled(&a64, &b64)));
    group.finish();
}

criterion_group!(
    benches,
    register_comm_ablation,
    merge_batch_ablation,
    precision_ablation
);
criterion_main!(benches);
