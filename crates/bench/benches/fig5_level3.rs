//! Fig. 5 bench — Level 3 (nkd-partition) per-iteration time over k × d,
//! on host-scaled ImgNet-like data (the paper's 32×32×3 resolution and a
//! reduced stand-in for the higher resolutions).

use bench::{bench_config, bench_init, BENCH_ITERS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::{ImageNetSource, SampleSource};
use hier_kmeans::fit;
use perf_model::Level;

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_level3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    // d = 108 (6×6×3), 432 (12×12×3), 3072 (32×32×3 — the paper's smallest).
    for &d in &[108usize, 432, 3_072] {
        let src = ImageNetSource::new(512, d, 11);
        let data = src.materialize(0, 512);
        for &k in &[8usize, 16, 32] {
            let init = bench_init(&data, k);
            let cfg = bench_config(Level::L3, 8, 4);
            group.bench_with_input(BenchmarkId::new(format!("d{d}"), k), &k, |b, _| {
                b.iter(|| {
                    let r = fit(&data, init.clone(), &cfg).unwrap();
                    assert_eq!(r.iterations, BENCH_ITERS);
                    r.objective
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
