//! Fig. 8 bench — Level 2 vs Level 3 as the centroid count grows
//! (host-scaled), at fixed dimensionality.

use bench::{bench_config, bench_init, BENCH_ITERS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hier_kmeans::fit;
use perf_model::Level;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_vary_k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    let data = bench::bench_data(1_024, 256, 6);
    for &k in &[16usize, 64, 256] {
        let init = bench_init(&data, k);
        for (label, level) in [("L2", Level::L2), ("L3", Level::L3)] {
            let cfg = bench_config(level, 8, 4);
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    let r = fit(&data, init.clone(), &cfg).unwrap();
                    assert_eq!(r.iterations, BENCH_ITERS);
                    r.objective
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
