//! Shared helpers for the Criterion benchmark suite.
//!
//! Layout: one bench target per paper table/figure (`fig3_level1` …
//! `table3_architectures`) plus micro-benchmarks (`kernels`,
//! `collectives`) and design-choice `ablations`. The figure benches run
//! the *functional* executors at host-scale shapes (measuring the real
//! code paths); the shape claims at machine scale live in the
//! `experiments` harness, which prices full configurations with the cost
//! model. Run everything with `cargo bench --workspace`.

use hier_kmeans::HierConfig;
use kmeans_core::{init_centroids, AssignKernel, InitMethod, Matrix};
use perf_model::Level;

/// Deterministic benchmark dataset: a Gaussian mixture at the given shape.
pub fn bench_data(n: usize, d: usize, seed: u64) -> Matrix<f32> {
    datasets::GaussianMixture::new(n, d, 16)
        .with_seed(seed)
        .with_spread(20.0)
        .generate()
        .data
}

/// Deterministic initial centroids for a dataset.
pub fn bench_init(data: &Matrix<f32>, k: usize) -> Matrix<f32> {
    init_centroids(data, k, InitMethod::Forgy, 7)
}

/// A fixed-iteration executor configuration (2 iterations, no early exit),
/// so measured time is exactly two Assign+Update rounds.
pub fn bench_config(level: Level, units: usize, group_units: usize) -> HierConfig {
    HierConfig {
        level,
        units,
        group_units,
        cpes_per_cg: 8,
        max_iters: 2,
        tol: 0.0,
        kernel: AssignKernel::Scalar,
        ..HierConfig::new(level)
    }
}

/// Iterations each bench fixes (keep in sync with [`bench_config`]).
pub const BENCH_ITERS: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_shapes() {
        let data = bench_data(128, 16, 1);
        assert_eq!(data.rows(), 128);
        assert_eq!(data.cols(), 16);
        let init = bench_init(&data, 4);
        assert_eq!(init.rows(), 4);
        let cfg = bench_config(Level::L2, 8, 4);
        assert_eq!(cfg.max_iters, BENCH_ITERS);
    }
}
