//! Reproducible assign-kernel snapshot: times every [`AssignKernel`] at
//! paper-like shapes and writes `BENCH_kernels.json` (checked in at the
//! repo root, regenerated with
//! `cargo run --release -p bench --bin kernels_snapshot`).
//!
//! Shapes bracket the C1 boundary: the centroid set (`k·d·4 B`) fits the
//! 64 KB LDM at the small shape, sits at the boundary at the paper-like
//! n=100k/d=64/k=256 shape, and spills far past it at d=1024.

use kmeans_core::{AssignKernel, AssignPlan, Matrix};
use std::time::Instant;

struct Row {
    n: usize,
    k: usize,
    d: usize,
    /// Samples/s per kernel, in `AssignKernel::ALL` order.
    rates: [f64; 3],
    checksum: u64,
}

fn time_kernel(
    kernel: AssignKernel,
    data: &Matrix<f32>,
    centroids: &Matrix<f32>,
    reps: usize,
) -> (f64, u64) {
    let n = data.rows();
    let k = centroids.rows();
    let plan = AssignPlan::new(kernel, centroids);
    let mut out: Vec<(u32, f32)> = Vec::with_capacity(n);
    // Warm-up (also computes the label checksum used as a cross-kernel
    // sanity anchor).
    out.clear();
    plan.assign_batch_into(data, 0..n, centroids, 0..k, 0, &mut out);
    let checksum = out.iter().map(|&(j, _)| j as u64).sum();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        out.clear();
        let t = Instant::now();
        plan.assign_batch_into(data, 0..n, centroids, 0..k, 0, &mut out);
        best = best.min(t.elapsed().as_secs_f64());
    }
    (n as f64 / best, checksum)
}

fn bench_shape(n: usize, k: usize, d: usize, reps: usize) -> Row {
    let data = bench::bench_data(n, d, 3);
    let centroids = bench::bench_init(&data, k);
    let mut rates = [0.0f64; 3];
    let mut checksum = 0u64;
    for (slot, kernel) in rates.iter_mut().zip(AssignKernel::ALL) {
        let (rate, sum) = time_kernel(kernel, &data, &centroids, reps);
        *slot = rate;
        if kernel == AssignKernel::Scalar {
            checksum = sum;
        }
        eprintln!("n={n} k={k} d={d} {kernel}: {rate:.0} samples/s");
    }
    Row {
        n,
        k,
        d,
        rates,
        checksum,
    }
}

fn main() {
    // (n, k, d, reps): k·d·4 B spans 16 KB → 64 KB → 1 MB across C1.
    let shapes = [
        (20_000usize, 64usize, 64usize, 5usize),
        (100_000, 256, 64, 3),
        (10_000, 256, 1_024, 3),
    ];
    let rows: Vec<Row> = shapes
        .iter()
        .map(|&(n, k, d, reps)| bench_shape(n, k, d, reps))
        .collect();

    let mut json = String::from(
        "{\n  \"bench\": \"assign_kernels\",\n  \"unit\": \"samples_per_s\",\n  \"rows\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"k\": {}, \"d\": {}, \"scalar\": {:.0}, \"expanded\": {:.0}, \
             \"tiled\": {:.0}, \"tiled_speedup_vs_scalar\": {:.2}, \"label_checksum\": {}}}{}\n",
            row.n,
            row.k,
            row.d,
            row.rates[0],
            row.rates[1],
            row.rates[2],
            row.rates[2] / row.rates[0],
            row.checksum,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("{json}");

    let paper = &rows[1];
    assert!(
        paper.rates[2] > paper.rates[0],
        "tiled ({:.0}/s) must beat scalar ({:.0}/s) at n=100k k=256 d=64",
        paper.rates[2],
        paper.rates[0]
    );
    println!("wrote BENCH_kernels.json (tiled beats scalar at the paper shape)");
}
