//! Reproducible assign-kernel snapshot: times every [`AssignKernel`] at
//! paper-like shapes and writes `BENCH_kernels.json` (checked in at the
//! repo root, regenerated with
//! `cargo run --release -p bench --bin kernels_snapshot`).
//!
//! Shapes bracket the C1 boundary: the centroid set (`k·d·4 B`) fits the
//! 64 KB LDM at the small shape, sits at the boundary at the paper-like
//! n=100k/d=64/k=256 shape, stresses the panel-streaming regime at
//! k=1024, and spills far past it at d=1024.
//!
//! Besides raw throughput the snapshot records the [`AssignPlanner`]'s
//! delta-path win: per-iteration plan preparation (centroid norms + packed
//! GEMM panels) rebuilt from scratch versus refreshed through the planner
//! cache when only a convergence-tail-sized fraction of rows moved.

use kmeans_core::{AssignKernel, AssignPlan, AssignPlanner, Matrix, LDM_BYTES_DEFAULT};
use std::time::Instant;

struct Row {
    n: usize,
    k: usize,
    d: usize,
    /// Samples/s per kernel, in `AssignKernel::ALL` order.
    rates: [f64; 4],
    /// Label checksums per kernel, in `AssignKernel::ALL` order. Tiled and
    /// gemm share one canonical accumulation order and are asserted equal
    /// bit for bit; scalar and norm-expanded round differently, so their
    /// checksums may legitimately diverge from the tiled/gemm pair.
    sums: [u64; 4],
}

fn time_kernel(
    kernel: AssignKernel,
    data: &Matrix<f32>,
    centroids: &Matrix<f32>,
    reps: usize,
) -> (f64, u64) {
    let n = data.rows();
    let k = centroids.rows();
    let plan = AssignPlan::new(kernel, centroids);
    let mut out: Vec<(u32, f32)> = Vec::with_capacity(n);
    // Warm-up (also computes the label checksum used as a cross-kernel
    // sanity anchor).
    out.clear();
    plan.assign_batch_into(data, 0..n, centroids, 0..k, 0, &mut out);
    let checksum = out.iter().map(|&(j, _)| j as u64).sum();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        out.clear();
        let t = Instant::now();
        plan.assign_batch_into(data, 0..n, centroids, 0..k, 0, &mut out);
        best = best.min(t.elapsed().as_secs_f64());
    }
    (n as f64 / best, checksum)
}

fn bench_shape(n: usize, k: usize, d: usize, reps: usize) -> Row {
    let data = bench::bench_data(n, d, 3);
    let centroids = bench::bench_init(&data, k);
    let mut rates = [0.0f64; 4];
    let mut sums = [0u64; 4];
    for ((slot, sum), kernel) in rates.iter_mut().zip(&mut sums).zip(AssignKernel::ALL) {
        let (rate, s) = time_kernel(kernel, &data, &centroids, reps);
        *slot = rate;
        *sum = s;
        eprintln!("n={n} k={k} d={d} {kernel}: {rate:.0} samples/s");
    }
    // Tiled and gemm share one canonical accumulation order: their labels
    // must agree exactly, not just statistically.
    assert_eq!(
        sums[2], sums[3],
        "tiled and gemm labels diverged at n={n} k={k} d={d}"
    );
    Row {
        n,
        k,
        d,
        rates,
        sums,
    }
}

/// Per-iteration plan preparation (norms + packed panels) at a delta-tail
/// churn level: a fresh `AssignPlan` every iteration versus the
/// `AssignPlanner` refreshing only the ~2% of rows that moved, using the
/// exact changed-row hint the delta executors already compute for their
/// skip-scan (`plan_with_changed` — no snapshot diff on the hot path).
fn plan_cache_times(k: usize, d: usize) -> (f64, f64) {
    let centroids = bench::bench_data(k, d, 11);
    // Move 2% of the rows, the shape of a converging delta tail.
    let mut moved = centroids.as_slice().to_vec();
    let mut changed = vec![false; k];
    for j in (0..k).step_by(50) {
        for v in &mut moved[j * d..(j + 1) * d] {
            *v += 0.125;
        }
        changed[j] = true;
    }
    let centroids2 = Matrix::from_vec(k, d, moved);
    let reps = 200;
    let t = Instant::now();
    for _ in 0..reps {
        let plan = AssignPlan::new(AssignKernel::Gemm, &centroids2);
        std::hint::black_box(&plan);
    }
    let fresh_ns = t.elapsed().as_secs_f64() * 1e9 / reps as f64;
    let mut planner = AssignPlanner::new(AssignKernel::Gemm, LDM_BYTES_DEFAULT);
    planner.plan(&centroids);
    let mut flip = false;
    let t = Instant::now();
    for _ in 0..reps {
        // Alternate between the two centroid sets so every refresh sees
        // the same 2% of rows changed.
        let c = if flip { &centroids } else { &centroids2 };
        flip = !flip;
        let plan = planner.plan_with_changed(c, &changed);
        std::hint::black_box(&plan);
    }
    let cached_ns = t.elapsed().as_secs_f64() * 1e9 / reps as f64;
    (fresh_ns, cached_ns)
}

fn main() {
    // (n, k, d, reps): k·d·4 B spans 16 KB → 64 KB → 256 KB → 1 MB
    // across C1; k ∈ {64, 256, 1024} at the paper's d=64.
    let shapes = [
        (20_000usize, 64usize, 64usize, 5usize),
        (100_000, 256, 64, 3),
        (100_000, 1_024, 64, 2),
        (10_000, 256, 1_024, 3),
    ];
    let rows: Vec<Row> = shapes
        .iter()
        .map(|&(n, k, d, reps)| bench_shape(n, k, d, reps))
        .collect();
    let (fresh_ns, cached_ns) = plan_cache_times(1_024, 64);
    eprintln!("plan prep k=1024 d=64: fresh {fresh_ns:.0} ns/iter, cached {cached_ns:.0} ns/iter");

    let mut json = String::from(
        "{\n  \"bench\": \"assign_kernels\",\n  \"unit\": \"samples_per_s\",\n  \"rows\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"k\": {}, \"d\": {}, \"scalar\": {:.0}, \"expanded\": {:.0}, \
             \"tiled\": {:.0}, \"gemm\": {:.0}, \"tiled_speedup_vs_scalar\": {:.2}, \
             \"gemm_speedup_vs_tiled\": {:.2}, \"scalar_label_checksum\": {}, \
             \"expanded_label_checksum\": {}, \"tiled_label_checksum\": {}, \
             \"gemm_label_checksum\": {}}}{}\n",
            row.n,
            row.k,
            row.d,
            row.rates[0],
            row.rates[1],
            row.rates[2],
            row.rates[3],
            row.rates[2] / row.rates[0],
            row.rates[3] / row.rates[2],
            row.sums[0],
            row.sums[1],
            row.sums[2],
            row.sums[3],
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"plan_prep_delta_tail\": {{\"k\": 1024, \"d\": 64, \
         \"changed_rows_pct\": 2, \"fresh_ns_per_iter\": {fresh_ns:.0}, \
         \"cached_ns_per_iter\": {cached_ns:.0}, \"cache_speedup\": {:.1}}}\n}}\n",
        fresh_ns / cached_ns
    ));
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("{json}");

    let paper = &rows[1];
    assert!(
        paper.rates[2] > paper.rates[0],
        "tiled ({:.0}/s) must beat scalar ({:.0}/s) at n=100k k=256 d=64",
        paper.rates[2],
        paper.rates[0]
    );
    assert!(
        paper.rates[3] >= 2.0 * paper.rates[2],
        "gemm ({:.0}/s) must be >= 2x tiled ({:.0}/s) at n=100k k=256 d=64",
        paper.rates[3],
        paper.rates[2]
    );
    assert!(
        cached_ns < fresh_ns,
        "planner cache must beat fresh plan prep ({cached_ns:.0} vs {fresh_ns:.0} ns)"
    );
    println!("wrote BENCH_kernels.json (gemm >= 2x tiled at the paper shape)");
}
