//! Reproducible bounded-assign snapshot: measures triangle-inequality
//! pruning fused with the GEMM kernel at the paper's census-like shape
//! (n=100k, k=256, d=64) and writes `BENCH_bounds.json` (checked in at the
//! repo root, regenerated with
//! `cargo run --release -p bench --bin bounds_snapshot`).
//!
//! Two measurements:
//!
//! 1. **Bit-identity** — full `Lloyd` runs under every [`BoundsMode`]
//!    against the unbounded reference: same labels, same iteration count,
//!    same objective bit for bit. Pruning must only skip rows whose
//!    assignment provably cannot change.
//! 2. **Tail speedup** — the iteration loop driven manually so each assign
//!    pass can be timed in isolation: once the moved fraction drops below
//!    10% (the convergence tail where bounds earn their keep), the bounded
//!    Yinyang+gemm pass is compared against the unbounded gemm pass over
//!    the *same* centroids. The acceptance floor is a ≥3× per-iteration
//!    assign speedup, plus a ≥50% distance-eval savings fraction.

use kmeans_core::{
    centroid_drifts, update_step, AssignKernel, AssignPlanner, BoundState, BoundsIterKind,
    BoundsMode, BoundsScratch, KMeansConfig, Lloyd, Matrix, LDM_BYTES_DEFAULT,
};
use std::time::Instant;

/// The convergence-tail boundary of the acceptance criterion.
const MOVED_TAIL: f64 = 0.10;

struct ModeRun {
    mode: BoundsMode,
    iterations: usize,
    distance_evals: u64,
    lloyd_equivalent: u64,
    savings: f64,
    wall_s: f64,
}

fn main() {
    let (n, k, d) = (100_000usize, 256usize, 64usize);
    // A k-component mixture, i.e. data with as much cluster structure as
    // the fitted model (the census-like regime). Triangle-inequality
    // pruning lives off the gap between a sample's own centroid and the
    // rest; `bench_data`'s 16 blobs subdivided by 256 centroids would
    // close those gaps and measure noise instead.
    let data = datasets::GaussianMixture::new(n, d, k)
        .with_seed(7)
        .with_spread(20.0)
        .generate()
        .data;
    // k-means++ rather than Forgy: Forgy seeding leaves ~1/e of the blobs
    // uncovered, and every sample in a shared blob then sits on a
    // permanent near-tie that no exact bound can prune.
    let init = kmeans_core::init_centroids(&data, k, kmeans_core::InitMethod::KMeansPlusPlus, 7);

    // --- 1. Bit-identity of every bounds mode through the real Lloyd path.
    // 25 iterations cover dormant, seed and filter phases; identity is an
    // induction invariant, so a truncated run proves the same property.
    let base = KMeansConfig::new(k)
        .with_max_iters(25)
        .with_kernel(AssignKernel::Gemm);
    let t = Instant::now();
    let reference = Lloyd::run_from(&data, init.clone(), &base).expect("unbounded run");
    let unbounded_wall = t.elapsed().as_secs_f64();
    eprintln!(
        "bounds none: {} iterations, objective {:.6}, {unbounded_wall:.2} s",
        reference.iterations, reference.objective
    );
    let mut runs = vec![ModeRun {
        mode: BoundsMode::None,
        iterations: reference.iterations,
        distance_evals: 0,
        lloyd_equivalent: 0,
        savings: 0.0,
        wall_s: unbounded_wall,
    }];
    for mode in [BoundsMode::Hamerly, BoundsMode::Yinyang, BoundsMode::Auto] {
        let t = Instant::now();
        let res = Lloyd::run_from(&data, init.clone(), &base.with_bounds(mode)).expect("bounded");
        let wall_s = t.elapsed().as_secs_f64();
        assert_eq!(res.labels, reference.labels, "{mode}: labels diverged");
        assert_eq!(res.iterations, reference.iterations, "{mode}: iterations");
        assert_eq!(
            res.objective.to_bits(),
            reference.objective.to_bits(),
            "{mode}: objective not bit-identical"
        );
        eprintln!(
            "bounds {mode}: {} iterations, {:.1}% distance work saved, {wall_s:.2} s",
            res.iterations,
            res.bounds.savings() * 100.0
        );
        runs.push(ModeRun {
            mode,
            iterations: res.iterations,
            distance_evals: res.bounds.distance_evals,
            lloyd_equivalent: res.bounds.lloyd_equivalent,
            savings: res.bounds.savings(),
            wall_s,
        });
    }

    // --- 2. Per-iteration tail timing, bounded Yinyang vs unbounded gemm
    // on identical centroids.
    let mut planner = AssignPlanner::new(AssignKernel::Gemm, LDM_BYTES_DEFAULT);
    let mut st = BoundState::<f32>::new(BoundsMode::Yinyang, n, k, d);
    let mut scratch = BoundsScratch::default();
    let mut centroids = init.clone();
    let mut next = Matrix::from_vec(k, d, vec![0.0f32; k * d]);
    let mut pairs: Vec<(u32, f32)> = Vec::with_capacity(n);
    let mut unbounded_pairs: Vec<(u32, f32)> = Vec::with_capacity(n);
    let mut labels = vec![0u32; n];
    let mut prev_labels = vec![0u32; n];
    let mut drifts = vec![0.0f64; k];
    let mut tail_bounded = 0.0f64;
    let mut tail_unbounded = 0.0f64;
    let mut tail_iters = 0usize;
    let mut tail_evals = 0u64;
    for iter in 0..300usize {
        let plan = planner.plan(&centroids);
        let evals_before = st.stats.distance_evals;
        pairs.clear();
        let t = Instant::now();
        let kind = st.assign_serial(&plan, &data, 0..n, &centroids, &mut pairs, &mut scratch);
        let bounded_s = t.elapsed().as_secs_f64();
        let iter_evals = st.stats.distance_evals - evals_before;
        for (label, &(j, _)) in labels.iter_mut().zip(&pairs) {
            *label = j;
        }
        let moved = if iter == 0 {
            1.0
        } else {
            let m = labels
                .iter()
                .zip(&prev_labels)
                .filter(|(a, b)| a != b)
                .count();
            m as f64 / n as f64
        };
        // The unbounded pass over the same centroids, for the per-iteration
        // comparison and a per-iteration label-identity check (filtered
        // rows carry cached keys, so only labels are comparable there).
        unbounded_pairs.clear();
        let t = Instant::now();
        plan.assign_batch_into(&data, 0..n, &centroids, 0..k, 0, &mut unbounded_pairs);
        let unbounded_s = t.elapsed().as_secs_f64();
        for (i, (b, u)) in pairs.iter().zip(&unbounded_pairs).enumerate() {
            assert_eq!(b.0, u.0, "iter {iter} row {i}: bounded label diverged");
        }
        if moved < MOVED_TAIL && kind == BoundsIterKind::Filter {
            tail_bounded += bounded_s;
            tail_unbounded += unbounded_s;
            tail_iters += 1;
            tail_evals += iter_evals;
        }
        if iter % 5 == 0 || moved == 0.0 {
            eprintln!(
                "iter {iter}: moved {:.4}, {kind:?}, rescans {}, bounded {bounded_s:.4} s, \
                 unbounded {unbounded_s:.4} s",
                moved,
                iter_evals / k as u64
            );
        }
        update_step(&data, &labels, &centroids, &mut next);
        centroid_drifts(&centroids, &next, &mut drifts);
        std::mem::swap(&mut centroids, &mut next);
        st.loosen(&drifts);
        st.note_moved_fraction(moved);
        prev_labels.copy_from_slice(&labels);
        if iter > 0 && moved == 0.0 {
            break;
        }
    }
    assert!(tail_iters > 0, "run never reached the <10%-moved tail");
    let speedup = tail_unbounded / tail_bounded;
    // Savings over the tail iterations alone — the regime the acceptance
    // floor is defined on (seed scans and the dormant head excluded).
    let tail_savings = 1.0 - tail_evals as f64 / (tail_iters as f64 * (n * k) as f64);
    eprintln!(
        "tail ({tail_iters} iteration(s) under {MOVED_TAIL} moved): \
         unbounded {:.4} s/iter, bounded {:.4} s/iter — {speedup:.1}x, \
         {:.1}% distance work saved overall",
        tail_unbounded / tail_iters as f64,
        tail_bounded / tail_iters as f64,
        tail_savings * 100.0
    );

    let mut json = String::from("{\n  \"bench\": \"bounded_assign\",\n");
    json.push_str(&format!(
        "  \"shape\": {{\"n\": {n}, \"k\": {k}, \"d\": {d}}},\n  \"kernel\": \"gemm\",\n"
    ));
    json.push_str("  \"modes\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bounds\": \"{}\", \"iterations\": {}, \"distance_evals\": {}, \
             \"lloyd_equivalent\": {}, \"savings\": {:.4}, \"wall_s\": {:.3}, \
             \"bit_identical_to_none\": true}}{}\n",
            r.mode,
            r.iterations,
            r.distance_evals,
            r.lloyd_equivalent,
            r.savings,
            r.wall_s,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"tail\": {{\"moved_fraction_threshold\": {MOVED_TAIL}, \
         \"iterations\": {tail_iters}, \"unbounded_assign_s_per_iter\": {:.5}, \
         \"bounded_assign_s_per_iter\": {:.5}, \"assign_speedup\": {:.2}, \
         \"savings\": {:.4}}}\n}}\n",
        tail_unbounded / tail_iters as f64,
        tail_bounded / tail_iters as f64,
        speedup,
        tail_savings
    ));
    std::fs::write("BENCH_bounds.json", &json).expect("write BENCH_bounds.json");
    println!("{json}");

    assert!(
        speedup >= 3.0,
        "bounded gemm must be >= 3x unbounded gemm per tail iteration, got {speedup:.2}x"
    );
    assert!(
        tail_savings >= 0.5,
        "bounded run must prune >= 50% of distance work, got {:.1}%",
        tail_savings * 100.0
    );
    println!("wrote BENCH_bounds.json (bounded gemm {speedup:.1}x unbounded on the tail)");
}
