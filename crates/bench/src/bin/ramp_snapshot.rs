//! Reproducible load-ramp snapshot: drives the event-driven serve core
//! through a deterministic 10× client swing (1 → 10 → 1) on the elastic
//! shard pool and writes `BENCH_serve_ramp.json` (checked in at the repo
//! root, regenerated with
//! `cargo run --release -p bench --bin ramp_snapshot`).
//!
//! The snapshot is the committed form of the `tests/serve_ramp.rs`
//! invariants: per-phase p50/p95/p99 and shed fraction, the elastic
//! shard-count excursion, and the conservation total — every issued
//! request completed, shed or failed.

use kmeans_core::Matrix;
use std::time::Duration;
use swkm_obs::MetricsRegistry;
use swkm_serve::{
    run_ramp, DispatchConfig, ElasticConfig, RampConfig, Server, ServeTracing, ShardedIndex,
};

fn main() {
    // The serving analogue of the census-like regime: a heavy k×d scan so
    // queues actually form and the ramp exercises scaling.
    let (k, d) = (256usize, 128usize);
    let centroids = Matrix::from_vec(
        k,
        d,
        (0..k * d).map(|i| (i as f32 * 0.37).sin()).collect(),
    );
    let queries = Matrix::from_vec(
        64,
        d,
        (0..64 * d).map(|i| (i as f32 * 0.11).cos()).collect(),
    );

    let registry = MetricsRegistry::shared();
    let server = Server::start_dispatch(
        ShardedIndex::new(centroids, 4),
        DispatchConfig {
            queue_capacity: 4_096,
            max_batch: 16,
            linger: Duration::from_micros(100),
            shards: ElasticConfig::elastic(1, 4),
            shard_queue: 1,
            tick: Duration::from_millis(1),
            admission: None,
        },
        registry.clone(),
        ServeTracing::default(),
    );

    let config = RampConfig {
        base_clients: 1,
        peak_clients: 10,
        steps_up: 4,
        requests_per_client: 300,
    };
    println!("ramp profile: {:?}", config.profile());
    let ramp = run_ramp(&server, &queries, config);
    println!("{ramp}");

    // Let the lazy scale-down return the pool to the minimum before the
    // gauges are read.
    std::thread::sleep(Duration::from_millis(100));
    let peak = registry.gauge("serve_shards_active_peak").unwrap_or(0.0);
    let low = registry.gauge("serve_shards_active_low").unwrap_or(0.0);
    let steals = registry.counter("serve_steal_total");
    let snap = server.shutdown();

    let mut json = ramp.to_json();
    // Graft the server-side elasticity facts into the document: strip the
    // closing brace and extend.
    let body = json.trim_end().trim_end_matches('}').to_string();
    json = format!(
        "{body}  ,\"elastic\": {{\"shards_active_peak\": {peak}, \"shards_active_low\": {low}, \
         \"steals\": {steals}, \"stranded\": {}}}\n}}\n",
        snap.stranded
    );
    std::fs::write("BENCH_serve_ramp.json", &json).expect("write BENCH_serve_ramp.json");
    println!("{json}");

    assert!(ramp.conserved(), "ramp lost requests");
    assert_eq!(snap.stranded, 0, "shutdown stranded requests");
    assert!(
        peak > low,
        "the 10x swing must move the shard count (peak {peak}, low {low})"
    );
    println!("wrote BENCH_serve_ramp.json (shards {low}..{peak}, {steals} steals)");
}
