//! Reproducible update-path snapshot: times the three `--update` modes on
//! the paper-like n=100k/k=256/d=64 Level-1 fit and writes
//! `BENCH_update.json` (checked in at the repo root, regenerated with
//! `cargo run --release -p bench --bin update_snapshot`).
//!
//! Three sections, matching the acceptance criteria of the fused-update
//! work:
//! * **modes** — converged twopass/fused/delta fits under a tree merge,
//!   with bitwise-identical labels and objective asserted, per-iteration
//!   wall time and training throughput reported, and the delta speedup
//!   (which must reach ≥ 1.5×) computed from the same runs;
//! * **merge** — tree vs ring AllReduce traffic for the dense k·d merge at
//!   the same shape (total bytes match; the ring's advantage is the
//!   per-rank maximum, which the cost model prices);
//! * **minloc** — the census Level-3 fit from `BENCH_baseline.json`'s
//!   command, showing the packed-u64 min-loc payload at exactly half the
//!   unpacked (f64, u64) baseline bytes.

use hier_kmeans::{HierKMeans, Level, MergeStrategy, UpdateMode};
use kmeans_core::{init_centroids, AssignKernel, InitMethod};
use std::time::Instant;

struct ModeRun {
    mode: UpdateMode,
    iterations: usize,
    wall_s: f64,
    samples_per_s: f64,
    labels: Vec<u32>,
    objective: f64,
}

fn main() {
    let (n, k, d, units) = (100_000usize, 256usize, 64usize, 8usize);
    // Mirrors `swkm fit --dataset mixture --n 100000 --d 64 --k 256
    // --level 1 --units 8 --kernel tiled --update <mode> --merge tree`:
    // a k-component mixture, k-means++ seeding, so the run converges and
    // the delta path's long low-churn tail is represented. (The 16-blob
    // `bench_data` helper over-fragments at k=256 and never settles —
    // delta still wins there, but only ~1.1×, all of it from the fused
    // accumulate and the sparse merges.)
    let data = datasets::GaussianMixture::new(n, d, k)
        .with_seed(0)
        .generate::<f32>()
        .data;
    let init = init_centroids(&data, k, InitMethod::KMeansPlusPlus, 0);

    // ---- Section 1: the three update paths, converged, tree merge. ----
    let mut modes: Vec<ModeRun> = Vec::new();
    for mode in UpdateMode::ALL {
        let t = Instant::now();
        let r = HierKMeans::new(Level::L1)
            .with_units(units)
            .with_kernel(AssignKernel::Tiled)
            .with_update(mode)
            .with_merge(MergeStrategy::Tree)
            .with_max_iters(200)
            .fit(&data, init.clone())
            .expect("L1 fit");
        let wall = t.elapsed().as_secs_f64();
        assert!(r.converged, "{mode} did not converge within 200 iterations");
        eprintln!(
            "{mode}: {} iterations in {wall:.2}s ({:.4}s/iter)",
            r.iterations,
            wall / r.iterations as f64
        );
        modes.push(ModeRun {
            mode,
            iterations: r.iterations,
            wall_s: wall,
            samples_per_s: (n * r.iterations) as f64 / wall,
            labels: r.labels,
            objective: r.objective,
        });
    }
    // Bitwise agreement is the contract that makes the speedup honest.
    for m in &modes[1..] {
        assert_eq!(m.labels, modes[0].labels, "{} labels diverged", m.mode);
        assert_eq!(
            m.objective.to_bits(),
            modes[0].objective.to_bits(),
            "{} objective bits diverged",
            m.mode
        );
        assert_eq!(m.iterations, modes[0].iterations);
    }
    let per_iter = |m: &ModeRun| m.wall_s / m.iterations as f64;
    let fused_speedup = per_iter(&modes[0]) / per_iter(&modes[1]);
    let delta_speedup = per_iter(&modes[0]) / per_iter(&modes[2]);

    // ---- Section 2: tree vs ring traffic for the dense k·d merge. ----
    let merge_fit = |merge: MergeStrategy| {
        HierKMeans::new(Level::L1)
            .with_units(units)
            .with_kernel(AssignKernel::Tiled)
            .with_update(UpdateMode::Fused)
            .with_merge(merge)
            .with_max_iters(3)
            .with_tol(0.0)
            .fit(&data, init.clone())
            .expect("merge fit")
    };
    let tree = merge_fit(MergeStrategy::Tree);
    let ring = merge_fit(MergeStrategy::Ring);
    assert!(!tree.merge_ring && ring.merge_ring);
    let tree_bytes = tree.comm.bytes_of(msg::OpKind::AllReduce);
    let ring_bytes = ring.comm.bytes_of(msg::OpKind::AllReduce);
    let auto = merge_fit(MergeStrategy::Auto);
    eprintln!(
        "merge: tree {tree_bytes} B / {} msgs, ring {ring_bytes} B / {} msgs, auto→ring={}",
        tree.comm.messages_of(msg::OpKind::AllReduce),
        ring.comm.messages_of(msg::OpKind::AllReduce),
        auto.merge_ring
    );

    // ---- Section 3: packed min-loc on the BENCH_baseline census fit. ----
    let census = datasets::uci::us_census_1990().generate(8_192);
    let census_init = init_centroids(&census, 12, InitMethod::KMeansPlusPlus, 0);
    let l3 = HierKMeans::new(Level::L3)
        .with_units(8)
        .with_group_units(2)
        .with_cpes_per_cg(8)
        .with_max_iters(10)
        .fit(&census, census_init)
        .expect("census L3 fit");
    let minloc_bytes = l3.comm.bytes_of(msg::OpKind::MinLoc);
    const PR3_MINLOC_BYTES: u64 = 2_621_440; // from BENCH_baseline.json
    eprintln!("minloc: {minloc_bytes} B (baseline {PR3_MINLOC_BYTES} B)");

    let mut json = String::from("{\n  \"bench\": \"update_paths\",\n");
    json.push_str(&format!(
        "  \"command\": \"swkm fit --dataset mixture --n {n} --d {d} --k {k} --level 1 \
         --units {units} --kernel tiled --update <mode> --merge tree\",\n"
    ));
    json.push_str(&format!(
        "  \"shape\": {{\"n\": {n}, \"k\": {k}, \"d\": {d}, \"units\": {units}, \
         \"kernel\": \"tiled\", \"merge\": \"tree\"}},\n  \"modes\": [\n"
    ));
    for (i, m) in modes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"iterations\": {}, \"wall_s\": {:.3}, \
             \"wall_per_iter_s\": {:.4}, \"samples_per_s\": {:.0}}}{}\n",
            m.mode,
            m.iterations,
            m.wall_s,
            per_iter(m),
            m.samples_per_s,
            if i + 1 < modes.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"bitwise_identical_labels_and_objective\": true,\n  \
         \"fused_speedup_per_iter\": {fused_speedup:.2},\n  \
         \"delta_speedup_per_iter\": {delta_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"merge\": {{\"dense_bytes\": {}, \"tree_allreduce_bytes\": {tree_bytes}, \
         \"ring_allreduce_bytes\": {ring_bytes}, \"auto_selects_ring\": {}}},\n",
        k * d * 4,
        auto.merge_ring
    ));
    json.push_str(&format!(
        "  \"minloc\": {{\"fit\": \"census n=8192 k=12 L3 units=8 group=2 iters=10\", \
         \"packed_bytes\": {minloc_bytes}, \"pr3_unpacked_bytes\": {PR3_MINLOC_BYTES}}}\n}}\n"
    ));
    std::fs::write("BENCH_update.json", &json).expect("write BENCH_update.json");
    println!("{json}");

    assert!(
        delta_speedup >= 1.5,
        "delta per-iteration speedup {delta_speedup:.2}× is below the 1.5× acceptance bar"
    );
    assert!(
        minloc_bytes * 2 <= PR3_MINLOC_BYTES,
        "packed min-loc bytes {minloc_bytes} must be at most half of {PR3_MINLOC_BYTES}"
    );
    println!("wrote BENCH_update.json (delta ≥1.5×/iter, min-loc halved)");
}
