//! Models of the related systems the paper compares against: the
//! Trinity/Bender two-level-memory constraint (Table I discussion) and the
//! published execution times of Table III.

use crate::shape::ProblemShape;

/// The Bender et al. (Trinity, two-level memory) feasibility window:
/// the partition method requires `Z < k·d < M`, where `Z` is the per-core
/// cache and `M` the shared scratchpad, both in elements. Below `Z` the
/// method degenerates (all centroids fit in cache — partitioning buys
/// nothing); above `M` it cannot run at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenderModel {
    /// Per-core cache capacity in elements.
    pub cache_z_elems: u64,
    /// Shared scratchpad capacity in elements.
    pub scratch_m_elems: u64,
}

impl BenderModel {
    /// Knight's Landing as the paper describes it: the experiments were
    /// limited to k < 18 and d > 152,917, which pins `Z ≈ 18 × 152,917`
    /// elements of cache-resident centroids and a 16 GB MCDRAM scratchpad
    /// (4 × 10⁹ f32 elements).
    pub fn trinity_knl() -> Self {
        BenderModel {
            cache_z_elems: 2_752_506, // ≈ 18 × 152,917
            scratch_m_elems: 4_000_000_000,
        }
    }

    /// Whether the two-level method is *efficient* for a shape (`Z < kd`).
    pub fn is_efficient(&self, shape: &ProblemShape) -> bool {
        shape.k * shape.d > self.cache_z_elems
    }

    /// Whether the two-level method can run a shape at all (`kd < M`).
    pub fn is_feasible(&self, shape: &ProblemShape) -> bool {
        shape.k * shape.d < self.scratch_m_elems
    }

    /// The paper's criticism in one predicate: shapes where k and d cannot
    /// be scaled independently (efficient AND feasible is a narrow band).
    pub fn in_window(&self, shape: &ProblemShape) -> bool {
        self.is_efficient(shape) && self.is_feasible(shape)
    }
}

/// One row of Table III: a published k-means implementation on another
/// architecture, with the workload it reported and its per-iteration time.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedResult {
    pub approach: &'static str,
    pub hardware: &'static str,
    pub n: u64,
    pub k: u64,
    pub d: u64,
    /// Published execution time per iteration, seconds.
    pub seconds_per_iter: f64,
    /// Nodes the paper allotted to Sunway for the comparison.
    pub sunway_nodes: usize,
    /// The paper's reported Sunway time (seconds) and speedup, for
    /// EXPERIMENTS.md comparison.
    pub paper_sunway_seconds: f64,
    pub paper_speedup: f64,
}

/// The five comparison rows of Table III.
pub fn table3_rows() -> Vec<PublishedResult> {
    vec![
        PublishedResult {
            approach: "Rossbach et al. (Dandelion)",
            hardware: "10× Tesla K20M + 20× Xeon E5-2620",
            n: 1_000_000_000,
            k: 120,
            d: 40,
            seconds_per_iter: 49.4,
            sunway_nodes: 128,
            paper_sunway_seconds: 0.468635,
            paper_speedup: 105.0,
        },
        PublishedResult {
            approach: "Bhimani et al.",
            hardware: "NVIDIA Tesla K20M",
            n: 1_400_000,
            k: 240,
            d: 5,
            seconds_per_iter: 1.77,
            sunway_nodes: 4,
            paper_sunway_seconds: 0.025336,
            paper_speedup: 70.0,
        },
        PublishedResult {
            approach: "Jin et al.",
            hardware: "NVIDIA Tesla K20c",
            n: 140_000,
            k: 500,
            d: 90,
            seconds_per_iter: 5.407,
            sunway_nodes: 1,
            paper_sunway_seconds: 0.110191,
            paper_speedup: 49.0,
        },
        PublishedResult {
            approach: "Li et al.",
            hardware: "Xilinx ZC706 FPGA",
            n: 2_100_000,
            k: 4,
            d: 4,
            seconds_per_iter: 0.0085,
            sunway_nodes: 1,
            paper_sunway_seconds: 0.002839,
            paper_speedup: 3.0,
        },
        PublishedResult {
            approach: "Ding et al. (Yinyang)",
            hardware: "Intel i7-3770K",
            n: 2_500_000,
            k: 10_000,
            d: 68,
            seconds_per_iter: 75.976,
            sunway_nodes: 16,
            paper_sunway_seconds: 2.424517,
            paper_speedup: 31.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bender_window_matches_paper_limits() {
        let model = BenderModel::trinity_knl();
        // The shapes Bender et al. actually ran: tiny k, huge d.
        let theirs = ProblemShape::f32(370, 18, 140_256);
        assert!(model.is_feasible(&theirs));
        // Small-d shapes are inefficient for them (all centroids fit in
        // cache) — the flexibility the Sunway design recovers.
        let small = ProblemShape::f32(1_000_000, 100, 68);
        assert!(!model.is_efficient(&small));
        assert!(!model.in_window(&small));
        // The Sunway headline shape overflows their scratchpad entirely:
        // kd = 2,000 × 196,608 ≈ 3.9 × 10⁸... still under 4e9; but the
        // full capability point k=160,000 × d=196,608 does overflow.
        let capability = ProblemShape::f32(1_265_723, 160_000, 196_608);
        assert!(!model.is_feasible(&capability));
    }

    #[test]
    fn table3_has_five_rows_with_paper_speedups() {
        let rows = table3_rows();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            let implied = row.seconds_per_iter / row.paper_sunway_seconds;
            // The published speedup column is consistent with the two time
            // columns to within rounding.
            assert!(
                (implied / row.paper_speedup) > 0.65 && (implied / row.paper_speedup) < 1.55,
                "{}: implied {implied:.1} vs published {}",
                row.approach,
                row.paper_speedup
            );
        }
    }
}
