//! Problem shapes and partition levels.

use serde::{Deserialize, Serialize};

/// The three partition levels of the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Dataflow partition: every CPE holds all centroids.
    L1,
    /// Dataflow + centroid partition: CPE groups share the centroid set.
    L2,
    /// Dataflow + centroid + dimension partition: CGs hold dimension slices,
    /// CG groups share the centroid set (the paper's contribution).
    L3,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::L1 => write!(f, "Level 1 (n-partition)"),
            Level::L2 => write!(f, "Level 2 (nk-partition)"),
            Level::L3 => write!(f, "Level 3 (nkd-partition)"),
        }
    }
}

/// The size of a clustering problem, as the cost model sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemShape {
    /// Number of samples.
    pub n: u64,
    /// Number of centroids.
    pub k: u64,
    /// Dimensions per sample.
    pub d: u64,
    /// Bytes per element (4 = f32, 8 = f64).
    pub elem_bytes: u64,
}

impl ProblemShape {
    /// An f32 problem (the paper's working precision).
    pub fn f32(n: u64, k: u64, d: u64) -> Self {
        ProblemShape {
            n,
            k,
            d,
            elem_bytes: 4,
        }
    }

    /// An f64 problem.
    pub fn f64(n: u64, k: u64, d: u64) -> Self {
        ProblemShape {
            n,
            k,
            d,
            elem_bytes: 8,
        }
    }

    /// Flops of one Lloyd Assign pass: subtract, square, accumulate per
    /// element of every sample-centroid pair.
    pub fn assign_flops(&self) -> f64 {
        3.0 * self.n as f64 * self.k as f64 * self.d as f64
    }

    /// Bytes of the full dataset.
    pub fn dataset_bytes(&self) -> u64 {
        self.n * self.d * self.elem_bytes
    }

    /// Bytes of the centroid set.
    pub fn centroid_bytes(&self) -> u64 {
        self.k * self.d * self.elem_bytes
    }

    /// The paper's headline case: ILSVRC2012 at full resolution.
    pub fn imgnet_headline() -> Self {
        ProblemShape::f32(1_265_723, 2_000, 196_608)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_arithmetic() {
        let s = ProblemShape::f32(1000, 10, 64);
        assert_eq!(s.dataset_bytes(), 1000 * 64 * 4);
        assert_eq!(s.centroid_bytes(), 10 * 64 * 4);
        assert_eq!(s.assign_flops(), 3.0 * 1000.0 * 10.0 * 64.0);
        assert_eq!(ProblemShape::f64(1, 1, 1).elem_bytes, 8);
    }

    #[test]
    fn headline_case_matches_paper() {
        let s = ProblemShape::imgnet_headline();
        assert_eq!(s.n, 1_265_723);
        assert_eq!(s.k, 2_000);
        assert_eq!(s.d, 196_608);
        // ~927 GiB of f32 pixels.
        assert!(s.dataset_bytes() > 900 * (1u64 << 30));
    }

    #[test]
    fn level_ordering_and_display() {
        assert!(Level::L1 < Level::L3);
        assert!(Level::L3.to_string().contains("nkd"));
        assert!(Level::L1.to_string().contains("n-partition"));
    }
}
