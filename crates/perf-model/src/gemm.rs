//! Cost-model-driven blocking for the GEMM assign kernel.
//!
//! `kmeans-core`'s `AssignKernel::Gemm` scores samples as
//! `‖x‖² + ‖c‖² − 2·X·Cᵀ` over packed panels, blocked into `mc`-sample ×
//! `nc`-centroid macro tiles. The kernel itself only knows a byte budget
//! (it splits the LDM in half); this module prices candidate block shapes
//! with the same machine constants and calibration knobs the per-iteration
//! cost model uses, and picks the shape that minimises modelled per-sample
//! time:
//!
//! * **Compute** — `2·k·d` flops per sample, derated by the kernel
//!   efficiency curve `η(d)` (short dimension slices can't fill the pipes).
//! * **Panel streaming** — every `mc`-sample block streams the whole packed
//!   centroid set (`k·d` elements) through the LDM, so the panel traffic
//!   per sample is `k·d/mc`: larger `mc` amortises it.
//! * **Request latency** — each `nc`-centroid panel chunk is one DMA
//!   request; per sample that is `(k/nc)/mc` requests: larger `nc` means
//!   fewer, fatter transfers.
//!
//! `mc` and `nc` compete for the same LDM (`(mc + nc)·d + mc·nc` elements
//! resident), which is exactly the trade-off the argmin resolves.
//!
//! The same formulas answer the *replication vs partition* question: a
//! group of `g` units sharing a sample stripe can either replicate the full
//! centroid set on every unit (no merge, full panel traffic) or give each
//! unit a `k/g` shard and pay a min-loc AllReduce per sample tile. See
//! [`replicate_centroids`].

use crate::calibration::Calibration;
use sw_arch::MachineParams;

/// Micro-kernel register tile (samples × centroid lanes). Mirrors
/// `kmeans_core::assign`'s micro tile; `kmeans-core` re-normalises whatever
/// blocking it is handed to its own multiples, so these only have to be
/// sensible, not identical.
pub const GEMM_MR: usize = 4;
/// Micro-kernel centroid lanes per panel.
pub const GEMM_NR: usize = 8;

/// Cost-model choice for one GEMM assign sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmPlan {
    /// Samples per macro block.
    pub mc: usize,
    /// Centroid columns per panel chunk.
    pub nc: usize,
    /// `true`: replicate the full packed centroid set on every unit of a
    /// sample-sharing group (Level-1 style — no per-sample merge).
    /// `false`: partition the centroids across the group and merge partial
    /// argmins (Level-2/3 style).
    pub replicate: bool,
}

/// Modelled time to score one sample against `k` centroids of dimension
/// `d` under blocking `(mc, nc)`, in seconds. `sample_read_factor` is the
/// group's sample-replication factor: members of a centroid-sharing group
/// all stream the *same* stripe, multiplying the aggregate sample traffic
/// contending for the shared DMA engines (the structural Level-2 cost the
/// crate docs call out).
fn time_per_sample(
    machine: &MachineParams,
    cal: &Calibration,
    k: usize,
    d: usize,
    elem_bytes: usize,
    (mc, nc): (usize, usize),
    sample_read_factor: f64,
) -> f64 {
    let (kf, df, ef) = (k as f64, d as f64, elem_bytes as f64);
    let flops = 2.0 * kf * df;
    let compute = flops / (machine.cpe_flops() * cal.eta(df).max(1e-6));
    // Per-CPE share of the core group's DMA bandwidth.
    let dma_bw = machine.dma_bw * cal.dma_eff / machine.cpes_per_cg as f64;
    // Own row in (pack), panel set streamed once per mc-block, score row out.
    let bytes = sample_read_factor * df * ef + kf * df * ef / mc as f64 + kf * ef;
    let chunks_per_sample = (kf / nc as f64).max(1.0) / mc as f64;
    compute + bytes / dma_bw + chunks_per_sample * machine.dma_lat
}

/// LDM footprint of blocking `(mc, nc)`, in elements: the packed sample
/// block, one packed centroid chunk, and the resident score block.
fn footprint_elems(d: usize, mc: usize, nc: usize) -> usize {
    (mc + nc) * d + mc * nc
}

/// Pick the `(mc, nc)` macro-block shape minimising modelled per-sample
/// assign time under the machine's LDM capacity. Falls back to one micro
/// tile when even that exceeds the budget (the kernel streams regardless —
/// the model just stops pretending there is reuse to win).
pub fn choose_blocking(
    machine: &MachineParams,
    cal: &Calibration,
    k: usize,
    d: usize,
    elem_bytes: usize,
) -> (usize, usize) {
    let budget = machine.ldm_elems(elem_bytes);
    let mut best = (GEMM_MR, GEMM_NR);
    let mut best_t = f64::INFINITY;
    let mc_cap = (budget / GEMM_MR.max(d)).max(1) * GEMM_MR;
    let mut mc = GEMM_MR;
    while mc <= mc_cap.min(4096) {
        let mut nc = GEMM_NR;
        while nc <= k.next_multiple_of(GEMM_NR).min(4096) {
            if footprint_elems(d, mc, nc) <= budget {
                let t = time_per_sample(machine, cal, k, d, elem_bytes, (mc, nc), 1.0);
                // Strict improvement keeps the smallest shape on ties —
                // less LDM pressure for the same modelled time.
                if t < best_t {
                    best_t = t;
                    best = (mc, nc);
                }
            }
            nc += GEMM_NR;
        }
        mc += GEMM_MR;
    }
    best
}

/// Decide replication vs partition for a group of `g` units that share one
/// sample stripe: compare the modelled per-sample cost of each layout with
/// its own best blocking.
///
/// * **Replicate**: every unit owns its own sample stripe and scores all
///   `k` centroids — full panel traffic, no merge, samples read once.
/// * **Partition**: the group shares one stripe; each unit scores a
///   `⌈k/g⌉` shard (panel traffic ÷ g) but *every* member streams the same
///   samples (sample traffic × g), and the group merges partial argmins
///   with a `⌈log₂ g⌉`-round min-loc reduction whose messages batch
///   [`Calibration::merge_batch`] samples.
pub fn replicate_centroids(
    machine: &MachineParams,
    cal: &Calibration,
    k: usize,
    d: usize,
    group_units: usize,
    elem_bytes: usize,
) -> bool {
    if group_units <= 1 {
        return true;
    }
    let block = choose_blocking(machine, cal, k, d, elem_bytes);
    let replicated = time_per_sample(machine, cal, k, d, elem_bytes, block, 1.0);

    let shard_k = k.div_ceil(group_units).max(1);
    let shard_block = choose_blocking(machine, cal, shard_k, d, elem_bytes);
    let sharded = time_per_sample(
        machine,
        cal,
        shard_k,
        d,
        elem_bytes,
        shard_block,
        group_units as f64,
    );
    // Min-loc pair (key ‖ index) per sample per round over the register
    // mesh, with per-round latency amortised over the message batch.
    let rounds = (group_units as f64).log2().ceil();
    let pair_bytes = 2.0 * elem_bytes.max(4) as f64;
    let merge =
        rounds * (pair_bytes / (machine.reg_bw * cal.net_eff) + machine.reg_lat / cal.merge_batch);

    replicated <= sharded + merge
}

/// The full cost-model choice for one assign sweep: block shape for the
/// centroid count a unit actually scores, plus the layout decision.
pub fn plan_gemm(
    machine: &MachineParams,
    cal: &Calibration,
    k: usize,
    d: usize,
    group_units: usize,
    elem_bytes: usize,
) -> GemmPlan {
    let replicate = replicate_centroids(machine, cal, k, d, group_units, elem_bytes);
    let scored_k = if replicate {
        k
    } else {
        k.div_ceil(group_units).max(1)
    };
    let (mc, nc) = choose_blocking(machine, cal, scored_k, d, elem_bytes);
    GemmPlan { mc, nc, replicate }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MachineParams, Calibration) {
        (MachineParams::taihulight(), Calibration::default())
    }

    #[test]
    fn blocking_fits_ldm_and_micro_multiples() {
        let (m, c) = setup();
        for (k, d, e) in [
            (64usize, 64usize, 4usize),
            (256, 64, 4),
            (1024, 64, 4),
            (256, 1024, 8),
            (8, 4, 4),
            (100_000, 16, 4),
        ] {
            let (mc, nc) = choose_blocking(&m, &c, k, d, e);
            assert!(mc.is_multiple_of(GEMM_MR), "mc={mc}");
            assert!(nc.is_multiple_of(GEMM_NR), "nc={nc}");
            if footprint_elems(d, GEMM_MR, GEMM_NR) <= m.ldm_elems(e) {
                assert!(
                    footprint_elems(d, mc, nc) <= m.ldm_elems(e),
                    "k={k} d={d}: ({mc},{nc}) spills"
                );
            }
        }
    }

    #[test]
    fn huge_dimension_falls_back_to_one_micro_tile() {
        let (m, c) = setup();
        // (mc + nc)·d alone blows the 64 KB LDM: nothing fits, so the
        // chooser returns the minimal tile rather than pretending.
        assert_eq!(
            choose_blocking(&m, &c, 2000, 1 << 20, 8),
            (GEMM_MR, GEMM_NR)
        );
    }

    #[test]
    fn smaller_dimension_affords_larger_sample_blocks() {
        let (m, c) = setup();
        let (mc_small_d, _) = choose_blocking(&m, &c, 256, 16, 4);
        let (mc_big_d, _) = choose_blocking(&m, &c, 256, 1024, 4);
        assert!(
            mc_small_d >= mc_big_d,
            "mc {mc_small_d} at d=16 vs {mc_big_d} at d=1024"
        );
    }

    #[test]
    fn larger_mc_is_modelled_cheaper_at_fixed_nc() {
        let (m, c) = setup();
        // Panel streaming amortises over mc — the term the blocking chooser
        // exists to exploit.
        let t4 = time_per_sample(&m, &c, 256, 64, 4, (4, 64), 1.0);
        let t64 = time_per_sample(&m, &c, 256, 64, 4, (64, 64), 1.0);
        assert!(t64 < t4, "{t64} vs {t4}");
    }

    #[test]
    fn single_unit_groups_replicate() {
        let (m, c) = setup();
        assert!(replicate_centroids(&m, &c, 1024, 64, 1, 4));
    }

    #[test]
    fn huge_centroid_sets_partition_across_the_group() {
        let (m, c) = setup();
        // k·d panel streaming dwarfs a few min-loc rounds: sharding 64×
        // cuts the dominant term 64×.
        assert!(!replicate_centroids(&m, &c, 160_000, 64, 64, 4));
    }

    #[test]
    fn tiny_centroid_sets_replicate() {
        let (m, c) = setup();
        // 8 centroids: the merge latency costs more than streaming the
        // whole (tiny) panel set.
        assert!(replicate_centroids(&m, &c, 8, 8, 64, 4));
    }

    #[test]
    fn plan_blocks_for_the_scored_shard() {
        let (m, c) = setup();
        let plan = plan_gemm(&m, &c, 160_000, 64, 64, 4);
        assert!(!plan.replicate);
        let shard_k = 160_000usize.div_ceil(64);
        assert_eq!((plan.mc, plan.nc), choose_blocking(&m, &c, shard_k, 64, 4));
        let rep = plan_gemm(&m, &c, 8, 8, 64, 4);
        assert!(rep.replicate);
        assert_eq!((rep.mc, rep.nc), choose_blocking(&m, &c, 8, 8, 4));
    }
}
