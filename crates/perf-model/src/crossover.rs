//! Level selection and crossover analysis.

use crate::cost::{CostBreakdown, CostModel};
use crate::feasibility::Infeasibility;
use crate::shape::{Level, ProblemShape};

/// The cheapest feasible level for a shape, with its cost. Errors only when
/// no level can run it at all.
pub fn best_level(
    model: &CostModel,
    shape: &ProblemShape,
) -> Result<(Level, CostBreakdown), Vec<Infeasibility>> {
    let mut errors = Vec::new();
    let mut best: Option<(Level, CostBreakdown)> = None;
    for level in [Level::L1, Level::L2, Level::L3] {
        match model.iteration_time(shape, level) {
            Ok(cost) => {
                if best
                    .as_ref()
                    .map(|(_, b)| cost.total() < b.total())
                    .unwrap_or(true)
                {
                    best = Some((level, cost));
                }
            }
            Err(e) => errors.push(e),
        }
    }
    best.ok_or(errors)
}

/// Smallest `d` in `[d_lo, d_hi]` (stepping by `step`) at which Level 3
/// becomes no slower than Level 2 at fixed `n`, `k` — the Fig. 7 crossover.
/// Returns `None` if Level 3 never catches up in the range.
pub fn find_crossover_d(
    model: &CostModel,
    n: u64,
    k: u64,
    d_lo: u64,
    d_hi: u64,
    step: u64,
) -> Option<u64> {
    assert!(step > 0);
    let mut d = d_lo;
    while d <= d_hi {
        let shape = ProblemShape::f32(n, k, d);
        let l3 = model.iteration_time(&shape, Level::L3);
        let l2 = model.iteration_time(&shape, Level::L2);
        match (l2, l3) {
            // Level 2 infeasible: Level 3 wins by default.
            (Err(_), Ok(_)) => return Some(d),
            (Ok(c2), Ok(c3)) if c3.total() <= c2.total() => return Some(d),
            _ => {}
        }
        d += step;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_level_for_small_problems_is_l1_or_l2() {
        let model = CostModel::taihulight(1);
        let shape = ProblemShape::f32(65_554, 64, 28);
        let (level, _) = best_level(&model, &shape).unwrap();
        assert!(level == Level::L1 || level == Level::L2, "chose {level}");
    }

    #[test]
    fn best_level_for_huge_d_is_l3() {
        let model = CostModel::taihulight(4096);
        let (level, _) = best_level(&model, &ProblemShape::imgnet_headline()).unwrap();
        assert_eq!(level, Level::L3);
    }

    #[test]
    fn impossible_shape_reports_all_failures() {
        // d beyond even Level 3's ceiling.
        let model = CostModel::taihulight(1);
        let shape = ProblemShape::f32(10, 4, 1 << 20);
        let errs = best_level(&model, &shape).unwrap_err();
        assert_eq!(errs.len(), 3);
    }

    #[test]
    fn crossover_matches_fig7() {
        // Paper: Level 3 overtakes at d ≈ 2,560–3,072 (k=2,000, 128 nodes).
        let model = CostModel::taihulight(128);
        let d = find_crossover_d(&model, 1_265_723, 2_000, 512, 8_192, 512).unwrap();
        assert!(
            (1_536..=3_584).contains(&d),
            "crossover at d={d}, expected near 2,560"
        );
    }

    #[test]
    fn no_crossover_when_range_too_low() {
        let model = CostModel::taihulight(128);
        // At tiny d Level 2 always wins.
        assert_eq!(
            find_crossover_d(&model, 1_265_723, 2_000, 128, 512, 128),
            None
        );
    }
}
