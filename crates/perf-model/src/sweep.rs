//! Parameter sweeps and scaling analysis over the cost model — the
//! machinery behind the figure regeneration, exposed as a library so
//! downstream users can run their own studies.

use crate::cost::{CostBreakdown, CostModel};
use crate::shape::{Level, ProblemShape};

/// One point of a sweep: the swept value and the outcome (or infeasibility).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub x: u64,
    pub cost: Option<CostBreakdown>,
}

impl SweepPoint {
    pub fn total(&self) -> Option<f64> {
        self.cost.as_ref().map(|c| c.total())
    }
}

/// Sweep the centroid count at fixed `n`, `d`, machine and level.
pub fn sweep_k(model: &CostModel, level: Level, n: u64, d: u64, ks: &[u64]) -> Vec<SweepPoint> {
    ks.iter()
        .map(|&k| SweepPoint {
            x: k,
            cost: model
                .iteration_time(&ProblemShape::f32(n, k, d), level)
                .ok(),
        })
        .collect()
}

/// Sweep the dimensionality at fixed `n`, `k`, machine and level.
pub fn sweep_d(model: &CostModel, level: Level, n: u64, k: u64, ds: &[u64]) -> Vec<SweepPoint> {
    ds.iter()
        .map(|&d| SweepPoint {
            x: d,
            cost: model
                .iteration_time(&ProblemShape::f32(n, k, d), level)
                .ok(),
        })
        .collect()
}

/// Strong scaling: fixed shape, growing allocation. Returns
/// `(nodes, time)` pairs for the feasible points.
pub fn strong_scaling(
    shape: &ProblemShape,
    level: Level,
    node_counts: &[usize],
) -> Vec<(usize, Option<f64>)> {
    node_counts
        .iter()
        .map(|&nodes| {
            let t = CostModel::taihulight(nodes)
                .iteration_time(shape, level)
                .ok()
                .map(|c| c.total());
            (nodes, t)
        })
        .collect()
}

/// Weak scaling: `n` grows with the allocation (constant samples per
/// node). Ideal weak scaling keeps time flat.
pub fn weak_scaling(
    samples_per_node: u64,
    k: u64,
    d: u64,
    level: Level,
    node_counts: &[usize],
) -> Vec<(usize, Option<f64>)> {
    node_counts
        .iter()
        .map(|&nodes| {
            let shape = ProblemShape::f32(samples_per_node * nodes as u64, k, d);
            let t = CostModel::taihulight(nodes)
                .iteration_time(&shape, level)
                .ok()
                .map(|c| c.total());
            (nodes, t)
        })
        .collect()
}

/// Parallel efficiency of a strong-scaling series relative to its first
/// feasible point: `E(p) = t₀·p₀ / (t_p·p)`.
pub fn parallel_efficiency(series: &[(usize, Option<f64>)]) -> Vec<(usize, Option<f64>)> {
    let base = series.iter().find_map(|&(p, t)| t.map(|t| (p as f64, t)));
    series
        .iter()
        .map(|&(p, t)| {
            let eff = match (base, t) {
                (Some((p0, t0)), Some(t)) => Some(t0 * p0 / (t * p as f64)),
                _ => None,
            };
            (p, eff)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_k_is_monotone_where_feasible() {
        let model = CostModel::taihulight(128);
        let pts = sweep_k(
            &model,
            Level::L3,
            1_265_723,
            3_072,
            &[512, 1_024, 2_048, 4_096],
        );
        assert_eq!(pts.len(), 4);
        let times: Vec<f64> = pts.iter().map(|p| p.total().unwrap()).collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0] * 0.99);
        }
    }

    #[test]
    fn sweep_d_marks_infeasible_points() {
        let model = CostModel::taihulight(1);
        // Level 1 dies quickly as d grows at k=256.
        let pts = sweep_d(&model, Level::L1, 65_554, 256, &[4, 28, 68, 1_024]);
        assert!(pts[0].cost.is_some());
        assert!(pts[3].cost.is_none());
        assert_eq!(pts[3].total(), None);
    }

    #[test]
    fn strong_scaling_improves_with_nodes() {
        let shape = ProblemShape::f32(1_265_723, 2_000, 12_288);
        let series = strong_scaling(&shape, Level::L3, &[64, 128, 256, 512]);
        let times: Vec<f64> = series.iter().map(|(_, t)| t.unwrap()).collect();
        for w in times.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn weak_scaling_is_roughly_flat() {
        // Constant work per node: time should stay within a small factor
        // across a 8× allocation growth (collective terms grow slowly).
        let series = weak_scaling(10_000, 1_024, 3_072, Level::L3, &[64, 128, 256, 512]);
        let times: Vec<f64> = series.iter().map(|(_, t)| t.unwrap()).collect();
        let (min, max) = times.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &t| {
            (lo.min(t), hi.max(t))
        });
        assert!(max / min < 2.0, "weak scaling spread {times:?}");
    }

    #[test]
    fn efficiency_is_one_at_the_baseline() {
        let shape = ProblemShape::f32(1_265_723, 2_000, 12_288);
        let series = strong_scaling(&shape, Level::L3, &[128, 256, 512]);
        let eff = parallel_efficiency(&series);
        assert!((eff[0].1.unwrap() - 1.0).abs() < 1e-12);
        for (_, e) in &eff {
            let e = e.unwrap();
            assert!(e > 0.3 && e < 1.3, "efficiency {e}");
        }
    }

    #[test]
    fn efficiency_handles_all_infeasible() {
        let series = vec![(2usize, None), (4, None)];
        let eff = parallel_efficiency(&series);
        assert!(eff.iter().all(|(_, e)| e.is_none()));
    }
}
