//! Pricing one Lloyd iteration of each level.

use crate::calibration::Calibration;
use crate::feasibility::{plan, Infeasibility, LevelPlan};
use crate::shape::{Level, ProblemShape};
use sw_arch::{CgGroupPlacement, CommClass, Machine, PlacementPolicy};

/// Per-phase wall time of one iteration, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Distance-kernel arithmetic.
    pub compute: f64,
    /// DMA traffic: streaming samples (with replication) plus the centroid
    /// shard, per CPE.
    pub read: f64,
    /// Per-sample partial-result merges of the Assign step (dimension
    /// reduction + argmin min-loc).
    pub assign_comm: f64,
    /// The centroid-accumulator AllReduce of the Update step.
    pub update_comm: f64,
    /// The plan the costs were computed for.
    pub plan: LevelPlan,
}

impl CostBreakdown {
    /// Total per-iteration time. Read overlaps compute on the real machine
    /// (double-buffered DMA), so the maximum of the two is taken; the
    /// communication phases are serial dependencies.
    pub fn total(&self) -> f64 {
        self.compute.max(self.read) + self.assign_comm + self.update_comm
    }

    /// The phase dominating the iteration.
    pub fn dominant_phase(&self) -> &'static str {
        let phases = [
            (self.compute, "compute"),
            (self.read, "read"),
            (self.assign_comm, "assign_comm"),
            (self.update_comm, "update_comm"),
        ];
        phases
            .iter()
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .unwrap()
            .1
    }
}

/// The analytic cost model: a machine allocation plus calibration knobs.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    pub machine: Machine,
    pub calib: Calibration,
}

impl CostModel {
    pub fn new(machine: Machine, calib: Calibration) -> Self {
        CostModel { machine, calib }
    }

    /// A TaihuLight allocation with default calibration.
    pub fn taihulight(nodes: usize) -> Self {
        CostModel {
            machine: Machine::taihulight(nodes),
            calib: Calibration::default(),
        }
    }

    /// Per-iteration cost of `level` on `shape`, allowing Level 3 to spill.
    pub fn iteration_time(
        &self,
        shape: &ProblemShape,
        level: Level,
    ) -> Result<CostBreakdown, Infeasibility> {
        let plan = plan(level, shape, &self.machine, true)?;
        Ok(self.price(shape, &plan))
    }

    /// Per-iteration cost refusing spilled (non-LDM-resident) plans.
    pub fn iteration_time_strict(
        &self,
        shape: &ProblemShape,
        level: Level,
    ) -> Result<CostBreakdown, Infeasibility> {
        let plan = plan(level, shape, &self.machine, false)?;
        Ok(self.price(shape, &plan))
    }

    /// Price a specific plan (exposed so executors can cost their own
    /// placements).
    pub fn price(&self, shape: &ProblemShape, plan: &LevelPlan) -> CostBreakdown {
        let p = &self.machine.params;
        let m = self.machine.total_cpes() as f64;
        let s = shape.elem_bytes as f64;
        let n = shape.n as f64;
        let slice = plan.slice as f64;
        let c = plan.centroids_per_unit as f64;
        let n_groups = plan.n_groups as f64;

        // ---- Compute: 3nkd flops over all CPEs at slice-dependent η. ----
        let eta = self.calib.eta(slice);
        let compute = shape.assign_flops() / (m * p.cpe_flops() * eta);

        // ---- Read: per-CPE DMA bytes over the per-CPE bandwidth share. ----
        let samples_per_group = n / n_groups;
        let sample_elems_per_cpe = samples_per_group * slice;
        let shard_elems_per_cpe = match plan.level {
            Level::L1 => (shape.k * shape.d) as f64,
            Level::L2 => c * slice,
            // Level 3 holds c centroids per CG, sliced over 64 CPEs.
            Level::L3 => c * slice,
        };
        let dma_per_cpe = p.dma_bw * self.calib.dma_eff / p.cpes_per_cg as f64;
        let read = if plan.spilled {
            // Non-resident shards change the traffic pattern qualitatively:
            // (1) the centroid shard cannot stay in LDM, so it re-streams
            //     from DDR for *every sample* instead of once per iteration;
            // (2) every sample's winning accumulator slice round-trips
            //     (read-modify-write) through the DMA engine, derated by
            //     the spill penalty for its random access pattern. Winners
            //     spread over the group's units.
            let centroid_stream = samples_per_group * shard_elems_per_cpe * s;
            let winners_per_unit = samples_per_group / plan.group_units as f64;
            let accumulator_rmw = self.calib.spill_penalty * winners_per_unit * 2.0 * slice * s;
            (sample_elems_per_cpe * s + centroid_stream + accumulator_rmw) / dma_per_cpe
        } else {
            (sample_elems_per_cpe + shard_elems_per_cpe) * s / dma_per_cpe
        };

        // ---- Link classes touched by this plan's placement. ----
        let (intra_class, inter_class) = self.group_classes(plan);

        // ---- Assign-phase merges (per sample, batched). ----
        let assign_comm = match plan.level {
            Level::L1 => 0.0,
            Level::L2 => {
                // Min-loc argmin across the g CPEs of the group: one mesh
                // stage (register buses) plus log2 rounds across CGs.
                let pair_bytes = 12.0;
                let mesh = self
                    .machine
                    .core_group
                    .reduce_schedule(pair_bytes as usize)
                    .time(p.reg_bw, p.reg_lat);
                let cross = self.cross_cg_rounds(plan.cg_span, pair_bytes, intra_class);
                samples_per_group * (mesh + cross / self.calib.merge_batch)
            }
            Level::L3 => {
                // (a) Dimension partials: mesh sum-reduce of the c partial
                // distances each CPE computed for its slice.
                let partial_bytes = (c * s).max(4.0) as usize;
                let mesh = self
                    .machine
                    .core_group
                    .reduce_schedule(partial_bytes)
                    .time(p.reg_bw, p.reg_lat);
                // (b) Min-loc across the G CGs of the group.
                let cross = self.cross_cg_rounds(plan.cg_span, 12.0, intra_class);
                samples_per_group * (mesh + cross / self.calib.merge_batch)
            }
        };

        // ---- Update-phase accumulator AllReduce across groups. ----
        let accumulator_bytes_per_cg = match plan.level {
            Level::L1 => (shape.k * shape.d) as f64 * s,
            Level::L2 => 64.0 * c * slice * s,
            Level::L3 => c * shape.d as f64 * s,
        };
        let participants = match plan.level {
            Level::L1 => self.machine.total_cgs() as f64,
            _ => n_groups,
        };
        let net_per_cg = inter_class.bandwidth(p) * self.calib.net_eff / p.cgs_per_node as f64;
        let mut update_comm = if participants > 1.0 {
            2.0 * accumulator_bytes_per_cg / net_per_cg
                + participants.log2().ceil() * inter_class.latency(p)
        } else {
            0.0
        };
        if plan.level == Level::L1 {
            // Level 1 first folds the 64 per-CPE replicas over the register
            // mesh before the inter-CG stage.
            update_comm += self
                .machine
                .core_group
                .allreduce_schedule(accumulator_bytes_per_cg as usize)
                .time(p.reg_bw, p.reg_lat);
        }
        if plan.spilled {
            update_comm *= self.calib.spill_penalty;
        }

        CostBreakdown {
            compute,
            read,
            assign_comm,
            update_comm,
            plan: *plan,
        }
    }

    /// Worst link classes (within a group, across groups) under
    /// topology-aware placement.
    fn group_classes(&self, plan: &LevelPlan) -> (CommClass, CommClass) {
        let group_cgs = plan.cg_span.max(1) as usize;
        let n_groups = plan.n_groups.max(1) as usize;
        match CgGroupPlacement::new(
            &self.machine,
            n_groups,
            group_cgs,
            PlacementPolicy::TopologyAware,
        ) {
            Ok(placement) => (
                placement.worst_intra_group_class(&self.machine),
                placement.worst_inter_group_class(&self.machine),
            ),
            // Degenerate placements (more logical CGs than physical) fall
            // back to the worst class the allocation contains.
            Err(_) => {
                let worst = if self.machine.single_supernode() {
                    CommClass::IntraSupernode
                } else {
                    CommClass::InterSupernode
                };
                (worst, worst)
            }
        }
    }

    /// Latency of a log-tree merge across `cg_span` CGs: rounds inside a
    /// node use DMA-class links, rounds across nodes use the network class
    /// of the group placement.
    fn cross_cg_rounds(&self, cg_span: u64, bytes: f64, class: CommClass) -> f64 {
        if cg_span <= 1 {
            return 0.0;
        }
        let p = &self.machine.params;
        let cgs_per_node = p.cgs_per_node as u64;
        let intra_node_span = cg_span.min(cgs_per_node);
        let node_span = cg_span.div_ceil(cgs_per_node);
        let intra_rounds = (intra_node_span as f64).log2().ceil();
        let inter_rounds = (node_span as f64).log2().ceil();
        let dma = CommClass::IntraNode;
        intra_rounds * (dma.latency(p) + bytes / (dma.bandwidth(p) * self.calib.dma_eff))
            + inter_rounds * (class.latency(p) + bytes / (class.bandwidth(p) * self.calib.net_eff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig7_shape(d: u64) -> ProblemShape {
        ProblemShape::f32(1_265_723, 2_000, d)
    }

    #[test]
    fn headline_under_18_seconds() {
        // Fig. 6b / abstract: < 18 s per iteration at n=1.27M, d=196,608,
        // k=2,000 on 4,096 nodes.
        let model = CostModel::taihulight(4_096);
        let cost = model
            .iteration_time(&ProblemShape::imgnet_headline(), Level::L3)
            .unwrap();
        assert!(
            cost.total() < 18.0,
            "headline iteration is {:.2} s (breakdown {:?})",
            cost.total(),
            cost
        );
        assert!(
            cost.total() > 0.5,
            "suspiciously fast: {:.3} s",
            cost.total()
        );
    }

    #[test]
    fn fig7_crossover_between_2048_and_3072() {
        // On 128 nodes at k=2,000: Level 2 wins at small d, Level 3 wins for
        // d > ~2,560.
        let model = CostModel::taihulight(128);
        let l2 = |d| {
            model
                .iteration_time(&fig7_shape(d), Level::L2)
                .unwrap()
                .total()
        };
        let l3 = |d| {
            model
                .iteration_time(&fig7_shape(d), Level::L3)
                .unwrap()
                .total()
        };
        assert!(
            l2(512) < l3(512),
            "L2 must win at d=512: {} vs {}",
            l2(512),
            l3(512)
        );
        assert!(l2(1024) < l3(1024));
        assert!(
            l3(3072) < l2(3072),
            "L3 must win at d=3072: {} vs {}",
            l3(3072),
            l2(3072)
        );
        assert!(l3(4096) < l2(4096));
    }

    #[test]
    fn fig8_l3_always_wins_at_d4096() {
        let model = CostModel::taihulight(128);
        for k in [256u64, 512, 1_024, 2_048, 4_096] {
            let shape = ProblemShape::f32(1_265_723, k, 4_096);
            let l2 = model.iteration_time(&shape, Level::L2).unwrap().total();
            let l3 = model.iteration_time(&shape, Level::L3).unwrap().total();
            assert!(l3 < l2, "k={k}: L3 {l3} vs L2 {l2}");
        }
    }

    #[test]
    fn fig9_scaling_with_nodes() {
        // d=4,096, k=2,000: both levels speed up with nodes; Level 3 wins
        // throughout; the gap (ratio) narrows as nodes grow.
        let shape = fig7_shape(4_096);
        let mut prev_l3 = f64::INFINITY;
        let mut gaps = Vec::new();
        for nodes in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            let model = CostModel::taihulight(nodes);
            let l3 = model.iteration_time(&shape, Level::L3).unwrap().total();
            let l2 = model.iteration_time(&shape, Level::L2).unwrap().total();
            assert!(l3 < l2, "{nodes} nodes: L3 {l3} vs L2 {l2}");
            assert!(l3 < prev_l3 * 1.05, "L3 stopped scaling at {nodes} nodes");
            prev_l3 = l3;
            gaps.push(l2 - l3);
        }
        // The paper plots absolute seconds: the L2–L3 gap shrinks with
        // nodes but stays significant.
        assert!(
            gaps.last().unwrap() < &(gaps.first().unwrap() / 10.0),
            "gap should narrow: {gaps:?}"
        );
        assert!(gaps.last().unwrap() > &0.0);
    }

    #[test]
    fn times_grow_roughly_linearly_in_k() {
        // Figs. 3–5: per-iteration time grows linearly with k at fixed d.
        let model = CostModel::taihulight(128);
        let t = |k: u64| {
            model
                .iteration_time(&ProblemShape::f32(1_265_723, k, 3_072), Level::L3)
                .unwrap()
                .total()
        };
        let (t1, t2, t4) = (t(512), t(1_024), t(2_048));
        assert!(t2 / t1 > 1.4 && t2 / t1 < 2.6, "ratio {}", t2 / t1);
        assert!(t4 / t2 > 1.4 && t4 / t2 < 2.6, "ratio {}", t4 / t2);
    }

    #[test]
    fn breakdown_total_and_dominant() {
        let b = CostBreakdown {
            compute: 2.0,
            read: 1.0,
            assign_comm: 0.5,
            update_comm: 0.25,
            plan: crate::feasibility::plan(
                Level::L1,
                &ProblemShape::f32(1000, 4, 4),
                &Machine::taihulight(1),
                false,
            )
            .unwrap(),
        };
        assert_eq!(b.total(), 2.75); // max(compute, read) + comm phases
        assert_eq!(b.dominant_phase(), "compute");
    }

    #[test]
    fn spilled_plans_cost_more() {
        // Fig. 6a's k=160,000 at 128 nodes spills; the same shape at 512
        // nodes is resident. Per-iteration time at 128 nodes must exceed a
        // naive 4× node scaling to reflect the spill penalty.
        let shape = ProblemShape::f32(1_265_723, 160_000, 3_072);
        let spilled = CostModel::taihulight(128)
            .iteration_time(&shape, Level::L3)
            .unwrap();
        assert!(spilled.plan.spilled);
        let resident = CostModel::taihulight(1024)
            .iteration_time(&shape, Level::L3)
            .unwrap();
        assert!(!resident.plan.spilled);
        assert!(spilled.total() > resident.total());
    }

    #[test]
    fn strict_mode_rejects_spill() {
        let shape = ProblemShape::f32(1_265_723, 160_000, 3_072);
        let model = CostModel::taihulight(128);
        assert!(model.iteration_time_strict(&shape, Level::L3).is_err());
        assert!(model.iteration_time(&shape, Level::L3).is_ok());
    }

    #[test]
    fn level1_small_case_is_fast() {
        // Fig. 3 magnitudes: UCI datasets on one processor complete an
        // iteration in well under a second.
        let model = CostModel::taihulight(1);
        let kegg = ProblemShape::f32(65_554, 256, 28);
        let cost = model.iteration_time(&kegg, Level::L1).unwrap();
        assert!(cost.total() < 1.0, "Kegg L1 iteration: {} s", cost.total());
        assert!(cost.total() > 1e-6);
    }
}
