//! Analytic per-iteration cost model, feasibility constraints and
//! calibration for the three-level Sunway k-means design.
//!
//! This crate is the "wind tunnel" of the reproduction: it prices one Lloyd
//! iteration of each partition level on a given machine allocation, using
//! the paper's published bandwidths and the structural cost drivers of each
//! level:
//!
//! * **Compute** — `3·n·k·d` flops spread over all CPEs, derated by a
//!   kernel-efficiency curve `η(len) = η_max · len/(len + c)`: a CPE working
//!   on a short dimension slice (Level 3 at small `d`) cannot fill its
//!   vector pipes. This single mechanism produces the paper's Fig. 7
//!   crossover — Level 2 wins below `d ≈ 2,560`, Level 3 above.
//! * **Read** — DMA traffic per CPE, including the *replication factor*:
//!   every member of a centroid-sharing group reads the same samples.
//!   Level 2's group size is forced up by the LDM residency constraint as
//!   `d` grows, which blows up its read volume — the structural reason the
//!   paper's Level 2 curve degrades and then dies at `d > 4,096`.
//! * **Assign communication** — per-sample partial-result merges: the
//!   intra-CG register-bus reduction (Level 3's dimension partials) and the
//!   min-loc argmin merge across group members (register / DMA / network
//!   hops depending on how far the group spans).
//! * **Update communication** — the AllReduce of centroid accumulators
//!   across groups, priced at the worst link class the group placement
//!   touches (super-node boundaries make this jump — Fig. 7's steps).
//!
//! Feasibility mirrors the paper's constraint family: C1 for Level 1 (all
//! centroids resident per CPE — reproduces exactly the k-ranges of Fig. 3),
//! a streaming double-buffer residency for Level 2 (`4d ≤ LDM`, the d-wall
//! of Fig. 7), and the fully-partitioned C1'' for Level 3 (`k·d` bounded
//! only by total machine LDM), with an optional DDR-spill mode that trades
//! time for capacity (used by Fig. 6a's k = 160,000 point).

pub mod bounds;
pub mod calibration;
pub mod cost;
pub mod crossover;
pub mod feasibility;
pub mod gemm;
pub mod related;
pub mod shape;
pub mod sweep;

pub use bounds::BoundsRecommendation;
pub use calibration::Calibration;
pub use cost::{CostBreakdown, CostModel};
pub use crossover::{best_level, find_crossover_d};
pub use feasibility::{Infeasibility, LevelPlan};
pub use gemm::{choose_blocking, plan_gemm, replicate_centroids, GemmPlan};
pub use shape::{Level, ProblemShape};
pub use sweep::{strong_scaling, sweep_d, sweep_k, weak_scaling, SweepPoint};
