//! Calibration constants of the cost model.
//!
//! The published machine constants (bandwidths, LDM size) live in
//! `sw_arch::MachineParams`; this struct holds the handful of knobs that are
//! *not* published and were fitted once against the paper's headline
//! numbers (< 18 s/iteration at n=1.27M, k=2,000, d=196,608 on 4,096 nodes;
//! Level-2/Level-3 crossover at d ≈ 2,560 on 128 nodes; Fig. 3/4 magnitudes).
//! `EXPERIMENTS.md` records the fit. All experiments use
//! [`Calibration::default`]; the knobs exist so ablation benches can move
//! them.

use serde::{Deserialize, Serialize};

/// Fitted, machine-independent knobs of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Peak fraction of CPE FLOP/s achieved by the distance kernel on a
    /// long contiguous slice. Lloyd's inner loop is load/FMA balanced, so
    /// this sits well under 1.
    pub eta_max: f64,
    /// Kernel efficiency half-length, in elements: working on a slice of
    /// `len` elements achieves `η = η_max · len / (len + kernel_overhead)`.
    /// Short dimension slices (Level 3 at small d) waste issue slots on
    /// loop and reduction overhead.
    pub kernel_overhead_elems: f64,
    /// Samples batched per argmin-merge message. The real implementation
    /// pipelines a tile of samples through the group merge, amortizing
    /// message latency over the tile.
    pub merge_batch: f64,
    /// Multiplier on Update traffic when centroid accumulators do not fit
    /// in LDM and spill to DDR (Level 3 spill mode): every accumulation
    /// round-trips through main memory instead of staying on-chip.
    pub spill_penalty: f64,
    /// Fraction of theoretical DMA bandwidth achieved by streamed reads.
    pub dma_eff: f64,
    /// Fraction of theoretical network bandwidth achieved by collectives.
    pub net_eff: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            eta_max: 0.10,
            kernel_overhead_elems: 64.0,
            merge_batch: 32.0,
            spill_penalty: 4.0,
            dma_eff: 0.8,
            net_eff: 0.7,
        }
    }
}

impl Calibration {
    /// Kernel efficiency for a contiguous working length of `len` elements.
    pub fn eta(&self, len: f64) -> f64 {
        self.eta_max * len / (len + self.kernel_overhead_elems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_is_monotone_and_saturates() {
        let c = Calibration::default();
        assert!(c.eta(8.0) < c.eta(64.0));
        assert!(c.eta(64.0) < c.eta(4096.0));
        assert!(c.eta(1e9) <= c.eta_max);
        assert!((c.eta(1e9) - c.eta_max).abs() < 1e-4);
    }

    #[test]
    fn eta_at_half_length() {
        let c = Calibration::default();
        // At len == kernel_overhead, efficiency is exactly half of peak.
        assert!((c.eta(c.kernel_overhead_elems) - c.eta_max / 2.0).abs() < 1e-12);
    }

    #[test]
    fn defaults_are_sane() {
        let c = Calibration::default();
        assert!(c.eta_max > 0.0 && c.eta_max <= 1.0);
        assert!(c.dma_eff > 0.0 && c.dma_eff <= 1.0);
        assert!(c.net_eff > 0.0 && c.net_eff <= 1.0);
        assert!(c.spill_penalty >= 1.0);
        assert!(c.merge_batch >= 1.0);
    }
}
