//! LDM-residency feasibility: which partition level can run which problem
//! shape, and with what group size.
//!
//! The per-CPE scratchpad layout every level shares:
//!
//! ```text
//! [ sample double-buffer: 2·slice ][ centroid shard: c·slice ][ accumulator shard: c·slice ]
//! ```
//!
//! where `slice` is the dimension range one CPE works on (`d` for Levels
//! 1–2, `⌈d/64⌉` for Level 3) and `c` is the number of centroids resident
//! per partition unit. The residency constraint `2·slice·(1 + c) ≤ E`
//! (E = LDM capacity in elements) specialises to the paper's family:
//!
//! * **Level 1** keeps all k centroids per CPE (`c = k`, single-buffered
//!   sample): `d(1 + 2k) + k ≤ E` — literally C1. With E = 16,384 f32
//!   elements this reproduces the exact per-dataset k-ranges of Fig. 3.
//! * **Level 2** shares k over a group of `g` CPEs (`c = ⌈k/g⌉`): growing d
//!   forces `c` down and `g` up — replication explodes — until `c < 1` is
//!   forced at `d > E/4 = 4,096`, the paper's Fig. 7 wall.
//! * **Level 3** shares k over a group of `G` CGs and dimensions over the
//!   64 CPEs of each CG (`slice = ⌈d/64⌉`, `c = ⌈k/G⌉` per CG): `k·d` is
//!   bounded only by the total machine (C1''). When even `c = 1` per CG
//!   exceeds the allocation's CGs, the *spill mode* keeps accumulators in
//!   DDR at a modelled penalty instead of refusing (how Fig. 6a's
//!   k = 160,000 at 128 nodes runs — a configuration the paper's own C1''
//!   actually forbids; see EXPERIMENTS.md).

use crate::shape::{Level, ProblemShape};
use sw_arch::Machine;

/// A feasible placement of a problem at a given level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelPlan {
    pub level: Level,
    /// Partition units sharing the centroid set: CPEs per group for Level 2,
    /// CGs per group for Level 3, 1 for Level 1.
    pub group_units: u64,
    /// Centroids resident per unit (`⌈k / group_units⌉`; `k` for Level 1).
    pub centroids_per_unit: u64,
    /// Number of dataflow groups working on disjoint sample ranges.
    pub n_groups: u64,
    /// Contiguous dimension elements one CPE works on.
    pub slice: u64,
    /// Core groups spanned by one group (1 for Levels 1; `⌈g/64⌉` for
    /// Level 2; `G` for Level 3).
    pub cg_span: u64,
    /// Resident bytes per CPE implied by the layout (capped at capacity in
    /// spill mode).
    pub resident_bytes: u64,
    /// True when accumulator shards exceed LDM and live in DDR.
    pub spilled: bool,
}

/// Why a level cannot run a shape on a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Infeasibility {
    pub level: Level,
    /// Which constraint failed, in the paper's naming where one exists.
    pub constraint: &'static str,
    pub detail: String,
}

impl std::fmt::Display for Infeasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} infeasible ({}): {}",
            self.level, self.constraint, self.detail
        )
    }
}

impl std::error::Error for Infeasibility {}

/// Round up to the next power of two (≥ 1).
fn next_pow2(v: u64) -> u64 {
    v.max(1).next_power_of_two()
}

/// LDM capacity in elements for this shape's precision.
fn ldm_elems(machine: &Machine, shape: &ProblemShape) -> u64 {
    machine.params.ldm_bytes as u64 / shape.elem_bytes
}

/// Plan a level, choosing the smallest group size the residency constraint
/// allows (smallest replication). `allow_spill` only affects Level 3.
pub fn plan(
    level: Level,
    shape: &ProblemShape,
    machine: &Machine,
    allow_spill: bool,
) -> Result<LevelPlan, Infeasibility> {
    match level {
        Level::L1 => plan_l1(shape, machine),
        Level::L2 => plan_l2_spill(shape, machine, allow_spill),
        Level::L3 => plan_l3(shape, machine, allow_spill),
    }
}

/// Level 1: every CPE holds one sample, all k centroids and all k
/// accumulators — the paper's C1: `d(1 + 2k) + k ≤ LDM`.
pub fn plan_l1(shape: &ProblemShape, machine: &Machine) -> Result<LevelPlan, Infeasibility> {
    let e = ldm_elems(machine, shape);
    let (k, d) = (shape.k, shape.d);
    let resident = d * (1 + 2 * k) + k;
    if resident > e {
        return Err(Infeasibility {
            level: Level::L1,
            constraint: "C1",
            detail: format!(
                "d(1+2k)+k = {resident} elements exceeds LDM capacity {e} \
                 (max k at d={d} is {})",
                max_k_l1(d, e)
            ),
        });
    }
    let m = machine.total_cpes() as u64;
    Ok(LevelPlan {
        level: Level::L1,
        group_units: 1,
        centroids_per_unit: k,
        n_groups: m,
        slice: d,
        cg_span: 1,
        resident_bytes: resident * shape.elem_bytes,
        spilled: false,
    })
}

/// Largest k satisfying C1 at dimension `d` with `e` LDM elements.
pub fn max_k_l1(d: u64, e: u64) -> u64 {
    if e <= d {
        return 0;
    }
    (e - d) / (2 * d + 1)
}

/// Level 2: a group of `g` CPEs partitions the centroid set; every member
/// holds the full sample (double-buffered) plus its centroid and
/// accumulator shards: `2d(1 + c) ≤ LDM`, `c = ⌈k/g⌉`.
pub fn plan_l2(shape: &ProblemShape, machine: &Machine) -> Result<LevelPlan, Infeasibility> {
    plan_l2_spill(shape, machine, false)
}

/// [`plan_l2`] with an optional spill mode: when even one centroid per CPE
/// over the whole allocation does not fit (`g > m`), the shards overflow to
/// DDR rather than refusing — the small-allocation regime of Fig. 9.
pub fn plan_l2_spill(
    shape: &ProblemShape,
    machine: &Machine,
    allow_spill: bool,
) -> Result<LevelPlan, Infeasibility> {
    let e = ldm_elems(machine, shape);
    let (k, d) = (shape.k, shape.d);
    if 4 * d > e {
        return Err(Infeasibility {
            level: Level::L2,
            constraint: "C2' (d-wall)",
            detail: format!(
                "2d(1+c) needs c ≥ 1, so 4d = {} elements must fit in LDM capacity {e}; \
                 max d is {}",
                4 * d,
                e / 4
            ),
        });
    }
    let c_max = (e - 2 * d) / (2 * d); // ≥ 1 by the wall check
    let c_needed = c_max.min(k);
    let g_raw = k.div_ceil(c_needed);
    let m = machine.total_cpes() as u64;
    let g = next_pow2(g_raw).min(m);
    let c = k.div_ceil(g);
    let (spilled, resident) = if c <= c_max {
        (false, 2 * d * (1 + c))
    } else if allow_spill {
        (true, e)
    } else {
        return Err(Infeasibility {
            level: Level::L2,
            constraint: "C1'",
            detail: format!(
                "needs a group of {g_raw} CPEs (c_max = {c_max} centroids per CPE) \
                 but the allocation has only {m} CPEs"
            ),
        });
    };
    let n_groups = (m / g).max(1);
    Ok(LevelPlan {
        level: Level::L2,
        group_units: g,
        centroids_per_unit: c,
        n_groups,
        slice: d,
        cg_span: g.div_ceil(machine.params.cpes_per_cg as u64),
        resident_bytes: resident * shape.elem_bytes,
        spilled,
    })
}

/// Level 3: a group of `G` CGs partitions the centroid set; each CG holds
/// its sample and shard sliced over 64 CPEs by dimension:
/// `2·slice·(1 + c) ≤ LDM`, `slice = ⌈d/64⌉`, `c = ⌈k/G⌉` per CG.
pub fn plan_l3(
    shape: &ProblemShape,
    machine: &Machine,
    allow_spill: bool,
) -> Result<LevelPlan, Infeasibility> {
    let e = ldm_elems(machine, shape);
    let (k, d) = (shape.k, shape.d);
    let cpes_per_cg = machine.params.cpes_per_cg as u64;
    let slice = d.div_ceil(cpes_per_cg);
    if 4 * slice > e {
        return Err(Infeasibility {
            level: Level::L3,
            constraint: "C2''",
            detail: format!(
                "dimension slice d/64 = {slice} elements needs 4·slice ≤ LDM capacity {e}; \
                 max d is {}",
                cpes_per_cg * e / 4
            ),
        });
    }
    let cgs = machine.total_cgs() as u64;
    let c_max = (e - 2 * slice) / (2 * slice);
    let c_wanted = c_max.min(k);
    let g_raw = k.div_ceil(c_wanted);
    let g = next_pow2(g_raw).min(cgs);
    let c = k.div_ceil(g);
    let (spilled, resident) = if c <= c_max {
        (false, 2 * slice * (1 + c))
    } else if allow_spill {
        // Accumulator (and centroid) shards overflow to DDR; LDM holds the
        // working buffers only.
        (true, e)
    } else {
        return Err(Infeasibility {
            level: Level::L3,
            constraint: "C1''",
            detail: format!(
                "needs {g_raw} CGs per group (c_max = {c_max} centroids per CG) but the \
                 allocation has only {cgs} CGs; rerun with spill mode or more nodes"
            ),
        });
    };
    let n_groups = (cgs / g).max(1);
    Ok(LevelPlan {
        level: Level::L3,
        group_units: g,
        centroids_per_unit: c,
        n_groups,
        slice,
        cg_span: g,
        resident_bytes: resident * shape.elem_bytes,
        spilled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_arch::Machine;

    const E_F32: u64 = 16_384; // 64 KB LDM in f32 elements

    #[test]
    fn l1_reproduces_fig3_k_ranges() {
        // The paper's Fig. 3 sweeps stop exactly where C1 overflows a 64 KB
        // LDM in f32 elements.
        assert_eq!(max_k_l1(68, E_F32), 119); // US Census d=68: k=64 ok, 128 not
        assert_eq!(max_k_l1(4, E_F32), 1820); // Road Network d=4: k=1024 ok, 2048 not
        assert_eq!(max_k_l1(28, E_F32), 286); // Kegg d=28: k=256 ok, 512 not

        let m = Machine::taihulight(1);
        assert!(plan_l1(&ProblemShape::f32(65_554, 256, 28), &m).is_ok());
        assert!(plan_l1(&ProblemShape::f32(65_554, 512, 28), &m).is_err());
        assert!(plan_l1(&ProblemShape::f32(434_874, 1_024, 4), &m).is_ok());
        assert!(plan_l1(&ProblemShape::f32(434_874, 2_048, 4), &m).is_err());
        assert!(plan_l1(&ProblemShape::f32(2_458_285, 64, 68), &m).is_ok());
        assert!(plan_l1(&ProblemShape::f32(2_458_285, 128, 68), &m).is_err());
    }

    #[test]
    fn l2_d_wall_is_4096_f32() {
        // Fig. 7: "Level 2 cannot run with d greater than 4096".
        let m = Machine::taihulight(128);
        assert!(plan_l2(&ProblemShape::f32(1_265_723, 2_000, 4_096), &m).is_ok());
        let err = plan_l2(&ProblemShape::f32(1_265_723, 2_000, 4_608), &m).unwrap_err();
        assert_eq!(err.constraint, "C2' (d-wall)");
        assert!(err.detail.contains("4096"));
    }

    #[test]
    fn l2_group_grows_with_d() {
        let m = Machine::taihulight(128);
        let g_at = |d: u64| {
            plan_l2(&ProblemShape::f32(1_265_723, 2_000, d), &m)
                .unwrap()
                .group_units
        };
        assert!(g_at(512) < g_at(2_048));
        assert!(g_at(2_048) <= g_at(4_096));
        // At the wall, one centroid per CPE: g covers all of k.
        let plan = plan_l2(&ProblemShape::f32(1_265_723, 2_000, 4_096), &m).unwrap();
        assert_eq!(plan.centroids_per_unit, 1);
        assert_eq!(plan.group_units, 2_048);
    }

    #[test]
    fn l2_small_problems_use_small_groups() {
        let m = Machine::taihulight(256);
        // Kegg at k=8192 (Fig. 4 top of range).
        let plan = plan_l2(&ProblemShape::f32(65_554, 8_192, 28), &m).unwrap();
        assert!(plan.group_units <= 64, "group {}", plan.group_units);
        assert!(!plan.spilled);
        assert_eq!(plan.group_units * plan.n_groups, m.total_cpes() as u64);
    }

    #[test]
    fn l3_headline_configuration_fits() {
        // n=1.27M, k=2000, d=196,608 on 4,096 nodes: the paper's headline.
        let m = Machine::taihulight(4_096);
        let plan = plan_l3(&ProblemShape::imgnet_headline(), &m, false).unwrap();
        assert!(!plan.spilled);
        assert_eq!(plan.slice, 3_072);
        assert_eq!(plan.group_units, 2_048); // 2000 CGs rounded to a power of two
        assert_eq!(plan.centroids_per_unit, 1);
        assert_eq!(plan.n_groups, 8);
    }

    #[test]
    fn l3_spills_when_allocation_is_too_small() {
        // k=2000 at d=196,608 needs ~2000 CGs resident; 256 nodes has 1024.
        let m = Machine::taihulight(256);
        let err = plan_l3(&ProblemShape::imgnet_headline(), &m, false).unwrap_err();
        assert_eq!(err.constraint, "C1''");
        let plan = plan_l3(&ProblemShape::imgnet_headline(), &m, true).unwrap();
        assert!(plan.spilled);
        assert_eq!(plan.group_units, 1_024);
        assert_eq!(plan.centroids_per_unit, 2);
    }

    #[test]
    fn l3_extreme_k_at_modest_d() {
        // Fig. 6a: k up to 160,000 at d=3,072 on 128 nodes. The paper's own
        // C1'' forbids this (needs ≥ 947 resident CGs, only 512 exist);
        // spill mode runs it.
        let m = Machine::taihulight(128);
        let shape = ProblemShape::f32(1_265_723, 160_000, 3_072);
        assert!(plan_l3(&shape, &m, false).is_err());
        let plan = plan_l3(&shape, &m, true).unwrap();
        assert!(plan.spilled);
        // Mid-range k is resident-feasible without spill.
        let shape_mid = ProblemShape::f32(1_265_723, 65_536, 3_072);
        let plan_mid = plan_l3(&shape_mid, &m, false).unwrap();
        assert!(!plan_mid.spilled);
    }

    #[test]
    fn l3_d_ceiling_is_enormous() {
        // C2'': slice ≤ E/4 → d ≤ 64·E/4 = 262,144 at f32.
        let m = Machine::taihulight(4_096);
        assert!(plan_l3(&ProblemShape::f32(1000, 16, 262_144), &m, false).is_ok());
        let err = plan_l3(&ProblemShape::f32(1000, 16, 262_208), &m, false).unwrap_err();
        assert_eq!(err.constraint, "C2''");
    }

    #[test]
    fn f64_halves_capacity() {
        let m = Machine::taihulight(1);
        // d-wall at f64 is 2048 instead of 4096.
        assert!(plan_l2(&ProblemShape::f64(1000, 16, 2_048), &m).is_ok());
        assert!(plan_l2(&ProblemShape::f64(1000, 16, 2_049), &m).is_err());
    }

    #[test]
    fn group_times_n_groups_never_exceeds_machine() {
        for nodes in [1u64, 4, 128] {
            let m = Machine::taihulight(nodes as usize);
            for (k, d) in [(16u64, 64u64), (2_000, 1_024), (10_000, 68)] {
                let shape = ProblemShape::f32(100_000, k, d);
                if let Ok(p) = plan_l2(&shape, &m) {
                    assert!(p.group_units * p.n_groups <= m.total_cpes() as u64);
                }
                if let Ok(p) = plan_l3(&shape, &m, true) {
                    assert!(p.group_units * p.n_groups <= m.total_cgs() as u64);
                    assert!(p.centroids_per_unit * p.group_units >= k);
                }
            }
        }
    }

    #[test]
    fn plan_dispatch_matches_direct_calls() {
        let m = Machine::taihulight(16);
        let shape = ProblemShape::f32(10_000, 100, 32);
        assert_eq!(plan(Level::L1, &shape, &m, false), plan_l1(&shape, &m));
        assert_eq!(plan(Level::L2, &shape, &m, false), plan_l2(&shape, &m));
        assert_eq!(plan(Level::L3, &shape, &m, true), plan_l3(&shape, &m, true));
    }

    #[test]
    fn infeasibility_display_is_informative() {
        let m = Machine::taihulight(1);
        let err = plan_l1(&ProblemShape::f32(1000, 10_000, 68), &m).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("C1"));
        assert!(text.contains("Level 1"));
    }
}
