//! Engagement model for the bounded (triangle-inequality) assign layer.
//!
//! The bounded assign keeps, per sample, an upper bound on the distance to
//! its cached winner plus `t ≈ k/10` group lower bounds, and skips every
//! sample whose bounds prove the argmin unchanged. On the convergence tail
//! (moved fraction `→ 0`) almost every row filters, so the per-iteration
//! score work collapses from `3·n·k·d` flops to the bookkeeping plus the
//! few survivors — but the machinery is not free:
//!
//! * **Bookkeeping** — `O(n·(t + 1))` f64 updates per iteration (drift
//!   loosening + the filter test), regardless of how many rows filter.
//! * **Seeding** — a full `n·k·d` scan *plus* `n·k/t` scalar runner-up
//!   probes whenever bounds are (re)seeded, amortised over the filtered
//!   iterations that follow.
//!
//! Pruning pays when the per-iteration savings `f·3·n·k·d·η⁻¹` (with `f`
//! the expected filtered fraction on the tail) dominate the bookkeeping;
//! with `t = k/10` that reduces to requiring `k·d` comfortably above the
//! bound-update cost — small problems never amortise the seed scan, and
//! tiny `k` wants the single-bound Hamerly variant (group bounds would
//! cost more than they prune).

use crate::shape::Level;

/// Minimum `k·d` for the expected tail savings (`≈ 3·k·d` flops per
/// filtered row) to dominate the `O(t+1)` per-row bound updates with
/// margin for the seed-scan amortisation.
pub const MIN_KD_FOR_BOUNDS: usize = 64;

/// Minimum per-rank sample count: below this the seed scan's runner-up
/// probes never amortise before convergence.
pub const MIN_N_FOR_BOUNDS: usize = 256;

/// `k` at or below which Hamerly's single bound beats Yinyang's group
/// bounds (one lower bound already prunes well when there are few
/// centroids to drift, and `t = k/10` degenerates to 1–3 groups anyway).
pub const HAMERLY_MAX_K: usize = 32;

/// What the model recommends for a given geometry. Mirrors (and is mapped
/// onto) `kmeans_core::BoundsMode` by the executors; `perf-model` stays
/// independent of `kmeans-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsRecommendation {
    /// Bookkeeping would cost more than it saves: run unbounded.
    None,
    /// Single upper/lower bound per sample (tiny `k`).
    Hamerly,
    /// `t ≈ k/10` group lower bounds (the general case).
    Yinyang,
}

/// Expected ratio of tail-iteration distance work saved per unit of bound
/// bookkeeping: `3·k·d` score flops avoided per filtered row against
/// `O(t + 1)` f64 bound updates for every row. Values `≫ 1` mean pruning
/// pays as soon as the moved fraction drops.
pub fn savings_per_bookkeeping(k: usize, d: usize) -> f64 {
    let t = (k / 10).clamp(1, k.max(1));
    (3 * k * d) as f64 / (t + 1) as f64
}

/// Recommend a bounds mode for one rank's assign loop. `n` is the
/// *global* sample count (every level stripes it; the stripe factor
/// cancels because both the savings and the bookkeeping scale with the
/// stripe length). The decision is a pure function of the arguments, so
/// every rank of a run resolves identically.
pub fn recommend(_level: Level, n: usize, k: usize, d: usize) -> BoundsRecommendation {
    if n < MIN_N_FOR_BOUNDS || k * d < MIN_KD_FOR_BOUNDS || k < 2 {
        return BoundsRecommendation::None;
    }
    if savings_per_bookkeeping(k, d) < 8.0 {
        return BoundsRecommendation::None;
    }
    if k <= HAMERLY_MAX_K {
        BoundsRecommendation::Hamerly
    } else {
        BoundsRecommendation::Yinyang
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_problems_stay_unbounded() {
        assert_eq!(
            recommend(Level::L1, 100, 256, 64),
            BoundsRecommendation::None
        );
        assert_eq!(
            recommend(Level::L1, 100_000, 4, 2),
            BoundsRecommendation::None
        );
        assert_eq!(
            recommend(Level::L2, 100_000, 1, 64),
            BoundsRecommendation::None
        );
    }

    #[test]
    fn small_k_takes_hamerly_large_k_takes_yinyang() {
        assert_eq!(
            recommend(Level::L1, 100_000, 16, 64),
            BoundsRecommendation::Hamerly
        );
        assert_eq!(
            recommend(Level::L2, 100_000, 256, 64),
            BoundsRecommendation::Yinyang
        );
        assert_eq!(
            recommend(Level::L3, 100_000, 10_000, 128),
            BoundsRecommendation::Yinyang
        );
    }

    #[test]
    fn savings_ratio_grows_with_kd() {
        let small = savings_per_bookkeeping(16, 8);
        let paper = savings_per_bookkeeping(256, 64);
        assert!(paper > small);
        assert!(paper > 100.0, "paper shape must be clearly worth it");
    }
}
