//! Contiguous range partitioning — the index arithmetic all three levels
//! share.
//!
//! `split_range(total, parts, idx)` hands part `idx` a contiguous block,
//! spreading the remainder over the first `total % parts` parts so block
//! sizes differ by at most one. Every partition of samples (by dataflow),
//! centroids (by group member) and dimensions (by CPE) in this crate goes
//! through this one function, so its invariants (full cover, no overlap,
//! balance) are property-tested once and hold everywhere.

use std::ops::Range;

/// The contiguous sub-range of `0..total` owned by part `idx` of `parts`.
///
/// Parts `0..total % parts` receive `⌈total/parts⌉` items, the rest
/// `⌊total/parts⌋`. For `total < parts`, trailing parts receive empty
/// ranges (valid: a group member can own zero centroids).
pub fn split_range(total: usize, parts: usize, idx: usize) -> Range<usize> {
    assert!(parts > 0, "cannot split into zero parts");
    assert!(idx < parts, "part index {idx} out of {parts}");
    let q = total / parts;
    let r = total % parts;
    let start = idx * q + idx.min(r);
    let len = q + usize::from(idx < r);
    start..start + len
}

/// Size of part `idx` without building the range.
pub fn part_len(total: usize, parts: usize, idx: usize) -> usize {
    split_range(total, parts, idx).len()
}

/// Which part owns global index `i` under `split_range(total, parts, ·)`.
pub fn owner_of(total: usize, parts: usize, i: usize) -> usize {
    assert!(i < total, "index {i} out of {total}");
    let q = total / parts;
    let r = total % parts;
    let big = (q + 1) * r; // indices handled by the r larger parts
    if q == 0 {
        // Every non-empty part has exactly one element.
        return i;
    }
    if i < big {
        i / (q + 1)
    } else {
        r + (i - big) / q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_split() {
        assert_eq!(split_range(12, 4, 0), 0..3);
        assert_eq!(split_range(12, 4, 3), 9..12);
    }

    #[test]
    fn remainder_goes_to_leading_parts() {
        // 10 over 4: 3,3,2,2.
        assert_eq!(split_range(10, 4, 0), 0..3);
        assert_eq!(split_range(10, 4, 1), 3..6);
        assert_eq!(split_range(10, 4, 2), 6..8);
        assert_eq!(split_range(10, 4, 3), 8..10);
    }

    #[test]
    fn more_parts_than_items() {
        assert_eq!(split_range(2, 5, 0), 0..1);
        assert_eq!(split_range(2, 5, 1), 1..2);
        assert_eq!(split_range(2, 5, 4), 2..2);
        assert!(split_range(2, 5, 3).is_empty());
    }

    #[test]
    fn zero_total() {
        for idx in 0..3 {
            assert!(split_range(0, 3, idx).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_rejected() {
        let _ = split_range(1, 0, 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn index_out_of_parts_rejected() {
        let _ = split_range(10, 2, 2);
    }

    #[test]
    fn owner_inverts_split() {
        for (total, parts) in [(10, 4), (7, 7), (5, 8), (64, 3), (1, 1)] {
            for i in 0..total {
                let owner = owner_of(total, parts, i);
                let range = split_range(total, parts, owner);
                assert!(range.contains(&i), "{total}/{parts}: {i} not in {range:?}");
            }
        }
    }

    proptest! {
        #[test]
        fn covers_everything_without_overlap(total in 0usize..10_000, parts in 1usize..256) {
            let mut next = 0usize;
            for idx in 0..parts {
                let r = split_range(total, parts, idx);
                // Ranges are contiguous and in order: full cover, no overlap.
                prop_assert_eq!(r.start, next);
                next = r.end;
            }
            prop_assert_eq!(next, total);
        }

        #[test]
        fn sizes_differ_by_at_most_one(total in 0usize..10_000, parts in 1usize..256) {
            let sizes: Vec<usize> = (0..parts).map(|i| part_len(total, parts, i)).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1);
            prop_assert_eq!(sizes.iter().sum::<usize>(), total);
        }

        #[test]
        fn owner_matches_scan(total in 1usize..2_000, parts in 1usize..64, i_frac in 0.0f64..1.0) {
            let i = ((total as f64 - 1.0) * i_frac) as usize;
            let owner = owner_of(total, parts, i);
            prop_assert!(split_range(total, parts, owner).contains(&i));
        }
    }
}
