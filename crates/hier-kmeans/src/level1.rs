//! Level 1 — dataflow (n) partition: Algorithm 1 of the paper.
//!
//! Every virtual CPE loads the full centroid set, assigns its contiguous
//! stripe of samples, and accumulates per-cluster vector sums and counts.
//! The Update step is two AllReduces (sums, counts) followed by a local
//! division — identical on every rank, so all ranks hold bitwise-identical
//! centroids at all times and the convergence decision needs no extra
//! synchronisation.

use crate::executor::{HierConfig, HierError, HierResult, IterTiming};
use crate::partition::split_range;
use kmeans_core::{AssignPlan, Matrix, Scalar};
use msg::World;
use sw_arch::MachineParams;

pub(crate) fn run<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    cfg: &HierConfig,
) -> Result<HierResult<S>, HierError> {
    let n = data.rows();
    let d = data.cols();
    let k = init.rows();
    let units = cfg.units;
    let ldm_bytes = MachineParams::taihulight().ldm_bytes;

    let (outs, costs) = World::run_with_cost(units, |comm| {
        let mut centroids = init.clone();
        let my_samples = split_range(n, units, comm.rank());
        let mut iterations = 0usize;
        let mut converged = false;
        let mut sums = vec![S::ZERO; k * d];
        let mut counts = vec![0u64; k];
        let mut assigned: Vec<(u32, S)> = Vec::with_capacity(my_samples.len());
        let mut trace: Vec<IterTiming> = Vec::new();
        for _ in 0..cfg.max_iters {
            let iter_start = std::time::Instant::now();
            let mut it = IterTiming::default();
            // ---- Assign: stripe of samples against all k centroids, via
            // the configured kernel. One plan per iteration amortises the
            // centroid norms across the stripe (once per Update).
            let t0 = std::time::Instant::now();
            sums.iter_mut().for_each(|v| *v = S::ZERO);
            counts.iter_mut().for_each(|v| *v = 0);
            let plan = AssignPlan::with_ldm_budget(cfg.kernel, &centroids, ldm_bytes);
            assigned.clear();
            plan.assign_batch_into(data, my_samples.clone(), &centroids, 0..k, 0, &mut assigned);
            for (i, &(label, _)) in my_samples.clone().zip(&assigned) {
                let j = label as usize;
                counts[j] += 1;
                let acc = &mut sums[j * d..(j + 1) * d];
                for (a, x) in acc.iter_mut().zip(data.row(i)) {
                    *a += *x;
                }
            }
            it.assign += t0.elapsed().as_secs_f64();
            // ---- Update: two AllReduces, then local division. ----
            let t1 = std::time::Instant::now();
            comm.allreduce_with(&mut sums, sum_slices::<S>);
            comm.allreduce_sum_u64(&mut counts);
            let mut worst_shift_sq = 0.0f64;
            for j in 0..k {
                if counts[j] == 0 {
                    continue; // empty cluster keeps its centroid
                }
                let inv = S::ONE / S::from_usize(counts[j] as usize);
                let mut shift_sq = 0.0f64;
                for u in 0..d {
                    let next = sums[j * d + u] * inv;
                    let diff = next.to_f64() - centroids.get(j, u).to_f64();
                    shift_sq += diff * diff;
                    centroids.set(j, u, next);
                }
                worst_shift_sq = worst_shift_sq.max(shift_sq);
            }
            it.update += t1.elapsed().as_secs_f64();
            it.wall = iter_start.elapsed().as_secs_f64();
            trace.push(it);
            iterations += 1;
            if worst_shift_sq.sqrt() <= cfg.tol {
                converged = true;
                break;
            }
        }
        let result_centroids = (comm.rank() == 0).then_some(centroids);
        (result_centroids, iterations, converged, trace)
    });

    Ok(crate::executor::assemble(data, outs, costs, cfg.kernel))
}

/// Element-wise sum combine for AllReduce payloads.
pub(crate) fn sum_slices<S: Scalar>(acc: &mut [S], x: &[S]) {
    for (a, b) in acc.iter_mut().zip(x) {
        *a += *b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::{init_centroids, AssignKernel, InitMethod, KMeansConfig, Lloyd};
    use perf_model::Level;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-5.0..5.0)).collect();
        Matrix::from_vec(n, d, flat)
    }

    #[test]
    fn matches_serial_lloyd_exactly_per_iteration() {
        let data = random_data(200, 6, 11);
        let init = init_centroids(&data, 7, InitMethod::Forgy, 3);
        let cfg = HierConfig {
            level: Level::L1,
            units: 4,
            group_units: 1,
            cpes_per_cg: 64,
            max_iters: 5,
            tol: 0.0,
            kernel: AssignKernel::Scalar,
        };
        let hier = run(&data, init.clone(), &cfg).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(7).with_max_iters(5).with_tol(0.0),
        )
        .unwrap();
        assert_eq!(hier.iterations, serial.iterations);
        assert!(
            hier.centroids.max_abs_diff(&serial.centroids) < 1e-9,
            "diff {}",
            hier.centroids.max_abs_diff(&serial.centroids)
        );
        assert_eq!(hier.labels, serial.labels);
        assert!((hier.objective - serial.objective).abs() < 1e-9);
    }

    #[test]
    fn single_unit_degenerates_to_serial() {
        let data = random_data(50, 3, 2);
        let init = init_centroids(&data, 4, InitMethod::Forgy, 1);
        let cfg = HierConfig {
            level: Level::L1,
            units: 1,
            group_units: 1,
            cpes_per_cg: 64,
            max_iters: 20,
            tol: 1e-9,
            kernel: AssignKernel::Scalar,
        };
        let hier = run(&data, init.clone(), &cfg).unwrap();
        let serial = Lloyd::run_from(&data, init, &KMeansConfig::new(4).with_tol(1e-9)).unwrap();
        assert!(hier.centroids.max_abs_diff(&serial.centroids) < 1e-9);
        assert_eq!(hier.labels, serial.labels);
    }

    #[test]
    fn unit_count_does_not_change_result() {
        let data = random_data(120, 4, 9);
        let init = init_centroids(&data, 5, InitMethod::Forgy, 4);
        let mut reference: Option<Matrix<f64>> = None;
        for units in [1usize, 2, 3, 8] {
            let cfg = HierConfig {
                level: Level::L1,
                units,
                group_units: 1,
                cpes_per_cg: 64,
                max_iters: 10,
                tol: 0.0,
                kernel: AssignKernel::Scalar,
            };
            let r = run(&data, init.clone(), &cfg).unwrap();
            if let Some(ref m) = reference {
                assert!(r.centroids.max_abs_diff(m) < 1e-9, "units={units} diverged");
            } else {
                reference = Some(r.centroids);
            }
        }
    }

    #[test]
    fn communication_volume_is_accounted() {
        let data = random_data(64, 4, 5);
        let init = init_centroids(&data, 3, InitMethod::Forgy, 6);
        let cfg = HierConfig {
            level: Level::L1,
            units: 4,
            group_units: 1,
            cpes_per_cg: 64,
            max_iters: 3,
            tol: 0.0,
            kernel: AssignKernel::Scalar,
        };
        let r = run(&data, init, &cfg).unwrap();
        // 3 iterations × (sums k·d f64 + counts k u64) over a 4-rank
        // binomial allreduce — nonzero, bounded traffic.
        assert!(r.comm_bytes > 0);
        assert!(r.comm_messages >= 3 * 2 * 3); // ≥ 3 msgs per allreduce × 2 × iters
        let upper = 3 * 2 * 6 * (3 * 4 * 8 + 3 * 8 + 64);
        assert!(r.comm_bytes < upper, "bytes {} vs {}", r.comm_bytes, upper);
    }

    #[test]
    fn converges_and_reports_flag() {
        let data = random_data(100, 2, 8);
        let init = init_centroids(&data, 2, InitMethod::KMeansPlusPlus, 2);
        let cfg = HierConfig {
            level: Level::L1,
            units: 4,
            group_units: 1,
            cpes_per_cg: 64,
            max_iters: 100,
            tol: 1e-9,
            kernel: AssignKernel::Scalar,
        };
        let r = run(&data, init, &cfg).unwrap();
        assert!(r.converged);
        assert!(r.iterations < 100);
    }
}
