//! Level 1 — dataflow (n) partition: Algorithm 1 of the paper.
//!
//! Every virtual CPE loads the full centroid set, assigns its contiguous
//! stripe of samples, and accumulates per-cluster vector sums and counts.
//! The Update step is two AllReduces (sums, counts) followed by a local
//! division — identical on every rank, so all ranks hold bitwise-identical
//! centroids at all times and the convergence decision needs no extra
//! synchronisation.
//!
//! Three update paths share this skeleton (see [`kmeans_core::UpdateMode`]):
//! * **two-pass** — assign, then a separate accumulate sweep (the baseline);
//! * **fused** — the kernel folds each scored sample into the per-cluster
//!   sums while it is still cache-resident, eliminating the sweep;
//! * **delta** — keep the previous labels; when few samples moved, recompute
//!   only the *touched* clusters (any moved sample's old or new cluster) and
//!   merge just those rows. Untouched rows reproduce bitwise (same members,
//!   same accumulation order, same fold), so skipping them changes nothing.
//!   The Update still reports which centroid rows changed bits so the
//!   planner refreshes only those norms/panels.
//!
//! Assign-side work avoidance is the shared bounded layer
//! ([`kmeans_core::bounds`], `--bounds`): per-sample triangle-inequality
//! bounds filter rows whose argmin provably didn't change and push the
//! survivors through the same batch kernels. It subsumes the bespoke
//! changed-rows skip scan earlier revisions ran here, works under every
//! update path, and keeps the same bitwise guarantee (filtered rows emit
//! their cached winner, survivors rescan through the identical kernel).
//!
//! All three produce bitwise-identical centroids, labels and iteration
//! counts for a given kernel and merge strategy.

use crate::executor::{
    collect_ranks, fault_setup, finalize_faults, HierConfig, HierError, HierResult, IterTiming,
    PhaseTracer, RankOutput,
};
use crate::partition::split_range;
use kmeans_core::{
    centroid_drifts, AssignKernel, AssignPlanner, BoundState, BoundsIterKind, BoundsMode,
    BoundsScratch, GemmBlocking, Matrix, Scalar, TouchedSet, UpdateMode, DELTA_FALLBACK_FRACTION,
};
use msg::{CommError, World};
use sw_arch::MachineParams;

pub(crate) fn run<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    cfg: &HierConfig,
) -> Result<HierResult<S>, HierError> {
    let n = data.rows();
    let d = data.cols();
    let k = init.rows();
    let units = cfg.units;
    let ldm_bytes = MachineParams::taihulight().ldm_bytes;
    let ring = cfg.merge.use_ring(k * d * S::BYTES, units, cfg.update);
    let (plan, timeout) = fault_setup(cfg);
    let degrade = plan.clone();

    let (outs, costs, fstats) = World::run_with_faults(units, timeout, plan, |comm| {
        let pt = PhaseTracer::attach(cfg, comm);
        let mut centroids = init.clone();
        let my_samples = split_range(n, units, comm.rank());
        let mut iterations = 0usize;
        let mut converged = false;
        let mut sums = vec![S::ZERO; k * d];
        let mut counts = vec![0u64; k];
        let mut assigned: Vec<(u32, S)> = Vec::with_capacity(my_samples.len());
        let mut prev_labels: Vec<u32> = Vec::with_capacity(my_samples.len());
        // Delta-only state: the centroid rows whose bits changed in the
        // last Update (the planner-refresh hint), and a pre-Update
        // snapshot for detecting those changes.
        let mut changed = TouchedSet::new(k);
        let mut changed_rows: Vec<usize> = Vec::new();
        let mut before: Vec<S> = Vec::new();
        let mut touched = TouchedSet::new(k);
        let mut row_slot = vec![u32::MAX; k];
        let mut compact_sums: Vec<S> = Vec::new();
        let mut compact_counts: Vec<u64> = Vec::new();
        let mut trace: Vec<IterTiming> = Vec::new();
        // One planner per rank for the whole run: centroid norms and the
        // gemm kernel's packed panels persist across iterations. On the
        // delta path the Update already knows exactly which rows changed
        // bits, so the refresh takes that hint directly; the other paths
        // fall back to the planner's snapshot diff. Refreshed rows are
        // recomputed through the same canonical accumulation, so reuse is
        // bitwise-invisible.
        let mut planner = AssignPlanner::new(cfg.kernel, ldm_bytes);
        if cfg.kernel == AssignKernel::Gemm {
            // Block shape from the cost model (Level 1 replicates the full
            // centroid set per unit) instead of the kernel's LDM-half
            // default. Blocking never changes results, only wall time.
            let (mc, nc) = perf_model::gemm::choose_blocking(
                &MachineParams::taihulight(),
                &perf_model::Calibration::default(),
                k,
                d,
                S::BYTES,
            );
            planner = planner.with_blocking(GemmBlocking::new(mc, nc));
        }
        let mut changed_mask = vec![false; k];
        // Bounded assign: per-rank bound state over this rank's stripe.
        // Level 1 replicates the full centroid set, so the serial bounded
        // driver applies verbatim; drifts come from the merged centroids
        // every rank holds identically, so bounds stay rank-deterministic.
        let mut bound_state: Option<BoundState<S>> = match cfg.resolved_bounds(n, k, d) {
            BoundsMode::None => None,
            mode => Some(BoundState::new(mode, my_samples.len(), k, d)),
        };
        let mut bscratch = BoundsScratch::default();
        let mut bdrifts: Vec<f64> = Vec::new();
        let mut bsnapshot: Option<Matrix<S>> = None;
        for iter in 0..cfg.max_iters {
            let iter_start = std::time::Instant::now();
            let mut it = IterTiming::default();
            // Degraded iteration? Every rank evaluates the plan identically
            // (it is a pure function of the seed) — consensus without a
            // collective. Degraded iterations run the tree merge and the
            // delta dense fallback, both bitwise-safe recovery paths.
            let degraded = degrade.as_ref().is_some_and(|p| p.degrade_iteration(iter));
            if degraded {
                pt.mark("degraded_iteration", iter);
                // Conservative: a degraded iteration runs fallback merge
                // paths, so invalidate the bounds and reseed on the next
                // engagement rather than trust pre-fault bookkeeping.
                if let Some(st) = &mut bound_state {
                    st.reset();
                }
            }
            // ---- Assign: stripe of samples against all k centroids, via
            // the configured kernel. One plan per iteration amortises the
            // centroid norms across the stripe (once per Update).
            let t0 = std::time::Instant::now();
            let plan = if cfg.update == UpdateMode::Delta && iter > 0 {
                changed_mask.iter_mut().for_each(|v| *v = false);
                for &j in &changed_rows {
                    changed_mask[j] = true;
                }
                planner.plan_with_changed(&centroids, &changed_mask)
            } else {
                planner.plan(&centroids)
            };
            if cfg.kernel == AssignKernel::Gemm {
                // Norm + packed-panel (re)build time, nested inside the
                // assign phase on the trace timeline.
                pt.phase("gemm_plan", t0, iter);
            }
            assigned.clear();
            // The fused in-kernel fold needs the plain full sweep; under
            // bounds the filtered rows break its ascending fold order, so
            // a bounded Fused run accumulates with the two-pass sweep
            // below (bitwise-identical by the update-path invariant).
            let fuse_inline = cfg.update == UpdateMode::Fused && bound_state.is_none();
            if fuse_inline {
                sums.iter_mut().for_each(|v| *v = S::ZERO);
                counts.iter_mut().for_each(|v| *v = 0);
                plan.assign_accumulate_into(
                    data,
                    my_samples.clone(),
                    &centroids,
                    0..k,
                    0,
                    &mut assigned,
                    &mut sums,
                    &mut counts,
                );
            } else if let Some(st) = &mut bound_state {
                let tb = std::time::Instant::now();
                let kind = st.assign_serial(
                    &plan,
                    data,
                    my_samples.clone(),
                    &centroids,
                    &mut assigned,
                    &mut bscratch,
                );
                if kind == BoundsIterKind::Filter {
                    // Filtered pass: span nested inside assign, like
                    // gemm_plan above.
                    pt.phase("bounds_filter", tb, iter);
                }
            } else {
                plan.assign_batch_into(
                    data,
                    my_samples.clone(),
                    &centroids,
                    0..k,
                    0,
                    &mut assigned,
                );
            }
            if !fuse_inline && cfg.update != UpdateMode::Delta {
                // Two-pass accumulate (also the bounded Fused path).
                sums.iter_mut().for_each(|v| *v = S::ZERO);
                counts.iter_mut().for_each(|v| *v = 0);
                for (i, &(label, _)) in my_samples.clone().zip(&assigned) {
                    let j = label as usize;
                    counts[j] += 1;
                    let acc = &mut sums[j * d..(j + 1) * d];
                    for (a, x) in acc.iter_mut().zip(data.row(i)) {
                        *a += *x;
                    }
                }
            }
            it.assign += pt.phase("assign", t0, iter);
            // Pre-Update snapshot for the bound drift (only once seeded —
            // dormant iterations never loosen).
            if let Some(st) = &bound_state {
                if st.seeded() {
                    bsnapshot = Some(centroids.clone());
                }
            }

            // Local reassignment bookkeeping — a label compare against the
            // previous iteration, no collectives (the default path's byte
            // volume must not change).
            let local_moved = if iter == 0 {
                assigned.len() as u64
            } else {
                assigned
                    .iter()
                    .zip(&prev_labels)
                    .filter(|((label, _), prev)| *label != **prev)
                    .count() as u64
            };
            it.moved_fraction = if assigned.is_empty() {
                0.0
            } else {
                local_moved as f64 / assigned.len() as f64
            };

            let mut worst_shift_sq = 0.0f64;
            match cfg.update {
                UpdateMode::TwoPass | UpdateMode::Fused => {
                    // ---- Update: two AllReduces, then local division. ----
                    let t1 = std::time::Instant::now();
                    if ring && !degraded {
                        comm.try_allreduce_ring(&mut sums, sum_slices::<S>)?;
                    } else {
                        comm.try_allreduce_with(&mut sums, sum_slices::<S>)?;
                    }
                    comm.try_allreduce_sum_u64(&mut counts)?;
                    worst_shift_sq = divide_rows(&mut centroids, &sums, &counts, d, 0..k);
                    it.update += pt.phase("update", t1, iter);
                }
                UpdateMode::Delta => {
                    // ---- Touched consensus: one small OR/sum AllReduce so
                    // every rank agrees on the global touched set and moved
                    // count (timed as merge — it is the extra collective the
                    // delta path pays).
                    let global_moved;
                    if iter == 0 {
                        global_moved = n as u64; // everything is new
                    } else {
                        let t1 = std::time::Instant::now();
                        touched.clear();
                        for ((label, _), prev) in assigned.iter().zip(&prev_labels) {
                            if *label != *prev {
                                touched.mark(*prev as usize);
                                touched.mark(*label as usize);
                            }
                        }
                        let mut consensus: Vec<u64> = touched.words().to_vec();
                        consensus.push(local_moved);
                        comm.try_allreduce_with(&mut consensus, or_words_sum_last)?;
                        global_moved = *consensus.last().unwrap();
                        touched.set_words(&consensus[..consensus.len() - 1]);
                        it.merge += pt.phase("merge", t1, iter);
                    }

                    let t2 = std::time::Instant::now();
                    if iter == 0
                        || degraded
                        || global_moved as f64 / n as f64 >= DELTA_FALLBACK_FRACTION
                    {
                        // Dense fallback: recompute every cluster, exactly
                        // the two-pass Update (bitwise identical by
                        // construction). Degraded iterations are forced here
                        // so a faulted sparse merge can never be trusted.
                        sums.iter_mut().for_each(|v| *v = S::ZERO);
                        counts.iter_mut().for_each(|v| *v = 0);
                        for (i, &(label, _)) in my_samples.clone().zip(&assigned) {
                            let j = label as usize;
                            counts[j] += 1;
                            let acc = &mut sums[j * d..(j + 1) * d];
                            for (a, x) in acc.iter_mut().zip(data.row(i)) {
                                *a += *x;
                            }
                        }
                        comm.try_allreduce_with(&mut sums, sum_slices::<S>)?;
                        comm.try_allreduce_sum_u64(&mut counts)?;
                        before.clear();
                        before.extend_from_slice(centroids.as_slice());
                        worst_shift_sq = divide_rows(&mut centroids, &sums, &counts, d, 0..k);
                        changed.clear();
                        changed_rows.clear();
                        for j in 0..k {
                            let moved_bits = centroids
                                .row(j)
                                .iter()
                                .zip(&before[j * d..(j + 1) * d])
                                .any(|(a, b)| a.bits() != b.bits());
                            if moved_bits {
                                changed.mark(j);
                                changed_rows.push(j);
                            }
                        }
                    } else if touched.count() > 0 {
                        // Sparse path: recompute only the touched rows from
                        // scratch (ascending sample order — the same order
                        // the dense sweep uses) and merge a compact buffer.
                        let touched_rows: Vec<usize> = touched.iter().collect();
                        for (slot, &j) in touched_rows.iter().enumerate() {
                            row_slot[j] = slot as u32;
                        }
                        compact_sums.clear();
                        compact_sums.resize(touched_rows.len() * d, S::ZERO);
                        compact_counts.clear();
                        compact_counts.resize(touched_rows.len(), 0);
                        for (i, &(label, _)) in my_samples.clone().zip(&assigned) {
                            let slot = row_slot[label as usize];
                            if slot != u32::MAX {
                                let slot = slot as usize;
                                compact_counts[slot] += 1;
                                let acc = &mut compact_sums[slot * d..(slot + 1) * d];
                                for (a, x) in acc.iter_mut().zip(data.row(i)) {
                                    *a += *x;
                                }
                            }
                        }
                        comm.try_allreduce_with(&mut compact_sums, sum_slices::<S>)?;
                        comm.try_allreduce_sum_u64(&mut compact_counts)?;
                        changed.clear();
                        changed_rows.clear();
                        for (slot, &j) in touched_rows.iter().enumerate() {
                            if compact_counts[slot] == 0 {
                                continue; // emptied cluster keeps its centroid
                            }
                            let inv = S::ONE / S::from_usize(compact_counts[slot] as usize);
                            let mut shift_sq = 0.0f64;
                            let mut row_changed = false;
                            for u in 0..d {
                                let next = compact_sums[slot * d + u] * inv;
                                let old = centroids.get(j, u);
                                let diff = next.to_f64() - old.to_f64();
                                shift_sq += diff * diff;
                                row_changed |= next.bits() != old.bits();
                                centroids.set(j, u, next);
                            }
                            worst_shift_sq = worst_shift_sq.max(shift_sq);
                            if row_changed {
                                changed.mark(j);
                                changed_rows.push(j);
                            }
                        }
                        for &j in &touched_rows {
                            row_slot[j] = u32::MAX;
                        }
                    } else {
                        // Nothing moved anywhere: no centroid can change.
                        changed.clear();
                        changed_rows.clear();
                    }
                    // global_moved == 0: no centroid can change — the shift
                    // is exactly 0.0, matching the dense recompute bitwise.
                    it.update += pt.phase("update", t2, iter);
                }
            }

            // ---- Bounds bookkeeping: loosen by this Update's per-centroid
            // drift (merged centroids — identical on every rank), then feed
            // the local moved fraction to the engagement lifecycle.
            if let Some(st) = &mut bound_state {
                if let Some(snap) = bsnapshot.take() {
                    centroid_drifts(&snap, &centroids, &mut bdrifts);
                    st.loosen(&bdrifts);
                }
                st.note_moved_fraction(it.moved_fraction);
            }

            prev_labels.clear();
            prev_labels.extend(assigned.iter().map(|&(label, _)| label));
            it.wall = pt.phase("iteration", iter_start, iter);
            trace.push(it);
            iterations += 1;
            if worst_shift_sq.sqrt() <= cfg.tol {
                converged = true;
                break;
            }
        }
        let result_centroids = (comm.rank() == 0).then_some(centroids);
        let bstats = bound_state.map(|s| s.stats).unwrap_or_default();
        Ok::<RankOutput<S>, CommError>((result_centroids, iterations, converged, trace, bstats))
    });

    let outs = collect_ranks(outs)?;
    let mut result = crate::executor::assemble(data, outs, costs, cfg, ring);
    finalize_faults(&mut result, cfg, &fstats);
    Ok(result)
}

/// Divide merged sums by merged counts into `centroids` for `rows`,
/// returning the worst squared centroid shift. Empty clusters keep their
/// centroid. The division expression is shared by every update path — that
/// identity is what the bitwise-equivalence guarantee rests on.
pub(crate) fn divide_rows<S: Scalar>(
    centroids: &mut Matrix<S>,
    sums: &[S],
    counts: &[u64],
    d: usize,
    rows: std::ops::Range<usize>,
) -> f64 {
    let mut worst_shift_sq = 0.0f64;
    for j in rows {
        if counts[j] == 0 {
            continue; // empty cluster keeps its centroid
        }
        let inv = S::ONE / S::from_usize(counts[j] as usize);
        let mut shift_sq = 0.0f64;
        for u in 0..d {
            let next = sums[j * d + u] * inv;
            let diff = next.to_f64() - centroids.get(j, u).to_f64();
            shift_sq += diff * diff;
            centroids.set(j, u, next);
        }
        worst_shift_sq = worst_shift_sq.max(shift_sq);
    }
    worst_shift_sq
}

/// Element-wise sum combine for AllReduce payloads.
pub(crate) fn sum_slices<S: Scalar>(acc: &mut [S], x: &[S]) {
    for (a, b) in acc.iter_mut().zip(x) {
        *a += *b;
    }
}

/// Combine for the delta touched-consensus AllReduce: bitwise OR over the
/// mask words, integer sum on the trailing moved-count element.
pub(crate) fn or_words_sum_last(acc: &mut [u64], x: &[u64]) {
    let (last, words) = acc.split_last_mut().expect("consensus buffer is nonempty");
    for (a, b) in words.iter_mut().zip(x) {
        *a |= *b;
    }
    *last += x[x.len() - 1];
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::{init_centroids, AssignKernel, InitMethod, KMeansConfig, Lloyd};
    use perf_model::Level;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-5.0..5.0)).collect();
        Matrix::from_vec(n, d, flat)
    }

    #[test]
    fn matches_serial_lloyd_exactly_per_iteration() {
        let data = random_data(200, 6, 11);
        let init = init_centroids(&data, 7, InitMethod::Forgy, 3);
        let cfg = HierConfig {
            level: Level::L1,
            units: 4,
            group_units: 1,
            cpes_per_cg: 64,
            max_iters: 5,
            tol: 0.0,
            kernel: AssignKernel::Scalar,
            ..HierConfig::new(Level::L1)
        };
        let hier = run(&data, init.clone(), &cfg).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(7).with_max_iters(5).with_tol(0.0),
        )
        .unwrap();
        assert_eq!(hier.iterations, serial.iterations);
        assert!(
            hier.centroids.max_abs_diff(&serial.centroids) < 1e-9,
            "diff {}",
            hier.centroids.max_abs_diff(&serial.centroids)
        );
        assert_eq!(hier.labels, serial.labels);
        assert!((hier.objective - serial.objective).abs() < 1e-9);
    }

    #[test]
    fn single_unit_degenerates_to_serial() {
        let data = random_data(50, 3, 2);
        let init = init_centroids(&data, 4, InitMethod::Forgy, 1);
        let cfg = HierConfig {
            level: Level::L1,
            units: 1,
            group_units: 1,
            cpes_per_cg: 64,
            max_iters: 20,
            tol: 1e-9,
            kernel: AssignKernel::Scalar,
            ..HierConfig::new(Level::L1)
        };
        let hier = run(&data, init.clone(), &cfg).unwrap();
        let serial = Lloyd::run_from(&data, init, &KMeansConfig::new(4).with_tol(1e-9)).unwrap();
        assert!(hier.centroids.max_abs_diff(&serial.centroids) < 1e-9);
        assert_eq!(hier.labels, serial.labels);
    }

    #[test]
    fn unit_count_does_not_change_result() {
        let data = random_data(120, 4, 9);
        let init = init_centroids(&data, 5, InitMethod::Forgy, 4);
        let mut reference: Option<Matrix<f64>> = None;
        for units in [1usize, 2, 3, 8] {
            let cfg = HierConfig {
                level: Level::L1,
                units,
                group_units: 1,
                cpes_per_cg: 64,
                max_iters: 10,
                tol: 0.0,
                kernel: AssignKernel::Scalar,
                ..HierConfig::new(Level::L1)
            };
            let r = run(&data, init.clone(), &cfg).unwrap();
            if let Some(ref m) = reference {
                assert!(r.centroids.max_abs_diff(m) < 1e-9, "units={units} diverged");
            } else {
                reference = Some(r.centroids);
            }
        }
    }

    #[test]
    fn communication_volume_is_accounted() {
        let data = random_data(64, 4, 5);
        let init = init_centroids(&data, 3, InitMethod::Forgy, 6);
        let cfg = HierConfig {
            level: Level::L1,
            units: 4,
            group_units: 1,
            cpes_per_cg: 64,
            max_iters: 3,
            tol: 0.0,
            kernel: AssignKernel::Scalar,
            ..HierConfig::new(Level::L1)
        };
        let r = run(&data, init, &cfg).unwrap();
        // 3 iterations × (sums k·d f64 + counts k u64) over a 4-rank
        // binomial allreduce — nonzero, bounded traffic.
        assert!(r.comm_bytes > 0);
        assert!(r.comm_messages >= 3 * 2 * 3); // ≥ 3 msgs per allreduce × 2 × iters
        let upper = 3 * 2 * 6 * (3 * 4 * 8 + 3 * 8 + 64);
        assert!(r.comm_bytes < upper, "bytes {} vs {}", r.comm_bytes, upper);
    }

    #[test]
    fn update_modes_agree_bitwise_with_twopass() {
        use crate::executor::MergeStrategy;
        let data = random_data(300, 5, 21);
        let init = init_centroids(&data, 9, InitMethod::Forgy, 13);
        let run_with = |update: UpdateMode, merge: MergeStrategy| {
            let cfg = HierConfig {
                level: Level::L1,
                units: 4,
                max_iters: 15,
                tol: 0.0,
                kernel: AssignKernel::Scalar,
                update,
                merge,
                ..HierConfig::new(Level::L1)
            };
            run(&data, init.clone(), &cfg).unwrap()
        };
        let base = run_with(UpdateMode::TwoPass, MergeStrategy::Tree);
        for update in [UpdateMode::Fused, UpdateMode::Delta] {
            let r = run_with(update, MergeStrategy::Tree);
            assert_eq!(r.iterations, base.iterations, "{update}");
            assert_eq!(r.labels, base.labels, "{update}");
            let bits = |m: &Matrix<f64>| -> Vec<u64> {
                m.as_slice().iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(
                bits(&r.centroids),
                bits(&base.centroids),
                "{update} centroids diverged bitwise"
            );
            assert_eq!(r.objective.to_bits(), base.objective.to_bits(), "{update}");
            assert_eq!(r.update, update);
        }
        // Forced ring merge also reproduces the tree result on this data
        // (the fold order differs, but the converged fit agrees here).
        let ringed = run_with(UpdateMode::Fused, MergeStrategy::Ring);
        assert!(ringed.merge_ring);
        assert!(ringed.centroids.max_abs_diff(&base.centroids) < 1e-9);
    }

    #[test]
    fn bounded_runs_match_unbounded_bitwise() {
        use kmeans_core::BoundsMode;
        let data = random_data(400, 6, 11);
        let init = init_centroids(&data, 24, InitMethod::Forgy, 3);
        for kernel in [AssignKernel::Scalar, AssignKernel::Gemm] {
            for update in [UpdateMode::TwoPass, UpdateMode::Fused, UpdateMode::Delta] {
                let mk = |bounds| HierConfig {
                    level: Level::L1,
                    units: 4,
                    max_iters: 30,
                    tol: 0.0,
                    kernel,
                    update,
                    bounds,
                    ..HierConfig::new(Level::L1)
                };
                let base = run(&data, init.clone(), &mk(BoundsMode::None)).unwrap();
                for bounds in [BoundsMode::Hamerly, BoundsMode::Yinyang, BoundsMode::Auto] {
                    let tag = format!("{kernel} {update} {bounds}");
                    let r = run(&data, init.clone(), &mk(bounds)).unwrap();
                    assert_eq!(r.iterations, base.iterations, "{tag}");
                    assert_eq!(r.labels, base.labels, "{tag}");
                    let bits = |m: &Matrix<f64>| -> Vec<u64> {
                        m.as_slice().iter().map(|v| v.to_bits()).collect()
                    };
                    assert_eq!(
                        bits(&r.centroids),
                        bits(&base.centroids),
                        "{tag}: centroids diverged bitwise"
                    );
                    assert_eq!(r.objective.to_bits(), base.objective.to_bits(), "{tag}");
                    assert!(r.bounds.seed_scans >= 1, "{tag}: bounds never engaged");
                    assert!(r.bounds.lloyd_equivalent > 0, "{tag}: no stats");
                }
            }
        }
    }

    #[test]
    fn delta_run_reports_decaying_moved_fraction() {
        let data = random_data(200, 3, 4);
        let init = init_centroids(&data, 4, InitMethod::KMeansPlusPlus, 5);
        let cfg = HierConfig {
            level: Level::L1,
            units: 4,
            max_iters: 100,
            tol: 1e-9,
            kernel: AssignKernel::Scalar,
            update: UpdateMode::Delta,
            ..HierConfig::new(Level::L1)
        };
        let r = run(&data, init, &cfg).unwrap();
        assert!(r.converged);
        let first = r.trace.iter_critical(0).moved_fraction;
        let last = r.trace.iter_critical(r.iterations - 1).moved_fraction;
        assert_eq!(first, 1.0);
        assert_eq!(last, 0.0, "converged run must end with nothing moving");
    }

    #[test]
    fn converges_and_reports_flag() {
        let data = random_data(100, 2, 8);
        let init = init_centroids(&data, 2, InitMethod::KMeansPlusPlus, 2);
        let cfg = HierConfig {
            level: Level::L1,
            units: 4,
            group_units: 1,
            cpes_per_cg: 64,
            max_iters: 100,
            tol: 1e-9,
            kernel: AssignKernel::Scalar,
            ..HierConfig::new(Level::L1)
        };
        let r = run(&data, init, &cfg).unwrap();
        assert!(r.converged);
        assert!(r.iterations < 100);
    }
}
