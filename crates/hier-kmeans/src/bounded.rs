//! Distributed bounded assign for the centroid-partitioned levels (2, 3).
//!
//! [`RankBounds`] wraps a [`BoundState`] with the group-collective plumbing
//! that the shared-centroid levels need: every member of a centroid-sharing
//! group holds bound state for the *same* sample stripe, and every bound is
//! computed from globally-merged quantities so all members make identical
//! IEEE-754 filter decisions without any agreement protocol:
//!
//! * **Seed** — per-bounds-group partial scans over `group ∩ shard` (both
//!   are contiguous index ranges, so the intersection is a plain `crows`
//!   sub-range of the same plan — bit-identical keys), merged with `t`
//!   min-loc AllReduces; the cross-group winner is the strict-`<` lexmin
//!   over the merged per-group minima (lowest group wins exact ties — the
//!   full scan's ascending-index tie-break). Runner-up distances within the
//!   winner's group come from local scalar probes min-merged across the
//!   group.
//! * **Filter** — group-identical filter decisions; filtered rows emit
//!   their cached merged winner, survivors are gather-compacted into a
//!   dense panel, rescanned over the full shard through the same plan, and
//!   merged with one *compact* (survivors-only) min-loc AllReduce.
//! * **Drift** — each member contributes its shard's per-centroid drifts
//!   into a zero-padded `k`-length vector summed across the group; shards
//!   are disjoint, so `x + 0.0` keeps the sums bitwise exact and every
//!   member loosens identically.
//!
//! The emitted `(key, label)` pairs are bitwise-identical to the unbounded
//! assign + merge of the same kernel in every consumed position (labels;
//! keys of scanned rows — filtered rows keep their cached key, which
//! nothing downstream reads).

use crate::level2::{merge_min_loc, MINLOC_NEUTRAL};
use kmeans_core::{
    centroid_drifts, dist_from_score_key, AssignPlan, BoundState, BoundsIterKind, BoundsMode,
    BoundsStats, Matrix, Scalar,
};
use msg::{Comm, CommError};
use std::ops::Range;

fn intersect(a: &Range<usize>, b: &Range<usize>) -> Range<usize> {
    a.start.max(b.start)..a.end.min(b.end).max(a.start.max(b.start))
}

/// Min combine for the runner-up AllReduce. `f64::min` is associative and
/// commutative for non-NaN inputs, so the merged value is independent of
/// reduction order.
fn min_slices(acc: &mut [f64], x: &[f64]) {
    for (a, b) in acc.iter_mut().zip(x) {
        if *b < *a {
            *a = *b;
        }
    }
}

/// One rank's bound state plus the scratch buffers for the distributed
/// seed/filter passes. `my_centroids` is this member's global shard range.
pub(crate) struct RankBounds<S: Scalar> {
    st: BoundState<S>,
    my_centroids: Range<usize>,
    k: usize,
    d: usize,
    /// Merged `(key, index)` winner per bounds-group per sample (seed).
    group_pairs: Vec<Vec<(f64, u64)>>,
    scan_out: Vec<(u32, S)>,
    runner_up: Vec<f64>,
    survivors: Vec<u32>,
    panel: Vec<S>,
    compact: Vec<(f64, u64)>,
    shard_drifts: Vec<f64>,
    drifts: Vec<f64>,
    snapshot: Option<Matrix<S>>,
}

impl<S: Scalar> RankBounds<S> {
    /// `mode` must resolve to a concrete bounded mode (`None` means "don't
    /// construct one" — the levels keep an `Option<RankBounds>`).
    pub(crate) fn new(
        mode: BoundsMode,
        n_local: usize,
        k: usize,
        d: usize,
        my_centroids: Range<usize>,
    ) -> RankBounds<S> {
        RankBounds {
            st: BoundState::new(mode, n_local, k, d),
            my_centroids,
            k,
            d,
            group_pairs: Vec::new(),
            scan_out: Vec::new(),
            runner_up: Vec::new(),
            survivors: Vec::new(),
            panel: Vec::new(),
            compact: Vec::new(),
            shard_drifts: Vec::new(),
            drifts: Vec::new(),
            snapshot: None,
        }
    }

    /// What this iteration's assign pass is. Derived from state that every
    /// group member evolves identically, so the decision needs no
    /// collective and the groups' collective schedules stay in lockstep.
    pub(crate) fn kind(&self) -> BoundsIterKind {
        self.st.iteration_kind()
    }

    /// Conservative invalidation on fault-degraded iterations.
    pub(crate) fn reset(&mut self) {
        self.st.reset();
    }

    /// Account an unbounded (dormant) pass this member ran itself.
    pub(crate) fn note_dormant(&mut self, n_local: usize, shard_k: usize) {
        let work = (n_local as u64) * (shard_k as u64);
        self.st.stats.distance_evals += work;
        self.st.stats.lloyd_equivalent += work;
    }

    pub(crate) fn into_stats(self) -> BoundsStats {
        self.st.stats
    }

    /// Seeding pass: produces the merged `(key, label)` pairs for the whole
    /// stripe (replacing the plain scan + merge) while (re)seeding every
    /// bound from merged quantities. `plan` is `None` on empty shards, which
    /// still participate in every collective.
    pub(crate) fn seed_assign(
        &mut self,
        plan: Option<&AssignPlan<S>>,
        data: &Matrix<S>,
        my_samples: Range<usize>,
        shard: &Matrix<S>,
        group_comm: &mut Comm,
        pairs: &mut Vec<(f64, u64)>,
    ) -> Result<(), CommError> {
        let n_local = my_samples.len();
        let shard_k = self.my_centroids.len();
        let t = self.st.groups_len();
        self.st.ensure_xnorms(data, my_samples.clone());
        self.group_pairs.resize(t, Vec::new());
        for g in 0..t {
            let range = intersect(&self.st.group_ranges()[g], &self.my_centroids);
            let gp = &mut self.group_pairs[g];
            gp.clear();
            match plan {
                Some(plan) if !range.is_empty() => {
                    let local =
                        range.start - self.my_centroids.start..range.end - self.my_centroids.start;
                    self.scan_out.clear();
                    plan.assign_batch_into(
                        data,
                        my_samples.clone(),
                        shard,
                        local,
                        range.start,
                        &mut self.scan_out,
                    );
                    gp.extend(
                        self.scan_out
                            .iter()
                            .map(|&(j, key)| (key.to_f64(), j as u64)),
                    );
                }
                _ => gp.resize(n_local, MINLOC_NEUTRAL),
            }
            merge_min_loc::<S>(group_comm, gp)?;
        }
        let work = (n_local as u64) * (shard_k as u64);
        self.st.stats.distance_evals += work;
        self.st.stats.lloyd_equivalent += work;

        // Cross-group winner + this member's runner-up probes over the
        // winner's group ∩ shard (excluding the winner itself).
        pairs.clear();
        self.runner_up.clear();
        for i in 0..n_local {
            let mut best = MINLOC_NEUTRAL;
            for gp in &self.group_pairs {
                let cand = gp[i];
                if cand.0 < best.0 {
                    best = cand;
                }
            }
            debug_assert!(best.0.is_finite(), "no group produced a winner");
            pairs.push(best);
            let bg = self.st.group_of(best.1 as usize);
            let mut ru = f64::INFINITY;
            if let Some(plan) = plan {
                let range = intersect(&self.st.group_ranges()[bg], &self.my_centroids);
                if !range.is_empty() {
                    let sample = data.row(my_samples.start + i);
                    let mut ru_key: Option<S> = None;
                    let mut probes = 0u64;
                    for j in range {
                        if j as u64 == best.1 {
                            continue;
                        }
                        let key = plan.score_pair(sample, shard, j - self.my_centroids.start);
                        probes += 1;
                        ru_key = match ru_key {
                            None => Some(key),
                            Some(b) if key < b => Some(key),
                            Some(b) => Some(b),
                        };
                    }
                    self.st.stats.distance_evals += probes;
                    if let Some(key) = ru_key {
                        ru = dist_from_score_key(plan, sample, key);
                    }
                }
            }
            self.runner_up.push(ru);
        }
        group_comm.try_allreduce_with(&mut self.runner_up, min_slices)?;

        let mut group_dists = vec![f64::INFINITY; t];
        for (i, &(key, j)) in pairs.iter().enumerate().take(n_local) {
            for (g, gd) in group_dists.iter_mut().enumerate() {
                // Merged pair values are squared distances (the batch scan
                // adds ‖x‖² back); empty merges stay at +∞.
                *gd = self.group_pairs[g][i].0.max(0.0).sqrt();
            }
            self.st.seed_row(
                i,
                (j as u32, S::from_f64(key)),
                &group_dists,
                self.runner_up[i],
            );
        }
        self.st.mark_seeded();
        Ok(())
    }

    /// Filtered pass: emit cached winners for pruned rows, rescan the
    /// gather-compacted survivors over the full shard and merge only those.
    pub(crate) fn filter_assign(
        &mut self,
        plan: Option<&AssignPlan<S>>,
        data: &Matrix<S>,
        my_samples: Range<usize>,
        shard: &Matrix<S>,
        group_comm: &mut Comm,
        pairs: &mut Vec<(f64, u64)>,
    ) -> Result<(), CommError> {
        let n_local = my_samples.len();
        let shard_k = self.my_centroids.len();
        self.st.stats.lloyd_equivalent += (n_local as u64) * (shard_k as u64);
        pairs.clear();
        self.survivors.clear();
        self.panel.clear();
        for i in 0..n_local {
            match self.st.filter_row(i) {
                // Cached key: stale on purpose — only the label is consumed
                // downstream (the objective comes from the final rescan).
                Some((j, key)) => pairs.push((key.to_f64(), j as u64)),
                None => {
                    self.survivors.push(i as u32);
                    self.panel.extend_from_slice(data.row(my_samples.start + i));
                    pairs.push(MINLOC_NEUTRAL);
                }
            }
        }
        // Every member filters identically, so `m` (and hence the compact
        // collective schedule) agrees across the group.
        let m = self.survivors.len();
        if m > 0 {
            self.compact.clear();
            match plan {
                Some(plan) if shard_k > 0 => {
                    let panel = Matrix::from_vec(m, self.d, std::mem::take(&mut self.panel));
                    self.scan_out.clear();
                    plan.assign_batch_into(
                        &panel,
                        0..m,
                        shard,
                        0..shard_k,
                        self.my_centroids.start,
                        &mut self.scan_out,
                    );
                    self.compact.extend(
                        self.scan_out
                            .iter()
                            .map(|&(j, key)| (key.to_f64(), j as u64)),
                    );
                    self.panel = panel.into_vec();
                    self.st.stats.distance_evals += (m as u64) * (shard_k as u64);
                }
                _ => self.compact.resize(m, MINLOC_NEUTRAL),
            }
            merge_min_loc::<S>(group_comm, &mut self.compact)?;
            for (s, &iu) in self.survivors.iter().enumerate() {
                let i = iu as usize;
                let (key, j) = self.compact[s];
                self.st
                    .absorb_row(i, (j as u32, S::from_f64(key)), key.max(0.0).sqrt());
                pairs[i] = (key, j);
            }
        }
        self.st.finish_filter(m);
        Ok(())
    }

    /// Snapshot this member's shard before the Update (only once seeded —
    /// dormant iterations never loosen, and the skip keeps the clone off
    /// the warm-up path).
    pub(crate) fn pre_update(&mut self, shard: &Matrix<S>) {
        if self.st.seeded() {
            self.snapshot = Some(shard.clone());
        }
    }

    /// After the merged Update: allreduce the per-centroid drifts across
    /// the group (disjoint shards — the zero-padded sum is exact), loosen,
    /// and feed the engagement lifecycle. The drift collective runs exactly
    /// when `pre_update` snapshotted, which is a group-identical decision.
    pub(crate) fn post_update(
        &mut self,
        shard: &Matrix<S>,
        group_comm: &mut Comm,
        moved_fraction: f64,
    ) -> Result<(), CommError> {
        if let Some(snap) = self.snapshot.take() {
            centroid_drifts(&snap, shard, &mut self.shard_drifts);
            self.drifts.clear();
            self.drifts.resize(self.k, 0.0);
            self.drifts[self.my_centroids.clone()].copy_from_slice(&self.shard_drifts);
            group_comm.try_allreduce_with(&mut self.drifts, |acc, x| {
                for (a, b) in acc.iter_mut().zip(x) {
                    *a += *b;
                }
            })?;
            self.st.loosen(&self.drifts);
        }
        self.st.note_moved_fraction(moved_fraction);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_clamps_to_empty() {
        assert_eq!(intersect(&(0..4), &(2..8)), 2..4);
        assert_eq!(intersect(&(0..4), &(6..8)).len(), 0);
        assert_eq!(intersect(&(5..9), &(0..3)).len(), 0);
        assert_eq!(intersect(&(3..3), &(0..9)).len(), 0);
    }

    #[test]
    fn min_slices_is_elementwise_min() {
        let mut a = [1.0, f64::INFINITY, 3.0];
        min_slices(&mut a, &[2.0, 5.0, 1.0]);
        assert_eq!(a, [1.0, 5.0, 1.0]);
    }
}
