//! Level 3 — dataflow + centroid + dimension (nkd) partition: Algorithm 3,
//! the paper's contribution.
//!
//! SPMD units are virtual *core groups*. Groups of `G = group_units` CGs
//! share the centroid set (member `m` owns `split_range(k, G, m)`); inside
//! every CG, each sample and each centroid is sliced over `cpes_per_cg`
//! virtual CPEs by dimension (`split_range(d, cpes, c)`). A distance is
//! computed as the sum of per-CPE partial distances over disjoint dimension
//! slices — exact, because squared Euclidean distance is additive over
//! dimensions (the identity `kmeans-core` property-tests). The partial sums
//! are folded in fixed CPE order, standing in for the register-bus mesh
//! reduction of the real machine.
//!
//! The decisive property (C1''): no unit ever materialises more than
//! `⌈k/G⌉ · d` centroid elements, and no CPE slice exceeds `⌈k/G⌉ · ⌈d/64⌉`
//! — so `k·d` scales with the machine, not with any single memory.

use crate::bounded::RankBounds;
use crate::executor::{
    assemble, collect_ranks, fault_setup, finalize_faults, HierConfig, HierError, HierResult,
    IterTiming, PhaseTracer, RankOutput,
};
use crate::level1::{divide_rows, or_words_sum_last, sum_slices};
use crate::level2::{merge_min_loc, MINLOC_NEUTRAL};
use crate::partition::split_range;
use kmeans_core::{
    AssignKernel, AssignPlanner, BoundsIterKind, BoundsMode, GemmBlocking, Matrix, Scalar,
    TouchedSet, UpdateMode, DELTA_FALLBACK_FRACTION,
};
use msg::{CommError, World};
use std::ops::Range;
use sw_arch::MachineParams;

/// The per-CPE dimension slices of one CG, computed once per run — the
/// inner loops used to re-derive `split_range` per sample × centroid.
pub(crate) fn cpe_slices(d: usize, cpes: usize) -> Vec<Range<usize>> {
    (0..cpes).map(|cpe| split_range(d, cpes, cpe)).collect()
}

/// Distance of `sample` to `centroid` computed the Level-3 way: per-CPE
/// partials over precomputed dimension slices, folded in CPE order. The
/// production Assign path now lives in [`kmeans_core::assign`] (the
/// `Scalar` kernel with slices reproduces exactly this scan); this is kept
/// as the test oracle for the slicing identity.
#[cfg(test)]
fn sliced_distance<S: Scalar>(sample: &[S], centroid: &[S], slices: &[Range<usize>]) -> S {
    let mut acc = S::ZERO;
    for slice in slices {
        acc += kmeans_core::distance::sq_euclidean_unrolled(
            &sample[slice.clone()],
            &centroid[slice.clone()],
        );
    }
    acc
}

pub(crate) fn run<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    cfg: &HierConfig,
) -> Result<HierResult<S>, HierError> {
    let g = cfg.group_units;
    if !cfg.units.is_multiple_of(g) {
        return Err(HierError::InvalidConfig(format!(
            "units {} must be a multiple of group_units {g}",
            cfg.units
        )));
    }
    let n = data.rows();
    let d = data.cols();
    let k = init.rows();
    let n_groups = cfg.units / g;
    let cpes = cfg.cpes_per_cg;
    let ldm_bytes = MachineParams::taihulight().ldm_bytes;
    // The CPE slice boundaries depend only on (d, cpes): compute them once
    // per run instead of per sample × centroid inside the inner loops.
    let slices = cpe_slices(d, cpes);
    // Bounds resolve once, identically for every rank (pure function of
    // the geometry), so the per-group collective schedules stay aligned.
    let bounds_mode = cfg.resolved_bounds(n, k, d);
    // Fuse only when the CG owns every centroid (g == 1): the winner is
    // known at score time and each virtual CPE folds its dimension slice of
    // the sample into the shard sums while it is resident. Bounded runs
    // filter rows out of the sweep, so they always accumulate post-merge
    // (bitwise-identical by the update-path invariant).
    let fuse = cfg.update == UpdateMode::Fused && g == 1 && bounds_mode == BoundsMode::None;
    let ring_report = cfg.merge.use_ring(
        split_range(k, g, 0).len() * d * S::BYTES,
        n_groups,
        cfg.update,
    );
    let (plan, timeout) = fault_setup(cfg);
    let degrade = plan.clone();

    let (outs, costs, fstats) = World::run_with_faults(cfg.units, timeout, plan, |comm| {
        // Attach tracers before splitting so the group/shard communicators
        // inherit the comm timeline of this world rank.
        let pt = PhaseTracer::attach(cfg, comm);
        let rank = comm.rank();
        let group = rank / g;
        let member = rank % g;
        let mut group_comm = comm.split(group as u64, member as u64);
        let mut shard_comm = comm.split(member as u64, group as u64);

        let my_centroids = split_range(k, g, member);
        let my_samples = split_range(n, n_groups, group);
        let shard_k = my_centroids.len();
        // Line 2 of Algorithm 3: this CG loads its centroid shard, sliced
        // over its CPEs (the slicing is index arithmetic over the same
        // storage).
        let mut shard = init.slice_rows(my_centroids.clone());

        let mut iterations = 0usize;
        let mut converged = false;
        let mut sums = vec![S::ZERO; shard_k * d];
        let mut counts = vec![0u64; shard_k];
        let mut pairs: Vec<(f64, u64)> = Vec::with_capacity(my_samples.len());
        let mut assigned: Vec<(u32, S)> = Vec::with_capacity(my_samples.len());
        let mut prev_labels: Vec<u32> = Vec::with_capacity(my_samples.len());
        let mut touched = TouchedSet::new(shard_k);
        let mut slot_of: Vec<u32> = vec![u32::MAX; shard_k];
        let mut compact_sums: Vec<S> = Vec::new();
        let mut compact_counts: Vec<u64> = Vec::new();
        let ring = shard_comm.size() > 1
            && cfg
                .merge
                .use_ring(shard_k * d * S::BYTES, shard_comm.size(), cfg.update);
        // One slice-aware planner per CG for the whole run: per-slice shard
        // norms (and gemm panels) persist across iterations, refreshed via
        // snapshot diff for just the rows the Update moved.
        let mut planner =
            AssignPlanner::new(cfg.kernel, ldm_bytes).with_slices(Some(slices.clone()));
        if cfg.kernel == AssignKernel::Gemm && shard_k > 0 {
            // Cost-model block shape for this CG's shard; the dimension
            // slicing changes accumulation order, not the blocking math.
            let (mc, nc) = perf_model::gemm::choose_blocking(
                &MachineParams::taihulight(),
                &perf_model::Calibration::default(),
                shard_k,
                d,
                S::BYTES,
            );
            planner = planner.with_blocking(GemmBlocking::new(mc, nc));
        }
        let mut trace: Vec<IterTiming> = Vec::new();
        // Bounded assign: per-CG bound state over the group's shared
        // stripe, fed exclusively from merged quantities so every CG of
        // the group filters identically (see [`crate::bounded`]). The
        // plan's dimension slices apply to the bounded sub-scans exactly
        // as they do to the full sweep.
        let mut rb: Option<RankBounds<S>> = match bounds_mode {
            BoundsMode::None => None,
            mode => Some(RankBounds::new(
                mode,
                my_samples.len(),
                k,
                d,
                my_centroids.clone(),
            )),
        };

        for iter in 0..cfg.max_iters {
            let iter_start = std::time::Instant::now();
            let mut it = IterTiming::default();
            // Shared-seed degradation consensus (see level1): degraded
            // iterations run tree merges and the delta dense fallback.
            let degraded = degrade.as_ref().is_some_and(|p| p.degrade_iteration(iter));
            if degraded {
                pt.mark("degraded_iteration", iter);
                // Conservative: fallback merge paths ran, so invalidate
                // the bounds and reseed at the next engagement.
                if let Some(rb) = &mut rb {
                    rb.reset();
                }
            }
            // ---- Assign: per-CPE partial dot products / distances over
            // the precomputed dimension slices (lines 8–10), via the
            // configured kernel — exact under slicing because dots are
            // additive over disjoint slices. ----
            let t0 = std::time::Instant::now();
            pairs.clear();
            let bkind = rb.as_ref().map_or(BoundsIterKind::Dormant, |r| r.kind());
            if bkind == BoundsIterKind::Dormant {
                if shard_k == 0 {
                    pairs.resize(my_samples.len(), MINLOC_NEUTRAL);
                } else {
                    let plan = planner.plan(&shard);
                    if cfg.kernel == AssignKernel::Gemm {
                        pt.phase("gemm_plan", t0, iter);
                    }
                    assigned.clear();
                    if fuse {
                        // The fold respects the plan's dimension slices, so the
                        // accumulation models (and bitwise matches) the per-CPE
                        // sliced sweep below.
                        sums.iter_mut().for_each(|v| *v = S::ZERO);
                        counts.iter_mut().for_each(|v| *v = 0);
                        plan.assign_accumulate_into(
                            data,
                            my_samples.clone(),
                            &shard,
                            0..shard_k,
                            my_centroids.start,
                            &mut assigned,
                            &mut sums,
                            &mut counts,
                        );
                    } else {
                        plan.assign_batch_into(
                            data,
                            my_samples.clone(),
                            &shard,
                            0..shard_k,
                            my_centroids.start,
                            &mut assigned,
                        );
                    }
                    pairs.extend(assigned.iter().map(|&(j, key)| (key.to_f64(), j as u64)));
                }
                if let Some(rb) = &mut rb {
                    rb.note_dormant(my_samples.len(), shard_k);
                }
                it.assign += pt.phase("assign", t0, iter);
                // Line 11: min-loc merge across the G CGs of the group.
                let t1 = std::time::Instant::now();
                merge_min_loc::<S>(&mut group_comm, &mut pairs)?;
                it.merge += pt.phase("merge", t1, iter);
            } else {
                // Bounded seed/filter pass: the group merges run inside the
                // helper, so the whole pass lands in the assign phase (with
                // a nested bounds_filter span on filtered iterations).
                let rbm = rb.as_mut().expect("bounded kind without state");
                let plan = (shard_k > 0).then(|| planner.plan(&shard));
                if cfg.kernel == AssignKernel::Gemm && shard_k > 0 {
                    pt.phase("gemm_plan", t0, iter);
                }
                if bkind == BoundsIterKind::Seed {
                    rbm.seed_assign(
                        plan.as_ref(),
                        data,
                        my_samples.clone(),
                        &shard,
                        &mut group_comm,
                        &mut pairs,
                    )?;
                } else {
                    let tb = std::time::Instant::now();
                    rbm.filter_assign(
                        plan.as_ref(),
                        data,
                        my_samples.clone(),
                        &shard,
                        &mut group_comm,
                        &mut pairs,
                    )?;
                    pt.phase("bounds_filter", tb, iter);
                }
                it.assign += pt.phase("assign", t0, iter);
            }

            // Local reassignment bookkeeping — no collectives.
            let local_moved = if iter == 0 {
                pairs.len() as u64
            } else {
                pairs
                    .iter()
                    .zip(&prev_labels)
                    .filter(|((_, j), prev)| *j != **prev as u64)
                    .count() as u64
            };
            it.moved_fraction = if pairs.is_empty() {
                0.0
            } else {
                local_moved as f64 / pairs.len() as f64
            };
            // Pre-Update shard snapshot for the bound drift (no-op until
            // seeded).
            if let Some(rb) = &mut rb {
                rb.pre_update(&shard);
            }

            let mut worst_shift_sq = 0.0f64;
            match cfg.update {
                UpdateMode::TwoPass | UpdateMode::Fused => {
                    // ---- Accumulate winners in my shard (lines 12–13),
                    // with the accumulator itself dimension-sliced across
                    // virtual CPEs (disjoint writes, identical values); the
                    // fused g == 1 path already folded them in-kernel. ----
                    if !fuse {
                        let t2 = std::time::Instant::now();
                        sums.iter_mut().for_each(|v| *v = S::ZERO);
                        counts.iter_mut().for_each(|v| *v = 0);
                        for (offset, i) in my_samples.clone().enumerate() {
                            let j = pairs[offset].1 as usize;
                            if my_centroids.contains(&j) {
                                let j_local = j - my_centroids.start;
                                counts[j_local] += 1;
                                let row = data.row(i);
                                for slice in &slices {
                                    let acc = &mut sums
                                        [j_local * d + slice.start..j_local * d + slice.end];
                                    for (a, x) in acc.iter_mut().zip(&row[slice.clone()]) {
                                        *a += *x;
                                    }
                                }
                            }
                        }
                        // The dimension-sliced accumulation stands in for
                        // the register-bus dimension exchange, so it is
                        // traced as its own phase rather than folded into
                        // Assign.
                        it.exchange += pt.phase("exchange", t2, iter);
                    }
                    // ---- Update: AllReduce shards across groups (14–16). ----
                    let t3 = std::time::Instant::now();
                    if ring && !degraded {
                        shard_comm.try_allreduce_ring(&mut sums, sum_slices::<S>)?;
                    } else {
                        shard_comm.try_allreduce_with(&mut sums, sum_slices::<S>)?;
                    }
                    shard_comm.try_allreduce_sum_u64(&mut counts)?;
                    worst_shift_sq = divide_rows(&mut shard, &sums, &counts, d, 0..shard_k);
                    it.update += pt.phase("update", t3, iter);
                }
                UpdateMode::Delta => {
                    // ---- Touched consensus across groups (see level2). ----
                    let global_moved;
                    if iter == 0 {
                        global_moved = n as u64;
                    } else {
                        let t1 = std::time::Instant::now();
                        touched.clear();
                        for (offset, &(_, j)) in pairs.iter().enumerate() {
                            let old = prev_labels[offset] as usize;
                            let new = j as usize;
                            if old != new {
                                if my_centroids.contains(&old) {
                                    touched.mark(old - my_centroids.start);
                                }
                                if my_centroids.contains(&new) {
                                    touched.mark(new - my_centroids.start);
                                }
                            }
                        }
                        let mut consensus: Vec<u64> = touched.words().to_vec();
                        consensus.push(local_moved);
                        shard_comm.try_allreduce_with(&mut consensus, or_words_sum_last)?;
                        global_moved = *consensus.last().unwrap();
                        touched.set_words(&consensus[..consensus.len() - 1]);
                        it.merge += pt.phase("merge", t1, iter);
                    }

                    if iter == 0
                        || degraded
                        || global_moved as f64 / n as f64 >= DELTA_FALLBACK_FRACTION
                    {
                        // Dense fallback: the sliced two-pass accumulate.
                        let t2 = std::time::Instant::now();
                        sums.iter_mut().for_each(|v| *v = S::ZERO);
                        counts.iter_mut().for_each(|v| *v = 0);
                        for (offset, i) in my_samples.clone().enumerate() {
                            let j = pairs[offset].1 as usize;
                            if my_centroids.contains(&j) {
                                let j_local = j - my_centroids.start;
                                counts[j_local] += 1;
                                let row = data.row(i);
                                for slice in &slices {
                                    let acc = &mut sums
                                        [j_local * d + slice.start..j_local * d + slice.end];
                                    for (a, x) in acc.iter_mut().zip(&row[slice.clone()]) {
                                        *a += *x;
                                    }
                                }
                            }
                        }
                        it.exchange += pt.phase("exchange", t2, iter);
                        let t3 = std::time::Instant::now();
                        shard_comm.try_allreduce_with(&mut sums, sum_slices::<S>)?;
                        shard_comm.try_allreduce_sum_u64(&mut counts)?;
                        worst_shift_sq = divide_rows(&mut shard, &sums, &counts, d, 0..shard_k);
                        it.update += pt.phase("update", t3, iter);
                    } else if touched.count() > 0 {
                        // Sparse: recompute only the touched shard rows,
                        // still dimension-sliced (the exchange phase), then
                        // merge the compact buffer (the update phase).
                        let t2 = std::time::Instant::now();
                        let touched_rows: Vec<usize> = touched.iter().collect();
                        for (slot, &j_local) in touched_rows.iter().enumerate() {
                            slot_of[j_local] = slot as u32;
                        }
                        compact_sums.clear();
                        compact_sums.resize(touched_rows.len() * d, S::ZERO);
                        compact_counts.clear();
                        compact_counts.resize(touched_rows.len(), 0);
                        for (offset, i) in my_samples.clone().enumerate() {
                            let j = pairs[offset].1 as usize;
                            if my_centroids.contains(&j) {
                                let slot = slot_of[j - my_centroids.start];
                                if slot != u32::MAX {
                                    let slot = slot as usize;
                                    compact_counts[slot] += 1;
                                    let row = data.row(i);
                                    for slice in &slices {
                                        let acc = &mut compact_sums
                                            [slot * d + slice.start..slot * d + slice.end];
                                        for (a, x) in acc.iter_mut().zip(&row[slice.clone()]) {
                                            *a += *x;
                                        }
                                    }
                                }
                            }
                        }
                        it.exchange += pt.phase("exchange", t2, iter);
                        let t3 = std::time::Instant::now();
                        shard_comm.try_allreduce_with(&mut compact_sums, sum_slices::<S>)?;
                        shard_comm.try_allreduce_sum_u64(&mut compact_counts)?;
                        for (slot, &j_local) in touched_rows.iter().enumerate() {
                            if compact_counts[slot] == 0 {
                                continue;
                            }
                            let inv = S::ONE / S::from_usize(compact_counts[slot] as usize);
                            let mut shift_sq = 0.0f64;
                            for u in 0..d {
                                let next = compact_sums[slot * d + u] * inv;
                                let diff = next.to_f64() - shard.get(j_local, u).to_f64();
                                shift_sq += diff * diff;
                                shard.set(j_local, u, next);
                            }
                            worst_shift_sq = worst_shift_sq.max(shift_sq);
                        }
                        for &j_local in &touched_rows {
                            slot_of[j_local] = u32::MAX;
                        }
                        it.update += pt.phase("update", t3, iter);
                    }
                }
            }

            // ---- Bounds bookkeeping: group-summed per-centroid drifts
            // loosen every CG identically; the merged moved fraction feeds
            // the engagement lifecycle.
            if let Some(rb) = &mut rb {
                rb.post_update(&shard, &mut group_comm, it.moved_fraction)?;
            }

            let t4 = std::time::Instant::now();
            let mut shift = vec![worst_shift_sq];
            comm.try_allreduce_with(&mut shift, |acc, x| {
                acc[0] = acc[0].max(x[0]);
            })?;
            it.update += pt.phase("update", t4, iter);
            prev_labels.clear();
            prev_labels.extend(pairs.iter().map(|&(_, j)| j as u32));
            it.wall = pt.phase("iteration", iter_start, iter);
            trace.push(it);
            iterations += 1;
            if shift[0].sqrt() <= cfg.tol {
                converged = true;
                break;
            }
        }

        let contribution = (group == 0).then(|| (my_centroids.start, shard.clone().into_vec()));
        let gathered = comm.try_gather(0, contribution)?;
        let full = gathered.map(|parts| {
            let mut flat = vec![S::ZERO; k * d];
            for (start, rows) in parts.into_iter().flatten() {
                flat[start * d..start * d + rows.len()].copy_from_slice(&rows);
            }
            Matrix::from_vec(k, d, flat)
        });
        let bstats = rb.map(|r| r.into_stats()).unwrap_or_default();
        Ok::<RankOutput<S>, CommError>((full, iterations, converged, trace, bstats))
    });

    let outs = collect_ranks(outs)?;
    let mut result = assemble(data, outs, costs, cfg, ring_report);
    finalize_faults(&mut result, cfg, &fstats);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::{
        init_centroids, sq_euclidean, AssignKernel, InitMethod, KMeansConfig, Lloyd,
    };
    use perf_model::Level;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-5.0..5.0)).collect();
        Matrix::from_vec(n, d, flat)
    }

    fn cfg(units: usize, g: usize, cpes: usize, max_iters: usize) -> HierConfig {
        HierConfig {
            level: Level::L3,
            units,
            group_units: g,
            cpes_per_cg: cpes,
            max_iters,
            tol: 0.0,
            kernel: AssignKernel::Scalar,
            ..HierConfig::new(Level::L3)
        }
    }

    #[test]
    fn sliced_distance_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for d in [1usize, 7, 63, 64, 65, 200] {
            let a: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let full = sq_euclidean(&a, &b);
            for cpes in [1usize, 2, 8, 64, 100] {
                let sliced = sliced_distance(&a, &b, &cpe_slices(d, cpes));
                assert!(
                    (full - sliced).abs() < 1e-12 * (1.0 + full),
                    "d={d} cpes={cpes}: {full} vs {sliced}"
                );
            }
        }
    }

    #[test]
    fn matches_serial_lloyd() {
        let data = random_data(120, 17, 61);
        let init = init_centroids(&data, 6, InitMethod::Forgy, 19);
        let hier = run(&data, init.clone(), &cfg(8, 4, 8, 5)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(6).with_max_iters(5).with_tol(0.0),
        )
        .unwrap();
        assert_eq!(hier.iterations, serial.iterations);
        assert!(
            hier.centroids.max_abs_diff(&serial.centroids) < 1e-9,
            "diff {}",
            hier.centroids.max_abs_diff(&serial.centroids)
        );
        assert_eq!(hier.labels, serial.labels);
    }

    #[test]
    fn all_three_partitions_active_at_once() {
        // n=90 over 3 groups, k=10 over 2 CGs per group, d=23 over 5 CPEs:
        // none of the partition sizes divide evenly.
        let data = random_data(90, 23, 71);
        let init = init_centroids(&data, 10, InitMethod::Forgy, 23);
        let hier = run(&data, init.clone(), &cfg(6, 2, 5, 4)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(10).with_max_iters(4).with_tol(0.0),
        )
        .unwrap();
        assert!(hier.centroids.max_abs_diff(&serial.centroids) < 1e-9);
        assert_eq!(hier.labels, serial.labels);
    }

    #[test]
    fn group_and_cpe_counts_do_not_change_result() {
        let data = random_data(60, 16, 31);
        let init = init_centroids(&data, 5, InitMethod::Forgy, 7);
        let reference = run(&data, init.clone(), &cfg(2, 1, 1, 4)).unwrap();
        for (units, g, cpes) in [(4, 2, 4), (6, 3, 16), (8, 4, 64), (4, 4, 2)] {
            let r = run(&data, init.clone(), &cfg(units, g, cpes, 4)).unwrap();
            assert!(
                r.centroids.max_abs_diff(&reference.centroids) < 1e-9,
                "units={units} g={g} cpes={cpes}: {}",
                r.centroids.max_abs_diff(&reference.centroids)
            );
        }
    }

    #[test]
    fn more_cpes_than_dimensions() {
        // d=3 sliced over 64 virtual CPEs: 61 slices are empty.
        let data = random_data(40, 3, 13);
        let init = init_centroids(&data, 4, InitMethod::Forgy, 3);
        let hier = run(&data, init.clone(), &cfg(4, 2, 64, 3)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(4).with_max_iters(3).with_tol(0.0),
        )
        .unwrap();
        assert!(hier.centroids.max_abs_diff(&serial.centroids) < 1e-9);
        assert_eq!(hier.labels, serial.labels);
    }

    #[test]
    fn expanded_and_tiled_kernels_match_scalar() {
        // Every partition axis active (ragged n/k/d splits) under all
        // three kernels — the slice-aware expansion must agree with the
        // sliced scalar scan.
        let data = random_data(90, 23, 71);
        let init = init_centroids(&data, 10, InitMethod::Forgy, 23);
        let reference = run(&data, init.clone(), &cfg(6, 2, 5, 4)).unwrap();
        for kernel in [
            AssignKernel::Expanded,
            AssignKernel::Tiled,
            AssignKernel::Gemm,
        ] {
            let mut c = cfg(6, 2, 5, 4);
            c.kernel = kernel;
            let r = run(&data, init.clone(), &c).unwrap();
            assert_eq!(r.labels, reference.labels, "{kernel}");
            assert!(
                r.centroids.max_abs_diff(&reference.centroids) < 1e-9,
                "{kernel}"
            );
        }
    }

    #[test]
    fn update_modes_agree_bitwise_with_twopass() {
        // Ragged n/k/d splits with all three partition axes active.
        let data = random_data(90, 23, 71);
        let init = init_centroids(&data, 10, InitMethod::Forgy, 23);
        for (units, g, cpes) in [(4, 1, 5), (6, 2, 5), (8, 4, 3)] {
            let mut base_cfg = cfg(units, g, cpes, 10);
            base_cfg.update = UpdateMode::TwoPass;
            let base = run(&data, init.clone(), &base_cfg).unwrap();
            for update in [UpdateMode::Fused, UpdateMode::Delta] {
                let mut c = cfg(units, g, cpes, 10);
                c.update = update;
                let r = run(&data, init.clone(), &c).unwrap();
                assert_eq!(r.iterations, base.iterations, "{units}/{g}/{cpes} {update}");
                assert_eq!(r.labels, base.labels, "{units}/{g}/{cpes} {update}");
                let bits = |m: &Matrix<f64>| -> Vec<u64> {
                    m.as_slice().iter().map(|v| v.to_bits()).collect()
                };
                assert_eq!(
                    bits(&r.centroids),
                    bits(&base.centroids),
                    "{units}/{g}/{cpes} {update} centroids diverged bitwise"
                );
            }
        }
    }

    #[test]
    fn bounded_runs_match_unbounded_bitwise() {
        use kmeans_core::BoundsMode;
        // Ragged n/k/d splits with all three partition axes active.
        let data = random_data(90, 23, 71);
        let init = init_centroids(&data, 10, InitMethod::Forgy, 23);
        for (units, g, cpes) in [(4, 1, 5), (6, 2, 5), (8, 4, 3)] {
            for kernel in [AssignKernel::Scalar, AssignKernel::Gemm] {
                for update in [UpdateMode::TwoPass, UpdateMode::Fused, UpdateMode::Delta] {
                    let mk = |bounds| {
                        let mut c = cfg(units, g, cpes, 25);
                        c.kernel = kernel;
                        c.update = update;
                        c.bounds = bounds;
                        c
                    };
                    let base = run(&data, init.clone(), &mk(BoundsMode::None)).unwrap();
                    for bounds in [BoundsMode::Hamerly, BoundsMode::Yinyang] {
                        let tag = format!("{units}/{g}/{cpes} {kernel} {update} {bounds}");
                        let r = run(&data, init.clone(), &mk(bounds)).unwrap();
                        assert_eq!(r.iterations, base.iterations, "{tag}");
                        assert_eq!(r.labels, base.labels, "{tag}");
                        let bits = |m: &Matrix<f64>| -> Vec<u64> {
                            m.as_slice().iter().map(|v| v.to_bits()).collect()
                        };
                        assert_eq!(
                            bits(&r.centroids),
                            bits(&base.centroids),
                            "{tag}: centroids diverged bitwise"
                        );
                        assert_eq!(r.objective.to_bits(), base.objective.to_bits(), "{tag}");
                        assert!(r.bounds.seed_scans >= 1, "{tag}: bounds never engaged");
                    }
                }
            }
        }
    }

    #[test]
    fn converges_on_separated_blobs() {
        let mut rows = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for i in 0..90 {
            let centre = (i % 3) as f64 * 50.0;
            rows.extend((0..12).map(|_| centre + rng.gen_range(-1.0..1.0)));
        }
        let data = Matrix::from_vec(90, 12, rows);
        let init = init_centroids(&data, 3, InitMethod::KMeansPlusPlus, 1);
        let mut c = cfg(6, 3, 4, 50);
        c.tol = 1e-9;
        let r = run(&data, init, &c).unwrap();
        assert!(r.converged);
        assert!(r.objective < 8.0, "objective {}", r.objective);
        // Pure clusters: samples of the same blob share a label.
        for i in 0..90 {
            assert_eq!(r.labels[i], r.labels[i % 3]);
        }
    }

    #[test]
    fn level3_communicates_less_per_unit_than_replicating_everything() {
        // The point of the design: with k=8 over 4 CGs, each CG's update
        // traffic covers 2 centroids, not 8.
        let data = random_data(64, 32, 3);
        let init = init_centroids(&data, 8, InitMethod::Forgy, 11);
        let l3 = run(&data, init.clone(), &cfg(8, 4, 8, 3)).unwrap();
        let l1_cfg = HierConfig {
            level: Level::L1,
            units: 8,
            group_units: 1,
            cpes_per_cg: 64,
            max_iters: 3,
            tol: 0.0,
            kernel: AssignKernel::Scalar,
            ..HierConfig::new(Level::L1)
        };
        let l1 = crate::level1::run(&data, init, &l1_cfg).unwrap();
        assert!(
            l3.comm_bytes < l1.comm_bytes,
            "L3 {} bytes vs L1 {} bytes",
            l3.comm_bytes,
            l1.comm_bytes
        );
    }
}
