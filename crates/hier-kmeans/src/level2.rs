//! Level 2 — dataflow + centroid (nk) partition: Algorithm 2 of the paper.
//!
//! Virtual CPEs form groups of `g = group_units`. Within a group, member
//! `m` owns a contiguous shard of the centroid set (`split_range(k, g, m)`);
//! the group jointly assigns a contiguous stripe of samples. The Assign
//! step becomes: every member computes a *partial* argmin over its shard
//! for every sample of the stripe, then the group merges the partials with
//! one min-loc AllReduce (ties to the lower centroid index, exactly the
//! serial tie-break). Each member accumulates winners that fall in its own
//! shard; the Update step reduces each shard across the *other* groups (the
//! same-member communicator) — never materialising all of `k·d` on one
//! unit.

use crate::bounded::RankBounds;
use crate::executor::{
    assemble, collect_ranks, fault_setup, finalize_faults, HierConfig, HierError, HierResult,
    IterTiming, PhaseTracer, RankOutput,
};
use crate::level1::{divide_rows, or_words_sum_last, sum_slices};
use crate::partition::split_range;
use kmeans_core::{
    AssignKernel, AssignPlanner, BoundsIterKind, BoundsMode, GemmBlocking, Matrix, Scalar,
    TouchedSet, UpdateMode, DELTA_FALLBACK_FRACTION,
};
use msg::{CommError, World};
use sw_arch::MachineParams;

/// Neutral element of the min-loc merge: never wins against a real
/// distance.
pub(crate) const MINLOC_NEUTRAL: (f64, u64) = (f64::INFINITY, u64::MAX);

/// The per-sample argmin merge. For `f32` problems the `(distance, index)`
/// pair packs losslessly into one `u64` (order-preserving key bits ‖ index),
/// halving the min-loc AllReduce payload; `f64` keeps the unpacked pairs.
/// Both preserve the lowest-index tie-break. The neutral pair maps to the
/// packed neutral (`u64::MAX as u32 == u32::MAX`), so empty shards need no
/// special casing.
pub(crate) fn merge_min_loc<S: Scalar>(
    comm: &mut msg::Comm,
    pairs: &mut Vec<(f64, u64)>,
) -> Result<(), CommError> {
    if S::BYTES == 4 {
        let mut packed: Vec<u64> = pairs
            .iter()
            .map(|&(key, idx)| msg::pack_min_loc(key as f32, idx as u32))
            .collect();
        comm.try_allreduce_min_loc_packed(&mut packed)?;
        for (pair, &p) in pairs.iter_mut().zip(&packed) {
            let (key, idx) = msg::unpack_min_loc(p);
            *pair = (key as f64, idx as u64);
        }
    } else {
        comm.try_allreduce_min_loc(pairs)?;
    }
    Ok(())
}

pub(crate) fn run<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    cfg: &HierConfig,
) -> Result<HierResult<S>, HierError> {
    let g = cfg.group_units;
    if !cfg.units.is_multiple_of(g) {
        return Err(HierError::InvalidConfig(format!(
            "units {} must be a multiple of group_units {g}",
            cfg.units
        )));
    }
    let n = data.rows();
    let d = data.cols();
    let k = init.rows();
    let n_groups = cfg.units / g;
    let ldm_bytes = MachineParams::taihulight().ldm_bytes;
    // Bounds resolve once, identically for every rank (pure function of
    // the geometry), so the per-group collective schedules stay aligned.
    let bounds_mode = cfg.resolved_bounds(n, k, d);
    // The fused path folds winners during scoring, which needs the winner
    // known at score time — true exactly when the member owns every
    // centroid (g == 1; otherwise the winner emerges from the min-loc
    // merge and fused keeps the post-merge sweep). Bounded runs filter
    // rows out of the sweep, so they always accumulate post-merge
    // (bitwise-identical by the update-path invariant).
    let fuse = cfg.update == UpdateMode::Fused && g == 1 && bounds_mode == BoundsMode::None;
    // Report the ring decision of the widest shard (member 0); each
    // shard communicator resolves its own shard size identically on all
    // of its members, so resolution is deadlock-safe.
    let ring_report = cfg.merge.use_ring(
        split_range(k, g, 0).len() * d * S::BYTES,
        n_groups,
        cfg.update,
    );
    let (plan, timeout) = fault_setup(cfg);
    let degrade = plan.clone();

    let (outs, costs, fstats) = World::run_with_faults(cfg.units, timeout, plan, |comm| {
        // Attach tracers before splitting so the group/shard communicators
        // inherit the comm timeline of this world rank.
        let pt = PhaseTracer::attach(cfg, comm);
        let rank = comm.rank();
        let group = rank / g;
        let member = rank % g;
        let mut group_comm = comm.split(group as u64, member as u64);
        let mut shard_comm = comm.split(member as u64, group as u64);

        let my_centroids = split_range(k, g, member);
        let my_samples = split_range(n, n_groups, group);
        let shard_k = my_centroids.len();
        // Line 2 of Algorithm 2: load only this member's centroid shard.
        let mut shard = init.slice_rows(my_centroids.clone());

        let mut iterations = 0usize;
        let mut converged = false;
        let mut sums = vec![S::ZERO; shard_k * d];
        let mut counts = vec![0u64; shard_k];
        let mut pairs: Vec<(f64, u64)> = Vec::with_capacity(my_samples.len());
        let mut assigned: Vec<(u32, S)> = Vec::with_capacity(my_samples.len());
        let mut prev_labels: Vec<u32> = Vec::with_capacity(my_samples.len());
        let mut touched = TouchedSet::new(shard_k);
        let mut slot_of: Vec<u32> = vec![u32::MAX; shard_k];
        let mut compact_sums: Vec<S> = Vec::new();
        let mut compact_counts: Vec<u64> = Vec::new();
        let ring = shard_comm.size() > 1
            && cfg
                .merge
                .use_ring(shard_k * d * S::BYTES, shard_comm.size(), cfg.update);
        // One planner per member for the whole run: shard norms and gemm
        // panels persist across iterations, refreshed via snapshot diff
        // for just the shard rows the Update actually moved.
        let mut planner = AssignPlanner::new(cfg.kernel, ldm_bytes);
        if cfg.kernel == AssignKernel::Gemm && shard_k > 0 {
            // Block shape from the cost model, sized for the shard this
            // member actually scores (the partitioned layout).
            let (mc, nc) = perf_model::gemm::choose_blocking(
                &MachineParams::taihulight(),
                &perf_model::Calibration::default(),
                shard_k,
                d,
                S::BYTES,
            );
            planner = planner.with_blocking(GemmBlocking::new(mc, nc));
        }
        let mut trace: Vec<IterTiming> = Vec::new();
        // Bounded assign: per-member bound state over the group's shared
        // stripe, fed exclusively from merged quantities so every member
        // of the group filters identically (see [`crate::bounded`]).
        let mut rb: Option<RankBounds<S>> = match bounds_mode {
            BoundsMode::None => None,
            mode => Some(RankBounds::new(
                mode,
                my_samples.len(),
                k,
                d,
                my_centroids.clone(),
            )),
        };

        for iter in 0..cfg.max_iters {
            let iter_start = std::time::Instant::now();
            let mut it = IterTiming::default();
            // Shared-seed degradation consensus (see level1): degraded
            // iterations run tree merges and the delta dense fallback.
            let degraded = degrade.as_ref().is_some_and(|p| p.degrade_iteration(iter));
            if degraded {
                pt.mark("degraded_iteration", iter);
                // Conservative: fallback merge paths ran, so invalidate
                // the bounds and reseed at the next engagement.
                if let Some(rb) = &mut rb {
                    rb.reset();
                }
            }
            // ---- Assign: partial argmin over my shard (lines 9–10), via
            // the configured kernel. One plan per iteration = shard norms
            // recomputed once per Update. Under Expanded/Tiled the merge
            // key is `‖x‖² + ‖c‖² − 2·x·c`; `‖x‖²` is computed identically
            // on every member, so keys stay comparable across the group.
            let t0 = std::time::Instant::now();
            pairs.clear();
            let bkind = rb.as_ref().map_or(BoundsIterKind::Dormant, |r| r.kind());
            if bkind == BoundsIterKind::Dormant {
                if shard_k == 0 {
                    pairs.resize(my_samples.len(), MINLOC_NEUTRAL);
                } else {
                    let plan = planner.plan(&shard);
                    if cfg.kernel == AssignKernel::Gemm {
                        pt.phase("gemm_plan", t0, iter);
                    }
                    assigned.clear();
                    if fuse {
                        // g == 1: my partial argmin IS the winner, so fold each
                        // scored sample into the shard sums while it is hot.
                        sums.iter_mut().for_each(|v| *v = S::ZERO);
                        counts.iter_mut().for_each(|v| *v = 0);
                        plan.assign_accumulate_into(
                            data,
                            my_samples.clone(),
                            &shard,
                            0..shard_k,
                            my_centroids.start,
                            &mut assigned,
                            &mut sums,
                            &mut counts,
                        );
                    } else {
                        plan.assign_batch_into(
                            data,
                            my_samples.clone(),
                            &shard,
                            0..shard_k,
                            my_centroids.start,
                            &mut assigned,
                        );
                    }
                    pairs.extend(assigned.iter().map(|&(j, key)| (key.to_f64(), j as u64)));
                }
                if let Some(rb) = &mut rb {
                    rb.note_dormant(my_samples.len(), shard_k);
                }
                it.assign += pt.phase("assign", t0, iter);
                // The min-loc merge produces the global a(i) for every sample
                // of the stripe, on every member.
                let t1 = std::time::Instant::now();
                merge_min_loc::<S>(&mut group_comm, &mut pairs)?;
                it.merge += pt.phase("merge", t1, iter);
            } else {
                // Bounded seed/filter pass: the group merges run inside the
                // helper, so the whole pass lands in the assign phase (with
                // a nested bounds_filter span on filtered iterations).
                let rbm = rb.as_mut().expect("bounded kind without state");
                let plan = (shard_k > 0).then(|| planner.plan(&shard));
                if cfg.kernel == AssignKernel::Gemm && shard_k > 0 {
                    pt.phase("gemm_plan", t0, iter);
                }
                if bkind == BoundsIterKind::Seed {
                    rbm.seed_assign(
                        plan.as_ref(),
                        data,
                        my_samples.clone(),
                        &shard,
                        &mut group_comm,
                        &mut pairs,
                    )?;
                } else {
                    let tb = std::time::Instant::now();
                    rbm.filter_assign(
                        plan.as_ref(),
                        data,
                        my_samples.clone(),
                        &shard,
                        &mut group_comm,
                        &mut pairs,
                    )?;
                    pt.phase("bounds_filter", tb, iter);
                }
                it.assign += pt.phase("assign", t0, iter);
            }

            // Local reassignment bookkeeping against the previous
            // iteration's winners — no collectives.
            let local_moved = if iter == 0 {
                pairs.len() as u64
            } else {
                pairs
                    .iter()
                    .zip(&prev_labels)
                    .filter(|((_, j), prev)| *j != **prev as u64)
                    .count() as u64
            };
            it.moved_fraction = if pairs.is_empty() {
                0.0
            } else {
                local_moved as f64 / pairs.len() as f64
            };
            // Pre-Update shard snapshot for the bound drift (no-op until
            // seeded).
            if let Some(rb) = &mut rb {
                rb.pre_update(&shard);
            }

            let mut worst_shift_sq = 0.0f64;
            match cfg.update {
                UpdateMode::TwoPass | UpdateMode::Fused => {
                    // ---- Accumulate winners that land in my shard (11–12);
                    // the fused g == 1 path already has them. ----
                    if !fuse {
                        let t2 = std::time::Instant::now();
                        sums.iter_mut().for_each(|v| *v = S::ZERO);
                        counts.iter_mut().for_each(|v| *v = 0);
                        for (offset, i) in my_samples.clone().enumerate() {
                            let j = pairs[offset].1 as usize;
                            if my_centroids.contains(&j) {
                                let j_local = j - my_centroids.start;
                                counts[j_local] += 1;
                                let acc = &mut sums[j_local * d..(j_local + 1) * d];
                                for (a, x) in acc.iter_mut().zip(data.row(i)) {
                                    *a += *x;
                                }
                            }
                        }
                        it.assign += pt.phase("assign", t2, iter);
                    }
                    // ---- Update: reduce my shard across groups (13–15). ----
                    let t3 = std::time::Instant::now();
                    if ring && !degraded {
                        shard_comm.try_allreduce_ring(&mut sums, sum_slices::<S>)?;
                    } else {
                        shard_comm.try_allreduce_with(&mut sums, sum_slices::<S>)?;
                    }
                    shard_comm.try_allreduce_sum_u64(&mut counts)?;
                    worst_shift_sq = divide_rows(&mut shard, &sums, &counts, d, 0..shard_k);
                    it.update += pt.phase("update", t3, iter);
                }
                UpdateMode::Delta => {
                    // ---- Touched consensus over my shard communicator:
                    // OR the shard-row masks, sum the per-stripe moved
                    // counts. Each group contributes its stripe through its
                    // member of this communicator, so the sum is the global
                    // moved count and identical on every rank.
                    let global_moved;
                    if iter == 0 {
                        global_moved = n as u64;
                    } else {
                        let t1 = std::time::Instant::now();
                        touched.clear();
                        for (offset, &(_, j)) in pairs.iter().enumerate() {
                            let old = prev_labels[offset] as usize;
                            let new = j as usize;
                            if old != new {
                                if my_centroids.contains(&old) {
                                    touched.mark(old - my_centroids.start);
                                }
                                if my_centroids.contains(&new) {
                                    touched.mark(new - my_centroids.start);
                                }
                            }
                        }
                        let mut consensus: Vec<u64> = touched.words().to_vec();
                        consensus.push(local_moved);
                        shard_comm.try_allreduce_with(&mut consensus, or_words_sum_last)?;
                        global_moved = *consensus.last().unwrap();
                        touched.set_words(&consensus[..consensus.len() - 1]);
                        it.merge += pt.phase("merge", t1, iter);
                    }

                    let t2 = std::time::Instant::now();
                    if iter == 0
                        || degraded
                        || global_moved as f64 / n as f64 >= DELTA_FALLBACK_FRACTION
                    {
                        // Dense fallback: the two-pass accumulate + merge.
                        sums.iter_mut().for_each(|v| *v = S::ZERO);
                        counts.iter_mut().for_each(|v| *v = 0);
                        for (offset, i) in my_samples.clone().enumerate() {
                            let j = pairs[offset].1 as usize;
                            if my_centroids.contains(&j) {
                                let j_local = j - my_centroids.start;
                                counts[j_local] += 1;
                                let acc = &mut sums[j_local * d..(j_local + 1) * d];
                                for (a, x) in acc.iter_mut().zip(data.row(i)) {
                                    *a += *x;
                                }
                            }
                        }
                        shard_comm.try_allreduce_with(&mut sums, sum_slices::<S>)?;
                        shard_comm.try_allreduce_sum_u64(&mut counts)?;
                        worst_shift_sq = divide_rows(&mut shard, &sums, &counts, d, 0..shard_k);
                    } else if touched.count() > 0 {
                        // Sparse: recompute only the touched shard rows and
                        // merge a compact buffer across groups.
                        let touched_rows: Vec<usize> = touched.iter().collect();
                        for (slot, &j_local) in touched_rows.iter().enumerate() {
                            slot_of[j_local] = slot as u32;
                        }
                        compact_sums.clear();
                        compact_sums.resize(touched_rows.len() * d, S::ZERO);
                        compact_counts.clear();
                        compact_counts.resize(touched_rows.len(), 0);
                        for (offset, i) in my_samples.clone().enumerate() {
                            let j = pairs[offset].1 as usize;
                            if my_centroids.contains(&j) {
                                let slot = slot_of[j - my_centroids.start];
                                if slot != u32::MAX {
                                    let slot = slot as usize;
                                    compact_counts[slot] += 1;
                                    let acc = &mut compact_sums[slot * d..(slot + 1) * d];
                                    for (a, x) in acc.iter_mut().zip(data.row(i)) {
                                        *a += *x;
                                    }
                                }
                            }
                        }
                        shard_comm.try_allreduce_with(&mut compact_sums, sum_slices::<S>)?;
                        shard_comm.try_allreduce_sum_u64(&mut compact_counts)?;
                        for (slot, &j_local) in touched_rows.iter().enumerate() {
                            if compact_counts[slot] == 0 {
                                continue;
                            }
                            let inv = S::ONE / S::from_usize(compact_counts[slot] as usize);
                            let mut shift_sq = 0.0f64;
                            for u in 0..d {
                                let next = compact_sums[slot * d + u] * inv;
                                let diff = next.to_f64() - shard.get(j_local, u).to_f64();
                                shift_sq += diff * diff;
                                shard.set(j_local, u, next);
                            }
                            worst_shift_sq = worst_shift_sq.max(shift_sq);
                        }
                        for &j_local in &touched_rows {
                            slot_of[j_local] = u32::MAX;
                        }
                    }
                    it.update += pt.phase("update", t2, iter);
                }
            }

            // ---- Bounds bookkeeping: group-summed per-centroid drifts
            // loosen every member identically; the merged moved fraction
            // feeds the engagement lifecycle.
            if let Some(rb) = &mut rb {
                rb.post_update(&shard, &mut group_comm, it.moved_fraction)?;
            }

            // ---- Convergence: global max shift over all shards. ----
            let t4 = std::time::Instant::now();
            let mut shift = vec![worst_shift_sq];
            comm.try_allreduce_with(&mut shift, |acc, x| {
                acc[0] = acc[0].max(x[0]);
            })?;
            it.update += pt.phase("update", t4, iter);
            prev_labels.clear();
            prev_labels.extend(pairs.iter().map(|&(_, j)| j as u32));
            it.wall = pt.phase("iteration", iter_start, iter);
            trace.push(it);
            iterations += 1;
            if shift[0].sqrt() <= cfg.tol {
                converged = true;
                break;
            }
        }

        // ---- Assemble the full centroid matrix on world rank 0. ----
        // Group 0's members hold one copy of every shard (identical to all
        // other groups after the shard AllReduce).
        let contribution = (group == 0).then(|| (my_centroids.start, shard.clone().into_vec()));
        let gathered = comm.try_gather(0, contribution)?;
        let full = gathered.map(|parts| {
            let mut flat = vec![S::ZERO; k * d];
            for (start, rows) in parts.into_iter().flatten() {
                flat[start * d..start * d + rows.len()].copy_from_slice(&rows);
            }
            Matrix::from_vec(k, d, flat)
        });
        let bstats = rb.map(|r| r.into_stats()).unwrap_or_default();
        Ok::<RankOutput<S>, CommError>((full, iterations, converged, trace, bstats))
    });

    let outs = collect_ranks(outs)?;
    let mut result = assemble(data, outs, costs, cfg, ring_report);
    finalize_faults(&mut result, cfg, &fstats);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::{init_centroids, AssignKernel, InitMethod, KMeansConfig, Lloyd};
    use perf_model::Level;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-5.0..5.0)).collect();
        Matrix::from_vec(n, d, flat)
    }

    fn cfg(units: usize, g: usize, max_iters: usize) -> HierConfig {
        HierConfig {
            level: Level::L2,
            units,
            group_units: g,
            cpes_per_cg: 64,
            max_iters,
            tol: 0.0,
            kernel: AssignKernel::Scalar,
            ..HierConfig::new(Level::L2)
        }
    }

    #[test]
    fn matches_serial_lloyd() {
        let data = random_data(150, 5, 21);
        let init = init_centroids(&data, 8, InitMethod::Forgy, 13);
        let hier = run(&data, init.clone(), &cfg(8, 4, 5)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(8).with_max_iters(5).with_tol(0.0),
        )
        .unwrap();
        assert_eq!(hier.iterations, serial.iterations);
        assert!(
            hier.centroids.max_abs_diff(&serial.centroids) < 1e-9,
            "diff {}",
            hier.centroids.max_abs_diff(&serial.centroids)
        );
        assert_eq!(hier.labels, serial.labels);
    }

    #[test]
    fn group_size_does_not_change_result() {
        let data = random_data(96, 4, 33);
        let init = init_centroids(&data, 6, InitMethod::Forgy, 5);
        let reference = run(&data, init.clone(), &cfg(4, 1, 6)).unwrap();
        for (units, g) in [(4, 2), (6, 3), (12, 6), (8, 8)] {
            let r = run(&data, init.clone(), &cfg(units, g, 6)).unwrap();
            assert!(
                r.centroids.max_abs_diff(&reference.centroids) < 1e-9,
                "units={units} g={g}"
            );
            assert_eq!(r.labels, reference.labels, "units={units} g={g}");
        }
    }

    #[test]
    fn more_members_than_centroids_is_fine() {
        // g=8 members share k=3 centroids: five members own empty shards.
        let data = random_data(64, 3, 7);
        let init = init_centroids(&data, 3, InitMethod::Forgy, 2);
        let hier = run(&data, init.clone(), &cfg(8, 8, 4)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(3).with_max_iters(4).with_tol(0.0),
        )
        .unwrap();
        assert!(hier.centroids.max_abs_diff(&serial.centroids) < 1e-9);
        assert_eq!(hier.labels, serial.labels);
    }

    #[test]
    fn one_group_spanning_all_units() {
        let data = random_data(80, 4, 17);
        let init = init_centroids(&data, 12, InitMethod::Forgy, 8);
        let hier = run(&data, init.clone(), &cfg(6, 6, 4)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(12).with_max_iters(4).with_tol(0.0),
        )
        .unwrap();
        assert!(hier.centroids.max_abs_diff(&serial.centroids) < 1e-9);
    }

    #[test]
    fn indivisible_units_rejected() {
        let data = random_data(16, 2, 1);
        let init = init_centroids(&data, 2, InitMethod::Forgy, 1);
        let err = run(&data, init, &cfg(7, 2, 1)).unwrap_err();
        assert!(err.to_string().contains("multiple of group_units"));
    }

    #[test]
    fn f32_matches_serial_f32() {
        let data: Matrix<f32> = random_data(100, 6, 41).cast();
        let init = init_centroids(&data, 5, InitMethod::Forgy, 3);
        let hier = run(&data, init.clone(), &cfg(8, 4, 3)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(5).with_max_iters(3).with_tol(0.0),
        )
        .unwrap();
        // f32 accumulation order differs between serial (single pass) and
        // hierarchical (per-stripe then tree) — tolerance reflects that.
        assert!(hier.centroids.max_abs_diff(&serial.centroids) < 1e-3);
    }

    #[test]
    fn expanded_and_tiled_kernels_match_scalar() {
        let data = random_data(150, 5, 21);
        let init = init_centroids(&data, 8, InitMethod::Forgy, 13);
        let reference = run(&data, init.clone(), &cfg(8, 4, 5)).unwrap();
        for kernel in [
            AssignKernel::Expanded,
            AssignKernel::Tiled,
            AssignKernel::Gemm,
        ] {
            let mut c = cfg(8, 4, 5);
            c.kernel = kernel;
            let r = run(&data, init.clone(), &c).unwrap();
            assert_eq!(r.labels, reference.labels, "{kernel}");
            assert!(
                r.centroids.max_abs_diff(&reference.centroids) < 1e-9,
                "{kernel}"
            );
            assert_eq!(r.kernel, kernel);
        }
    }

    #[test]
    fn update_modes_agree_bitwise_with_twopass() {
        let data = random_data(240, 5, 77);
        let init = init_centroids(&data, 8, InitMethod::Forgy, 19);
        for (units, g) in [(4, 1), (8, 2), (8, 4)] {
            let mut base_cfg = cfg(units, g, 12);
            base_cfg.update = UpdateMode::TwoPass;
            let base = run(&data, init.clone(), &base_cfg).unwrap();
            for update in [UpdateMode::Fused, UpdateMode::Delta] {
                let mut c = cfg(units, g, 12);
                c.update = update;
                let r = run(&data, init.clone(), &c).unwrap();
                assert_eq!(r.iterations, base.iterations, "{units}/{g} {update}");
                assert_eq!(r.labels, base.labels, "{units}/{g} {update}");
                let bits = |m: &Matrix<f64>| -> Vec<u64> {
                    m.as_slice().iter().map(|v| v.to_bits()).collect()
                };
                assert_eq!(
                    bits(&r.centroids),
                    bits(&base.centroids),
                    "{units}/{g} {update} centroids diverged bitwise"
                );
            }
        }
    }

    #[test]
    fn bounded_runs_match_unbounded_bitwise() {
        use kmeans_core::BoundsMode;
        let data = random_data(300, 6, 77);
        let init = init_centroids(&data, 12, InitMethod::Forgy, 19);
        for (units, g) in [(4, 2), (8, 4)] {
            for kernel in [AssignKernel::Scalar, AssignKernel::Gemm] {
                for update in [UpdateMode::TwoPass, UpdateMode::Fused, UpdateMode::Delta] {
                    let mk = |bounds| {
                        let mut c = cfg(units, g, 30);
                        c.kernel = kernel;
                        c.update = update;
                        c.bounds = bounds;
                        c
                    };
                    let base = run(&data, init.clone(), &mk(BoundsMode::None)).unwrap();
                    for bounds in [BoundsMode::Hamerly, BoundsMode::Yinyang] {
                        let tag = format!("{units}/{g} {kernel} {update} {bounds}");
                        let r = run(&data, init.clone(), &mk(bounds)).unwrap();
                        assert_eq!(r.iterations, base.iterations, "{tag}");
                        assert_eq!(r.labels, base.labels, "{tag}");
                        let bits = |m: &Matrix<f64>| -> Vec<u64> {
                            m.as_slice().iter().map(|v| v.to_bits()).collect()
                        };
                        assert_eq!(
                            bits(&r.centroids),
                            bits(&base.centroids),
                            "{tag}: centroids diverged bitwise"
                        );
                        assert_eq!(r.objective.to_bits(), base.objective.to_bits(), "{tag}");
                        assert!(r.bounds.seed_scans >= 1, "{tag}: bounds never engaged");
                        assert!(r.bounds.lloyd_equivalent > 0, "{tag}: no stats");
                    }
                }
            }
        }
    }

    #[test]
    fn f32_packed_min_loc_merge_matches_f64_labels() {
        // f32 runs take the packed single-u64 min-loc merge; the labels must
        // agree with the f64 run's unpacked merge on well-separated data.
        let data = random_data(120, 4, 91);
        let data32: Matrix<f32> = data.cast();
        let init = init_centroids(&data, 6, InitMethod::Forgy, 23);
        let init32: Matrix<f32> = init.cast();
        let r64 = run(&data, init, &cfg(8, 4, 3)).unwrap();
        let r32 = run(&data32, init32, &cfg(8, 4, 3)).unwrap();
        assert_eq!(r32.labels, r64.labels);
        // Packed pairs are one u64 where unpacked pairs are (f64, u64):
        // the f32 run's min-loc traffic must be half the f64 run's.
        let minloc32 = r32.comm.bytes_of(msg::OpKind::MinLoc);
        let minloc64 = r64.comm.bytes_of(msg::OpKind::MinLoc);
        assert!(minloc32 * 2 == minloc64, "{minloc32} vs {minloc64}");
    }

    #[test]
    fn min_loc_tie_break_matches_serial() {
        // Duplicate centroids force exact distance ties; the lower index
        // must win in both implementations.
        let data = random_data(40, 3, 55);
        let mut init = init_centroids(&data, 4, InitMethod::Forgy, 9);
        let dup = init.row(1).to_vec();
        init.row_mut(3).copy_from_slice(&dup);
        let hier = run(&data, init.clone(), &cfg(8, 4, 1)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(4).with_max_iters(1).with_tol(0.0),
        )
        .unwrap();
        assert_eq!(hier.labels, serial.labels);
    }
}
