//! Level 2 — dataflow + centroid (nk) partition: Algorithm 2 of the paper.
//!
//! Virtual CPEs form groups of `g = group_units`. Within a group, member
//! `m` owns a contiguous shard of the centroid set (`split_range(k, g, m)`);
//! the group jointly assigns a contiguous stripe of samples. The Assign
//! step becomes: every member computes a *partial* argmin over its shard
//! for every sample of the stripe, then the group merges the partials with
//! one min-loc AllReduce (ties to the lower centroid index, exactly the
//! serial tie-break). Each member accumulates winners that fall in its own
//! shard; the Update step reduces each shard across the *other* groups (the
//! same-member communicator) — never materialising all of `k·d` on one
//! unit.

use crate::executor::{assemble, HierConfig, HierError, HierResult, IterTiming};
use crate::level1::sum_slices;
use crate::partition::split_range;
use kmeans_core::{AssignPlan, Matrix, Scalar};
use msg::World;
use sw_arch::MachineParams;

/// Neutral element of the min-loc merge: never wins against a real
/// distance.
pub(crate) const MINLOC_NEUTRAL: (f64, u64) = (f64::INFINITY, u64::MAX);

pub(crate) fn run<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    cfg: &HierConfig,
) -> Result<HierResult<S>, HierError> {
    let g = cfg.group_units;
    if !cfg.units.is_multiple_of(g) {
        return Err(HierError::InvalidConfig(format!(
            "units {} must be a multiple of group_units {g}",
            cfg.units
        )));
    }
    let n = data.rows();
    let d = data.cols();
    let k = init.rows();
    let n_groups = cfg.units / g;
    let ldm_bytes = MachineParams::taihulight().ldm_bytes;

    let (outs, costs) = World::run_with_cost(cfg.units, |comm| {
        let rank = comm.rank();
        let group = rank / g;
        let member = rank % g;
        let mut group_comm = comm.split(group as u64, member as u64);
        let mut shard_comm = comm.split(member as u64, group as u64);

        let my_centroids = split_range(k, g, member);
        let my_samples = split_range(n, n_groups, group);
        let shard_k = my_centroids.len();
        // Line 2 of Algorithm 2: load only this member's centroid shard.
        let mut shard = init.slice_rows(my_centroids.clone());

        let mut iterations = 0usize;
        let mut converged = false;
        let mut sums = vec![S::ZERO; shard_k * d];
        let mut counts = vec![0u64; shard_k];
        let mut pairs: Vec<(f64, u64)> = Vec::with_capacity(my_samples.len());
        let mut assigned: Vec<(u32, S)> = Vec::with_capacity(my_samples.len());
        let mut trace: Vec<IterTiming> = Vec::new();

        for _ in 0..cfg.max_iters {
            let iter_start = std::time::Instant::now();
            let mut it = IterTiming::default();
            // ---- Assign: partial argmin over my shard (lines 9–10), via
            // the configured kernel. One plan per iteration = shard norms
            // recomputed once per Update. Under Expanded/Tiled the merge
            // key is `‖x‖² + ‖c‖² − 2·x·c`; `‖x‖²` is computed identically
            // on every member, so keys stay comparable across the group.
            let t0 = std::time::Instant::now();
            pairs.clear();
            if shard_k == 0 {
                pairs.resize(my_samples.len(), MINLOC_NEUTRAL);
            } else {
                let plan = AssignPlan::with_ldm_budget(cfg.kernel, &shard, ldm_bytes);
                assigned.clear();
                plan.assign_batch_into(
                    data,
                    my_samples.clone(),
                    &shard,
                    0..shard_k,
                    my_centroids.start,
                    &mut assigned,
                );
                pairs.extend(assigned.iter().map(|&(j, key)| (key.to_f64(), j as u64)));
            }
            it.assign += t0.elapsed().as_secs_f64();
            // The min-loc merge produces the global a(i) for every sample
            // of the stripe, on every member.
            let t1 = std::time::Instant::now();
            group_comm.allreduce_min_loc(&mut pairs);
            it.merge += t1.elapsed().as_secs_f64();

            // ---- Accumulate winners that land in my shard (11–12). ----
            let t2 = std::time::Instant::now();
            sums.iter_mut().for_each(|v| *v = S::ZERO);
            counts.iter_mut().for_each(|v| *v = 0);
            for (offset, i) in my_samples.clone().enumerate() {
                let j = pairs[offset].1 as usize;
                if my_centroids.contains(&j) {
                    let j_local = j - my_centroids.start;
                    counts[j_local] += 1;
                    let acc = &mut sums[j_local * d..(j_local + 1) * d];
                    for (a, x) in acc.iter_mut().zip(data.row(i)) {
                        *a += *x;
                    }
                }
            }

            it.assign += t2.elapsed().as_secs_f64();
            // ---- Update: reduce my shard across groups (13–15). ----
            let t3 = std::time::Instant::now();
            shard_comm.allreduce_with(&mut sums, sum_slices::<S>);
            shard_comm.allreduce_sum_u64(&mut counts);
            let mut worst_shift_sq = 0.0f64;
            for j_local in 0..shard_k {
                if counts[j_local] == 0 {
                    continue;
                }
                let inv = S::ONE / S::from_usize(counts[j_local] as usize);
                let mut shift_sq = 0.0f64;
                for u in 0..d {
                    let next = sums[j_local * d + u] * inv;
                    let diff = next.to_f64() - shard.get(j_local, u).to_f64();
                    shift_sq += diff * diff;
                    shard.set(j_local, u, next);
                }
                worst_shift_sq = worst_shift_sq.max(shift_sq);
            }

            // ---- Convergence: global max shift over all shards. ----
            let mut shift = vec![worst_shift_sq];
            comm.allreduce_with(&mut shift, |acc, x| {
                acc[0] = acc[0].max(x[0]);
            });
            it.update += t3.elapsed().as_secs_f64();
            it.wall = iter_start.elapsed().as_secs_f64();
            trace.push(it);
            iterations += 1;
            if shift[0].sqrt() <= cfg.tol {
                converged = true;
                break;
            }
        }

        // ---- Assemble the full centroid matrix on world rank 0. ----
        // Group 0's members hold one copy of every shard (identical to all
        // other groups after the shard AllReduce).
        let contribution = (group == 0).then(|| (my_centroids.start, shard.clone().into_vec()));
        let gathered = comm.gather(0, contribution);
        let full = gathered.map(|parts| {
            let mut flat = vec![S::ZERO; k * d];
            for (start, rows) in parts.into_iter().flatten() {
                flat[start * d..start * d + rows.len()].copy_from_slice(&rows);
            }
            Matrix::from_vec(k, d, flat)
        });
        (full, iterations, converged, trace)
    });

    Ok(assemble(data, outs, costs, cfg.kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::{init_centroids, AssignKernel, InitMethod, KMeansConfig, Lloyd};
    use perf_model::Level;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-5.0..5.0)).collect();
        Matrix::from_vec(n, d, flat)
    }

    fn cfg(units: usize, g: usize, max_iters: usize) -> HierConfig {
        HierConfig {
            level: Level::L2,
            units,
            group_units: g,
            cpes_per_cg: 64,
            max_iters,
            tol: 0.0,
            kernel: AssignKernel::Scalar,
        }
    }

    #[test]
    fn matches_serial_lloyd() {
        let data = random_data(150, 5, 21);
        let init = init_centroids(&data, 8, InitMethod::Forgy, 13);
        let hier = run(&data, init.clone(), &cfg(8, 4, 5)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(8).with_max_iters(5).with_tol(0.0),
        )
        .unwrap();
        assert_eq!(hier.iterations, serial.iterations);
        assert!(
            hier.centroids.max_abs_diff(&serial.centroids) < 1e-9,
            "diff {}",
            hier.centroids.max_abs_diff(&serial.centroids)
        );
        assert_eq!(hier.labels, serial.labels);
    }

    #[test]
    fn group_size_does_not_change_result() {
        let data = random_data(96, 4, 33);
        let init = init_centroids(&data, 6, InitMethod::Forgy, 5);
        let reference = run(&data, init.clone(), &cfg(4, 1, 6)).unwrap();
        for (units, g) in [(4, 2), (6, 3), (12, 6), (8, 8)] {
            let r = run(&data, init.clone(), &cfg(units, g, 6)).unwrap();
            assert!(
                r.centroids.max_abs_diff(&reference.centroids) < 1e-9,
                "units={units} g={g}"
            );
            assert_eq!(r.labels, reference.labels, "units={units} g={g}");
        }
    }

    #[test]
    fn more_members_than_centroids_is_fine() {
        // g=8 members share k=3 centroids: five members own empty shards.
        let data = random_data(64, 3, 7);
        let init = init_centroids(&data, 3, InitMethod::Forgy, 2);
        let hier = run(&data, init.clone(), &cfg(8, 8, 4)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(3).with_max_iters(4).with_tol(0.0),
        )
        .unwrap();
        assert!(hier.centroids.max_abs_diff(&serial.centroids) < 1e-9);
        assert_eq!(hier.labels, serial.labels);
    }

    #[test]
    fn one_group_spanning_all_units() {
        let data = random_data(80, 4, 17);
        let init = init_centroids(&data, 12, InitMethod::Forgy, 8);
        let hier = run(&data, init.clone(), &cfg(6, 6, 4)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(12).with_max_iters(4).with_tol(0.0),
        )
        .unwrap();
        assert!(hier.centroids.max_abs_diff(&serial.centroids) < 1e-9);
    }

    #[test]
    fn indivisible_units_rejected() {
        let data = random_data(16, 2, 1);
        let init = init_centroids(&data, 2, InitMethod::Forgy, 1);
        let err = run(&data, init, &cfg(7, 2, 1)).unwrap_err();
        assert!(err.to_string().contains("multiple of group_units"));
    }

    #[test]
    fn f32_matches_serial_f32() {
        let data: Matrix<f32> = random_data(100, 6, 41).cast();
        let init = init_centroids(&data, 5, InitMethod::Forgy, 3);
        let hier = run(&data, init.clone(), &cfg(8, 4, 3)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(5).with_max_iters(3).with_tol(0.0),
        )
        .unwrap();
        // f32 accumulation order differs between serial (single pass) and
        // hierarchical (per-stripe then tree) — tolerance reflects that.
        assert!(hier.centroids.max_abs_diff(&serial.centroids) < 1e-3);
    }

    #[test]
    fn expanded_and_tiled_kernels_match_scalar() {
        let data = random_data(150, 5, 21);
        let init = init_centroids(&data, 8, InitMethod::Forgy, 13);
        let reference = run(&data, init.clone(), &cfg(8, 4, 5)).unwrap();
        for kernel in [AssignKernel::Expanded, AssignKernel::Tiled] {
            let mut c = cfg(8, 4, 5);
            c.kernel = kernel;
            let r = run(&data, init.clone(), &c).unwrap();
            assert_eq!(r.labels, reference.labels, "{kernel}");
            assert!(
                r.centroids.max_abs_diff(&reference.centroids) < 1e-9,
                "{kernel}"
            );
            assert_eq!(r.kernel, kernel);
        }
    }

    #[test]
    fn min_loc_tie_break_matches_serial() {
        // Duplicate centroids force exact distance ties; the lower index
        // must win in both implementations.
        let data = random_data(40, 3, 55);
        let mut init = init_centroids(&data, 4, InitMethod::Forgy, 9);
        let dup = init.row(1).to_vec();
        init.row_mut(3).copy_from_slice(&dup);
        let hier = run(&data, init.clone(), &cfg(8, 4, 1)).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(4).with_max_iters(1).with_tol(0.0),
        )
        .unwrap();
        assert_eq!(hier.labels, serial.labels);
    }
}
