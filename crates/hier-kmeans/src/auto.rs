//! Model-driven level selection — the "flexibility" claim of the paper:
//! one implementation that handles low-d UCI workloads and extreme-d
//! ImageNet workloads by picking the partition level per problem shape.

use perf_model::{best_level, CostModel, Level, ProblemShape};

/// Choose the partition level the cost model predicts to be fastest for a
/// problem of this shape on `nodes` TaihuLight nodes. Falls back to Level 3
/// (the only level without scale limits) if the model finds nothing
/// strictly feasible.
pub fn choose_level(n: usize, k: usize, d: usize, nodes: usize) -> Level {
    let model = CostModel::taihulight(nodes);
    let shape = ProblemShape::f32(n as u64, k as u64, d as u64);
    match best_level(&model, &shape) {
        Ok((level, _)) => level,
        Err(_) => Level::L3,
    }
}

/// Group size the GEMM cost model recommends for a centroid-sharing group
/// of up to `group_units` units: 1 when replicating the packed centroid
/// set beats partitioning it (small `k·d` — the min-loc merge costs more
/// than streaming everyone the full panel set), `group_units` otherwise.
/// Layout never changes results, only wall time, so callers are free to
/// ignore the recommendation.
pub fn gemm_group_units(k: usize, d: usize, group_units: usize, elem_bytes: usize) -> usize {
    let machine = sw_arch::MachineParams::taihulight();
    let cal = perf_model::Calibration::default();
    if perf_model::gemm::replicate_centroids(&machine, &cal, k, d, group_units, elem_bytes) {
        1
    } else {
        group_units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_uci_workloads_choose_a_low_level() {
        // Kegg Network at its Fig. 3 configuration.
        let level = choose_level(65_554, 256, 28, 1);
        assert!(level == Level::L1 || level == Level::L2, "chose {level}");
    }

    #[test]
    fn high_dimensional_workloads_choose_l3() {
        assert_eq!(choose_level(1_265_723, 2_000, 196_608, 4_096), Level::L3);
        assert_eq!(choose_level(1_265_723, 2_000, 8_192, 128), Level::L3);
    }

    #[test]
    fn moderate_d_at_scale_prefers_l2() {
        // Below the Fig. 7 crossover.
        let level = choose_level(1_265_723, 2_000, 1_024, 128);
        assert_eq!(level, Level::L2);
    }

    #[test]
    fn absurd_shapes_fall_back_to_l3() {
        assert_eq!(choose_level(10, 4, 1 << 21, 1), Level::L3);
    }

    #[test]
    fn gemm_layout_recommendation_follows_kd() {
        // Tiny centroid set: the min-loc merge costs more than streaming
        // the whole panel set — replicate (group collapses to 1).
        assert_eq!(gemm_group_units(8, 8, 64, 4), 1);
        // Huge centroid set: panel streaming dominates — keep the shards.
        assert_eq!(gemm_group_units(160_000, 64, 64, 4), 64);
        // A group of one has nothing to decide.
        assert_eq!(gemm_group_units(1024, 64, 1, 4), 1);
    }
}
