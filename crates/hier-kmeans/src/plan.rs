//! Bridges the analytic plans of `perf-model` to the explicit scratchpad
//! allocator of `sw-arch`: every plan the feasibility solver emits must
//! correspond to an LDM layout that actually allocates — the two crates
//! cross-validate each other here.

use kmeans_core::Scalar;
use perf_model::{Level, LevelPlan, ProblemShape};
use sw_arch::{LdmBudget, LdmError, LdmLayout, Machine};

/// Build the per-CPE scratchpad layout a plan implies and allocate it
/// against the machine's LDM. Spilled plans allocate only the streaming
/// buffers (shards live in DDR).
pub fn ldm_layout(
    plan: &LevelPlan,
    shape: &ProblemShape,
    machine: &Machine,
) -> Result<LdmLayout, LdmError> {
    let mut budget = LdmBudget::new(&machine.params);
    let s = shape.elem_bytes as usize;
    let slice = plan.slice as usize;
    let c = plan.centroids_per_unit as usize;
    match plan.level {
        Level::L1 => {
            // Algorithm 1: single-buffered sample, all centroids, all
            // accumulators, all counters — the paper's C1 layout.
            budget.alloc_elems("sample", slice, s)?;
            budget.alloc_elems("centroids", c * slice, s)?;
            budget.alloc_elems("accumulators", c * slice, s)?;
            budget.alloc_elems("counters", c, s)?;
        }
        Level::L2 | Level::L3 => {
            budget.alloc_elems("sample_buf_a", slice, s)?;
            budget.alloc_elems("sample_buf_b", slice, s)?;
            if !plan.spilled {
                budget.alloc_elems("centroid_shard", c * slice, s)?;
                budget.alloc_elems("accumulator_shard", c * slice, s)?;
            }
        }
    }
    Ok(budget.finish())
}

/// Convenience: the layout of the *functional* executor configuration, for
/// documentation and examples (what one virtual unit holds).
pub fn describe_unit_memory<S: Scalar>(
    level: Level,
    k: usize,
    d: usize,
    group_units: usize,
    cpes_per_cg: usize,
) -> String {
    let c = k.div_ceil(group_units.max(1));
    match level {
        Level::L1 => format!(
            "CPE: sample {d}×{b}B + centroids {k}×{d}×{b}B + accumulators + counters",
            b = S::BYTES
        ),
        Level::L2 => format!(
            "CPE: sample {d}×{b}B (double-buffered) + shard {c}×{d}×{b}B ×2",
            b = S::BYTES
        ),
        Level::L3 => {
            let slice = d.div_ceil(cpes_per_cg);
            format!(
                "CPE: slice {slice}×{b}B (double-buffered) + shard {c}×{slice}×{b}B ×2",
                b = S::BYTES
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_model::feasibility;

    #[test]
    fn feasible_plans_always_allocate() {
        // Cross-validation: every plan the solver accepts fits the
        // allocator, across a grid of shapes and levels.
        let machine = Machine::taihulight(128);
        for k in [1u64, 16, 256, 2_000, 65_536] {
            for d in [1u64, 4, 68, 1_024, 4_096, 196_608] {
                let shape = ProblemShape::f32(1_000_000, k, d);
                for level in [Level::L1, Level::L2, Level::L3] {
                    if let Ok(plan) = feasibility::plan(level, &shape, &machine, true) {
                        let layout = ldm_layout(&plan, &shape, &machine).unwrap_or_else(|e| {
                            panic!("{level} plan for k={k} d={d} overflowed LDM: {e}")
                        });
                        assert!(layout.used() <= layout.capacity());
                    }
                }
            }
        }
    }

    #[test]
    fn l1_layout_matches_c1() {
        let machine = Machine::taihulight(1);
        let shape = ProblemShape::f32(65_554, 256, 28);
        let plan = feasibility::plan(Level::L1, &shape, &machine, false).unwrap();
        let layout = ldm_layout(&plan, &shape, &machine).unwrap();
        // C1 in bytes: (d(1+2k)+k)·4.
        let expect = (28 * (1 + 2 * 256) + 256) * 4;
        assert_eq!(layout.used(), expect);
        assert_eq!(layout.region_bytes("centroids"), Some(256 * 28 * 4));
    }

    #[test]
    fn spilled_plan_allocates_only_buffers() {
        let machine = Machine::taihulight(128);
        let shape = ProblemShape::f32(1_265_723, 160_000, 3_072);
        let plan = feasibility::plan(Level::L3, &shape, &machine, true).unwrap();
        assert!(plan.spilled);
        let layout = ldm_layout(&plan, &shape, &machine).unwrap();
        assert_eq!(layout.region_bytes("centroid_shard"), None);
        assert!(layout.used() < machine.params.ldm_bytes / 2);
    }

    #[test]
    fn describe_mentions_the_right_numbers() {
        let text = describe_unit_memory::<f32>(Level::L3, 2_000, 196_608, 2_048, 64);
        assert!(text.contains("3072"), "{text}");
        let text1 = describe_unit_memory::<f64>(Level::L1, 10, 4, 1, 64);
        assert!(text1.contains("8B"), "{text1}");
        let text2 = describe_unit_memory::<f32>(Level::L2, 100, 64, 10, 64);
        assert!(text2.contains("10×64"), "{text2}");
    }
}
