//! Shared executor configuration, result type and dispatch.

use kmeans_core::{KMeansError, Matrix, Scalar};
use perf_model::Level;

/// Configuration of a functional hierarchical run.
#[derive(Debug, Clone, PartialEq)]
pub struct HierConfig {
    /// Partition level to execute.
    pub level: Level,
    /// SPMD units: virtual CPEs for Levels 1–2, virtual CGs for Level 3.
    /// Each unit is one `msg` rank (a host thread), so keep this within an
    /// order of magnitude of the host's cores; the partition arithmetic is
    /// exact at any unit count.
    pub units: usize,
    /// Units per centroid-sharing group (the paper's `m_group` /
    /// `m'_group`). Ignored by Level 1. Must divide into `units` at least
    /// once; `units % group_units` trailing units idle if not divisible.
    pub group_units: usize,
    /// Width of the per-CG dimension partition for Level 3 (64 on SW26010;
    /// smaller values exercise the same arithmetic cheaply in tests).
    pub cpes_per_cg: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on maximum centroid movement (Euclidean).
    pub tol: f64,
}

impl HierConfig {
    pub fn new(level: Level) -> Self {
        HierConfig {
            level,
            units: 8,
            group_units: 2,
            cpes_per_cg: 64,
            max_iters: 100,
            tol: 1e-9,
        }
    }
}

/// Errors from the hierarchical executors.
#[derive(Debug, Clone, PartialEq)]
pub enum HierError {
    /// Problem/centroid validation failed (delegated to `kmeans-core`).
    KMeans(KMeansError),
    /// The execution configuration is inconsistent.
    InvalidConfig(String),
}

impl std::fmt::Display for HierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierError::KMeans(e) => write!(f, "{e}"),
            HierError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for HierError {}

impl From<KMeansError> for HierError {
    fn from(e: KMeansError) -> Self {
        HierError::KMeans(e)
    }
}

/// Wall-time spent in each phase of the iteration loop, per rank (the
/// assemble step keeps the per-phase maximum across ranks — the critical
/// path). All values in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Local Assign work: distance kernels and accumulation.
    pub assign: f64,
    /// Per-sample merge collectives (min-loc AllReduce).
    pub merge: f64,
    /// Update collectives, centroid division and convergence check.
    pub update: f64,
}

impl PhaseTimings {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.assign + self.merge + self.update
    }

    /// Per-phase maximum across ranks (the slowest rank bounds each phase).
    pub fn critical_path(all: &[PhaseTimings]) -> PhaseTimings {
        let mut out = PhaseTimings::default();
        for t in all {
            out.assign = out.assign.max(t.assign);
            out.merge = out.merge.max(t.merge);
            out.update = out.update.max(t.update);
        }
        out
    }
}

/// Result of a hierarchical run.
#[derive(Debug, Clone)]
pub struct HierResult<S: Scalar> {
    /// Final centroids, `k × d`.
    pub centroids: Matrix<S>,
    /// Nearest-centroid index per sample (under the final centroids).
    pub labels: Vec<u32>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the cap.
    pub converged: bool,
    /// Final mean objective.
    pub objective: f64,
    /// Total bytes sent by all ranks over the run (from the `msg` cost
    /// logs) — the traffic the performance model prices.
    pub comm_bytes: u64,
    /// Total messages sent by all ranks.
    pub comm_messages: u64,
    /// Critical-path phase breakdown (per-phase max across ranks).
    pub timings: PhaseTimings,
}

/// Validate inputs shared by all levels.
pub(crate) fn validate<S: Scalar>(
    data: &Matrix<S>,
    init: &Matrix<S>,
    cfg: &HierConfig,
) -> Result<(), HierError> {
    if data.rows() == 0 {
        return Err(KMeansError::EmptyDataset.into());
    }
    let k = init.rows();
    if k == 0 {
        return Err(KMeansError::ZeroK.into());
    }
    if k > data.rows() {
        return Err(KMeansError::KExceedsN { k, n: data.rows() }.into());
    }
    if init.cols() != data.cols() {
        return Err(KMeansError::CentroidShape {
            expected_k: k,
            expected_d: data.cols(),
            got_rows: init.rows(),
            got_cols: init.cols(),
        }
        .into());
    }
    if cfg.units == 0 {
        return Err(HierError::InvalidConfig("units must be positive".into()));
    }
    if cfg.level != Level::L1 {
        if cfg.group_units == 0 {
            return Err(HierError::InvalidConfig(
                "group_units must be positive".into(),
            ));
        }
        if cfg.group_units > cfg.units {
            return Err(HierError::InvalidConfig(format!(
                "group_units {} exceeds units {}",
                cfg.group_units, cfg.units
            )));
        }
    }
    if cfg.level == Level::L3 && cfg.cpes_per_cg == 0 {
        return Err(HierError::InvalidConfig(
            "cpes_per_cg must be positive".into(),
        ));
    }
    Ok(())
}

/// Assemble a [`HierResult`] from per-rank outputs: exactly one rank
/// returns the final centroids; labels and objective are recomputed against
/// them with the serial assign kernel (the same final-assign step
/// `Lloyd::run_from` performs).
pub(crate) fn assemble<S: Scalar>(
    data: &Matrix<S>,
    outs: Vec<(Option<Matrix<S>>, usize, bool, PhaseTimings)>,
    costs: Vec<msg::CostLog>,
) -> HierResult<S> {
    let mut iterations = 0;
    let mut converged = false;
    let mut centroids = None;
    let all_timings: Vec<PhaseTimings> = outs.iter().map(|(_, _, _, t)| *t).collect();
    let timings = PhaseTimings::critical_path(&all_timings);
    for (c, iters, conv, _) in outs {
        if let Some(c) = c {
            assert!(centroids.is_none(), "two ranks returned centroids");
            centroids = Some(c);
            iterations = iters;
            converged = conv;
        }
    }
    let centroids = centroids.expect("no rank returned centroids");
    let mut labels = vec![0u32; data.rows()];
    let objective = kmeans_core::assign_step(data, &centroids, &mut labels) / data.rows() as f64;
    let comm_bytes = costs.iter().map(|c| c.total_bytes()).sum();
    let comm_messages = costs.iter().map(|c| c.total_messages()).sum();
    HierResult {
        centroids,
        labels,
        iterations,
        converged,
        objective,
        comm_bytes,
        comm_messages,
        timings,
    }
}

/// Run the configured level on `data` from `init` centroids.
pub fn fit<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    cfg: &HierConfig,
) -> Result<HierResult<S>, HierError> {
    validate(data, &init, cfg)?;
    match cfg.level {
        Level::L1 => crate::level1::run(data, init, cfg),
        Level::L2 => crate::level2::run(data, init, cfg),
        Level::L3 => crate::level3::run(data, init, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_data() -> Matrix<f64> {
        Matrix::from_rows(&[&[0.0f64, 0.0], &[1.0, 0.0], &[10.0, 10.0], &[11.0, 10.0]])
    }

    #[test]
    fn validation_catches_bad_inputs() {
        let data = small_data();
        let cfg = HierConfig::new(Level::L2);
        let empty = Matrix::<f64>::zeros(0, 2);
        assert!(matches!(
            fit(&empty, Matrix::zeros(1, 2), &cfg).unwrap_err(),
            HierError::KMeans(KMeansError::EmptyDataset)
        ));
        assert!(matches!(
            fit(&data, Matrix::zeros(0, 2), &cfg).unwrap_err(),
            HierError::KMeans(KMeansError::ZeroK)
        ));
        assert!(matches!(
            fit(&data, Matrix::zeros(5, 2), &cfg).unwrap_err(),
            HierError::KMeans(KMeansError::KExceedsN { .. })
        ));
        assert!(matches!(
            fit(&data, Matrix::zeros(2, 3), &cfg).unwrap_err(),
            HierError::KMeans(KMeansError::CentroidShape { .. })
        ));
    }

    #[test]
    fn config_validation() {
        let data = small_data();
        let init = Matrix::from_rows(&[&[0.0f64, 0.0], &[10.0, 10.0]]);
        let mut cfg = HierConfig::new(Level::L2);
        cfg.units = 0;
        assert!(matches!(
            fit(&data, init.clone(), &cfg).unwrap_err(),
            HierError::InvalidConfig(_)
        ));
        let mut cfg = HierConfig::new(Level::L2);
        cfg.group_units = 16;
        cfg.units = 4;
        let err = fit(&data, init.clone(), &cfg).unwrap_err();
        assert!(err.to_string().contains("exceeds units"));
        let mut cfg = HierConfig::new(Level::L3);
        cfg.cpes_per_cg = 0;
        assert!(fit(&data, init, &cfg).is_err());
    }

    #[test]
    fn error_display() {
        let e: HierError = KMeansError::ZeroK.into();
        assert!(e.to_string().contains("positive"));
        let e = HierError::InvalidConfig("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
