//! Shared executor configuration, result type and dispatch.

use kmeans_core::{AssignKernel, BoundsMode, BoundsStats, KMeansError, Matrix, Scalar, UpdateMode};
use perf_model::Level;

/// Configuration of a functional hierarchical run.
#[derive(Debug, Clone, PartialEq)]
pub struct HierConfig {
    /// Partition level to execute.
    pub level: Level,
    /// SPMD units: virtual CPEs for Levels 1–2, virtual CGs for Level 3.
    /// Each unit is one `msg` rank (a host thread), so keep this within an
    /// order of magnitude of the host's cores; the partition arithmetic is
    /// exact at any unit count.
    pub units: usize,
    /// Units per centroid-sharing group (the paper's `m_group` /
    /// `m'_group`). Ignored by Level 1. Must divide into `units` at least
    /// once; `units % group_units` trailing units idle if not divisible.
    pub group_units: usize,
    /// Width of the per-CG dimension partition for Level 3 (64 on SW26010;
    /// smaller values exercise the same arithmetic cheaply in tests).
    pub cpes_per_cg: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on maximum centroid movement (Euclidean).
    pub tol: f64,
    /// Assign kernel every rank's inner loop runs (see
    /// [`kmeans_core::AssignKernel`]). `Scalar` is bit-identical to the
    /// serial reference; `Expanded`/`Tiled` use the norm expansion and may
    /// resolve exact ties differently.
    pub kernel: AssignKernel,
    /// Update path (see [`kmeans_core::UpdateMode`]). All modes produce
    /// bitwise-identical centroids, labels and objective for a given
    /// kernel and merge strategy; only wall time changes.
    pub update: UpdateMode,
    /// Bounded-assign strategy (see [`kmeans_core::BoundsMode`]). The
    /// bounded modes keep per-sample triangle-inequality bounds that
    /// filter rows whose argmin provably didn't change; the survivors go
    /// through the same kernels, so labels, objective and iteration
    /// counts stay bitwise-identical to the unbounded run. `Auto`
    /// consults the perf model per level.
    pub bounds: BoundsMode,
    /// How dense Update merges run their sums AllReduce (see
    /// [`MergeStrategy`]). Delta's sparse merges always use the tree:
    /// the binomial fold order is per-element and independent of payload
    /// length, which is what makes merging only the touched rows bitwise
    /// equal to the dense merge.
    pub merge: MergeStrategy,
    /// Deterministic fault-injection schedule for the run (see
    /// [`msg::FaultPlan`]). `None` (or an inactive plan) is the fault-free
    /// fast path. An active plan routes every collective through the
    /// transport's injection/retry machinery, applies the plan's receive
    /// deadline, and — on iterations the plan marks degraded — falls back
    /// delta→dense and ring→tree so the sparse/ring merge invariants can
    /// never be violated by a faulted exchange.
    pub faults: Option<msg::FaultPlan>,
    /// Event-level trace sink. When set, every rank attaches a tracer to
    /// its communicator (per-rank comms timeline: one span per collective,
    /// instants for injected faults and retries) and emits per-phase
    /// `Complete` events (`assign`/`merge`/`update`/`exchange`/`iteration`)
    /// whose durations are the *same* measurements that feed
    /// [`IterTiming`], so the trace and the timing report always agree.
    /// `None` is the zero-overhead fast path. Training is always-on when
    /// traced — sampling only applies to serving.
    pub trace: Option<std::sync::Arc<swkm_obs::TraceBuffer>>,
}

impl HierConfig {
    pub fn new(level: Level) -> Self {
        HierConfig {
            level,
            units: 8,
            group_units: 2,
            cpes_per_cg: 64,
            max_iters: 100,
            tol: 1e-9,
            kernel: AssignKernel::Scalar,
            update: UpdateMode::TwoPass,
            bounds: BoundsMode::None,
            merge: MergeStrategy::Auto,
            faults: None,
            trace: None,
        }
    }

    /// Resolve the configured bounds mode for this run's geometry.
    /// `Auto` asks the perf model whether the bookkeeping is expected to
    /// pay for itself at this (level, n, k, d); the concrete modes pass
    /// through `kmeans_core`'s local resolution (tiny `k` → Hamerly).
    pub(crate) fn resolved_bounds(&self, n: usize, k: usize, d: usize) -> BoundsMode {
        match self.bounds {
            BoundsMode::Auto => match perf_model::bounds::recommend(self.level, n, k, d) {
                perf_model::BoundsRecommendation::None => BoundsMode::None,
                perf_model::BoundsRecommendation::Hamerly => BoundsMode::Hamerly,
                perf_model::BoundsRecommendation::Yinyang => BoundsMode::Yinyang,
            },
            mode => mode.resolve_local(k),
        }
    }
}

/// Dense-merge buffer size (bytes) at which [`MergeStrategy::Auto`] picks
/// the ring over the binomial tree: below it the tree's log₂(p) latency
/// wins, above it the ring's 2·(p−1)/p per-rank byte volume wins.
pub const RING_CROSSOVER_BYTES: usize = 64 * 1024;

/// Which AllReduce the executors use for the dense centroid-sums merge.
///
/// Tree and ring fold partial sums in different orders, so their results
/// differ in floating-point low-order bits (each is still deterministic and
/// rank-identical). Bitwise guarantees therefore hold *per strategy*:
/// twopass/fused/delta agree bitwise under the tree, and twopass/fused
/// agree bitwise under the ring. Delta is pinned to the tree — its sparse
/// merges rely on the tree's per-element, length-independent fold order —
/// so `--merge ring --update delta` is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Pick by buffer size: ring when the dense payload reaches
    /// [`RING_CROSSOVER_BYTES`] on ≥ 4 merging ranks (and the update path
    /// is not delta), tree otherwise.
    #[default]
    Auto,
    /// Always the binomial tree ([`msg::Comm::allreduce_with`]).
    Tree,
    /// Always the bandwidth-optimal ring ([`msg::Comm::allreduce_ring`]).
    Ring,
}

impl MergeStrategy {
    pub const ALL: [MergeStrategy; 3] = [
        MergeStrategy::Auto,
        MergeStrategy::Tree,
        MergeStrategy::Ring,
    ];

    /// Stable lowercase name (CLI vocabulary and metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            MergeStrategy::Auto => "auto",
            MergeStrategy::Tree => "tree",
            MergeStrategy::Ring => "ring",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Result<MergeStrategy, String> {
        match s {
            "auto" => Ok(MergeStrategy::Auto),
            "tree" => Ok(MergeStrategy::Tree),
            "ring" => Ok(MergeStrategy::Ring),
            other => Err(format!("unknown merge strategy `{other}` (auto|tree|ring)")),
        }
    }

    /// Resolve the strategy for one merging communicator: `true` means the
    /// ring runs the dense sums AllReduce. The decision depends only on
    /// configuration and partition arithmetic, so every rank of the
    /// communicator resolves identically.
    pub fn use_ring(self, dense_bytes: usize, ranks: usize, update: UpdateMode) -> bool {
        match self {
            MergeStrategy::Tree => false,
            MergeStrategy::Ring => update != UpdateMode::Delta,
            MergeStrategy::Auto => {
                update != UpdateMode::Delta && ranks >= 4 && dense_bytes >= RING_CROSSOVER_BYTES
            }
        }
    }
}

impl std::fmt::Display for MergeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for MergeStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        MergeStrategy::parse(s)
    }
}

/// Errors from the hierarchical executors.
#[derive(Debug, Clone, PartialEq)]
pub enum HierError {
    /// Problem/centroid validation failed (delegated to `kmeans-core`).
    KMeans(KMeansError),
    /// The execution configuration is inconsistent.
    InvalidConfig(String),
    /// A collective failed past the transport's retry budget — a persistent
    /// fault the bounded retransmission could not recover from.
    Comm(msg::CommError),
}

impl std::fmt::Display for HierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierError::KMeans(e) => write!(f, "{e}"),
            HierError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HierError::Comm(e) => write!(f, "communication failed: {e}"),
        }
    }
}

impl std::error::Error for HierError {}

impl From<KMeansError> for HierError {
    fn from(e: KMeansError) -> Self {
        HierError::KMeans(e)
    }
}

impl From<msg::CommError> for HierError {
    fn from(e: msg::CommError) -> Self {
        HierError::Comm(e)
    }
}

/// Wall-time spent in each phase of the iteration loop, per rank (the
/// assemble step keeps the per-phase maximum across ranks — the critical
/// path). All values in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Local Assign work: distance kernels and accumulation.
    pub assign: f64,
    /// Per-sample merge collectives (min-loc AllReduce).
    pub merge: f64,
    /// Update collectives, centroid division and convergence check.
    pub update: f64,
    /// Dimension-sliced accumulation — the functional stand-in for the
    /// register-bus dimension exchange. Nonzero only for Level 3.
    pub exchange: f64,
}

impl PhaseTimings {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.assign + self.merge + self.update + self.exchange
    }

    /// Per-phase maximum across ranks (the slowest rank bounds each phase).
    pub fn critical_path(all: &[PhaseTimings]) -> PhaseTimings {
        let mut out = PhaseTimings::default();
        for t in all {
            out.assign = out.assign.max(t.assign);
            out.merge = out.merge.max(t.merge);
            out.update = out.update.max(t.update);
            out.exchange = out.exchange.max(t.exchange);
        }
        out
    }
}

/// One iteration's phase wall times on one rank, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterTiming {
    /// Local distance kernels and (Levels 1–2) accumulation.
    pub assign: f64,
    /// Min-loc merge collective within the centroid-sharing group.
    pub merge: f64,
    /// Update collectives, centroid division and convergence check.
    pub update: f64,
    /// Dimension-sliced accumulation (Level 3 only).
    pub exchange: f64,
    /// Wall time of the whole iteration, loop top to convergence check —
    /// the reference the per-phase times are validated against.
    pub wall: f64,
    /// Fraction of this rank's samples whose label changed this iteration
    /// (in `[0, 1]`). Computed locally from the previous iteration's labels,
    /// so recording it adds no collectives. Not a time: excluded from
    /// [`IterTiming::phase_sum`] and never summed, only max'd across ranks.
    pub moved_fraction: f64,
}

impl IterTiming {
    /// Sum of the accounted phases (excludes `wall`).
    pub fn phase_sum(&self) -> f64 {
        self.assign + self.merge + self.update + self.exchange
    }

    fn add(&mut self, other: &IterTiming) {
        self.assign += other.assign;
        self.merge += other.merge;
        self.update += other.update;
        self.exchange += other.exchange;
        self.wall += other.wall;
    }
}

/// Per-rank, per-iteration phase trace of a training run:
/// `per_rank[r][i]` is rank `r`'s timing of iteration `i`. Convergence is
/// globally synchronised, so every rank records the same iteration count.
#[derive(Debug, Clone, Default)]
pub struct TrainTrace {
    pub per_rank: Vec<Vec<IterTiming>>,
}

impl TrainTrace {
    pub fn ranks(&self) -> usize {
        self.per_rank.len()
    }

    pub fn iterations(&self) -> usize {
        self.per_rank.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Rank `r`'s phase times summed over all iterations.
    pub fn rank_total(&self, r: usize) -> IterTiming {
        let mut out = IterTiming::default();
        for it in &self.per_rank[r] {
            out.add(it);
        }
        out
    }

    /// Critical path of iteration `i`: per-phase maximum across ranks.
    pub fn iter_critical(&self, i: usize) -> IterTiming {
        let mut out = IterTiming::default();
        for rank in &self.per_rank {
            if let Some(it) = rank.get(i) {
                out.assign = out.assign.max(it.assign);
                out.merge = out.merge.max(it.merge);
                out.update = out.update.max(it.update);
                out.exchange = out.exchange.max(it.exchange);
                out.wall = out.wall.max(it.wall);
                out.moved_fraction = out.moved_fraction.max(it.moved_fraction);
            }
        }
        out
    }

    /// Assign-phase imbalance: max over ranks of total assign time divided
    /// by the mean (1.0 = perfectly balanced). Returns 1.0 for degenerate
    /// traces.
    pub fn assign_imbalance(&self) -> f64 {
        let totals: Vec<f64> = (0..self.ranks())
            .map(|r| self.rank_total(r).assign)
            .collect();
        if totals.is_empty() {
            return 1.0;
        }
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        totals.iter().cloned().fold(0.0f64, f64::max) / mean
    }

    /// Publish the trace under `prefix`: one histogram of per-rank,
    /// per-iteration phase times in nanoseconds per phase
    /// (`<prefix>_assign_ns`, `<prefix>_merge_ns`, `<prefix>_update_ns`,
    /// `<prefix>_exchange_ns`, `<prefix>_iter_wall_ns`), plus gauges for
    /// the critical-path per-phase totals in seconds
    /// (`<prefix>_assign_s`, …), the run wall time, rank/iteration counts
    /// and the assign imbalance factor.
    pub fn export_into(&self, registry: &swkm_obs::MetricsRegistry, prefix: &str) {
        let to_ns = |s: f64| (s * 1e9).round().max(0.0) as u64;
        for rank in &self.per_rank {
            for it in rank {
                registry.record(&format!("{prefix}_assign_ns"), to_ns(it.assign));
                registry.record(&format!("{prefix}_merge_ns"), to_ns(it.merge));
                registry.record(&format!("{prefix}_update_ns"), to_ns(it.update));
                registry.record(&format!("{prefix}_exchange_ns"), to_ns(it.exchange));
                registry.record(&format!("{prefix}_iter_wall_ns"), to_ns(it.wall));
            }
        }
        let mut critical = IterTiming::default();
        for i in 0..self.iterations() {
            critical.add(&self.iter_critical(i));
        }
        registry.gauge_set(&format!("{prefix}_assign_s"), critical.assign);
        registry.gauge_set(&format!("{prefix}_merge_s"), critical.merge);
        registry.gauge_set(&format!("{prefix}_update_s"), critical.update);
        registry.gauge_set(&format!("{prefix}_exchange_s"), critical.exchange);
        let wall = (0..self.ranks())
            .map(|r| self.rank_total(r).wall)
            .fold(0.0f64, f64::max);
        registry.gauge_set(&format!("{prefix}_wall_s"), wall);
        registry.gauge_set(&format!("{prefix}_ranks"), self.ranks() as f64);
        registry.gauge_set(&format!("{prefix}_iterations"), self.iterations() as f64);
        registry.gauge_set(
            &format!("{prefix}_assign_imbalance"),
            self.assign_imbalance(),
        );
        // The last iteration's worst-rank moved fraction: 0.0 on a converged
        // run, and the quantity the delta path's sparse/dense decision keys on.
        let last_moved = if self.iterations() > 0 {
            self.iter_critical(self.iterations() - 1).moved_fraction
        } else {
            0.0
        };
        registry.gauge_set(&format!("{prefix}_moved_fraction"), last_moved);
    }
}

/// Result of a hierarchical run.
#[derive(Debug, Clone)]
pub struct HierResult<S: Scalar> {
    /// Final centroids, `k × d`.
    pub centroids: Matrix<S>,
    /// Nearest-centroid index per sample (under the final centroids).
    pub labels: Vec<u32>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the cap.
    pub converged: bool,
    /// Final mean objective.
    pub objective: f64,
    /// Total bytes sent by all ranks over the run (from the `msg` cost
    /// logs) — the traffic the performance model prices.
    pub comm_bytes: u64,
    /// Total messages sent by all ranks.
    pub comm_messages: u64,
    /// Critical-path phase breakdown (per-phase max across ranks).
    pub timings: PhaseTimings,
    /// Per-rank, per-iteration phase trace.
    pub trace: TrainTrace,
    /// All ranks' communication records merged — per-collective bytes and
    /// message counts for the run.
    pub comm: msg::CostLog,
    /// Assign kernel the run executed with.
    pub kernel: AssignKernel,
    /// Update path the run executed with.
    pub update: UpdateMode,
    /// Whether the dense centroid-sums merge resolved to the ring
    /// AllReduce (from [`MergeStrategy::use_ring`] at the configured
    /// geometry).
    pub merge_ring: bool,
    /// All ranks' injected-fault and retry tallies merged (all zero when no
    /// fault plan was active).
    pub fault_stats: msg::FaultStats,
    /// Iterations the fault plan forced into degraded mode (delta→dense,
    /// ring→tree).
    pub degraded_iterations: u64,
    /// Bounded-assign mode the run resolved to (`None` when pruning was
    /// off or `auto` declined).
    pub bounds_mode: BoundsMode,
    /// Pruning counters merged across ranks (all zero when bounds were
    /// off).
    pub bounds: BoundsStats,
}

impl<S: Scalar> HierResult<S> {
    /// Assign-phase throughput: samples scored per critical-path assign
    /// second, over every iteration. `None` when the assign phase was too
    /// fast to measure.
    pub fn assign_samples_per_s(&self) -> Option<f64> {
        if self.timings.assign > 0.0 {
            Some(self.labels.len() as f64 * self.iterations as f64 / self.timings.assign)
        } else {
            None
        }
    }

    /// Publish this run into a metrics registry: the phase trace under
    /// `train_*`, the communication tallies under `comm_*`, and run-level
    /// gauges (`train_objective`, `train_converged`, the selected kernel's
    /// code as `train_assign_kernel` and the assign throughput — both as
    /// the kernel-agnostic `train_assign_samples_per_s` and as a per-kernel
    /// `train_assign_samples_per_s_<name>` gauge, so a registry that
    /// accumulates runs keeps one comparable throughput per kernel).
    pub fn export_metrics(&self, registry: &swkm_obs::MetricsRegistry) {
        self.trace.export_into(registry, "train");
        self.comm.export_into(registry, "comm");
        registry.gauge_set("train_objective", self.objective);
        registry.gauge_set("train_converged", if self.converged { 1.0 } else { 0.0 });
        registry.gauge_set("train_assign_kernel", self.kernel.code() as f64);
        registry.gauge_set("train_update_mode", self.update.code() as f64);
        registry.gauge_set("train_merge_ring", if self.merge_ring { 1.0 } else { 0.0 });
        registry.gauge_set(
            "train_assign_samples_per_s",
            self.assign_samples_per_s().unwrap_or(0.0),
        );
        registry.gauge_set(
            &format!("train_assign_samples_per_s_{}", self.kernel.name()),
            self.assign_samples_per_s().unwrap_or(0.0),
        );
        self.fault_stats.export_into(registry);
        registry.counter_add("degraded_iterations", self.degraded_iterations);
        registry.gauge_set("train_bounds_mode", self.bounds_mode.code() as f64);
        registry.gauge_set("bounds_savings", self.bounds.savings());
        registry.gauge_set("bounds_distance_evals", self.bounds.distance_evals as f64);
        registry.gauge_set(
            "bounds_lloyd_equivalent",
            self.bounds.lloyd_equivalent as f64,
        );
        registry.gauge_set("bounds_filter_hits", self.bounds.global_filter_hits as f64);
        registry.gauge_set("bounds_group_hits", self.bounds.group_filter_hits as f64);
        registry.gauge_set("bounds_seed_scans", self.bounds.seed_scans as f64);
        registry.gauge_set("bounds_resets", self.bounds.resets as f64);
        registry.gauge_set("train_label_checksum", label_checksum(&self.labels) as f64);
    }
}

/// Order-sensitive 32-bit label checksum (FNV-1a over the label stream).
/// Exported as a gauge so two fits can be asserted bit-identical from
/// their metrics dumps alone; exactly representable in an f64 gauge.
pub fn label_checksum(labels: &[u32]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &l in labels {
        for b in l.to_le_bytes() {
            h ^= b as u32;
            h = h.wrapping_mul(16777619);
        }
    }
    h
}

/// Validate inputs shared by all levels.
pub(crate) fn validate<S: Scalar>(
    data: &Matrix<S>,
    init: &Matrix<S>,
    cfg: &HierConfig,
) -> Result<(), HierError> {
    if data.rows() == 0 {
        return Err(KMeansError::EmptyDataset.into());
    }
    let k = init.rows();
    if k == 0 {
        return Err(KMeansError::ZeroK.into());
    }
    if k > data.rows() {
        return Err(KMeansError::KExceedsN { k, n: data.rows() }.into());
    }
    if init.cols() != data.cols() {
        return Err(KMeansError::CentroidShape {
            expected_k: k,
            expected_d: data.cols(),
            got_rows: init.rows(),
            got_cols: init.cols(),
        }
        .into());
    }
    if cfg.units == 0 {
        return Err(HierError::InvalidConfig("units must be positive".into()));
    }
    if cfg.level != Level::L1 {
        if cfg.group_units == 0 {
            return Err(HierError::InvalidConfig(
                "group_units must be positive".into(),
            ));
        }
        if cfg.group_units > cfg.units {
            return Err(HierError::InvalidConfig(format!(
                "group_units {} exceeds units {}",
                cfg.group_units, cfg.units
            )));
        }
    }
    if cfg.level == Level::L3 && cfg.cpes_per_cg == 0 {
        return Err(HierError::InvalidConfig(
            "cpes_per_cg must be positive".into(),
        ));
    }
    if cfg.merge == MergeStrategy::Ring && cfg.update == UpdateMode::Delta {
        return Err(HierError::InvalidConfig(
            "merge strategy `ring` is incompatible with `--update delta`: delta's \
             sparse merges depend on the tree's length-independent fold order"
                .into(),
        ));
    }
    Ok(())
}

/// What each SPMD rank hands back: the final centroids (exactly one rank),
/// iterations run, the convergence flag, its per-iteration phase trace,
/// and its bounded-assign counters (zeroed when bounds were off).
pub(crate) type RankOutput<S> = (Option<Matrix<S>>, usize, bool, Vec<IterTiming>, BoundsStats);

/// Resolve a config's fault plan into what [`msg::World::run_with_faults`]
/// wants: the active plan (if any) and the world receive deadline (the
/// plan's override, or the historical 60 s default).
pub(crate) fn fault_setup(
    cfg: &HierConfig,
) -> (Option<std::sync::Arc<msg::FaultPlan>>, std::time::Duration) {
    let plan = cfg
        .faults
        .clone()
        .filter(|p| p.is_active())
        .map(std::sync::Arc::new);
    let timeout = plan
        .as_deref()
        .and_then(|p| p.timeout())
        .unwrap_or(std::time::Duration::from_secs(60));
    (plan, timeout)
}

/// Per-rank training-phase tracer: emits the `assign`/`merge`/`update`/
/// `exchange`/`iteration` spans on the `train` process track (one track
/// per world rank) when [`HierConfig::trace`] is set, and is a no-op
/// otherwise. [`PhaseTracer::attach`] also wires the *comms* tracer into
/// the world communicator (track = world rank), so splits inherit it and
/// every collective lands on the same rank's comm timeline.
///
/// The span durations are the exact values the executors fold into
/// [`IterTiming`] — one measurement feeds both the timing report and the
/// trace, so the two can never disagree by more than event-emission
/// overhead.
pub(crate) struct PhaseTracer {
    tracer: Option<swkm_obs::Tracer>,
}

impl PhaseTracer {
    pub(crate) fn attach(cfg: &HierConfig, comm: &mut msg::Comm) -> PhaseTracer {
        let tracer = cfg.trace.as_ref().map(|buf| {
            let rank = comm.rank() as u32;
            comm.set_tracer(swkm_obs::Tracer::new(
                std::sync::Arc::clone(buf),
                "comm",
                rank,
            ));
            swkm_obs::Tracer::new(std::sync::Arc::clone(buf), "train", rank)
        });
        PhaseTracer { tracer }
    }

    /// Seconds since `since`, recorded as a `Complete` span ending now.
    /// Returns the measured duration so call sites can do
    /// `it.assign += pt.phase("assign", t0, iter)`.
    pub(crate) fn phase(&self, name: &'static str, since: std::time::Instant, iter: usize) -> f64 {
        let secs = since.elapsed().as_secs_f64();
        if let Some(t) = &self.tracer {
            let dur_ns = (secs * 1e9) as u64;
            let end_ns = t.buffer().now_ns();
            t.complete_at(
                name,
                end_ns.saturating_sub(dur_ns),
                dur_ns,
                0,
                "iter",
                iter as u64,
            );
        }
        secs
    }

    /// Instant marker (e.g. a degraded iteration) tagged with the
    /// iteration number.
    pub(crate) fn mark(&self, name: &'static str, iter: usize) {
        if let Some(t) = &self.tracer {
            t.instant_full(name, 0, "iter", iter as u64);
        }
    }
}

/// Unwrap per-rank closure results, surfacing the first rank's typed
/// communication failure. Ranks fail together (a starved peer times out
/// when its partner exhausts retries), so reporting the lowest rank's error
/// is deterministic enough for tests.
pub(crate) fn collect_ranks<S: Scalar>(
    outs: Vec<Result<RankOutput<S>, msg::CommError>>,
) -> Result<Vec<RankOutput<S>>, HierError> {
    outs.into_iter()
        .map(|r| r.map_err(HierError::Comm))
        .collect()
}

/// Attach the merged per-rank fault tallies and the degraded-iteration
/// count to an assembled result.
pub(crate) fn finalize_faults<S: Scalar>(
    result: &mut HierResult<S>,
    cfg: &HierConfig,
    stats: &[msg::FaultStats],
) {
    let mut merged = msg::FaultStats::new();
    for s in stats {
        merged.merge(s);
    }
    result.fault_stats = merged;
    if let Some(plan) = &cfg.faults {
        result.degraded_iterations = (0..result.iterations)
            .filter(|&i| plan.degrade_iteration(i))
            .count() as u64;
    }
}

/// Assemble a [`HierResult`] from per-rank outputs: exactly one rank
/// returns the final centroids; labels and objective are recomputed against
/// them with the serial assign kernel (the same final-assign step
/// `Lloyd::run_from` performs). Each rank hands back its per-iteration
/// phase trace; the legacy [`PhaseTimings`] critical path is derived from
/// the per-rank totals.
pub(crate) fn assemble<S: Scalar>(
    data: &Matrix<S>,
    outs: Vec<RankOutput<S>>,
    costs: Vec<msg::CostLog>,
    cfg: &HierConfig,
    merge_ring: bool,
) -> HierResult<S> {
    let mut iterations = 0;
    let mut converged = false;
    let mut centroids = None;
    let mut per_rank = Vec::with_capacity(outs.len());
    let mut bounds = BoundsStats::default();
    for (c, iters, conv, trace, bstats) in outs {
        per_rank.push(trace);
        bounds.merge(&bstats);
        if let Some(c) = c {
            assert!(centroids.is_none(), "two ranks returned centroids");
            centroids = Some(c);
            iterations = iters;
            converged = conv;
        }
    }
    let trace = TrainTrace { per_rank };
    let rank_totals: Vec<PhaseTimings> = (0..trace.ranks())
        .map(|r| {
            let t = trace.rank_total(r);
            PhaseTimings {
                assign: t.assign,
                merge: t.merge,
                update: t.update,
                exchange: t.exchange,
            }
        })
        .collect();
    let timings = PhaseTimings::critical_path(&rank_totals);
    let centroids = centroids.expect("no rank returned centroids");
    let bounds_mode = cfg.resolved_bounds(data.rows(), centroids.rows(), centroids.cols());
    let mut labels = vec![0u32; data.rows()];
    let objective = kmeans_core::assign_step(data, &centroids, &mut labels) / data.rows() as f64;
    let mut comm = msg::CostLog::new();
    for c in &costs {
        comm.merge(c);
    }
    HierResult {
        centroids,
        labels,
        iterations,
        converged,
        objective,
        comm_bytes: comm.total_bytes(),
        comm_messages: comm.total_messages(),
        timings,
        trace,
        comm,
        kernel: cfg.kernel,
        update: cfg.update,
        merge_ring,
        fault_stats: msg::FaultStats::new(),
        degraded_iterations: 0,
        bounds_mode,
        bounds,
    }
}

/// Run the configured level on `data` from `init` centroids.
pub fn fit<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    cfg: &HierConfig,
) -> Result<HierResult<S>, HierError> {
    validate(data, &init, cfg)?;
    match cfg.level {
        Level::L1 => crate::level1::run(data, init, cfg),
        Level::L2 => crate::level2::run(data, init, cfg),
        Level::L3 => crate::level3::run(data, init, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_data() -> Matrix<f64> {
        Matrix::from_rows(&[&[0.0f64, 0.0], &[1.0, 0.0], &[10.0, 10.0], &[11.0, 10.0]])
    }

    #[test]
    fn validation_catches_bad_inputs() {
        let data = small_data();
        let cfg = HierConfig::new(Level::L2);
        let empty = Matrix::<f64>::zeros(0, 2);
        assert!(matches!(
            fit(&empty, Matrix::zeros(1, 2), &cfg).unwrap_err(),
            HierError::KMeans(KMeansError::EmptyDataset)
        ));
        assert!(matches!(
            fit(&data, Matrix::zeros(0, 2), &cfg).unwrap_err(),
            HierError::KMeans(KMeansError::ZeroK)
        ));
        assert!(matches!(
            fit(&data, Matrix::zeros(5, 2), &cfg).unwrap_err(),
            HierError::KMeans(KMeansError::KExceedsN { .. })
        ));
        assert!(matches!(
            fit(&data, Matrix::zeros(2, 3), &cfg).unwrap_err(),
            HierError::KMeans(KMeansError::CentroidShape { .. })
        ));
    }

    #[test]
    fn config_validation() {
        let data = small_data();
        let init = Matrix::from_rows(&[&[0.0f64, 0.0], &[10.0, 10.0]]);
        let mut cfg = HierConfig::new(Level::L2);
        cfg.units = 0;
        assert!(matches!(
            fit(&data, init.clone(), &cfg).unwrap_err(),
            HierError::InvalidConfig(_)
        ));
        let mut cfg = HierConfig::new(Level::L2);
        cfg.group_units = 16;
        cfg.units = 4;
        let err = fit(&data, init.clone(), &cfg).unwrap_err();
        assert!(err.to_string().contains("exceeds units"));
        let mut cfg = HierConfig::new(Level::L3);
        cfg.cpes_per_cg = 0;
        assert!(fit(&data, init, &cfg).is_err());
    }

    #[test]
    fn train_trace_critical_path_and_imbalance() {
        let fast = IterTiming {
            assign: 0.1,
            merge: 0.05,
            update: 0.02,
            exchange: 0.0,
            wall: 0.18,
            moved_fraction: 0.5,
        };
        let slow = IterTiming {
            assign: 0.3,
            merge: 0.01,
            update: 0.04,
            exchange: 0.0,
            wall: 0.36,
            moved_fraction: 0.125,
        };
        let trace = TrainTrace {
            per_rank: vec![vec![fast, fast], vec![slow, slow]],
        };
        assert_eq!(trace.ranks(), 2);
        assert_eq!(trace.iterations(), 2);
        let crit = trace.iter_critical(0);
        assert_eq!(crit.assign, 0.3);
        assert_eq!(crit.merge, 0.05);
        assert_eq!(crit.update, 0.04);
        assert_eq!(crit.wall, 0.36);
        assert_eq!(crit.moved_fraction, 0.5);
        // max assign total 0.6 vs mean 0.4 → 1.5× imbalance.
        assert!((trace.assign_imbalance() - 1.5).abs() < 1e-12);
        assert!((fast.phase_sum() - 0.17).abs() < 1e-12);

        let reg = swkm_obs::MetricsRegistry::new();
        trace.export_into(&reg, "train");
        assert_eq!(reg.histogram("train_assign_ns").unwrap().count(), 4);
        assert_eq!(reg.gauge("train_ranks"), Some(2.0));
        assert_eq!(reg.gauge("train_iterations"), Some(2.0));
        assert!((reg.gauge("train_assign_s").unwrap() - 0.6).abs() < 1e-12);
        assert!((reg.gauge("train_wall_s").unwrap() - 0.72).abs() < 1e-12);
        assert_eq!(reg.gauge("train_moved_fraction"), Some(0.5));
    }

    #[test]
    fn merge_strategy_names_parse_and_resolve() {
        for m in MergeStrategy::ALL {
            assert_eq!(MergeStrategy::parse(m.name()), Ok(m));
            assert_eq!(m.name().parse::<MergeStrategy>(), Ok(m));
        }
        assert!(MergeStrategy::parse("mesh").unwrap_err().contains("mesh"));
        assert_eq!(MergeStrategy::default(), MergeStrategy::Auto);

        let big = RING_CROSSOVER_BYTES;
        // Tree never rings; Ring always does (except under delta).
        assert!(!MergeStrategy::Tree.use_ring(big, 8, UpdateMode::TwoPass));
        assert!(MergeStrategy::Ring.use_ring(16, 2, UpdateMode::TwoPass));
        assert!(!MergeStrategy::Ring.use_ring(big, 8, UpdateMode::Delta));
        // Auto needs size, rank count, and a non-delta update path.
        assert!(MergeStrategy::Auto.use_ring(big, 4, UpdateMode::Fused));
        assert!(!MergeStrategy::Auto.use_ring(big - 1, 4, UpdateMode::Fused));
        assert!(!MergeStrategy::Auto.use_ring(big, 3, UpdateMode::Fused));
        assert!(!MergeStrategy::Auto.use_ring(big, 8, UpdateMode::Delta));
    }

    #[test]
    fn ring_plus_delta_is_rejected() {
        let data = small_data();
        let init = Matrix::from_rows(&[&[0.0f64, 0.0], &[10.0, 10.0]]);
        let mut cfg = HierConfig::new(Level::L1);
        cfg.update = UpdateMode::Delta;
        cfg.merge = MergeStrategy::Ring;
        let err = fit(&data, init, &cfg).unwrap_err();
        assert!(err.to_string().contains("incompatible"));
    }

    #[test]
    fn empty_trace_is_degenerate_but_safe() {
        let trace = TrainTrace::default();
        assert_eq!(trace.iterations(), 0);
        assert_eq!(trace.assign_imbalance(), 1.0);
        let reg = swkm_obs::MetricsRegistry::new();
        trace.export_into(&reg, "train");
        assert_eq!(reg.gauge("train_ranks"), Some(0.0));
    }

    #[test]
    fn error_display() {
        let e: HierError = KMeansError::ZeroK.into();
        assert!(e.to_string().contains("positive"));
        let e = HierError::InvalidConfig("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
