//! Out-of-core execution: exact Lloyd over a [`SampleSource`] that is never
//! materialised.
//!
//! This is the software analogue of what the real machine does physically:
//! samples stream through each CPE's double-buffered LDM via DMA, one
//! window at a time, while centroid shards stay resident. Each SPMD rank
//! owns a contiguous stripe of the source and pulls it in windows of
//! `window` samples; the per-window partial argmins merge across the
//! centroid-sharing group with one min-loc AllReduce (the Level-2/3
//! pattern), and the Update step reduces shards across groups. Results are
//! identical to the in-memory executors — only the residency differs.

use crate::executor::{HierError, HierResult};
use crate::level1::sum_slices;
use crate::level2::{merge_min_loc, MINLOC_NEUTRAL};
use crate::partition::split_range;
use kmeans_core::{argmin_centroid, assign_step, Matrix, SampleSource};
use msg::World;

/// Configuration of a streaming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// SPMD ranks (virtual CPEs / CGs).
    pub units: usize,
    /// Units per centroid-sharing group (1 = pure dataflow partition).
    pub group_units: usize,
    /// Samples materialised per window per rank — the LDM double-buffer
    /// size of the real machine.
    pub window: usize,
    pub max_iters: usize,
    pub tol: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            units: 8,
            group_units: 2,
            window: 1_024,
            max_iters: 100,
            tol: 1e-9,
        }
    }
}

/// Cluster a streaming source from explicit initial centroids.
pub fn fit_source<Src: SampleSource + Sync>(
    source: &Src,
    init: Matrix<f32>,
    cfg: &StreamConfig,
) -> Result<HierResult<f32>, HierError> {
    let n = source.len() as usize;
    let d = source.dims();
    let k = init.rows();
    if n == 0 {
        return Err(kmeans_core::KMeansError::EmptyDataset.into());
    }
    if k == 0 {
        return Err(kmeans_core::KMeansError::ZeroK.into());
    }
    if init.cols() != d {
        return Err(kmeans_core::KMeansError::CentroidShape {
            expected_k: k,
            expected_d: d,
            got_rows: init.rows(),
            got_cols: init.cols(),
        }
        .into());
    }
    if cfg.units == 0 || cfg.group_units == 0 || !cfg.units.is_multiple_of(cfg.group_units) {
        return Err(HierError::InvalidConfig(format!(
            "units {} must be a positive multiple of group_units {}",
            cfg.units, cfg.group_units
        )));
    }
    if cfg.window == 0 {
        return Err(HierError::InvalidConfig("window must be positive".into()));
    }
    let g = cfg.group_units;
    let n_groups = cfg.units / g;

    let (outs, costs) = World::run_with_cost(cfg.units, |comm| {
        let rank = comm.rank();
        let group = rank / g;
        let member = rank % g;
        let mut group_comm = comm.split(group as u64, member as u64);
        let mut shard_comm = comm.split(member as u64, group as u64);

        let my_centroids = split_range(k, g, member);
        let my_samples = split_range(n, n_groups, group);
        let shard_k = my_centroids.len();
        let mut shard = init.slice_rows(my_centroids.clone());

        let mut iterations = 0usize;
        let mut converged = false;
        let mut sums = vec![0.0f32; shard_k * d];
        let mut counts = vec![0u64; shard_k];
        let mut window_buf = Matrix::<f32>::zeros(cfg.window, d);

        for _ in 0..cfg.max_iters {
            sums.iter_mut().for_each(|v| *v = 0.0);
            counts.iter_mut().for_each(|v| *v = 0);

            // ---- Stream the stripe window by window. ----
            let mut start = my_samples.start;
            while start < my_samples.end {
                let len = cfg.window.min(my_samples.end - start);
                // "DMA" the window in: fill the resident double buffer.
                for w in 0..len {
                    source.fill((start + w) as u64, window_buf.row_mut(w));
                }
                // Partial argmin over my shard for the whole window.
                let mut pairs: Vec<(f64, u64)> = (0..len)
                    .map(|w| {
                        if shard_k == 0 {
                            MINLOC_NEUTRAL
                        } else {
                            let (j_local, dist) = argmin_centroid(window_buf.row(w), &shard);
                            (dist as f64, (my_centroids.start + j_local) as u64)
                        }
                    })
                    .collect();
                merge_min_loc::<f32>(&mut group_comm, &mut pairs)
                    .unwrap_or_else(|e| panic!("stream min-loc merge failed: {e}"));
                // Accumulate winners in my shard.
                for (w, &(_, j)) in pairs.iter().enumerate() {
                    let j = j as usize;
                    if my_centroids.contains(&j) {
                        let j_local = j - my_centroids.start;
                        counts[j_local] += 1;
                        let acc = &mut sums[j_local * d..(j_local + 1) * d];
                        for (a, x) in acc.iter_mut().zip(window_buf.row(w)) {
                            *a += *x;
                        }
                    }
                }
                start += len;
            }

            // ---- Update across groups. ----
            shard_comm.allreduce_with(&mut sums, sum_slices::<f32>);
            shard_comm.allreduce_sum_u64(&mut counts);
            let mut worst_shift_sq = 0.0f64;
            for j_local in 0..shard_k {
                if counts[j_local] == 0 {
                    continue;
                }
                let inv = 1.0f32 / counts[j_local] as f32;
                let mut shift_sq = 0.0f64;
                for u in 0..d {
                    let next = sums[j_local * d + u] * inv;
                    let diff = (next - shard.get(j_local, u)) as f64;
                    shift_sq += diff * diff;
                    shard.set(j_local, u, next);
                }
                worst_shift_sq = worst_shift_sq.max(shift_sq);
            }
            let mut shift = vec![worst_shift_sq];
            comm.allreduce_with(&mut shift, |acc, x| {
                acc[0] = acc[0].max(x[0]);
            });
            iterations += 1;
            if shift[0].sqrt() <= cfg.tol {
                converged = true;
                break;
            }
        }

        let contribution = (group == 0).then(|| (my_centroids.start, shard.clone().into_vec()));
        let gathered = comm.gather(0, contribution);
        let full = gathered.map(|parts| {
            let mut flat = vec![0.0f32; k * d];
            for (start, rows) in parts.into_iter().flatten() {
                flat[start * d..start * d + rows.len()].copy_from_slice(&rows);
            }
            Matrix::from_vec(k, d, flat)
        });
        (full, iterations, converged)
    });

    // Assemble, then stream one final labelling pass.
    let mut iterations = 0;
    let mut converged = false;
    let mut centroids = None;
    for (c, iters, conv) in outs {
        if let Some(c) = c {
            centroids = Some(c);
            iterations = iters;
            converged = conv;
        }
    }
    let centroids = centroids.expect("no rank returned centroids");
    let mut labels = vec![0u32; n];
    let mut objective_sum = 0.0f64;
    let window = cfg.window;
    let mut buf = Matrix::<f32>::zeros(window, d);
    let mut start = 0usize;
    while start < n {
        let len = window.min(n - start);
        for w in 0..len {
            source.fill((start + w) as u64, buf.row_mut(w));
        }
        let chunk = buf.slice_rows(0..len);
        objective_sum += assign_step(&chunk, &centroids, &mut labels[start..start + len]);
        start += len;
    }
    Ok(HierResult {
        centroids,
        labels,
        iterations,
        converged,
        objective: objective_sum / n as f64,
        comm_bytes: costs.iter().map(|c| c.total_bytes()).sum(),
        comm_messages: costs.iter().map(|c| c.total_messages()).sum(),
        timings: crate::executor::PhaseTimings::default(),
        trace: crate::executor::TrainTrace::default(),
        comm: {
            let mut merged = msg::CostLog::new();
            for c in &costs {
                merged.merge(c);
            }
            merged
        },
        kernel: kmeans_core::AssignKernel::Scalar,
        update: kmeans_core::UpdateMode::TwoPass,
        merge_ring: false,
        fault_stats: msg::FaultStats::new(),
        degraded_iterations: 0,
        bounds_mode: kmeans_core::BoundsMode::None,
        bounds: kmeans_core::BoundsStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::{init_centroids, InitMethod, KMeansConfig, Lloyd, MatrixSource};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let flat: Vec<f32> = (0..n * d).map(|_| rng.gen_range(-5.0..5.0)).collect();
        Matrix::from_vec(n, d, flat)
    }

    #[test]
    fn streaming_matches_in_memory_lloyd() {
        let data = random_data(500, 12, 3);
        let init = init_centroids(&data, 7, InitMethod::Forgy, 5);
        let src = MatrixSource::new(&data);
        let cfg = StreamConfig {
            units: 8,
            group_units: 4,
            window: 64,
            max_iters: 5,
            tol: 0.0,
        };
        let streamed = fit_source(&src, init.clone(), &cfg).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(7).with_max_iters(5).with_tol(0.0),
        )
        .unwrap();
        let diff = streamed.centroids.max_abs_diff(&serial.centroids);
        assert!(diff < 1e-3, "diff {diff}"); // f32 accumulation-order tolerance
        assert_eq!(streamed.labels, serial.labels);
        assert_eq!(streamed.iterations, serial.iterations);
    }

    #[test]
    fn window_size_does_not_change_result() {
        let data = random_data(300, 8, 9);
        let init = init_centroids(&data, 5, InitMethod::Forgy, 2);
        let src = MatrixSource::new(&data);
        let reference = fit_source(
            &src,
            init.clone(),
            &StreamConfig {
                units: 4,
                group_units: 2,
                window: 1,
                max_iters: 4,
                tol: 0.0,
            },
        )
        .unwrap();
        for window in [7usize, 50, 1_000] {
            let r = fit_source(
                &src,
                init.clone(),
                &StreamConfig {
                    units: 4,
                    group_units: 2,
                    window,
                    max_iters: 4,
                    tol: 0.0,
                },
            )
            .unwrap();
            assert!(
                r.centroids.max_abs_diff(&reference.centroids) < 1e-4,
                "window={window}"
            );
            assert_eq!(r.labels, reference.labels, "window={window}");
        }
    }

    #[test]
    fn clusters_a_virtual_imagenet_window() {
        // The whole point: cluster a source that is never materialised.
        let src = datasets::ImageNetSource::new(400, 3_072, 13);
        let sample = src.materialize(0, 32);
        let init = init_centroids(&sample, 6, InitMethod::KMeansPlusPlus, 3);
        let cfg = StreamConfig {
            units: 4,
            group_units: 2,
            window: 50,
            max_iters: 8,
            tol: 1e-6,
        };
        let r = fit_source(&src, init, &cfg).unwrap();
        assert_eq!(r.centroids.rows(), 6);
        assert_eq!(r.labels.len(), 400);
        assert!(r.objective.is_finite());
    }

    #[test]
    fn validation_errors() {
        let data = random_data(10, 3, 1);
        let src = MatrixSource::new(&data);
        let init = init_centroids(&data, 2, InitMethod::Forgy, 1);
        let bad = StreamConfig {
            window: 0,
            ..StreamConfig::default()
        };
        assert!(fit_source(&src, init.clone(), &bad).is_err());
        let bad_units = StreamConfig {
            units: 5,
            group_units: 2,
            ..StreamConfig::default()
        };
        assert!(fit_source(&src, init.clone(), &bad_units).is_err());
        assert!(fit_source(&src, Matrix::zeros(2, 9), &StreamConfig::default()).is_err());
    }

    #[test]
    fn converges_and_flags() {
        let blobs = datasets::GaussianMixture::new(200, 6, 3)
            .with_seed(8)
            .with_spread(25.0)
            .generate::<f32>();
        let src = MatrixSource::new(&blobs.data);
        let init = init_centroids(&blobs.data, 3, InitMethod::KMeansPlusPlus, 2);
        let r = fit_source(&src, init, &StreamConfig::default()).unwrap();
        assert!(r.converged);
        assert!(r.comm_bytes > 0);
    }
}
