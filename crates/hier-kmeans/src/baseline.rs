//! Shared-memory rayon baseline: the "general parallel k-means" of the
//! paper's Table I, for benchmark comparison against the hierarchical
//! executors and as the fastest way to cluster on a single host.
//!
//! The Assign step fans out over sample chunks with `rayon`; each chunk
//! produces a private `(sums, counts)` accumulator pair that a reduction
//! tree folds — the same map/reduce shape as the distributed levels, minus
//! the message passing.

use crate::executor::{HierError, HierResult};
use kmeans_core::{argmin_centroid, assign_step, Matrix, Scalar};
use rayon::prelude::*;

/// Configuration of the rayon baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    pub max_iters: usize,
    pub tol: f64,
    /// Samples per rayon work item.
    pub chunk: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            max_iters: 100,
            tol: 1e-9,
            chunk: 1024,
        }
    }
}

/// Per-chunk accumulator.
struct Partial<S> {
    sums: Vec<S>,
    counts: Vec<u64>,
}

impl<S: Scalar> Partial<S> {
    fn new(k: usize, d: usize) -> Self {
        Partial {
            sums: vec![S::ZERO; k * d],
            counts: vec![0u64; k],
        }
    }

    fn merge(mut self, other: Partial<S>) -> Partial<S> {
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += *b;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self
    }
}

/// Run Lloyd iterations with rayon-parallel Assign/Update.
pub fn run<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    cfg: &BaselineConfig,
) -> Result<HierResult<S>, HierError> {
    crate::executor::validate(
        data,
        &init,
        &crate::executor::HierConfig::new(perf_model::Level::L1),
    )?;
    let n = data.rows();
    let d = data.cols();
    let k = init.rows();
    let mut centroids = init;
    let mut iterations = 0usize;
    let mut converged = false;

    for _ in 0..cfg.max_iters {
        let chunk = cfg.chunk.max(1);
        let partial = (0..n)
            .into_par_iter()
            .chunks(chunk)
            .map(|indices| {
                let mut p = Partial::<S>::new(k, d);
                for i in indices {
                    let (j, _) = argmin_centroid(data.row(i), &centroids);
                    p.counts[j] += 1;
                    let acc = &mut p.sums[j * d..(j + 1) * d];
                    for (a, x) in acc.iter_mut().zip(data.row(i)) {
                        *a += *x;
                    }
                }
                p
            })
            .reduce(|| Partial::new(k, d), Partial::merge);

        let mut worst_shift_sq = 0.0f64;
        for j in 0..k {
            if partial.counts[j] == 0 {
                continue;
            }
            let inv = S::ONE / S::from_usize(partial.counts[j] as usize);
            let mut shift_sq = 0.0f64;
            for u in 0..d {
                let next = partial.sums[j * d + u] * inv;
                let diff = next.to_f64() - centroids.get(j, u).to_f64();
                shift_sq += diff * diff;
                centroids.set(j, u, next);
            }
            worst_shift_sq = worst_shift_sq.max(shift_sq);
        }
        iterations += 1;
        if worst_shift_sq.sqrt() <= cfg.tol {
            converged = true;
            break;
        }
    }

    let mut labels = vec![0u32; n];
    let objective = assign_step(data, &centroids, &mut labels) / n as f64;
    Ok(HierResult {
        centroids,
        labels,
        iterations,
        converged,
        objective,
        comm_bytes: 0,
        comm_messages: 0,
        timings: crate::executor::PhaseTimings::default(),
        trace: crate::executor::TrainTrace::default(),
        comm: msg::CostLog::new(),
        kernel: kmeans_core::AssignKernel::Scalar,
        update: kmeans_core::UpdateMode::TwoPass,
        merge_ring: false,
        fault_stats: msg::FaultStats::new(),
        degraded_iterations: 0,
        bounds_mode: kmeans_core::BoundsMode::None,
        bounds: kmeans_core::BoundsStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::{init_centroids, InitMethod, KMeansConfig, Lloyd};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-5.0..5.0)).collect();
        Matrix::from_vec(n, d, flat)
    }

    #[test]
    fn matches_serial_lloyd() {
        let data = random_data(500, 8, 77);
        let init = init_centroids(&data, 9, InitMethod::Forgy, 31);
        let cfg = BaselineConfig {
            max_iters: 6,
            tol: 0.0,
            chunk: 64,
        };
        let par = run(&data, init.clone(), &cfg).unwrap();
        let serial = Lloyd::run_from(
            &data,
            init,
            &KMeansConfig::new(9).with_max_iters(6).with_tol(0.0),
        )
        .unwrap();
        assert!(
            par.centroids.max_abs_diff(&serial.centroids) < 1e-9,
            "diff {}",
            par.centroids.max_abs_diff(&serial.centroids)
        );
        assert_eq!(par.labels, serial.labels);
        assert_eq!(par.iterations, serial.iterations);
    }

    #[test]
    fn chunk_size_does_not_change_result() {
        let data = random_data(300, 5, 13);
        let init = init_centroids(&data, 4, InitMethod::Forgy, 5);
        let reference = run(
            &data,
            init.clone(),
            &BaselineConfig {
                max_iters: 5,
                tol: 0.0,
                chunk: 1,
            },
        )
        .unwrap();
        for chunk in [7usize, 100, 1000, 100_000] {
            let r = run(
                &data,
                init.clone(),
                &BaselineConfig {
                    max_iters: 5,
                    tol: 0.0,
                    chunk,
                },
            )
            .unwrap();
            assert!(r.centroids.max_abs_diff(&reference.centroids) < 1e-9);
            assert_eq!(r.labels, reference.labels, "chunk={chunk}");
        }
    }

    #[test]
    fn validates_inputs() {
        let data = Matrix::<f64>::zeros(0, 3);
        assert!(run(&data, Matrix::zeros(1, 3), &BaselineConfig::default()).is_err());
    }

    #[test]
    fn converges() {
        let data = random_data(400, 3, 1);
        let init = init_centroids(&data, 3, InitMethod::KMeansPlusPlus, 2);
        let r = run(&data, init, &BaselineConfig::default()).unwrap();
        assert!(r.converged);
        assert!(r.comm_bytes == 0);
    }
}
