//! Three-level hierarchical parallel k-means — the paper's contribution.
//!
//! The three partition levels map the Lloyd algorithm onto the Sunway
//! hardware hierarchy:
//!
//! * [`level1`] — **n-partition** (Algorithm 1): samples striped over CPEs,
//!   every CPE holds all k centroids; Update is one AllReduce.
//! * [`level2`] — **nk-partition** (Algorithm 2): CPE groups additionally
//!   partition the centroid set; the Assign step becomes a per-sample
//!   partial argmin plus a min-loc merge across the group.
//! * [`level3`] — **nkd-partition** (Algorithm 3): each sample's dimensions
//!   are sliced over the 64 CPEs of a CG, centroids over groups of CGs, and
//!   dataflow over CG groups — all of n, k, d scale independently (C1'').
//!
//! The executors here are *functional*: they run the exact partition
//! arithmetic of Algorithms 1–3 as an SPMD program over the [`msg`] runtime
//! (virtual CPEs/CGs as ranks), producing bit-deterministic clusterings that
//! the test-suite compares against serial Lloyd. Wall-clock estimates for
//! full-machine configurations come from [`perf_model`], which prices the
//! exact communication pattern these executors emit (see
//! [`executor::HierResult::comm_bytes`]).
//!
//! Entry points: [`HierKMeans`] for the high-level API,
//! [`executor::fit`] for explicit control, [`auto`] for model-driven level
//! selection, [`baseline`] for the shared-memory rayon baseline.

pub mod auto;
pub mod baseline;
pub(crate) mod bounded;
pub mod executor;
pub mod level1;
pub mod level2;
pub mod level3;
pub mod partition;
pub mod plan;
pub mod stream;

pub use auto::{choose_level, gemm_group_units};
pub use executor::{
    fit, label_checksum, HierConfig, HierError, HierResult, IterTiming, MergeStrategy,
    PhaseTimings, TrainTrace, RING_CROSSOVER_BYTES,
};
pub use kmeans_core::UpdateMode;
pub use msg::{CommError, FaultKind, FaultPlan, FaultStats, ScriptedFault};
pub use partition::split_range;
pub use perf_model::Level;
pub use stream::{fit_source, StreamConfig};

use kmeans_core::{Matrix, Scalar};

/// High-level façade: configure once, fit many datasets.
///
/// ```
/// use hier_kmeans::{HierKMeans, Level};
/// use kmeans_core::{init_centroids, InitMethod, Matrix};
///
/// // A toy dataset: two obvious clusters in 8 dimensions.
/// let mut rows = Vec::new();
/// for i in 0..32 {
///     let base = if i % 2 == 0 { 0.0f64 } else { 100.0 };
///     rows.push((0..8).map(|j| base + (i * j % 5) as f64 * 0.1).collect::<Vec<_>>());
/// }
/// let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
/// let data = Matrix::from_rows(&refs);
/// let init = init_centroids(&data, 2, InitMethod::KMeansPlusPlus, 7);
///
/// let result = HierKMeans::new(Level::L3)
///     .with_units(4)
///     .with_group_units(2)
///     .fit(&data, init)
///     .unwrap();
/// assert_eq!(result.centroids.rows(), 2);
/// assert!(result.converged);
/// ```
#[derive(Debug, Clone)]
pub struct HierKMeans {
    config: HierConfig,
}

impl HierKMeans {
    /// A fitter at the given partition level with library defaults
    /// (8 virtual units, group of 2, 100 iterations, tol 1e-9).
    pub fn new(level: Level) -> Self {
        HierKMeans {
            config: HierConfig::new(level),
        }
    }

    /// Number of SPMD units (virtual CPEs for Levels 1–2, virtual CGs for
    /// Level 3).
    pub fn with_units(mut self, units: usize) -> Self {
        self.config.units = units;
        self
    }

    /// Units per centroid-sharing group (ignored by Level 1).
    pub fn with_group_units(mut self, group_units: usize) -> Self {
        self.config.group_units = group_units;
        self
    }

    /// Width of the per-CG dimension partition (Level 3 only; 64 on the
    /// real machine).
    pub fn with_cpes_per_cg(mut self, cpes: usize) -> Self {
        self.config.cpes_per_cg = cpes;
        self
    }

    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.config.max_iters = max_iters;
        self
    }

    pub fn with_tol(mut self, tol: f64) -> Self {
        self.config.tol = tol;
        self
    }

    /// Assign kernel for every rank's inner loop (default: the exact
    /// scalar reference; see [`kmeans_core::AssignKernel`]).
    pub fn with_kernel(mut self, kernel: kmeans_core::AssignKernel) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Update path (default: the two-pass baseline; see
    /// [`kmeans_core::UpdateMode`]). All paths produce bitwise-identical
    /// results for a given kernel and merge strategy.
    pub fn with_update(mut self, update: UpdateMode) -> Self {
        self.config.update = update;
        self
    }

    /// Bounded-assign strategy (default: off; see
    /// [`kmeans_core::BoundsMode`]). `Auto` consults the perf model per
    /// run. Bounded runs are bitwise-identical to unbounded ones of the
    /// same kernel — pruning only skips provably-unchanged rows.
    pub fn with_bounds(mut self, bounds: kmeans_core::BoundsMode) -> Self {
        self.config.bounds = bounds;
        self
    }

    /// Dense-merge AllReduce strategy (default: size-based auto; see
    /// [`MergeStrategy`]).
    pub fn with_merge(mut self, merge: MergeStrategy) -> Self {
        self.config.merge = merge;
        self
    }

    /// Inject deterministic communication faults during training (default:
    /// none). The executors retry, time out, and degrade per
    /// [`FaultPlan`]; recovered runs stay bitwise-identical to fault-free
    /// ones, and injected/retry counts land in
    /// [`HierResult::fault_stats`](executor::HierResult::fault_stats).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = Some(plan);
        self
    }

    /// Record an event-level trace of the run into `buf` (default: off).
    /// Every rank's collectives land on a per-rank `comm` track and the
    /// `assign`/`merge`/`update`/`exchange` phases on a per-rank `train`
    /// track; export with [`swkm_obs::to_chrome_json`](swkm_obs::chrome::to_chrome_json).
    pub fn with_trace(mut self, buf: std::sync::Arc<swkm_obs::TraceBuffer>) -> Self {
        self.config.trace = Some(buf);
        self
    }

    /// Access the underlying configuration.
    pub fn config(&self) -> &HierConfig {
        &self.config
    }

    /// Cluster `data` starting from `init` centroids.
    pub fn fit<S: Scalar>(
        &self,
        data: &Matrix<S>,
        init: Matrix<S>,
    ) -> Result<HierResult<S>, HierError> {
        fit(data, init, &self.config)
    }
}
