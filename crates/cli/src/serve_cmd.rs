//! The serving-side subcommands: `train` (fit + freeze an artifact),
//! `predict` (load an artifact, label a batch) and `serve-bench` (closed-
//! loop load test of the request pipeline).

use crate::args::Args;
use kmeans_core::{ColumnStats, InitMethod, KMeansConfig, Lloyd, Matrix};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use swkm_serve::prelude::*;

/// The CLI works in `f32` end to end (the paper's serving precision).
type Elem = f32;

/// What a `serve-bench` run produced: one closed-loop report, or the
/// per-phase reports of a `--ramp` run.
enum BenchOutcome {
    Single(LoadReport),
    Ramp(RampReport),
}

/// Generate the query/training matrix for a named dataset — the same
/// catalogue `fit` uses.
fn dataset_matrix(args: &Args, k: usize) -> Result<Matrix<Elem>, String> {
    let dataset = args.get_str("dataset").unwrap_or("mixture");
    let n: usize = args.get_or("n", 4_096)?;
    Ok(match dataset {
        "kegg" => datasets::uci::kegg_network().generate(n),
        "road" => datasets::uci::road_network().generate(n),
        "census" => datasets::uci::us_census_1990().generate(n),
        "mixture" => {
            let d: usize = args.get_or("d", 16)?;
            datasets::GaussianMixture::new(n, d, k.max(2))
                .with_seed(args.get_or("seed", 0u64)?)
                .generate()
                .data
        }
        other => {
            return Err(format!(
                "unknown dataset `{other}` (kegg|road|census|mixture)"
            ))
        }
    })
}

fn parse_kernel(args: &Args) -> Result<Kernel, String> {
    match args.get_str("kernel") {
        None => Ok(Kernel::Scalar),
        Some(spec) => Kernel::parse(spec).map_err(|e| format!("--kernel: {e}")),
    }
}

/// Train with the serial Lloyd reference and freeze the model to disk.
pub fn cmd_train(args: &Args) -> Result<(), String> {
    let k: usize = args.require("k")?;
    let path = args
        .get_str("save-model")
        .ok_or("train needs --save-model <path>")?
        .to_string();
    let mut data = dataset_matrix(args, k)?;
    let standardize = args.get_str("standardize").is_some();
    let stats = if standardize {
        let stats = ColumnStats::compute(&data);
        stats.standardize(&mut data);
        Some(stats)
    } else {
        None
    };
    let config = KMeansConfig::new(k)
        .with_seed(args.get_or("seed", 0u64)?)
        .with_max_iters(args.get_or("max-iters", 100usize)?)
        .with_init(InitMethod::KMeansPlusPlus);
    let fit = Lloyd::run(&data, &config).map_err(|e| e.to_string())?;
    println!(
        "trained k={k} on n={} d={}: {} iterations (converged = {}), objective {:.5}",
        data.rows(),
        data.cols(),
        fit.iterations,
        fit.converged,
        fit.objective
    );
    let artifact = ModelArtifact::new(
        data.rows() as u64,
        fit.centroids,
        fit.iterations as u64,
        fit.objective,
        fit.converged,
        stats,
    );
    artifact.save(&path).map_err(|e| e.to_string())?;
    println!(
        "wrote {path} ({} bytes, format v{})",
        artifact.to_bytes().len(),
        swkm_serve::FORMAT_VERSION
    );
    Ok(())
}

/// Load a model artifact — from a flat file (`--model <path>`) or from a
/// model store's live generation (`--store <dir> --model-name <name>`) —
/// and label a batch of samples with the sharded index, printing the label
/// distribution.
pub fn cmd_predict(args: &Args) -> Result<(), String> {
    let artifact = match (args.get_str("model"), args.get_str("store")) {
        (Some(path), _) => ModelArtifact::<Elem>::load(path).map_err(|e| e.to_string())?,
        (None, Some(dir)) => {
            let name = args
                .get_str("model-name")
                .ok_or("predict --store needs --model-name <name>")?;
            let vfs = swkm_store::StdVfs::open(dir).map_err(|e| format!("--store {dir}: {e}"))?;
            let store =
                swkm_store::ModelStore::open(vfs).map_err(|e| format!("--store {dir}: {e}"))?;
            let (generation, artifact) =
                store.load_live::<Elem>(name).map_err(|e| e.to_string())?;
            println!("loaded {name}@g{generation} from store {dir}");
            artifact
        }
        (None, None) => return Err("predict needs --model <path> or --store <dir>".into()),
    };
    let shards: usize = args.get_or("shards", 4)?;
    let mut queries = dataset_matrix(args, artifact.meta.k)?;
    if queries.cols() != artifact.meta.d {
        return Err(format!(
            "query dimensionality {} does not match the model's d = {}",
            queries.cols(),
            artifact.meta.d
        ));
    }
    artifact.preprocess(&mut queries);
    let index = ShardedIndex::from_artifact(&artifact, shards).with_kernel(parse_kernel(args)?);
    println!(
        "model: k={} d={} (trained on {} samples, objective {:.5}); {} shard(s), {:?} kernel",
        artifact.meta.k,
        artifact.meta.d,
        artifact.meta.trained_samples,
        artifact.meta.objective,
        index.num_shards(),
        index.kernel()
    );
    let labels = index.assign_batch(&queries);
    let sizes = kmeans_core::objective::cluster_sizes(&labels, artifact.meta.k);
    println!(
        "labelled {} queries; cluster sizes: {sizes:?}",
        labels.len()
    );
    Ok(())
}

/// Closed-loop load test: train (or load) a model, serve it through the
/// full pipeline and report QPS / latency / shed fraction.
///
/// With `--model-churn N` a publisher thread runs alongside the load:
/// every `--churn-every-ms` it trains a perturbed model generation,
/// publishes it through a model store (`--store <dir>`, or an in-memory
/// store), loads it back and hot-swaps it into the server — all N swaps
/// complete even if the load finishes first, so `serve_model_swaps` is
/// deterministic for CI.
pub fn cmd_serve_bench(args: &Args) -> Result<(), String> {
    let k: usize = args.get_or("k", 64)?;
    let model_name = args.get_str("model-name").unwrap_or("bench").to_string();
    // The store backend behind churn/--store: a real directory when
    // `--store` is given, a shared in-memory one otherwise.
    let vfs: Box<dyn swkm_store::Vfs + Send> = match args.get_str("store") {
        Some(dir) => {
            Box::new(swkm_store::StdVfs::open(dir).map_err(|e| format!("--store {dir}: {e}"))?)
        }
        None => Box::new(swkm_store::SharedMemVfs::new()),
    };
    let registry = swkm_obs::MetricsRegistry::shared();
    let mut store = swkm_store::ModelStore::open_with_registry(vfs, Some(Arc::clone(&registry)))
        .map_err(|e| e.to_string())?;
    let artifact = match args.get_str("model") {
        Some(path) => ModelArtifact::<Elem>::load(path).map_err(|e| e.to_string())?,
        None if args.get_str("store").is_some() && store.live_generation(&model_name).is_some() => {
            // Serve the store's live generation of --model-name.
            let (generation, artifact) = store
                .load_live::<Elem>(&model_name)
                .map_err(|e| e.to_string())?;
            println!("serving {model_name}@g{generation} from the store");
            artifact
        }
        None => {
            // No artifact given: fit a quick in-process model.
            let data = dataset_matrix(args, k)?;
            let config = KMeansConfig::new(k)
                .with_seed(args.get_or("seed", 0u64)?)
                .with_max_iters(args.get_or("max-iters", 10usize)?)
                .with_init(InitMethod::KMeansPlusPlus);
            let fit = Lloyd::run(&data, &config).map_err(|e| e.to_string())?;
            ModelArtifact::new(
                data.rows() as u64,
                fit.centroids,
                fit.iterations as u64,
                fit.objective,
                fit.converged,
                None,
            )
        }
    };
    let mut queries = dataset_matrix(args, artifact.meta.k)?;
    if queries.cols() != artifact.meta.d {
        return Err(format!(
            "query dimensionality {} does not match the model's d = {}",
            queries.cols(),
            artifact.meta.d
        ));
    }
    artifact.preprocess(&mut queries);

    let shards: usize = args.get_or("shards", 4)?;
    let pipeline = PipelineConfig {
        queue_capacity: args.get_or("queue", 1024usize)?,
        workers: args.get_or("workers", 2usize)?,
        max_batch: args.get_or("batch", 64usize)?,
        linger: Duration::from_micros(args.get_or("linger-us", 200u64)?),
    };
    if pipeline.queue_capacity == 0 || pipeline.workers == 0 || pipeline.max_batch == 0 {
        return Err("--queue, --workers and --batch must all be positive".into());
    }
    let load = LoadGenConfig {
        clients: args.get_or("clients", 4usize)?,
        requests_per_client: args.get_or("requests", 2_500usize)?,
    };
    if load.clients == 0 {
        return Err("--clients must be positive".into());
    }
    // Event-core knobs: `--elastic` scales the worker pool between
    // `--min-shards` and `--max-shards`; `--slo-p99-us` arms SLO-aware
    // admission control; `--ramp` drives a base→peak→base client ramp.
    let elastic = args.get_str("elastic").is_some();
    let min_shards: usize = args.get_or("min-shards", 1usize)?;
    let max_shards: usize = args.get_or("max-shards", pipeline.workers.max(min_shards))?;
    if elastic && (min_shards == 0 || min_shards > max_shards) {
        return Err("--elastic needs 0 < --min-shards <= --max-shards".into());
    }
    let slo_p99_us: u64 = args.get_or("slo-p99-us", 0u64)?;
    let dispatch = DispatchConfig {
        queue_capacity: pipeline.queue_capacity,
        max_batch: pipeline.max_batch,
        linger: pipeline.linger,
        shards: if elastic {
            ElasticConfig::elastic(min_shards, max_shards)
        } else {
            ElasticConfig::fixed(pipeline.workers)
        },
        shard_queue: args.get_or("shard-queue", 4usize)?,
        tick: Duration::from_micros(args.get_or("tick-us", 2_000u64)?),
        admission: if slo_p99_us > 0 {
            Some(AdmissionConfig::with_slo_p99_ns(slo_p99_us * 1_000))
        } else {
            None
        },
    };
    if dispatch.shard_queue == 0 || dispatch.tick.is_zero() {
        return Err("--shard-queue and --tick-us must be positive".into());
    }
    let ramp = args.get_str("ramp").is_some().then(|| -> Result<_, String> {
        Ok(RampConfig {
            base_clients: load.clients,
            peak_clients: args.get_or("ramp-peak", load.clients * 10)?,
            steps_up: args.get_or("ramp-steps", 4usize)?,
            requests_per_client: load.requests_per_client,
        })
    });
    let ramp = ramp.transpose()?;
    if let Some(r) = &ramp {
        if r.steps_up == 0 || r.peak_clients < r.base_clients {
            return Err("--ramp needs --ramp-steps > 0 and --ramp-peak >= --clients".into());
        }
    }
    let worker_note = if elastic {
        format!("{min_shards}..={max_shards} elastic worker(s)")
    } else {
        format!("{} worker(s)", pipeline.workers)
    };
    println!(
        "serve-bench: k={} d={} over {} shard(s); queue {}, {}, batch ≤ {}, \
         linger {:?}; {} closed-loop client(s) × {} request(s)",
        artifact.meta.k,
        artifact.meta.d,
        shards.clamp(1, artifact.meta.k),
        pipeline.queue_capacity,
        worker_note,
        pipeline.max_batch,
        pipeline.linger,
        load.clients,
        load.requests_per_client
    );
    if let Some(r) = &ramp {
        println!(
            "ramp: {} → {} client(s) over {} step(s) (profile {:?})",
            r.base_clients,
            r.peak_clients,
            r.steps_up,
            r.profile()
        );
    }
    if slo_p99_us > 0 {
        println!("admission control: p99 objective {slo_p99_us} µs");
    }
    // `--faults kill-shards=0+2,kill-after-ms=50`: crash the listed shards
    // that long into the load run; the pipeline re-dispatches to the
    // survivors and marks replies degraded.
    let kill_plan = crate::parse_fault_plan(args)?;
    let kernel = parse_kernel(args)?;
    let index = ShardedIndex::from_artifact(&artifact, shards).with_kernel(kernel);
    // `--trace-out trace.json [--trace-sample N]`: record per-request
    // pipeline spans into a bounded ring and arm a flight recorder whose
    // dumps (`flight-*.json`) land beside the trace file.
    let trace_buf = crate::parse_trace_buffer(args)?;
    let tracing = match &trace_buf {
        Some(buf) => {
            let out = args.get_str("trace-out").unwrap();
            let dir = std::path::Path::new(out)
                .parent()
                .filter(|p| !p.as_os_str().is_empty())
                .map_or_else(|| ".".to_string(), |p| p.display().to_string());
            let vfs =
                swkm_store::StdVfs::open(&dir).map_err(|e| format!("--trace-out {out}: {e}"))?;
            let recorder = swkm_obs::FlightRecorder::new(
                Arc::clone(buf),
                Box::new(swkm_store::VfsSink::new(vfs)),
                args.get_or("flight-max-dumps", 8u64)?,
                args.get_or("flight-last", 4_096usize)?,
            );
            ServeTracing::new(Arc::clone(buf), Some(Arc::new(recorder)))
        }
        None => ServeTracing::default(),
    };
    let server = Server::start_dispatch(index, dispatch, Arc::clone(&registry), tracing);

    // `--model-churn N`: publish + hot-swap N perturbed generations while
    // the load runs.
    let churn: u64 = args.get_or("model-churn", 0u64)?;
    let churn_every = Duration::from_millis(args.get_or("churn-every-ms", 20u64)?);
    if churn > 0 && store.live_generation(&model_name).is_none() {
        // Seed the store so generation numbers under churn start above the
        // generation already serving.
        store
            .publish(&model_name, &artifact)
            .map_err(|e| e.to_string())?;
    }

    // Periodic steady-state reporting: every --metrics-interval seconds
    // print the *windowed* throughput (`Snapshot::qps_since`), which is
    // not diluted by warm-up the way the since-start rate is.
    let interval_s: f64 = args.get_or("metrics-interval", 0.0f64)?;
    let stop = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        if churn > 0 {
            let server = &server;
            let base = &artifact;
            let name = model_name.clone();
            let mut store = store;
            scope.spawn(move || {
                for round in 1..=churn {
                    // Deterministic per-round perturbation of the base
                    // centroids — swaps visibly change the model without
                    // changing its shape.
                    let mut centroids = base.centroids.clone();
                    for (i, v) in centroids.as_mut_slice().iter_mut().enumerate() {
                        *v += (round as Elem) * 1e-4 * (((i % 13) as Elem) - 6.0);
                    }
                    let next = ModelArtifact::new(
                        base.meta.trained_samples,
                        centroids,
                        base.meta.iterations,
                        base.meta.objective,
                        base.meta.converged,
                        base.stats.clone(),
                    );
                    // Durable first, then serve: publish to the store, load
                    // the live generation back, swap it in.
                    let swapped = store
                        .publish(&name, &next)
                        .and_then(|_| store.load_live::<Elem>(&name))
                        .map_err(|e| e.to_string())
                        .and_then(|(generation, loaded)| {
                            let index =
                                ShardedIndex::from_artifact(&loaded, shards).with_kernel(kernel);
                            server
                                .swap_model(index, generation)
                                .map(|_| generation)
                                .map_err(|e| e.to_string())
                        });
                    match swapped {
                        Ok(generation) => {
                            println!("[churn] swapped in {name}@g{generation} ({round}/{churn})")
                        }
                        Err(e) => eprintln!("[churn] round {round} failed: {e}"),
                    }
                    std::thread::sleep(churn_every);
                }
            });
        }
        if let Some(plan) = &kill_plan {
            let (victims, after) = plan.kill_schedule();
            if !victims.is_empty() {
                let stop = &stop;
                let server = &server;
                scope.spawn(move || {
                    let deadline = std::time::Instant::now() + after;
                    while std::time::Instant::now() < deadline {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    for &shard in victims {
                        if server.kill_shard(shard) {
                            println!("[faults] killed shard {shard} after {after:?}");
                        }
                    }
                });
            }
        }
        if interval_s > 0.0 {
            let stop = &stop;
            let server = &server;
            scope.spawn(move || {
                let mut prev = server.snapshot();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_secs_f64(interval_s));
                    let snap = server.snapshot();
                    println!(
                        "[{interval_s:.1}s window] {:.0} req/s \
                         ({} completed, queue depth {})",
                        snap.qps_since(&prev),
                        snap.completed,
                        snap.queue_depth
                    );
                    prev = snap;
                }
            });
        }
        let outcome = match &ramp {
            Some(r) => BenchOutcome::Ramp(run_ramp(&server, &queries, *r)),
            None => BenchOutcome::Single(run_closed_loop(&server, &queries, load)),
        };
        stop.store(true, Ordering::Relaxed);
        outcome
    });
    match &report {
        BenchOutcome::Single(single) => println!("{single}"),
        BenchOutcome::Ramp(ramp_report) => {
            println!("{ramp_report}");
            if let Some(path) = args.get_str("ramp-json") {
                std::fs::write(path, ramp_report.to_json())
                    .map_err(|e| format!("--ramp-json {path}: {e}"))?;
                println!("wrote per-phase ramp report to {path}");
            }
            if !ramp_report.conserved() {
                return Err("ramp lost requests: issued != completed + shed + failed".into());
            }
        }
    }
    // Interpolated log₂-bucket quantiles — tighter than the Snapshot's
    // bucket upper bounds, so this is the line to read for real latency.
    let q = |name: &str, q: f64| {
        registry
            .histogram(name)
            .map_or(0.0, |h| h.quantile(q) / 1e3)
    };
    println!(
        "latency (interpolated): p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs \
         (queue-wait p95 {:.1} µs, execute p95 {:.1} µs)",
        q("serve_total_ns", 0.50),
        q("serve_total_ns", 0.95),
        q("serve_total_ns", 0.99),
        q("serve_queue_wait_ns", 0.95),
        q("serve_execute_ns", 0.95),
    );
    let exemplars = server.exemplars();
    if !exemplars.is_empty() {
        let list = exemplars
            .iter()
            .map(|&(ns, id)| format!("trace_id={id} {:.1} µs", ns as f64 / 1e3))
            .collect::<Vec<_>>()
            .join(", ");
        println!("slow-request exemplars: {list}");
    }
    let snapshot = server.shutdown();
    println!("{snapshot}");
    crate::write_metrics_outputs(args, &registry)?;
    // Exemplars ride along in the Prometheus export as a separate block so
    // the registry document itself stays byte-identical with tracing off.
    if let (Some(path), false) = (args.get_str("metrics-prom"), exemplars.is_empty()) {
        let block = swkm_obs::export::prom_exemplars("serve_latency_exemplar", &exemplars);
        let mut doc =
            std::fs::read_to_string(path).map_err(|e| format!("--metrics-prom {path}: {e}"))?;
        doc.push_str(&block);
        std::fs::write(path, doc).map_err(|e| format!("--metrics-prom {path}: {e}"))?;
        println!("appended {} exemplar(s) to {path}", exemplars.len());
    }
    crate::write_trace_output(args, trace_buf.as_ref())?;
    Ok(())
}
