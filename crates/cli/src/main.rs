//! `swkm` — command-line interface to the sunway-kmeans library.
//!
//! ```text
//! swkm plan  --n 1265723 --k 2000 --d 196608 --nodes 4096
//! swkm model --n 1265723 --k 2000 --d 4096 --nodes 128 [--level 2]
//! swkm sweep --n 1265723 --k 2000 --d-lo 512 --d-hi 8192 --step 512 --nodes 128
//! swkm fit   --dataset kegg --n 4096 --k 64 [--level 3] [--units 8] [--group 2]
//!            [--kernel scalar|expanded|tiled|gemm] [--update twopass|fused|delta]
//!            [--merge auto|tree|ring] [--bounds none|hamerly|yinyang|auto]
//!            [--algo hier|lloyd|elkan|yinyang] [--faults seed=7,rate=0.25,...]
//!            [--metrics-json out.json] [--metrics-prom out.prom]
//!            [--trace-out trace.json]
//! swkm landcover --size 128 --out target/landcover-cli
//! swkm train --dataset mixture --n 4096 --k 64 --save-model model.swkm [--standardize]
//! swkm predict --model model.swkm --n 1024 [--shards 4] [--kernel scalar|expanded|tiled|gemm]
//! swkm predict --store models/ --model-name census --n 1024
//! swkm serve-bench --k 64 --clients 8 --requests 2000 [--queue 1024] [--workers 2]
//!                  [--metrics-interval 1] [--metrics-json out.json]
//!                  [--faults kill-shards=0,kill-after-ms=50]
//!                  [--store models/ --model-name census]
//!                  [--model-churn 5 --churn-every-ms 20]
//!                  [--trace-out trace.json --trace-sample 8]
//!                  [--ramp --ramp-peak 20 --ramp-steps 4 --ramp-json ramp.json]
//!                  [--elastic --min-shards 1 --max-shards 4]
//!                  [--slo-p99-us 500] [--shard-queue 4] [--tick-us 2000]
//! swkm store put  --dir models/ --model-name census --k 64 [--from model.swkm]
//! swkm store list --dir models/
//! swkm store gc   --dir models/
//! ```

mod args;
mod serve_cmd;
mod store_cmd;

use args::Args;
use hier_kmeans::{choose_level, gemm_group_units, HierKMeans};
use kmeans_core::{init_centroids, InitMethod};
use perf_model::{feasibility, CostModel, Level, ProblemShape};
use sw_arch::Machine;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("swkm: {msg}");
            eprintln!();
            eprintln!(
                "usage: swkm <plan|model|sweep|fit|landcover|train|predict|serve-bench|store> [--flags]"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Write `--metrics-json` / `--metrics-prom` exports if requested. Shared
/// by `fit` and `serve-bench` so every instrumented path speaks the same
/// flag vocabulary.
pub(crate) fn write_metrics_outputs(
    args: &Args,
    registry: &swkm_obs::MetricsRegistry,
) -> Result<(), String> {
    if let Some(path) = args.get_str("metrics-json") {
        let mut doc = swkm_obs::export::to_json(registry);
        doc.push('\n');
        std::fs::write(path, doc).map_err(|e| format!("--metrics-json {path}: {e}"))?;
        println!("wrote metrics JSON to {path}");
    }
    if let Some(path) = args.get_str("metrics-prom") {
        std::fs::write(path, swkm_obs::export::to_prometheus(registry))
            .map_err(|e| format!("--metrics-prom {path}: {e}"))?;
        println!("wrote Prometheus metrics to {path}");
    }
    Ok(())
}

/// Write a Chrome-trace JSON export of `buf` to `--trace-out` if requested.
/// Shared by `fit` and `serve-bench`: both speak the same flag and emit the
/// same `chrome://tracing` / Perfetto document shape.
pub(crate) fn write_trace_output(
    args: &Args,
    buf: Option<&std::sync::Arc<swkm_obs::TraceBuffer>>,
) -> Result<(), String> {
    let (Some(path), Some(buf)) = (args.get_str("trace-out"), buf) else {
        return Ok(());
    };
    let stats = buf.stats();
    let doc = swkm_obs::chrome::to_chrome_json(&buf.snapshot(), stats.dropped);
    std::fs::write(path, doc).map_err(|e| format!("--trace-out {path}: {e}"))?;
    println!(
        "wrote Chrome trace to {path} ({} event(s), {} dropped)",
        stats.retained, stats.dropped
    );
    Ok(())
}

/// Build the `--trace-out` trace buffer: `--trace-cap` events of ring
/// (default 65536), sampling every `--trace-sample`-th request (default 1 =
/// every request; training traces ignore sampling — phases are always on).
pub(crate) fn parse_trace_buffer(
    args: &Args,
) -> Result<Option<std::sync::Arc<swkm_obs::TraceBuffer>>, String> {
    if args.get_str("trace-out").is_none() {
        return Ok(None);
    }
    let cap: usize = args.get_or("trace-cap", 65_536usize)?;
    let sample: u64 = args.get_or("trace-sample", 1u64)?;
    if cap == 0 {
        return Err("--trace-cap must be positive".into());
    }
    Ok(Some(std::sync::Arc::new(
        swkm_obs::TraceBuffer::with_sampling(cap, sample),
    )))
}

fn parse_assign_kernel(args: &Args) -> Result<kmeans_core::AssignKernel, String> {
    match args.get_str("kernel") {
        None => Ok(kmeans_core::AssignKernel::Scalar),
        Some(spec) => kmeans_core::AssignKernel::parse(spec).map_err(|e| format!("--kernel: {e}")),
    }
}

fn parse_update_mode(args: &Args) -> Result<kmeans_core::UpdateMode, String> {
    match args.get_str("update") {
        None => Ok(kmeans_core::UpdateMode::TwoPass),
        Some(spec) => kmeans_core::UpdateMode::parse(spec).map_err(|e| format!("--update: {e}")),
    }
}

fn parse_merge_strategy(args: &Args) -> Result<hier_kmeans::MergeStrategy, String> {
    match args.get_str("merge") {
        None => Ok(hier_kmeans::MergeStrategy::Auto),
        Some(spec) => hier_kmeans::MergeStrategy::parse(spec).map_err(|e| format!("--merge: {e}")),
    }
}

fn parse_bounds_mode(args: &Args) -> Result<kmeans_core::BoundsMode, String> {
    match args.get_str("bounds") {
        None => Ok(kmeans_core::BoundsMode::None),
        Some(spec) => spec
            .parse::<kmeans_core::BoundsMode>()
            .map_err(|e| format!("--bounds: {e}")),
    }
}

/// `--faults <spec>` — a [`hier_kmeans::FaultPlan`] spec like
/// `seed=7,rate=0.25,kinds=drop+corrupt` (see `FaultPlan::parse`).
pub(crate) fn parse_fault_plan(args: &Args) -> Result<Option<hier_kmeans::FaultPlan>, String> {
    match args.get_str("faults") {
        None => Ok(None),
        Some(spec) => hier_kmeans::FaultPlan::parse(spec)
            .map(Some)
            .map_err(|e| format!("--faults: {e}")),
    }
}

fn parse_level(args: &Args) -> Result<Option<Level>, String> {
    match args.get_str("level") {
        None | Some("auto") => Ok(None),
        Some("1") => Ok(Some(Level::L1)),
        Some("2") => Ok(Some(Level::L2)),
        Some("3") => Ok(Some(Level::L3)),
        Some(other) => Err(format!("--level must be 1|2|3|auto, got `{other}`")),
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    // `swkm store <verb> --flags` nests one level: peel the `store` token
    // and let the verb be the parsed command.
    if argv.first().map(String::as_str) == Some("store") {
        let args = Args::parse(&argv[1..]).map_err(|e| format!("store: {e}"))?;
        return store_cmd::cmd_store(&args);
    }
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "plan" => cmd_plan(&args),
        "model" => cmd_model(&args),
        "sweep" => cmd_sweep(&args),
        "fit" => cmd_fit(&args),
        "landcover" => cmd_landcover(&args),
        "train" => serve_cmd::cmd_train(&args),
        "predict" => serve_cmd::cmd_predict(&args),
        "serve-bench" => serve_cmd::cmd_serve_bench(&args),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Feasibility of every level for a shape, with the chosen plan's layout.
fn cmd_plan(args: &Args) -> Result<(), String> {
    let n: u64 = args.require("n")?;
    let k: u64 = args.require("k")?;
    let d: u64 = args.require("d")?;
    let nodes: usize = args.get_or("nodes", 128)?;
    let shape = ProblemShape::f32(n, k, d);
    let machine = Machine::taihulight(nodes);
    println!(
        "shape: n={n} k={k} d={d} on {nodes} nodes ({} CPEs)",
        machine.total_cpes()
    );
    for level in [Level::L1, Level::L2, Level::L3] {
        match feasibility::plan(level, &shape, &machine, true) {
            Ok(plan) => {
                println!(
                    "  {level}: group of {} unit(s), {} centroid(s)/unit, {} groups, \
                     slice {}, resident {} B/CPE{}",
                    plan.group_units,
                    plan.centroids_per_unit,
                    plan.n_groups,
                    plan.slice,
                    plan.resident_bytes,
                    if plan.spilled {
                        " [SPILLED to DDR]"
                    } else {
                        ""
                    }
                );
            }
            Err(e) => println!("  {level}: INFEASIBLE — {e}"),
        }
    }
    Ok(())
}

/// Cost breakdown for a shape at one level (or the model's choice).
fn cmd_model(args: &Args) -> Result<(), String> {
    let n: u64 = args.require("n")?;
    let k: u64 = args.require("k")?;
    let d: u64 = args.require("d")?;
    let nodes: usize = args.get_or("nodes", 128)?;
    let shape = ProblemShape::f32(n, k, d);
    let model = CostModel::taihulight(nodes);
    let (level, cost) = match parse_level(args)? {
        Some(level) => (
            level,
            model
                .iteration_time(&shape, level)
                .map_err(|e| e.to_string())?,
        ),
        None => perf_model::best_level(&model, &shape).map_err(|errs| {
            errs.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        })?,
    };
    println!("{level} on {nodes} nodes:");
    println!("  compute      {:>12.6} s", cost.compute);
    println!("  read (DMA)   {:>12.6} s", cost.read);
    println!("  assign comm  {:>12.6} s", cost.assign_comm);
    println!("  update comm  {:>12.6} s", cost.update_comm);
    println!(
        "  total        {:>12.6} s per iteration ({})",
        cost.total(),
        cost.dominant_phase()
    );
    Ok(())
}

/// d-sweep comparing Level 2 and Level 3 (the Fig. 7 study, custom params).
fn cmd_sweep(args: &Args) -> Result<(), String> {
    let n: u64 = args.require("n")?;
    let k: u64 = args.require("k")?;
    let lo: u64 = args.require("d-lo")?;
    let hi: u64 = args.require("d-hi")?;
    let step: u64 = args.get_or("step", 512)?;
    let nodes: usize = args.get_or("nodes", 128)?;
    if step == 0 || lo > hi {
        return Err("need d-lo ≤ d-hi and step > 0".into());
    }
    let model = CostModel::taihulight(nodes);
    println!("{:>8} {:>12} {:>12}  winner", "d", "L2 (s)", "L3 (s)");
    let mut d = lo;
    while d <= hi {
        let shape = ProblemShape::f32(n, k, d);
        let l2 = model.iteration_time_strict(&shape, Level::L2);
        let l3 = model.iteration_time(&shape, Level::L3);
        let fmt = |r: &Result<perf_model::CostBreakdown, _>| match r {
            Ok(c) => format!("{:.4}", c.total()),
            Err(_) => "—".to_string(),
        };
        let winner = match (&l2, &l3) {
            (Ok(a), Ok(b)) => {
                if a.total() < b.total() {
                    "L2"
                } else {
                    "L3"
                }
            }
            (Err(_), Ok(_)) => "L3",
            (Ok(_), Err(_)) => "L2",
            _ => "—",
        };
        println!("{d:>8} {:>12} {:>12}  {winner}", fmt(&l2), fmt(&l3));
        d += step;
    }
    Ok(())
}

/// Functional clustering on a generated dataset.
fn cmd_fit(args: &Args) -> Result<(), String> {
    let dataset = args.get_str("dataset").unwrap_or("mixture");
    let n: usize = args.get_or("n", 4_096)?;
    let k: usize = args.require("k")?;
    let units: usize = args.get_or("units", 8)?;
    let group: usize = args.get_or("group", 2)?;
    let data = match dataset {
        "kegg" => datasets::uci::kegg_network().generate(n),
        "road" => datasets::uci::road_network().generate(n),
        "census" => datasets::uci::us_census_1990().generate(n),
        "mixture" => {
            let d: usize = args.get_or("d", 16)?;
            datasets::GaussianMixture::new(n, d, k.max(2))
                .with_seed(args.get_or("seed", 0u64)?)
                .generate()
                .data
        }
        other => {
            return Err(format!(
                "unknown dataset `{other}` (kegg|road|census|mixture)"
            ))
        }
    };
    let kernel = parse_assign_kernel(args)?;
    let update = parse_update_mode(args)?;
    let merge = parse_merge_strategy(args)?;
    let bounds = parse_bounds_mode(args)?;
    // `--algo lloyd|elkan|yinyang` runs a serial exact algorithm on the
    // same data/init instead of the hierarchical executor — the multi-core
    // baselines of the paper's Table III, for filter-effectiveness
    // comparisons against `--bounds`.
    match args.get_str("algo") {
        None | Some("hier") => {}
        Some(algo) => return fit_serial(args, algo, &data, k, kernel, update, bounds),
    }
    let level = match parse_level(args)? {
        Some(level) => level,
        None => choose_level(n, k, data.cols(), 1),
    };
    println!(
        "fitting {dataset}: n={} d={} k={k} with {level} ({units} units, groups of {group}, \
         {kernel} kernel, {update} update, {merge} merge, {bounds} bounds)",
        data.rows(),
        data.cols()
    );
    if kernel == kmeans_core::AssignKernel::Gemm && level != Level::L1 {
        // Advisory only: layout changes wall time, never results, so the
        // requested geometry is honoured as-is.
        let recommended = gemm_group_units(k, data.cols(), group, std::mem::size_of::<f64>());
        if recommended != group {
            println!(
                "gemm layout: cost model recommends {recommended} unit(s) per centroid group \
                 for k={k} d={} (requested {group})",
                data.cols()
            );
        }
    }
    let init = init_centroids(
        &data,
        k,
        InitMethod::KMeansPlusPlus,
        args.get_or("seed", 0u64)?,
    );
    let mut fitter = HierKMeans::new(level)
        .with_units(units)
        .with_group_units(if level == Level::L1 { 1 } else { group })
        .with_cpes_per_cg(8)
        .with_max_iters(args.get_or("max-iters", 100usize)?)
        .with_kernel(kernel)
        .with_update(update)
        .with_merge(merge)
        .with_bounds(bounds);
    if let Some(plan) = parse_fault_plan(args)? {
        fitter = fitter.with_faults(plan);
    }
    let trace_buf = parse_trace_buffer(args)?;
    if let Some(buf) = &trace_buf {
        fitter = fitter.with_trace(std::sync::Arc::clone(buf));
    }
    let result = fitter.fit(&data, init).map_err(|e| e.to_string())?;
    println!(
        "done: {} iterations (converged = {}), objective {:.5}",
        result.iterations, result.converged, result.objective
    );
    if let Some(rate) = result.assign_samples_per_s() {
        println!("assign kernel {}: {rate:.0} samples/s", result.kernel);
    }
    let sizes = kmeans_core::objective::cluster_sizes(&result.labels, k);
    println!("cluster sizes: {sizes:?}");
    println!(
        "communication: {} messages, {:.2} MB",
        result.comm_messages,
        result.comm_bytes as f64 / 1e6
    );
    println!(
        "phases: assign {:.4}s, merge {:.4}s, update {:.4}s, exchange {:.4}s \
         over {} iterations (assign imbalance {:.2}×)",
        result.timings.assign,
        result.timings.merge,
        result.timings.update,
        result.timings.exchange,
        result.trace.iterations(),
        result.trace.assign_imbalance()
    );
    if result.fault_stats.injected_total() > 0 || result.degraded_iterations > 0 {
        println!(
            "faults: {} injected, {} comm retries, {} degraded iteration(s) — recovered",
            result.fault_stats.injected_total(),
            result.fault_stats.retries(),
            result.degraded_iterations
        );
    }
    if result.bounds_mode != kmeans_core::BoundsMode::None {
        println!(
            "bounds {}: {:.1}% of distance work pruned ({} evals vs {} Lloyd-equivalent, \
             {} seed scan(s), {} reset(s))",
            result.bounds_mode,
            result.bounds.savings() * 100.0,
            result.bounds.distance_evals,
            result.bounds.lloyd_equivalent,
            result.bounds.seed_scans,
            result.bounds.resets
        );
    }
    let registry = swkm_obs::MetricsRegistry::shared();
    result.export_metrics(&registry);
    // `--store <dir>` publishes the fitted centroids as the next live
    // generation of `--model-name` (default: the dataset name), so a
    // serving process can hot-swap to it.
    if let Some(dir) = args.get_str("store") {
        let name = args.get_str("model-name").unwrap_or(dataset);
        let vfs = swkm_store::StdVfs::open(dir).map_err(|e| format!("--store {dir}: {e}"))?;
        let mut store =
            swkm_store::ModelStore::open_with_registry(vfs, Some(std::sync::Arc::clone(&registry)))
                .map_err(|e| format!("--store {dir}: {e}"))?;
        let artifact = swkm_serve::ModelArtifact::new(
            data.rows() as u64,
            result.centroids.clone(),
            result.iterations as u64,
            result.objective,
            result.converged,
            None,
        );
        let generation = store.publish(name, &artifact).map_err(|e| e.to_string())?;
        println!("published {name}@g{generation} to store {dir}");
    }
    write_metrics_outputs(args, &registry)?;
    write_trace_output(args, trace_buf.as_ref())?;
    Ok(())
}

/// `fit --algo lloyd|elkan|yinyang`: the serial exact algorithms on the
/// same dataset/seed/init as the hierarchical path. Elkan and Yinyang are
/// the triangle-inequality baselines the distributed `--bounds` pruning is
/// measured against; their filter counters land in the metrics registry
/// (`accel_*` plus algorithm-specific gauges) next to `train_objective`
/// and `train_label_checksum`, so runs can be compared from metrics dumps
/// alone.
fn fit_serial(
    args: &Args,
    algo: &str,
    data: &kmeans_core::Matrix<f32>,
    k: usize,
    kernel: kmeans_core::AssignKernel,
    update: kmeans_core::UpdateMode,
    bounds: kmeans_core::BoundsMode,
) -> Result<(), String> {
    if !matches!(algo, "lloyd" | "elkan" | "yinyang") {
        return Err(format!(
            "--algo must be hier|lloyd|elkan|yinyang, got `{algo}`"
        ));
    }
    let config = kmeans_core::KMeansConfig::new(k)
        .with_seed(args.get_or("seed", 0u64)?)
        .with_max_iters(args.get_or("max-iters", 100usize)?)
        .with_init(InitMethod::KMeansPlusPlus)
        .with_kernel(kernel)
        .with_update(update)
        .with_bounds(bounds);
    let init = init_centroids(data, k, config.init, config.seed);
    println!(
        "fitting serial {algo}: n={} d={} k={k} ({kernel} kernel, {update} update, \
         {bounds} bounds)",
        data.rows(),
        data.cols()
    );
    let registry = swkm_obs::MetricsRegistry::shared();
    // (algo code, result, distance evals, Lloyd-equivalent evals, savings)
    let (code, fit, evals, lloyd_equivalent, savings) = match algo {
        "lloyd" => {
            let fit =
                kmeans_core::Lloyd::run_from(data, init, &config).map_err(|e| e.to_string())?;
            let s = fit.bounds;
            (1.0, fit, s.distance_evals, s.lloyd_equivalent, s.savings())
        }
        "elkan" => {
            let (fit, s) =
                kmeans_core::elkan::run_from(data, init, &config).map_err(|e| e.to_string())?;
            registry.gauge_set("elkan_center_center_evals", s.center_center_evals as f64);
            registry.gauge_set("elkan_point_filter_hits", s.point_filter_hits as f64);
            (2.0, fit, s.distance_evals, s.lloyd_equivalent, s.savings())
        }
        "yinyang" => {
            let (fit, s) =
                kmeans_core::yinyang::run_from(data, init, &config).map_err(|e| e.to_string())?;
            registry.gauge_set("yinyang_global_filter_hits", s.global_filter_hits as f64);
            registry.gauge_set("yinyang_group_filter_hits", s.group_filter_hits as f64);
            (3.0, fit, s.distance_evals, s.lloyd_equivalent, s.savings())
        }
        _ => unreachable!("algo validated above"),
    };
    println!(
        "done: {} iterations (converged = {}), objective {:.5}",
        fit.iterations, fit.converged, fit.objective
    );
    if lloyd_equivalent > 0 {
        println!(
            "distance work: {evals} evals vs {lloyd_equivalent} Lloyd-equivalent \
             ({:.1}% saved)",
            savings * 100.0
        );
    }
    let sizes = kmeans_core::objective::cluster_sizes(&fit.labels, k);
    println!("cluster sizes: {sizes:?}");
    registry.gauge_set("train_algo", code);
    registry.gauge_set("train_objective", fit.objective);
    registry.gauge_set("train_converged", if fit.converged { 1.0 } else { 0.0 });
    registry.gauge_set("train_iterations", fit.iterations as f64);
    registry.gauge_set("accel_distance_evals", evals as f64);
    registry.gauge_set("accel_lloyd_equivalent", lloyd_equivalent as f64);
    registry.gauge_set("accel_savings", savings);
    registry.gauge_set(
        "train_label_checksum",
        hier_kmeans::label_checksum(&fit.labels) as f64,
    );
    write_metrics_outputs(args, &registry)
}

/// The Fig. 10 pipeline at a chosen scene size.
fn cmd_landcover(args: &Args) -> Result<(), String> {
    let size: usize = args.get_or("size", 192)?;
    let out = args
        .get_str("out")
        .unwrap_or("target/landcover-cli")
        .to_string();
    let scene = datasets::SyntheticScene::generate(datasets::SceneConfig {
        width: size,
        height: size,
        sites_per_class: (size / 64).max(2),
        seed: args.get_or("seed", 2018u64)?,
    });
    let features = scene.block_features(3);
    let init = init_centroids(&features, 7, InitMethod::KMeansPlusPlus, 42);
    let result = HierKMeans::new(Level::L3)
        .with_units(8)
        .with_group_units(2)
        .with_cpes_per_cg(4)
        .with_max_iters(30)
        .with_tol(1e-6)
        .fit(&features, init)
        .map_err(|e| e.to_string())?;
    let accuracy = scene.clustering_accuracy(&result.labels, 7);
    println!(
        "{size}×{size} scene: {} iterations, {:.1}% class recovery",
        result.iterations,
        accuracy * 100.0
    );
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    for (name, img) in [
        ("satellite.ppm", scene.satellite()),
        ("truth.ppm", scene.truth_mask()),
        ("clusters.ppm", scene.label_mask(&result.labels)),
    ] {
        let path = format!("{out}/{name}");
        img.save_ppm(&path).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn plan_and_model_commands_run() {
        run(&argv("plan --n 1265723 --k 2000 --d 4096 --nodes 128")).unwrap();
        run(&argv("model --n 1265723 --k 2000 --d 4096 --nodes 128")).unwrap();
        run(&argv(
            "model --n 1265723 --k 2000 --d 4096 --nodes 128 --level 3",
        ))
        .unwrap();
    }

    #[test]
    fn sweep_command_runs() {
        run(&argv(
            "sweep --n 1265723 --k 2000 --d-lo 512 --d-hi 1536 --step 512",
        ))
        .unwrap();
        assert!(run(&argv("sweep --n 1 --k 1 --d-lo 10 --d-hi 5")).is_err());
    }

    #[test]
    fn fit_command_runs_each_dataset() {
        run(&argv(
            "fit --dataset mixture --n 256 --k 4 --d 8 --max-iters 5",
        ))
        .unwrap();
        run(&argv(
            "fit --dataset kegg --n 256 --k 4 --max-iters 3 --level 2",
        ))
        .unwrap();
        assert!(run(&argv("fit --dataset nope --k 3")).is_err());
    }

    #[test]
    fn fit_accepts_every_kernel_and_rejects_unknown_ones() {
        for kernel in ["scalar", "expanded", "tiled", "gemm"] {
            run(&argv(&format!(
                "fit --dataset mixture --n 128 --k 3 --d 8 --max-iters 3 --kernel {kernel}"
            )))
            .unwrap();
        }
        assert!(run(&argv(
            "fit --dataset mixture --n 128 --k 3 --d 8 --kernel warp-drive"
        ))
        .is_err());
    }

    #[test]
    fn fit_accepts_every_update_mode_and_merge_strategy() {
        for update in ["twopass", "fused", "delta"] {
            run(&argv(&format!(
                "fit --dataset mixture --n 128 --k 3 --d 8 --max-iters 3 --update {update}"
            )))
            .unwrap();
        }
        for merge in ["auto", "tree", "ring"] {
            run(&argv(&format!(
                "fit --dataset mixture --n 128 --k 3 --d 8 --max-iters 3 --merge {merge}"
            )))
            .unwrap();
        }
        let err = run(&argv(
            "fit --dataset mixture --n 128 --k 3 --d 8 --update sideways",
        ))
        .unwrap_err();
        assert!(err.contains("sideways"), "{err}");
        let err = run(&argv(
            "fit --dataset mixture --n 128 --k 3 --d 8 --merge mesh",
        ))
        .unwrap_err();
        assert!(err.contains("mesh"), "{err}");
        // The incompatible combination surfaces the executor's rejection.
        let err = run(&argv(
            "fit --dataset mixture --n 128 --k 3 --d 8 --update delta --merge ring",
        ))
        .unwrap_err();
        assert!(err.contains("incompatible"), "{err}");
    }

    #[test]
    fn fit_accepts_every_bounds_mode_and_rejects_unknown_ones() {
        for bounds in ["none", "hamerly", "yinyang", "auto"] {
            run(&argv(&format!(
                "fit --dataset mixture --n 192 --k 4 --d 8 --max-iters 5 --bounds {bounds}"
            )))
            .unwrap();
        }
        let err = run(&argv(
            "fit --dataset mixture --n 128 --k 3 --d 8 --bounds elastic",
        ))
        .unwrap_err();
        assert!(err.contains("elastic"), "{err}");
    }

    #[test]
    fn fit_bounds_runs_are_bit_identical_and_export_bounds_gauges() {
        let gauges = |bounds: &str, tag: &str| -> (f64, f64) {
            let json = std::env::temp_dir().join(format!("swkm_fit_bounds_{tag}.json"));
            run(&argv(&format!(
                "fit --dataset mixture --n 400 --k 8 --d 6 --max-iters 40 --level 2 \
                 --units 4 --group 2 --kernel gemm --bounds {bounds} --metrics-json {}",
                json.display()
            )))
            .unwrap();
            let doc = std::fs::read_to_string(&json).unwrap();
            std::fs::remove_file(&json).ok();
            let pick = |key: &str| -> f64 {
                let at = doc.find(&format!("\"{key}\":")).expect(key) + key.len() + 3;
                doc[at..][..doc[at..].find([',', '}']).unwrap()]
                    .parse()
                    .unwrap()
            };
            (pick("train_label_checksum"), pick("train_objective"))
        };
        let (base_sum, base_obj) = gauges("none", "none");
        for bounds in ["hamerly", "yinyang", "auto"] {
            let (sum, obj) = gauges(bounds, bounds);
            assert_eq!(sum, base_sum, "{bounds}: labels diverged from unbounded");
            assert_eq!(obj.to_bits(), base_obj.to_bits(), "{bounds}: objective");
        }
    }

    #[test]
    fn fit_algo_serial_baselines_run_and_export_filter_gauges() {
        let json = std::env::temp_dir().join("swkm_fit_algo_test.json");
        let mut checksums = Vec::new();
        for algo in ["lloyd", "elkan", "yinyang"] {
            run(&argv(&format!(
                "fit --dataset mixture --n 256 --k 12 --d 8 --max-iters 30 --algo {algo} \
                 --metrics-json {}",
                json.display()
            )))
            .unwrap();
            let doc = std::fs::read_to_string(&json).unwrap();
            for key in [
                "train_algo",
                "train_objective",
                "train_label_checksum",
                "accel_distance_evals",
                "accel_lloyd_equivalent",
            ] {
                assert!(doc.contains(key), "{algo}: metrics JSON missing `{key}`");
            }
            match algo {
                "elkan" => assert!(doc.contains("elkan_point_filter_hits"), "{doc}"),
                "yinyang" => assert!(doc.contains("yinyang_global_filter_hits"), "{doc}"),
                _ => {}
            }
            let at = doc.find("\"train_label_checksum\":").unwrap() + 23;
            checksums.push(doc[at..][..doc[at..].find([',', '}']).unwrap()].to_string());
        }
        std::fs::remove_file(&json).ok();
        // All three serial algorithms are exact: same init, same labels.
        assert_eq!(checksums[0], checksums[1], "elkan diverged from lloyd");
        assert_eq!(checksums[0], checksums[2], "yinyang diverged from lloyd");
        let err = run(&argv(
            "fit --dataset mixture --n 64 --k 2 --d 4 --algo warp",
        ))
        .unwrap_err();
        assert!(err.contains("warp"), "{err}");
    }

    #[test]
    fn fit_exports_update_mode_and_moved_fraction_gauges() {
        let json = std::env::temp_dir().join("swkm_fit_update_gauges_test.json");
        run(&argv(&format!(
            "fit --dataset mixture --n 192 --k 3 --d 6 --max-iters 50 --level 2 \
             --units 4 --group 2 --update delta --metrics-json {}",
            json.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&json).unwrap();
        assert!(doc.contains("\"train_update_mode\":2.0"), "{doc}");
        assert!(doc.contains("\"train_moved_fraction\":0.0"), "{doc}");
        assert!(doc.contains("\"train_merge_ring\":0.0"), "{doc}");
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn fit_exports_kernel_and_throughput_gauges() {
        let json = std::env::temp_dir().join("swkm_fit_kernel_gauges_test.json");
        run(&argv(&format!(
            "fit --dataset mixture --n 192 --k 3 --d 6 --max-iters 4 --level 2 \
             --units 4 --group 2 --kernel tiled --metrics-json {}",
            json.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&json).unwrap();
        assert!(
            doc.contains("\"train_assign_kernel\":2.0"),
            "tiled gauge missing: {doc}"
        );
        assert!(
            doc.contains("train_assign_samples_per_s"),
            "throughput gauge missing: {doc}"
        );
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn fit_writes_metrics_exports() {
        let json = std::env::temp_dir().join("swkm_fit_metrics_test.json");
        let prom = std::env::temp_dir().join("swkm_fit_metrics_test.prom");
        run(&argv(&format!(
            "fit --dataset mixture --n 192 --k 3 --d 6 --max-iters 4 --level 3 \
             --units 4 --group 2 --metrics-json {} --metrics-prom {}",
            json.display(),
            prom.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&json).unwrap();
        for key in [
            "train_assign_ns",
            "train_merge_ns",
            "train_update_ns",
            "train_exchange_ns",
            "train_iter_wall_ns",
            "comm_total_bytes",
            "train_objective",
        ] {
            assert!(doc.contains(key), "metrics JSON missing `{key}`: {doc}");
        }
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("# TYPE train_assign_ns histogram"));
        std::fs::remove_file(&json).ok();
        std::fs::remove_file(&prom).ok();
    }

    #[test]
    fn fit_with_faults_recovers_and_exports_fault_counters() {
        let json = std::env::temp_dir().join("swkm_fit_faults_test.json");
        run(&argv(&format!(
            "fit --dataset mixture --n 192 --k 3 --d 6 --max-iters 5 --level 2 \
             --units 4 --group 2 --faults seed=7,rate=0.25 --metrics-json {}",
            json.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&json).unwrap();
        for key in [
            "fault_injected_total",
            "comm_retries_total",
            "degraded_iterations",
        ] {
            assert!(doc.contains(key), "metrics JSON missing `{key}`: {doc}");
        }
        std::fs::remove_file(&json).ok();
        // A malformed spec is a CLI error, not a panic.
        let err = run(&argv(
            "fit --dataset mixture --n 64 --k 2 --d 4 --faults warp=1",
        ))
        .unwrap_err();
        assert!(err.contains("--faults"), "{err}");
    }

    #[test]
    fn serve_bench_with_shard_kill_degrades_not_drops() {
        let json = std::env::temp_dir().join("swkm_serve_bench_faults_test.json");
        run(&argv(&format!(
            "serve-bench --k 4 --n 256 --d 8 --clients 2 --requests 300 --max-iters 3 \
             --shards 4 --faults kill-shards=0,kill-after-ms=5 --metrics-json {}",
            json.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&json).unwrap();
        assert!(doc.contains("shard_failovers"), "{doc}");
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn fit_trace_out_writes_chrome_json_with_train_and_comm_tracks() {
        let out = std::env::temp_dir().join("swkm_fit_trace_test.json");
        run(&argv(&format!(
            "fit --dataset mixture --n 192 --k 3 --d 6 --max-iters 4 --level 3 \
             --units 4 --group 2 --trace-out {}",
            out.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&out).unwrap();
        assert!(doc.contains("\"traceEvents\":["), "not a Chrome trace");
        for name in [
            "\"assign\"",
            "\"iteration\"",
            "\"exchange\"",
            "\"train\"",
            "\"comm\"",
        ] {
            assert!(doc.contains(name), "trace missing {name}");
        }
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn serve_bench_trace_records_requests_and_flight_dumps_on_shard_kill() {
        let dir = std::env::temp_dir().join("swkm_serve_trace_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let prom = dir.join("bench.prom");
        run(&argv(&format!(
            "serve-bench --k 4 --n 256 --d 8 --clients 2 --requests 300 --max-iters 3 \
             --shards 4 --faults kill-shards=0,kill-after-ms=5 \
             --trace-out {} --trace-sample 2 --metrics-prom {}",
            trace.display(),
            prom.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&trace).unwrap();
        assert!(doc.contains("\"traceEvents\":["), "not a Chrome trace");
        for name in [
            "\"request\"",
            "\"queue_wait\"",
            "\"execute\"",
            "\"assign_shard\"",
        ] {
            assert!(doc.contains(name), "trace missing {name}");
        }
        // The shard kill trips the flight recorder; dumps land beside the
        // trace file through the store's atomic-write VFS.
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("flight-") && n.contains("shard_failover"))
            .collect();
        assert!(!dumps.is_empty(), "no flight dumps in {}", dir.display());
        // Sampled requests leave Prometheus exemplars appended after the
        // registry document.
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("serve_latency_exemplar{trace_id="), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_flag_errors_are_cli_errors() {
        assert!(run(&argv(
            "fit --dataset mixture --n 64 --k 2 --d 4 --max-iters 2 --trace-out t.json --trace-cap 0"
        ))
        .is_err());
        assert!(run(&argv(
            "fit --dataset mixture --n 64 --k 2 --d 4 --max-iters 2 \
             --trace-out /nonexistent-dir/trace.json"
        ))
        .is_err());
    }

    #[test]
    fn metrics_json_to_unwritable_path_is_a_cli_error() {
        assert!(run(&argv(
            "fit --dataset mixture --n 64 --k 2 --d 4 --max-iters 2 \
             --metrics-json /nonexistent-dir/metrics.json"
        ))
        .is_err());
    }

    #[test]
    fn landcover_command_runs() {
        let out = std::env::temp_dir().join("swkm_landcover_test");
        run(&argv(&format!(
            "landcover --size 64 --out {}",
            out.display()
        )))
        .unwrap();
        assert!(out.join("clusters.ppm").exists());
    }

    #[test]
    fn train_predict_serve_bench_round_trip() {
        let model = std::env::temp_dir().join("swkm_cli_model_test.swkm");
        let model = model.display().to_string();
        run(&argv(&format!(
            "train --dataset mixture --n 256 --k 4 --d 8 --max-iters 5 --standardize \
             --save-model {model}"
        )))
        .unwrap();
        run(&argv(&format!(
            "predict --model {model} --n 128 --d 8 --shards 3"
        )))
        .unwrap();
        run(&argv(&format!(
            "predict --model {model} --n 128 --d 8 --kernel norm-trick"
        )))
        .unwrap();
        run(&argv(&format!(
            "serve-bench --model {model} --n 128 --d 8 --clients 2 --requests 50"
        )))
        .unwrap();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn serve_bench_trains_in_process_without_model() {
        run(&argv(
            "serve-bench --k 4 --n 128 --d 8 --clients 2 --requests 25 --max-iters 3",
        ))
        .unwrap();
    }

    #[test]
    fn serve_bench_ramp_elastic_writes_conserving_phase_report() {
        let dir = std::env::temp_dir().join("swkm_serve_ramp_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ramp_json = dir.join("ramp.json");
        let metrics_json = dir.join("metrics.json");
        run(&argv(&format!(
            "serve-bench --k 32 --n 512 --d 32 --clients 1 --requests 40 --max-iters 3 \
             --batch 8 --linger-us 50 --ramp --ramp-peak 8 --ramp-steps 3 \
             --elastic --min-shards 1 --max-shards 4 --shard-queue 1 --tick-us 1000 \
             --ramp-json {} --metrics-json {}",
            ramp_json.display(),
            metrics_json.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&ramp_json).unwrap();
        assert!(doc.contains("\"conserved\": true"), "{doc}");
        // 3 steps up, 2 mirrored down.
        assert_eq!(doc.matches("\"p99_ns\"").count(), 5, "{doc}");
        let metrics = std::fs::read_to_string(&metrics_json).unwrap();
        for key in [
            "serve_shards_active_peak",
            "serve_shards_active_low",
            "serve_steal_total",
            "serve_stranded_requests",
        ] {
            assert!(metrics.contains(key), "metrics JSON missing `{key}`");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_bench_slo_flag_arms_admission_metrics() {
        let json = std::env::temp_dir().join("swkm_serve_slo_test.json");
        run(&argv(&format!(
            "serve-bench --k 4 --n 128 --d 8 --clients 2 --requests 50 --max-iters 3 \
             --slo-p99-us 500000 --metrics-json {}",
            json.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&json).unwrap();
        // A half-second objective is never violated by this tiny model, but
        // the gate and its gauges must be armed and exported.
        for key in ["serve_admission_shed", "serve_predicted_p99_ns"] {
            assert!(doc.contains(key), "metrics JSON missing `{key}`: {doc}");
        }
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn serve_bench_ramp_and_elastic_flag_errors() {
        assert!(run(&argv(
            "serve-bench --k 2 --n 32 --d 4 --ramp --ramp-steps 0"
        ))
        .is_err());
        assert!(run(&argv(
            "serve-bench --k 2 --n 32 --d 4 --clients 8 --ramp --ramp-peak 2"
        ))
        .is_err());
        assert!(run(&argv(
            "serve-bench --k 2 --n 32 --d 4 --elastic --min-shards 4 --max-shards 2"
        ))
        .is_err());
        assert!(run(&argv("serve-bench --k 2 --n 32 --d 4 --shard-queue 0")).is_err());
        assert!(run(&argv("serve-bench --k 2 --n 32 --d 4 --tick-us 0")).is_err());
    }

    #[test]
    fn serve_bench_periodic_reporting_and_metrics_export() {
        let json = std::env::temp_dir().join("swkm_serve_bench_metrics_test.json");
        run(&argv(&format!(
            "serve-bench --k 4 --n 256 --d 8 --clients 2 --requests 400 --max-iters 3 \
             --metrics-interval 0.05 --metrics-json {}",
            json.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&json).unwrap();
        for key in ["serve_accepted", "serve_completed", "serve_total_ns"] {
            assert!(doc.contains(key), "metrics JSON missing `{key}`: {doc}");
        }
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn serve_command_arg_errors() {
        assert!(run(&argv("train --k 4")).is_err()); // no --save-model
        assert!(run(&argv("predict --n 16")).is_err()); // no --model

        // Degenerate pipeline knobs are CLI errors, not worker panics:
        assert!(run(&argv("serve-bench --k 2 --n 32 --d 4 --queue 0")).is_err());
        assert!(run(&argv("serve-bench --k 2 --n 32 --d 4 --clients 0")).is_err());
        assert!(run(&argv("predict --model /nonexistent/model.swkm")).is_err());
        let model = std::env::temp_dir().join("swkm_cli_kernel_err.swkm");
        let model = model.display().to_string();
        run(&argv(&format!(
            "train --dataset mixture --n 64 --k 2 --d 4 --max-iters 2 --save-model {model}"
        )))
        .unwrap();
        assert!(run(&argv(&format!(
            "predict --model {model} --d 4 --kernel warp-drive"
        )))
        .is_err());
        // Query d mismatching the model's d is a typed CLI error.
        assert!(run(&argv(&format!("predict --model {model} --d 9"))).is_err());
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&argv("model --n 10")).is_err());
        assert!(run(&argv("model --n 10 --k 2 --d 4 --level 9")).is_err());
    }

    fn store_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("swkm_cli_store_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.display().to_string()
    }

    #[test]
    fn store_put_list_promote_gc_round_trip() {
        let dir = store_dir("roundtrip");
        run(&argv(&format!(
            "store put --dir {dir} --model-name demo --k 3 --n 96 --d 6 --max-iters 2"
        )))
        .unwrap();
        run(&argv(&format!(
            "store put --dir {dir} --model-name demo --k 3 --n 96 --d 6 --max-iters 2 --seed 5"
        )))
        .unwrap();
        run(&argv(&format!("store list --dir {dir}"))).unwrap();
        // Roll back to g1, gc keeps only the live generation's file.
        run(&argv(&format!(
            "store promote --dir {dir} --model-name demo --generation 1"
        )))
        .unwrap();
        run(&argv(&format!("store gc --dir {dir}"))).unwrap();
        run(&argv(&format!(
            "predict --store {dir} --model-name demo --n 32 --d 6"
        )))
        .unwrap();
        run(&argv(&format!(
            "store delete --dir {dir} --model-name demo"
        )))
        .unwrap();
        std::fs::remove_dir_all(std::path::Path::new(&dir)).ok();
    }

    #[test]
    fn store_verb_errors_are_cli_errors() {
        let dir = store_dir("errors");
        assert!(run(&argv("store list")).is_err()); // no --dir
        assert!(run(&argv(&format!("store warp --dir {dir}"))).is_err());
        assert!(run(&argv(&format!("store put --dir {dir} --model-name x"))).is_err()); // no --k
        assert!(run(&argv(&format!(
            "store promote --dir {dir} --model-name ghost --generation 1"
        )))
        .is_err());
        assert!(run(&argv(&format!(
            "predict --store {dir} --model-name ghost --d 4"
        )))
        .is_err());
        std::fs::remove_dir_all(std::path::Path::new(&dir)).ok();
    }

    #[test]
    fn fit_store_publish_feeds_predict_and_serve_bench() {
        let dir = store_dir("fit");
        run(&argv(&format!(
            "fit --dataset mixture --n 128 --k 3 --d 8 --max-iters 3 --store {dir} --model-name mix"
        )))
        .unwrap();
        run(&argv(&format!(
            "predict --store {dir} --model-name mix --n 64 --d 8"
        )))
        .unwrap();
        run(&argv(&format!(
            "serve-bench --store {dir} --model-name mix --n 64 --d 8 --clients 2 --requests 25"
        )))
        .unwrap();
        std::fs::remove_dir_all(std::path::Path::new(&dir)).ok();
    }

    #[test]
    fn serve_bench_model_churn_swaps_without_losing_requests() {
        let dir = store_dir("churn");
        let json = std::env::temp_dir().join("swkm_serve_bench_churn_test.json");
        run(&argv(&format!(
            "serve-bench --k 4 --n 256 --d 8 --clients 2 --requests 300 --max-iters 3 \
             --store {dir} --model-churn 3 --churn-every-ms 5 --metrics-json {}",
            json.display()
        )))
        .unwrap();
        let doc = std::fs::read_to_string(&json).unwrap();
        assert!(doc.contains("\"serve_model_swaps\":3"), "{doc}");
        assert!(doc.contains("\"serve_failed\":0"), "{doc}");
        assert!(doc.contains("\"store_put_total\":4"), "{doc}"); // seed + 3 churn
                                                                 // Cold restart: the churned generations survive on disk.
        run(&argv(&format!(
            "predict --store {dir} --model-name bench --n 64 --d 8"
        )))
        .unwrap();
        std::fs::remove_file(&json).ok();
        std::fs::remove_dir_all(std::path::Path::new(&dir)).ok();
    }
}
