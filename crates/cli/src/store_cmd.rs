//! `swkm store <verb>` — operate a persistent model store directory.
//!
//! ```text
//! swkm store put     --dir models/ --model-name census [--from model.swkm]
//!                    [--dataset mixture --n 4096 --k 64 --d 16] [--no-promote]
//! swkm store list    --dir models/
//! swkm store promote --dir models/ --model-name census --generation 2
//! swkm store delete  --dir models/ --model-name census
//! swkm store gc      --dir models/
//! ```
//!
//! The store is the durable end of hot-swap serving: `put` writes a new
//! immutable generation and (by default) promotes it live; a serving
//! process picks the bump up via `serve-bench --store`/`swap_model`, and
//! `gc` reclaims the superseded generations afterwards.

use crate::args::Args;
use kmeans_core::{InitMethod, KMeansConfig, Lloyd, Matrix};
use swkm_serve::ModelArtifact;
use swkm_store::{ModelStore, StdVfs};

/// The CLI works in `f32` end to end (the paper's serving precision).
type Elem = f32;

fn open_store(args: &Args) -> Result<ModelStore<StdVfs>, String> {
    let dir = args.get_str("dir").ok_or("store needs --dir <path>")?;
    let vfs = StdVfs::open(dir).map_err(|e| e.to_string())?;
    ModelStore::open(vfs).map_err(|e| e.to_string())
}

fn require_model_name(args: &Args) -> Result<String, String> {
    args.get_str("model-name")
        .map(|s| s.to_string())
        .ok_or_else(|| "store needs --model-name <name>".to_string())
}

/// Dispatch `swkm store <verb> [--flags]`. `args.command` is the verb
/// (the leading `store` token was peeled off by `main`).
pub fn cmd_store(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "put" => cmd_put(args),
        "list" => cmd_list(args),
        "promote" => cmd_promote(args),
        "delete" => cmd_delete(args),
        "gc" => cmd_gc(args),
        other => Err(format!(
            "unknown store verb `{other}` (put|list|promote|delete|gc)"
        )),
    }
}

/// Build the artifact to store: import `--from <file>`, or train one
/// in-process with the same dataset flags `train` takes.
fn build_artifact(args: &Args) -> Result<ModelArtifact<Elem>, String> {
    if let Some(path) = args.get_str("from") {
        return ModelArtifact::<Elem>::load(path).map_err(|e| format!("--from {path}: {e}"));
    }
    let k: usize = args.require("k")?;
    let dataset = args.get_str("dataset").unwrap_or("mixture");
    let n: usize = args.get_or("n", 4_096)?;
    let data: Matrix<Elem> = match dataset {
        "kegg" => datasets::uci::kegg_network().generate(n),
        "road" => datasets::uci::road_network().generate(n),
        "census" => datasets::uci::us_census_1990().generate(n),
        "mixture" => {
            let d: usize = args.get_or("d", 16)?;
            datasets::GaussianMixture::new(n, d, k.max(2))
                .with_seed(args.get_or("seed", 0u64)?)
                .generate()
                .data
        }
        other => {
            return Err(format!(
                "unknown dataset `{other}` (kegg|road|census|mixture)"
            ))
        }
    };
    let config = KMeansConfig::new(k)
        .with_seed(args.get_or("seed", 0u64)?)
        .with_max_iters(args.get_or("max-iters", 20usize)?)
        .with_init(InitMethod::KMeansPlusPlus);
    let fit = Lloyd::run(&data, &config).map_err(|e| e.to_string())?;
    Ok(ModelArtifact::new(
        data.rows() as u64,
        fit.centroids,
        fit.iterations as u64,
        fit.objective,
        fit.converged,
        None,
    ))
}

fn cmd_put(args: &Args) -> Result<(), String> {
    let mut store = open_store(args)?;
    let name = require_model_name(args)?;
    let artifact = build_artifact(args)?;
    let promote = args.get_str("no-promote").is_none();
    let generation = if promote {
        store.publish(&name, &artifact)
    } else {
        store.put(&name, &artifact)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "{name}@g{generation}: k={} d={} ({} bytes){}",
        artifact.meta.k,
        artifact.meta.d,
        artifact.to_bytes().len(),
        if promote { ", live" } else { ", not promoted" }
    );
    Ok(())
}

fn cmd_list(args: &Args) -> Result<(), String> {
    let store = open_store(args)?;
    let models = store.models();
    if models.is_empty() {
        println!("store is empty");
        return Ok(());
    }
    println!(
        "{:<24} {:>6} {:>12} {:>12} {:>6}",
        "model", "live", "generations", "bytes", "dtype"
    );
    for m in &models {
        println!(
            "{:<24} {:>6} {:>12} {:>12} {:>6}",
            m.name,
            m.live.map_or("—".to_string(), |g| format!("g{g}")),
            m.generations,
            m.bytes,
            format!("f{}", m.dtype as usize * 8),
        );
    }
    let report = store.replay_report();
    println!(
        "{} model(s), {} bytes total; manifest replayed {} record(s){}",
        models.len(),
        store.total_bytes(),
        report.records,
        if report.torn_bytes > 0 {
            format!(" ({} torn byte(s) discarded)", report.torn_bytes)
        } else {
            String::new()
        }
    );
    Ok(())
}

fn cmd_promote(args: &Args) -> Result<(), String> {
    let mut store = open_store(args)?;
    let name = require_model_name(args)?;
    let generation: u64 = args.require("generation")?;
    store
        .promote(&name, generation)
        .map_err(|e| e.to_string())?;
    println!("{name}: generation g{generation} is live");
    Ok(())
}

fn cmd_delete(args: &Args) -> Result<(), String> {
    let mut store = open_store(args)?;
    let name = require_model_name(args)?;
    store.delete(&name).map_err(|e| e.to_string())?;
    println!("{name}: removed from the registry (files reclaimed at gc)");
    Ok(())
}

fn cmd_gc(args: &Args) -> Result<(), String> {
    let mut store = open_store(args)?;
    let report = store.compact().map_err(|e| e.to_string())?;
    println!(
        "gc: removed {} file(s), reclaimed {} bytes; manifest {} → {} bytes",
        report.files_removed,
        report.bytes_reclaimed,
        report.manifest_bytes_before,
        report.manifest_bytes_after
    );
    Ok(())
}
