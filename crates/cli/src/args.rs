//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone)]
pub struct Args {
    pub command: String,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `argv[1..]`: first token is the subcommand, the rest are
    /// `--key value` pairs (or bare `--key` booleans).
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut it = argv.iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| "missing subcommand".to_string())?
            .clone();
        if command.starts_with("--") {
            return Err(format!("expected a subcommand, found flag {command}"));
        }
        let mut flags = HashMap::new();
        while let Some(token) = it.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, found `{token}`"))?;
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            flags.insert(key.to_string(), value);
        }
        Ok(Args { command, flags })
    }

    /// A required flag, parsed.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self
            .flags
            .get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))?;
        raw.parse()
            .map_err(|_| format!("flag --{key}: cannot parse `{raw}`"))
    }

    /// An optional flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse `{raw}`")),
        }
    }

    /// An optional string flag.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&argv("model --n 1000 --k 16 --verbose")).unwrap();
        assert_eq!(a.command, "model");
        assert_eq!(a.require::<u64>("n").unwrap(), 1000);
        assert_eq!(a.require::<usize>("k").unwrap(), 16);
        assert_eq!(a.get_str("verbose"), Some("true"));
        assert_eq!(a.get_or("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("--n 5")).is_err());
        assert!(Args::parse(&argv("model n 5")).is_err());
        let a = Args::parse(&argv("model --n five")).unwrap();
        assert!(a.require::<u64>("n").is_err());
        assert!(a.require::<u64>("k").is_err());
    }
}
