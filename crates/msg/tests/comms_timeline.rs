//! Per-rank comms timelines: every collective must emit a balanced
//! `Complete` span on its rank's track, fault injection and retries must
//! leave instant markers, and split communicators must inherit the tracer.

use msg::{Comm, FaultKind, FaultPlan, World};
use std::sync::Arc;
use std::time::Duration;
use swkm_obs::{EventKind, TraceBuffer, Tracer};

fn attach(comm: &mut Comm, buf: &Arc<TraceBuffer>) {
    comm.set_tracer(Tracer::new(Arc::clone(buf), "comm", comm.rank() as u32));
}

#[test]
fn collectives_emit_balanced_per_rank_spans() {
    let p = 4;
    let buf = TraceBuffer::shared(8192);
    let b = Arc::clone(&buf);
    World::run(p, move |comm| {
        attach(comm, &b);
        comm.barrier();
        let mut v = vec![comm.rank() as f64; 8];
        comm.allreduce_sum_f64(&mut v);
        let mut r = vec![1.0f64; 16];
        comm.allreduce_ring_sum_f64(&mut r);
        let mut pairs = vec![(comm.rank() as f64, comm.rank() as u64)];
        comm.allreduce_min_loc(&mut pairs);
        let _ = comm.allgather(comm.rank() as u32);
        // Split communicators inherit the tracer (same track).
        let mut sub = comm.split((comm.rank() % 2) as u64, comm.rank() as u64);
        sub.barrier();
    });

    let events = buf.snapshot();
    let stats = buf.stats();
    assert_eq!(stats.dropped, 0, "buffer sized to retain everything");
    assert_eq!(stats.retained as usize, events.len());
    assert!(!events.is_empty());

    for want in [
        "barrier",
        "allreduce_tree",
        "allreduce_ring",
        "minloc",
        "allgather",
        "gather",
        "broadcast",
    ] {
        assert!(
            events.iter().any(|e| e.name == want),
            "missing collective span {want:?}"
        );
    }
    // Every rank produced the same multiset of spans: collectives are
    // symmetric, so the timeline must be too.
    let mut per_track: Vec<Vec<&str>> = vec![Vec::new(); p];
    for e in &events {
        assert_eq!(e.proc, "comm");
        assert!(matches!(e.kind, EventKind::Complete));
        assert!((e.track as usize) < p, "track {} out of range", e.track);
        assert_eq!(e.arg_name, "comm_size");
        assert!(e.arg == p as u64 || e.arg == (p / 2) as u64);
        per_track[e.track as usize].push(e.name);
    }
    for t in per_track.iter_mut() {
        t.sort_unstable();
    }
    for t in &per_track[1..] {
        assert_eq!(t, &per_track[0], "asymmetric per-rank timelines");
    }
    // The split barrier ran on the 2-rank subcommunicator.
    assert!(events
        .iter()
        .any(|e| e.name == "barrier" && e.arg == (p / 2) as u64));
}

#[test]
fn faults_and_retries_leave_instant_markers() {
    let p = 4;
    let buf = TraceBuffer::shared(16384);
    let b = Arc::clone(&buf);
    let plan = Arc::new(
        FaultPlan::seeded(0xFA11, 0.35)
            .with_kinds(&[FaultKind::Drop])
            .with_restart_ms(2),
    );
    let (_, _, stats) = World::run_with_faults(
        p,
        Duration::from_secs(60),
        Some(Arc::clone(&plan)),
        move |comm| {
            attach(comm, &b);
            for _ in 0..6 {
                let mut v = vec![comm.rank() as f64; 32];
                comm.allreduce_sum_f64(&mut v);
            }
        },
    );
    let injected: u64 = stats.iter().map(|s| s.injected_total()).sum();
    assert!(injected > 0, "plan should inject at least one drop");

    let events = buf.snapshot();
    let drops = events
        .iter()
        .filter(|e| e.name == "fault_drop" && matches!(e.kind, EventKind::Instant))
        .count();
    let retries = events
        .iter()
        .filter(|e| e.name == "recv_retry" && matches!(e.kind, EventKind::Instant))
        .count();
    assert!(
        drops as u64 >= injected,
        "every injected drop leaves a marker"
    );
    assert!(retries > 0, "dropped packets force recv retries");
    // Spans still balance around the chaos.
    assert!(events.iter().any(|e| e.name == "allreduce_tree"));
}

#[test]
fn untraced_comms_emit_nothing() {
    let buf = TraceBuffer::shared(64);
    World::run(3, |comm| {
        comm.barrier();
        let mut v = vec![1.0f64; 4];
        comm.allreduce_sum_f64(&mut v);
    });
    assert_eq!(buf.stats().pushed, 0);
}
