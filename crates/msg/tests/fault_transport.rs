//! Transport-level fault-injection tests: the collectives must recover from
//! seeded drop/delay/corrupt/crash faults with bitwise-identical results,
//! replay the same fault sequence for the same seed, and surface typed
//! errors when a scripted persistent fault defeats the retry budget.

use msg::{Comm, CommError, FaultKind, FaultPlan, ScriptedFault, World};
use std::sync::Arc;
use std::time::Duration;

/// A workload exercising every collective family: tree allreduce, min-loc,
/// ring allreduce, gather/broadcast. Returns everything bitwise-comparable.
type WorkloadOut = (Vec<f64>, Vec<(f64, u64)>, Vec<f64>, Vec<u32>);

fn workload(comm: &mut Comm) -> WorkloadOut {
    let mut sums: Vec<f64> = (0..16)
        .map(|i| ((comm.rank() + 1) as f64).powi(7) * 1e-3 + i as f64)
        .collect();
    comm.allreduce_sum_f64(&mut sums);

    let mut pairs: Vec<(f64, u64)> = (0..8)
        .map(|i| (((comm.rank() * 13 + i) % 7) as f64, comm.rank() as u64))
        .collect();
    comm.allreduce_min_loc(&mut pairs);

    let mut ring: Vec<f64> = (0..24).map(|i| (comm.rank() * 31 + i) as f64).collect();
    comm.allreduce_ring_sum_f64(&mut ring);

    let gathered = comm.allgather(comm.rank() as u32 * 3);
    (sums, pairs, ring, gathered)
}

#[test]
fn seeded_faults_recover_bitwise_per_kind() {
    let p = 4;
    let baseline = World::run(p, workload);
    for kind in FaultKind::ALL {
        let plan = FaultPlan::seeded(0xFA017 + kind as u64, 0.25)
            .with_kinds(&[kind])
            .with_delay_ms(10)
            .with_restart_ms(3);
        let (out, _, stats) =
            World::run_with_faults(p, Duration::from_secs(60), Some(Arc::new(plan)), workload);
        assert_eq!(out, baseline, "{kind}: faulted run must match fault-free");
        let mut total = msg::FaultStats::new();
        for s in &stats {
            total.merge(s);
        }
        assert!(
            total.injected_of(kind) > 0,
            "{kind}: expected at least one injected fault"
        );
        if kind != FaultKind::Delay {
            assert!(total.retries() > 0, "{kind}: recovery must count retries");
        }
    }
}

#[test]
fn seeded_faults_all_kinds_recover_bitwise() {
    let p = 5;
    let baseline = World::run(p, workload);
    let plan = FaultPlan::seeded(2024, 0.25)
        .with_delay_ms(10)
        .with_restart_ms(3);
    let (out, _, stats) =
        World::run_with_faults(p, Duration::from_secs(60), Some(Arc::new(plan)), workload);
    assert_eq!(out, baseline);
    let injected: u64 = stats.iter().map(|s| s.injected_total()).sum();
    assert!(injected > 0);
}

#[test]
fn same_seed_replays_identical_injection_counts() {
    let p = 4;
    let plan = FaultPlan::seeded(77, 0.3)
        .with_delay_ms(5)
        .with_restart_ms(2);
    let run = |plan: FaultPlan| {
        let (out, _, stats) =
            World::run_with_faults(p, Duration::from_secs(60), Some(Arc::new(plan)), workload);
        let counts: Vec<[u64; 4]> = stats
            .iter()
            .map(|s| {
                [
                    s.injected_of(FaultKind::Drop),
                    s.injected_of(FaultKind::Delay),
                    s.injected_of(FaultKind::Corrupt),
                    s.injected_of(FaultKind::Crash),
                ]
            })
            .collect();
        (out, counts)
    };
    let (out_a, counts_a) = run(plan.clone());
    let (out_b, counts_b) = run(plan);
    assert_eq!(out_a, out_b, "same seed must reproduce identical results");
    assert_eq!(
        counts_a, counts_b,
        "same seed must inject the identical fault sequence"
    );
}

#[test]
fn persistent_scripted_fault_surfaces_typed_errors() {
    // Rank 0's first collective send is persistently dropped: its retry
    // budget runs out (RetriesExhausted) and the starved receiver times out.
    let plan = FaultPlan::scripted(vec![ScriptedFault {
        world_rank: 0,
        op_index: 0,
        kind: FaultKind::Drop,
        persistent: true,
    }]);
    let (out, _, _) = World::run_with_faults(
        2,
        Duration::from_millis(250),
        Some(Arc::new(plan)),
        |comm| {
            let mut v = vec![comm.rank() as f64];
            comm.try_allreduce_sum_f64(&mut v)
        },
    );
    match &out[0] {
        Err(CommError::RetriesExhausted {
            world_rank: 0,
            dst_world_rank: 1,
            attempts,
        }) => assert!(*attempts >= 6),
        other => panic!("rank 0 expected RetriesExhausted, got {other:?}"),
    }
    assert!(
        matches!(out[1], Err(CommError::Timeout { .. })),
        "rank 1 expected Timeout, got {:?}",
        out[1]
    );
}

#[test]
fn corrupt_frame_is_discarded_and_retransmitted() {
    let plan = FaultPlan::scripted(vec![ScriptedFault {
        world_rank: 0,
        op_index: 0,
        kind: FaultKind::Corrupt,
        persistent: false,
    }]);
    let (out, _, stats) =
        World::run_with_faults(2, Duration::from_secs(10), Some(Arc::new(plan)), |comm| {
            comm.broadcast(0, (comm.rank() == 0).then_some(vec![1.25f64; 4]))
        });
    assert_eq!(out, vec![vec![1.25; 4], vec![1.25; 4]]);
    assert_eq!(stats[0].injected_of(FaultKind::Corrupt), 1);
    assert!(
        stats[1].retries() >= 1,
        "receiver must count the corrupt-frame discard as a retry"
    );
}

#[test]
fn delayed_frame_is_delivered_once_and_counted() {
    let plan = FaultPlan::scripted(vec![ScriptedFault {
        world_rank: 0,
        op_index: 0,
        kind: FaultKind::Delay,
        persistent: false,
    }])
    .with_delay_ms(30);
    let (out, _, stats) =
        World::run_with_faults(2, Duration::from_secs(10), Some(Arc::new(plan)), |comm| {
            comm.broadcast(0, (comm.rank() == 0).then_some(7u64))
        });
    assert_eq!(out, vec![7, 7]);
    assert_eq!(stats[0].injected_of(FaultKind::Delay), 1);
}

#[test]
fn try_send_to_exited_rank_reports_peer_gone() {
    // Regression for the unwrap()-on-channel-send audit: a peer that has
    // already returned must surface as PeerGone, not a panic.
    let out = World::run_with_timeout(2, Duration::from_secs(10), |comm| {
        if comm.rank() == 1 {
            return Ok(()); // exit immediately; rank 0 keeps sending at us
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match comm.try_send(1, 9, 1u8) {
                Ok(()) => {
                    if std::time::Instant::now() > deadline {
                        panic!("peer never observed as gone");
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    });
    assert_eq!(out[0], Err(CommError::PeerGone { peer_world_rank: 1 }));
}

#[test]
fn inactive_plan_is_the_fault_free_fast_path() {
    let plan = FaultPlan::seeded(1, 0.0);
    let baseline = World::run(3, workload);
    let (out, _, stats) =
        World::run_with_faults(3, Duration::from_secs(60), Some(Arc::new(plan)), workload);
    assert_eq!(out, baseline);
    for s in stats {
        assert_eq!(s.injected_total(), 0);
        assert_eq!(s.retries(), 0);
    }
}
