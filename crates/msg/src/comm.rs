//! The SPMD world, communicators and point-to-point messaging.

use crate::cost::{CostLog, OpKind};
use crate::fault::{CommError, FaultKind, FaultPlan, FaultStats, MAX_COMM_ATTEMPTS};
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Payload envelope travelling between ranks.
struct Packet {
    src_world: usize,
    comm_id: u64,
    tag: u64,
    /// Set on injected detectably-corrupt frames; the receiver discards the
    /// packet (as a checksum failure would) and waits for the retransmit.
    corrupt: bool,
    data: Box<dyn Any + Send>,
}

/// Placeholder payload of an injected corrupt frame (the real payload is
/// retransmitted clean; corruption here is always *detectable*).
struct CorruptFrame;

/// State shared by every rank of a world.
struct WorldShared {
    /// One inbound channel per world rank; anyone may send into it.
    senders: Vec<Sender<Packet>>,
    n_ranks: usize,
}

/// A rank's single inbound mailbox, shared by all communicators of that
/// rank (parent and split children pull from the same stream, so unmatched
/// packets must be stashed where every communicator can see them).
struct Mailbox {
    rx: Receiver<Packet>,
    stash: Vec<Packet>,
}

impl Mailbox {
    /// Non-blocking probe: drain whatever has arrived, return a match if
    /// one exists now.
    fn try_match_packet(&mut self, src_world: usize, comm_id: u64, tag: u64) -> Option<Packet> {
        while let Ok(p) = self.rx.try_recv() {
            self.stash.push(p);
        }
        self.stash
            .iter()
            .position(|p| p.src_world == src_world && p.comm_id == comm_id && p.tag == tag)
            .map(|pos| self.stash.remove(pos))
    }

    /// Pull packets until one matches `(src_world, comm, tag)`, stashing the
    /// rest.
    fn match_packet(
        &mut self,
        receiver_world_rank: usize,
        src_world: usize,
        comm_id: u64,
        tag: u64,
        timeout: Duration,
    ) -> Result<Packet, RecvError> {
        if let Some(pos) = self
            .stash
            .iter()
            .position(|p| p.src_world == src_world && p.comm_id == comm_id && p.tag == tag)
        {
            return Ok(self.stash.remove(pos));
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .unwrap_or(Duration::ZERO);
            match self.rx.recv_timeout(remaining) {
                Ok(p) => {
                    if p.src_world == src_world && p.comm_id == comm_id && p.tag == tag {
                        return Ok(p);
                    }
                    self.stash.push(p);
                }
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    return Err(RecvError::Timeout {
                        receiver_world_rank,
                        from_world_rank: src_world,
                        tag,
                    })
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(RecvError::Disconnected)
                }
            }
        }
    }
}

/// Errors surfaced by receive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// No matching message arrived within the deadline. Almost always a
    /// deadlock in the SPMD program (mismatched collective order).
    Timeout {
        receiver_world_rank: usize,
        from_world_rank: usize,
        tag: u64,
    },
    /// The message matched but carried a different payload type.
    TypeMismatch { from_world_rank: usize, tag: u64 },
    /// All senders disconnected (a peer rank panicked).
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout {
                receiver_world_rank,
                from_world_rank,
                tag,
            } => write!(
                f,
                "rank {receiver_world_rank} timed out waiting for message from rank \
                 {from_world_rank} (tag {tag}); likely SPMD deadlock"
            ),
            RecvError::TypeMismatch {
                from_world_rank,
                tag,
            } => write!(
                f,
                "message from rank {from_world_rank} (tag {tag}) had unexpected payload type"
            ),
            RecvError::Disconnected => write!(f, "peer rank disconnected (panicked?)"),
        }
    }
}

impl std::error::Error for RecvError {}

/// An SPMD world: spawns `n` ranks as scoped threads and runs the same
/// closure on each.
///
/// ```
/// use msg::World;
///
/// let sums = World::run(4, |comm| {
///     let mut v = vec![comm.rank() as f64];
///     comm.allreduce_sum_f64(&mut v);
///     v[0]
/// });
/// assert_eq!(sums, vec![6.0; 4]);
/// ```
pub struct World;

impl World {
    /// Spawn `n_ranks` threads, run `f` on each, and return the per-rank
    /// results in rank order. A panic in any rank propagates.
    pub fn run<T, F>(n_ranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        Self::run_with_timeout(n_ranks, Duration::from_secs(60), f)
    }

    /// [`World::run`] with an explicit receive deadline.
    pub fn run_with_timeout<T, F>(n_ranks: usize, timeout: Duration, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        Self::run_full(n_ranks, timeout, f)
            .into_iter()
            .map(|(v, _)| v)
            .collect()
    }

    /// Like [`World::run`] but also returns each rank's communication cost
    /// log, for feeding the performance model.
    pub fn run_with_cost<T, F>(n_ranks: usize, f: F) -> (Vec<T>, Vec<CostLog>)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        let (out, costs, _) = Self::run_with_faults(n_ranks, Duration::from_secs(60), None, f);
        (out, costs)
    }

    /// [`World::run_with_cost`] under a [`FaultPlan`]: every rank's
    /// collective traffic passes through the plan's injection schedule, and
    /// each rank's injected-fault / retry tally is returned alongside the
    /// cost logs. `faults: None` (or an inactive plan) is exactly the
    /// fault-free fast path.
    pub fn run_with_faults<T, F>(
        n_ranks: usize,
        timeout: Duration,
        faults: Option<Arc<FaultPlan>>,
        f: F,
    ) -> (Vec<T>, Vec<CostLog>, Vec<FaultStats>)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        let faults = faults.filter(|p| p.is_active());
        let mut out = Vec::with_capacity(n_ranks);
        let mut costs = Vec::with_capacity(n_ranks);
        let mut stats = Vec::with_capacity(n_ranks);
        for (v, c, s) in Self::run_full_faulted(n_ranks, timeout, faults, f) {
            out.push(v);
            costs.push(c);
            stats.push(s);
        }
        (out, costs, stats)
    }

    fn run_full<T, F>(n_ranks: usize, timeout: Duration, f: F) -> Vec<(T, CostLog)>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        Self::run_full_faulted(n_ranks, timeout, None, f)
            .into_iter()
            .map(|(v, c, _)| (v, c))
            .collect()
    }

    fn run_full_faulted<T, F>(
        n_ranks: usize,
        timeout: Duration,
        faults: Option<Arc<FaultPlan>>,
        f: F,
    ) -> Vec<(T, CostLog, FaultStats)>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(n_ranks > 0, "world must have at least one rank");
        let mut senders = Vec::with_capacity(n_ranks);
        let mut receivers = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(WorldShared { senders, n_ranks });

        let mut out: Vec<Option<(T, CostLog, FaultStats)>> = (0..n_ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_ranks);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let shared = shared.clone();
                let faults = faults.clone();
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mailbox = Rc::new(RefCell::new(Mailbox {
                        rx,
                        stash: Vec::new(),
                    }));
                    let cost = Rc::new(RefCell::new(CostLog::new()));
                    let fault_stats = Rc::new(RefCell::new(FaultStats::new()));
                    let mut comm = Comm {
                        world_rank: rank,
                        shared,
                        mailbox,
                        timeout,
                        comm_id: 0,
                        members: None,
                        rank_in_comm: rank,
                        next_comm_seed: 1,
                        collective_seq: 0,
                        cost: cost.clone(),
                        faults,
                        fault_stats: fault_stats.clone(),
                        op_counter: Rc::new(RefCell::new(0)),
                        tracer: None,
                    };
                    let result = f(&mut comm);
                    drop(comm);
                    let cost = Rc::try_unwrap(cost)
                        .map(|c| c.into_inner())
                        .unwrap_or_else(|rc| rc.borrow().clone());
                    let fault_stats = Rc::try_unwrap(fault_stats)
                        .map(|c| c.into_inner())
                        .unwrap_or_else(|rc| rc.borrow().clone());
                    (result, cost, fault_stats)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(pair) => out[rank] = Some(pair),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        out.into_iter()
            .map(|v| v.expect("rank produced no result"))
            .collect()
    }
}

/// A communicator handle owned by one rank: the world communicator initially,
/// or a sub-communicator produced by [`Comm::split`].
///
/// All communicators of one rank share a single mailbox and a single cost
/// log; messages are matched on `(source, communicator id, tag)`.
pub struct Comm {
    world_rank: usize,
    shared: Arc<WorldShared>,
    mailbox: Rc<RefCell<Mailbox>>,
    timeout: Duration,
    /// Identifier of this communicator; the world communicator is 0.
    comm_id: u64,
    /// World ranks of this communicator's members in rank order; `None`
    /// means "all world ranks, identity order".
    members: Option<Arc<Vec<usize>>>,
    rank_in_comm: usize,
    /// Deterministic seed for deriving child communicator ids.
    next_comm_seed: u64,
    /// Sequence number mixed into collective tags so back-to-back
    /// collectives on the same communicator never match each other.
    collective_seq: u64,
    /// Per-rank communication accounting, shared across this rank's
    /// communicators.
    cost: Rc<RefCell<CostLog>>,
    /// Active fault-injection schedule (`None` for the fault-free fast
    /// path), shared across this rank's communicators.
    faults: Option<Arc<FaultPlan>>,
    /// Injected-fault and retry tallies, shared across this rank's
    /// communicators.
    fault_stats: Rc<RefCell<FaultStats>>,
    /// Per-rank collective-send ordinal: the `op_index` coordinate of the
    /// fault schedule. Shared across communicators so the sequence is a
    /// deterministic property of the rank's whole SPMD program.
    op_counter: Rc<RefCell<u64>>,
    /// Optional per-rank event tracer (track = world rank). `None` is the
    /// untraced fast path; when set, every collective emits a complete
    /// span and every retry/injected fault an instant event.
    tracer: Option<swkm_obs::Tracer>,
}

/// Tag bit reserved for collective-internal messages.
const COLLECTIVE_TAG_BIT: u64 = 1 << 63;

impl Comm {
    /// This rank within this communicator.
    pub fn rank(&self) -> usize {
        self.rank_in_comm
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        match &self.members {
            Some(m) => m.len(),
            None => self.shared.n_ranks,
        }
    }

    /// This rank's world rank (stable across splits).
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank_of(&self, r: usize) -> usize {
        match &self.members {
            Some(m) => m[r],
            None => r,
        }
    }

    /// Snapshot of this rank's accumulated communication cost.
    pub fn cost_snapshot(&self) -> CostLog {
        self.cost.borrow().clone()
    }

    /// Send `value` to communicator rank `dst` with `tag`. Never blocks.
    /// Panics if the peer is gone; see [`Comm::try_send`] for the fallible
    /// variant.
    pub fn send<T: Any + Send>(&mut self, dst: usize, tag: u64, value: T) {
        self.try_send(dst, tag, value)
            .unwrap_or_else(|e| panic!("send failed: {e}"));
    }

    /// Fallible [`Comm::send`]: returns [`CommError::PeerGone`] instead of
    /// panicking when the destination rank has already exited.
    pub fn try_send<T: Any + Send>(
        &mut self,
        dst: usize,
        tag: u64,
        value: T,
    ) -> Result<(), CommError> {
        assert!(
            tag & COLLECTIVE_TAG_BIT == 0,
            "user tags must not set the collective bit"
        );
        self.send_sized(
            dst,
            tag,
            value,
            std::mem::size_of::<T>(),
            OpKind::PointToPoint,
        )
    }

    /// Send a `Vec<T>`, accounting its true payload size. Panics if the
    /// peer is gone; see [`Comm::try_send_vec`].
    pub fn send_vec<T: Any + Send>(&mut self, dst: usize, tag: u64, value: Vec<T>) {
        self.try_send_vec(dst, tag, value)
            .unwrap_or_else(|e| panic!("send failed: {e}"));
    }

    /// Fallible [`Comm::send_vec`].
    pub fn try_send_vec<T: Any + Send>(
        &mut self,
        dst: usize,
        tag: u64,
        value: Vec<T>,
    ) -> Result<(), CommError> {
        assert!(
            tag & COLLECTIVE_TAG_BIT == 0,
            "user tags must not set the collective bit"
        );
        let bytes = std::mem::size_of::<T>() * value.len();
        self.send_sized(dst, tag, value, bytes, OpKind::PointToPoint)
    }

    fn send_sized<T: Any + Send>(
        &mut self,
        dst: usize,
        tag: u64,
        value: T,
        bytes: usize,
        kind: OpKind,
    ) -> Result<(), CommError> {
        let dst_world = self.world_rank_of(dst);
        self.cost
            .borrow_mut()
            .record(kind, self.world_rank, dst_world, bytes);
        self.shared.senders[dst_world]
            .send(Packet {
                src_world: self.world_rank,
                comm_id: self.comm_id,
                tag,
                corrupt: false,
                data: Box::new(value),
            })
            .map_err(|_| CommError::PeerGone {
                peer_world_rank: dst_world,
            })
    }

    /// Receive a `T` from communicator rank `src` with `tag`, blocking until
    /// it arrives (or the deadline passes).
    pub fn recv<T: Any + Send>(&mut self, src: usize, tag: u64) -> Result<T, RecvError> {
        assert!(
            tag & COLLECTIVE_TAG_BIT == 0,
            "user tags must not set the collective bit"
        );
        self.recv_any(src, tag)
    }

    fn recv_any<T: Any + Send>(&mut self, src: usize, tag: u64) -> Result<T, RecvError> {
        let src_world = self.world_rank_of(src);
        let packet = self.mailbox.borrow_mut().match_packet(
            self.world_rank,
            src_world,
            self.comm_id,
            tag,
            self.timeout,
        )?;
        packet
            .data
            .downcast::<T>()
            .map(|b| *b)
            .map_err(|_| RecvError::TypeMismatch {
                from_world_rank: src_world,
                tag,
            })
    }

    /// Receive a `Vec<T>` from communicator rank `src` with `tag`.
    pub fn recv_vec<T: Any + Send>(&mut self, src: usize, tag: u64) -> Result<Vec<T>, RecvError> {
        self.recv::<Vec<T>>(src, tag)
    }

    /// Collective-internal typed send (size accounted explicitly). This is
    /// the single choke point all collective traffic routes through, so the
    /// fault plan is consulted here: injected drops/corruptions/crash
    /// stalls are recovered by bounded retransmission with exponential
    /// backoff, and a persistent (scripted) fault surfaces as
    /// [`CommError::RetriesExhausted`].
    pub(crate) fn csend<T: Any + Send>(
        &mut self,
        dst: usize,
        seq_tag: u64,
        value: T,
        bytes: usize,
        kind: OpKind,
    ) -> Result<(), CommError> {
        let tag = COLLECTIVE_TAG_BIT | seq_tag;
        let Some(plan) = self.faults.clone() else {
            return self.send_sized(dst, tag, value, bytes, kind);
        };
        let op = {
            let mut c = self.op_counter.borrow_mut();
            let v = *c;
            *c += 1;
            v
        };
        let dst_world = self.world_rank_of(dst);
        let mut attempt: u32 = 0;
        loop {
            match plan.decide(self.world_rank, op, attempt) {
                None => return self.send_sized(dst, tag, value, bytes, kind),
                Some(FaultKind::Delay) => {
                    // Late delivery: the payload still goes out exactly once
                    // (the receiver's timeout retry does the recovering).
                    self.fault_stats
                        .borrow_mut()
                        .record_injected(FaultKind::Delay);
                    self.trace_instant("fault_delay", "op", op);
                    std::thread::sleep(plan.delay());
                    return self.send_sized(dst, tag, value, bytes, kind);
                }
                Some(injected) => {
                    {
                        let mut st = self.fault_stats.borrow_mut();
                        st.record_injected(injected);
                        st.record_retry();
                    }
                    self.trace_instant(
                        match injected {
                            FaultKind::Drop => "fault_drop",
                            FaultKind::Corrupt => "fault_corrupt",
                            FaultKind::Crash => "fault_crash",
                            FaultKind::Delay => "fault_delay",
                        },
                        "op",
                        op,
                    );
                    match injected {
                        // The transfer vanishes in the fabric: nothing to do
                        // but retransmit after the backoff.
                        FaultKind::Drop => {}
                        // Deliver a detectably-corrupt frame so the receiver
                        // exercises its discard path, then retransmit.
                        FaultKind::Corrupt => {
                            let _ = self.shared.senders[dst_world].send(Packet {
                                src_world: self.world_rank,
                                comm_id: self.comm_id,
                                tag,
                                corrupt: true,
                                data: Box::new(CorruptFrame),
                            });
                        }
                        // Crash + restart: a long stall before retransmission.
                        FaultKind::Crash => std::thread::sleep(plan.restart_pause()),
                        FaultKind::Delay => unreachable!("handled above"),
                    }
                    attempt += 1;
                    if attempt >= MAX_COMM_ATTEMPTS {
                        return Err(CommError::RetriesExhausted {
                            world_rank: self.world_rank,
                            dst_world_rank: dst_world,
                            attempts: attempt,
                        });
                    }
                    std::thread::sleep(backoff(attempt));
                }
            }
        }
    }

    /// Collective-internal typed receive. Without an active fault plan this
    /// is a single blocking wait against the full deadline (the historical
    /// behaviour); under a plan it retries with short, exponentially growing
    /// per-attempt timeouts — discarding detectably-corrupt frames — and
    /// only the final attempt waits out the full deadline.
    pub(crate) fn crecv<T: Any + Send>(
        &mut self,
        src: usize,
        seq_tag: u64,
    ) -> Result<T, CommError> {
        let tag = COLLECTIVE_TAG_BIT | seq_tag;
        let src_world = self.world_rank_of(src);
        if self.faults.is_none() {
            let packet = self.mailbox.borrow_mut().match_packet(
                self.world_rank,
                src_world,
                self.comm_id,
                tag,
                self.timeout,
            )?;
            return downcast_packet(packet, src_world, tag);
        }
        let mut timeouts: u32 = 0;
        let mut discards: u32 = 0;
        loop {
            let wait = if timeouts + 1 >= MAX_COMM_ATTEMPTS {
                self.timeout
            } else {
                attempt_timeout(timeouts)
            };
            let res = self.mailbox.borrow_mut().match_packet(
                self.world_rank,
                src_world,
                self.comm_id,
                tag,
                wait,
            );
            match res {
                Ok(packet) if packet.corrupt => {
                    // Checksum failure: discard and wait for the retransmit.
                    self.fault_stats.borrow_mut().record_retry();
                    self.trace_instant("recv_discard_corrupt", "discards", discards as u64 + 1);
                    discards += 1;
                    if discards > 2 * MAX_COMM_ATTEMPTS {
                        return Err(CommError::Timeout {
                            receiver_world_rank: self.world_rank,
                            from_world_rank: src_world,
                            tag,
                            attempts: timeouts + discards,
                        });
                    }
                }
                Ok(packet) => return downcast_packet(packet, src_world, tag),
                Err(RecvError::Timeout { .. }) => {
                    timeouts += 1;
                    if timeouts >= MAX_COMM_ATTEMPTS {
                        return Err(CommError::Timeout {
                            receiver_world_rank: self.world_rank,
                            from_world_rank: src_world,
                            tag,
                            attempts: timeouts,
                        });
                    }
                    self.fault_stats.borrow_mut().record_retry();
                    self.trace_instant("recv_retry", "timeouts", timeouts as u64);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Fresh tag for the next collective on this communicator.
    pub(crate) fn next_collective_tag(&mut self) -> u64 {
        let t = self.collective_seq;
        self.collective_seq += 1;
        t
    }

    /// Snapshot of this rank's injected-fault / retry tally.
    pub fn fault_stats_snapshot(&self) -> FaultStats {
        self.fault_stats.borrow().clone()
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }

    /// Post a non-blocking receive: returns immediately with a
    /// [`RecvRequest`] that can be polled ([`RecvRequest::test`]) or waited
    /// on ([`RecvRequest::wait`]) — `MPI_Irecv` semantics. The matching
    /// message may arrive before or after the request is posted.
    ///
    /// ```
    /// use msg::World;
    ///
    /// let out = World::run(2, |comm| {
    ///     if comm.rank() == 0 {
    ///         comm.send(1, 3, 42u32);
    ///         0
    ///     } else {
    ///         let req = comm.irecv::<u32>(0, 3);
    ///         // ... overlap computation here ...
    ///         req.wait(comm).unwrap()
    ///     }
    /// });
    /// assert_eq!(out[1], 42);
    /// ```
    pub fn irecv<T: Any + Send>(&self, src: usize, tag: u64) -> RecvRequest<T> {
        assert!(
            tag & COLLECTIVE_TAG_BIT == 0,
            "user tags must not set the collective bit"
        );
        RecvRequest {
            src_world: self.world_rank_of(src),
            comm_id: self.comm_id,
            tag,
            _payload: std::marker::PhantomData,
        }
    }

    /// Split this communicator into sub-communicators by `color`, ordering
    /// ranks within each child by `(key, parent rank)` — the semantics of
    /// `MPI_Comm_split`. Every rank of the parent must call this.
    pub fn split(&mut self, color: u64, key: u64) -> Comm {
        let triples = self.allgather((color, key, self.world_rank));
        let mut members: Vec<(u64, usize, usize)> = triples
            .iter()
            .enumerate()
            .filter(|(_, (c, _, _))| *c == color)
            .map(|(parent_rank, (_, k, w))| (*k, parent_rank, *w))
            .collect();
        members.sort();
        let world_members: Vec<usize> = members.iter().map(|&(_, _, w)| w).collect();
        let rank_in_child = members
            .iter()
            .position(|&(_, _, w)| w == self.world_rank)
            .expect("calling rank missing from its own split");

        // Derive a child id every member computes identically. The seed
        // advances on the parent so sequential splits get distinct ids.
        let seed = self.next_comm_seed;
        self.next_comm_seed += 1;
        let child_id = fxhash64(self.comm_id, seed, color);

        Comm {
            world_rank: self.world_rank,
            shared: self.shared.clone(),
            mailbox: self.mailbox.clone(),
            timeout: self.timeout,
            comm_id: child_id,
            members: Some(Arc::new(world_members)),
            rank_in_comm: rank_in_child,
            next_comm_seed: 1,
            collective_seq: 0,
            cost: self.cost.clone(),
            faults: self.faults.clone(),
            fault_stats: self.fault_stats.clone(),
            op_counter: self.op_counter.clone(),
            tracer: self.tracer.clone(),
        }
    }

    /// Attach an event tracer to this communicator (and, via
    /// [`Comm::split`], to every sub-communicator derived afterwards).
    /// Call it first thing in the rank closure so all collectives land on
    /// the rank's timeline. The conventional tracer is
    /// `Tracer::new(buffer, "comm", world_rank as u32)`.
    pub fn set_tracer(&mut self, tracer: swkm_obs::Tracer) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&swkm_obs::Tracer> {
        self.tracer.as_ref()
    }

    /// Run `f` under a complete span named `name` on this rank's comms
    /// track — the single instrumentation point every collective routes
    /// through. Untraced cost: one `Option` check.
    pub(crate) fn traced<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        let Some(tracer) = self.tracer.clone() else {
            return f(self);
        };
        let start = tracer.begin();
        let out = f(self);
        tracer.complete_full(name, start, 0, "comm_size", self.size() as u64);
        out
    }

    /// Emit an instant event on the comms track (retries, injected
    /// faults, degradations). No-op without a tracer.
    pub(crate) fn trace_instant(&self, name: &'static str, arg_name: &'static str, arg: u64) {
        if let Some(t) = &self.tracer {
            t.instant_full(name, 0, arg_name, arg);
        }
    }
}

/// Downcast a matched packet's payload, mapping failure to the typed error.
fn downcast_packet<T: Any + Send>(
    packet: Packet,
    src_world: usize,
    tag: u64,
) -> Result<T, CommError> {
    packet
        .data
        .downcast::<T>()
        .map(|b| *b)
        .map_err(|_| CommError::TypeMismatch {
            from_world_rank: src_world,
            tag,
        })
}

/// Exponential retransmission backoff: 1 ms, 2 ms, 4 ms, … (capped).
fn backoff(attempt: u32) -> Duration {
    Duration::from_micros(500u64 << attempt.min(6))
}

/// Per-attempt receive window under fault injection: 4 ms, 8 ms, … (the
/// final attempt uses the communicator's full deadline instead).
fn attempt_timeout(timeouts_so_far: u32) -> Duration {
    Duration::from_millis(4u64 << timeouts_so_far.min(5))
}

/// A posted non-blocking receive (see [`Comm::irecv`]). The request is
/// detached from the communicator so computation can proceed; complete it
/// with [`RecvRequest::test`] or [`RecvRequest::wait`] on any communicator
/// handle of the same rank (they share the mailbox).
#[must_use = "a posted receive must be completed with test() or wait()"]
pub struct RecvRequest<T> {
    src_world: usize,
    comm_id: u64,
    tag: u64,
    _payload: std::marker::PhantomData<fn() -> T>,
}

impl<T: Any + Send> RecvRequest<T> {
    /// Poll for completion without blocking: `Ok(Some(value))` if the
    /// message has arrived, `Ok(None)` if not yet.
    pub fn test(&self, comm: &mut Comm) -> Result<Option<T>, RecvError> {
        match comm
            .mailbox
            .borrow_mut()
            .try_match_packet(self.src_world, self.comm_id, self.tag)
        {
            Some(packet) => {
                packet
                    .data
                    .downcast::<T>()
                    .map(|b| Some(*b))
                    .map_err(|_| RecvError::TypeMismatch {
                        from_world_rank: self.src_world,
                        tag: self.tag,
                    })
            }
            None => Ok(None),
        }
    }

    /// Block until the message arrives (or the communicator deadline hits).
    pub fn wait(self, comm: &mut Comm) -> Result<T, RecvError> {
        let packet = comm.mailbox.borrow_mut().match_packet(
            comm.world_rank,
            self.src_world,
            self.comm_id,
            self.tag,
            comm.timeout,
        )?;
        packet
            .data
            .downcast::<T>()
            .map(|b| *b)
            .map_err(|_| RecvError::TypeMismatch {
                from_world_rank: self.src_world,
                tag: self.tag,
            })
    }
}

/// Wait on a batch of same-typed requests, returning values in order.
pub fn wait_all<T: Any + Send>(
    requests: Vec<RecvRequest<T>>,
    comm: &mut Comm,
) -> Result<Vec<T>, RecvError> {
    requests.into_iter().map(|r| r.wait(comm)).collect()
}

/// A tiny deterministic 64-bit mix (FNV/rotate-style) for communicator ids.
fn fxhash64(a: u64, b: u64, c: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in [a, b, c] {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
        h = h.rotate_left(29);
    }
    h | 1 // never collide with the world id 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            7
        });
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn p2p_round_trip() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 42, String::from("hello"));
                comm.recv::<i64>(1, 43).unwrap()
            } else {
                let s = comm.recv::<String>(0, 42).unwrap();
                assert_eq!(s, "hello");
                comm.send(0, 43, 99i64);
                0
            }
        });
        assert_eq!(out[0], 99);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10i32);
                comm.send(1, 2, 20i32);
                0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv::<i32>(0, 2).unwrap();
                let a = comm.recv::<i32>(0, 1).unwrap();
                a + b * 100
            }
        });
        assert_eq!(out[1], 2010);
    }

    #[test]
    fn vec_payloads_account_bytes() {
        let (_, costs) = World::run_with_cost(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vec(1, 7, vec![0f64; 100]);
            } else {
                let v = comm.recv_vec::<f64>(0, 7).unwrap();
                assert_eq!(v.len(), 100);
            }
        });
        assert_eq!(costs[0].total_bytes(), 800);
        assert_eq!(costs[1].total_bytes(), 0);
    }

    #[test]
    fn zero_length_payloads_work() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vec::<f32>(1, 3, Vec::new());
            } else {
                let v = comm.recv_vec::<f32>(0, 3).unwrap();
                assert!(v.is_empty());
            }
        });
    }

    #[test]
    fn type_mismatch_is_detected() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, 1u8);
            } else {
                let err = comm.recv::<String>(0, 5).unwrap_err();
                assert!(matches!(err, RecvError::TypeMismatch { .. }));
            }
        });
    }

    #[test]
    fn recv_timeout_reports_deadlock() {
        let out = World::run_with_timeout(2, Duration::from_millis(50), |comm| {
            if comm.rank() == 1 {
                // Nobody ever sends this.
                let err = comm.recv::<u8>(0, 9).unwrap_err();
                matches!(err, RecvError::Timeout { .. })
            } else {
                true
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn split_groups_by_color() {
        let out = World::run(6, |comm| {
            let color = (comm.rank() % 2) as u64;
            let sub = comm.split(color, comm.rank() as u64);
            (color, sub.rank(), sub.size(), sub.world_rank_of(0))
        });
        // Even world ranks 0,2,4 form color 0; odd 1,3,5 color 1.
        assert_eq!(out[0], (0, 0, 3, 0));
        assert_eq!(out[2], (0, 1, 3, 0));
        assert_eq!(out[4], (0, 2, 3, 0));
        assert_eq!(out[1], (1, 0, 3, 1));
        assert_eq!(out[5], (1, 2, 3, 1));
    }

    #[test]
    fn split_key_reorders_ranks() {
        let out = World::run(4, |comm| {
            // Reverse order inside one color.
            let sub = comm.split(0, (100 - comm.rank()) as u64);
            sub.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn sub_communicators_do_not_cross_talk() {
        let out = World::run(4, |comm| {
            let mut sub = comm.split((comm.rank() / 2) as u64, comm.rank() as u64);
            // Each pair exchanges within itself using identical tags.
            let peer = 1 - sub.rank();
            sub.send(peer, 1, comm.rank() as u64 * 10);
            sub.recv::<u64>(peer, 1).unwrap()
        });
        assert_eq!(out, vec![10, 0, 30, 20]);
    }

    #[test]
    fn parent_and_child_interleave_without_loss() {
        // A message sent on the parent while the child is receiving must not
        // be swallowed by the child.
        let out = World::run(2, |comm| {
            let mut sub = comm.split(0, comm.rank() as u64);
            if comm.rank() == 0 {
                comm.send(1, 8, 111u32); // parent-comm message first
                sub.send(1, 8, 222u32); // child-comm message second
                0
            } else {
                // Receive child message first: the parent packet arrives
                // earlier and must be stashed, then still be deliverable.
                let child_val = sub.recv::<u32>(0, 8).unwrap();
                let parent_val = comm.recv::<u32>(0, 8).unwrap();
                assert_eq!((child_val, parent_val), (222, 111));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn nested_splits() {
        let out = World::run(8, |comm| {
            let mut half = comm.split((comm.rank() / 4) as u64, comm.rank() as u64);
            let quarter = half.split((half.rank() / 2) as u64, half.rank() as u64);
            (half.size(), quarter.size(), quarter.rank())
        });
        for (i, &(h, q, qr)) in out.iter().enumerate() {
            assert_eq!(h, 4);
            assert_eq!(q, 2);
            assert_eq!(qr, i % 2);
        }
    }

    #[test]
    fn irecv_test_polls_without_blocking() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                // Wait for the poller to have polled at least once.
                let go = comm.recv::<u8>(1, 1).unwrap();
                assert_eq!(go, 7);
                comm.send(1, 2, String::from("late"));
            } else {
                let req = comm.irecv::<String>(0, 2);
                assert_eq!(req.test(comm).unwrap(), None); // nothing yet
                comm.send(0, 1, 7u8);
                let v = req.wait(comm).unwrap();
                assert_eq!(v, "late");
            }
        });
    }

    #[test]
    fn irecv_matches_message_that_arrived_first() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, 99i64);
                comm.barrier();
            } else {
                comm.barrier(); // message is certainly in flight/stashed now
                let req = comm.irecv::<i64>(0, 5);
                // test() must find it without blocking.
                let mut got = None;
                for _ in 0..1_000 {
                    if let Some(v) = req.test(comm).unwrap() {
                        got = Some(v);
                        break;
                    }
                    std::thread::yield_now();
                }
                assert_eq!(got, Some(99));
            }
        });
    }

    #[test]
    fn wait_all_collects_in_order() {
        let out = World::run(3, |comm| {
            if comm.rank() == 0 {
                let reqs: Vec<_> = (1..3).map(|r| comm.irecv::<u32>(r, 4)).collect();
                crate::comm::wait_all(reqs, comm).unwrap()
            } else {
                comm.send(0, 4, comm.rank() as u32 * 100);
                Vec::new()
            }
        });
        assert_eq!(out[0], vec![100, 200]);
    }

    #[test]
    fn irecv_type_mismatch_detected_by_test() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 6, 1u8);
                comm.barrier();
            } else {
                comm.barrier();
                let req = comm.irecv::<String>(0, 6);
                // Poll until the packet lands, then the downcast must fail.
                loop {
                    match req.test(comm) {
                        Ok(None) => std::thread::yield_now(),
                        Ok(Some(_)) => panic!("downcast should fail"),
                        Err(e) => {
                            assert!(matches!(e, RecvError::TypeMismatch { .. }));
                            break;
                        }
                    }
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_world_rejected() {
        World::run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "collective bit")]
    fn reserved_tag_rejected() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1 << 63, 0u8);
            }
        });
    }
}
