//! Ring collectives: the bandwidth-optimal AllReduce.
//!
//! The binomial tree in [`crate::collectives`] moves each rank's full
//! buffer `log₂(p)` times; the ring moves `2·(p-1)/p` of it in total —
//! the classical trade (latency vs bandwidth) that the paper's Update
//! AllReduce faces at large `k·d`. Both are exposed so executors and
//! benches can compare; the ablation bench quantifies the difference under
//! the cost model's link classes.
//!
//! Algorithm: split the buffer into `p` chunks. Phase 1 (reduce-scatter):
//! `p-1` steps around the ring; after step `s`, rank `r` holds the partial
//! reduction of chunk `(r - s + p) mod p` over `s+1` ranks. Phase 2
//! (allgather): `p-1` more steps circulate the finished chunks. Chunk
//! reduction order is fixed by ring position, so results are deterministic
//! across runs and identical on every rank.

use crate::comm::Comm;
use crate::cost::OpKind;
use crate::fault::CommError;
use std::any::Any;

/// Chunk `idx` of `0..len` split into `parts` near-equal contiguous pieces.
fn chunk_range(len: usize, parts: usize, idx: usize) -> std::ops::Range<usize> {
    let q = len / parts;
    let r = len % parts;
    let start = idx * q + idx.min(r);
    start..start + q + usize::from(idx < r)
}

impl Comm {
    /// Ring all-reduce: element-wise `op` over every rank's `buf`,
    /// bandwidth-optimal. Result identical on every rank.
    pub fn allreduce_ring<T, F>(&mut self, buf: &mut [T], op: F)
    where
        T: Any + Send + Clone,
        F: Fn(&mut [T], &[T]),
    {
        self.try_allreduce_ring(buf, op)
            .unwrap_or_else(|e| panic!("collective failed: {e}"))
    }

    /// Fallible [`Comm::allreduce_ring`].
    pub fn try_allreduce_ring<T, F>(&mut self, buf: &mut [T], op: F) -> Result<(), CommError>
    where
        T: Any + Send + Clone,
        F: Fn(&mut [T], &[T]),
    {
        let p = self.size();
        if p == 1 || buf.is_empty() {
            return Ok(());
        }
        self.traced("allreduce_ring", |c| {
            // Ring tag space: bit 61 set, sequence in the high bits, step index
            // in the low 16 bits — consecutive ring collectives can never
            // cross-match.
            let tag = (1 << 61) | (c.next_collective_tag() << 16);
            let rank = c.rank();
            let right = (rank + 1) % p;
            let left = (rank + p - 1) % p;
            let elem_bytes = std::mem::size_of::<T>();

            // Phase 1: reduce-scatter. At step s we send the chunk we just
            // finished accumulating and fold the incoming one.
            for s in 0..p - 1 {
                let send_chunk = (rank + p - s) % p;
                let recv_chunk = (rank + p - s - 1) % p;
                let send_range = chunk_range(buf.len(), p, send_chunk);
                let payload: Vec<T> = buf[send_range].to_vec();
                let bytes = elem_bytes * payload.len();
                c.csend(right, tag | s as u64, payload, bytes, OpKind::AllReduce)?;
                let incoming: Vec<T> = c.crecv(left, tag | s as u64)?;
                let recv_range = chunk_range(buf.len(), p, recv_chunk);
                op(&mut buf[recv_range], &incoming);
            }
            // Phase 2: allgather the finished chunks.
            for s in 0..p - 1 {
                let send_chunk = (rank + 1 + p - s) % p;
                let recv_chunk = (rank + p - s) % p;
                let send_range = chunk_range(buf.len(), p, send_chunk);
                let payload: Vec<T> = buf[send_range].to_vec();
                let bytes = elem_bytes * payload.len();
                c.csend(
                    right,
                    tag | (p + s) as u64,
                    payload,
                    bytes,
                    OpKind::AllReduce,
                )?;
                let incoming: Vec<T> = c.crecv(left, tag | (p + s) as u64)?;
                let recv_range = chunk_range(buf.len(), p, recv_chunk);
                buf[recv_range].clone_from_slice(&incoming);
            }
            Ok(())
        })
    }

    /// Ring sum all-reduce for `f64` buffers.
    pub fn allreduce_ring_sum_f64(&mut self, buf: &mut [f64]) {
        self.try_allreduce_ring_sum_f64(buf)
            .unwrap_or_else(|e| panic!("collective failed: {e}"))
    }

    /// Fallible [`Comm::allreduce_ring_sum_f64`].
    pub fn try_allreduce_ring_sum_f64(&mut self, buf: &mut [f64]) -> Result<(), CommError> {
        self.try_allreduce_ring(buf, |acc, x| {
            for (a, b) in acc.iter_mut().zip(x) {
                *a += b;
            }
        })
    }

    /// Combined send-to-`dst` / receive-from-`src` (sends never block, so
    /// this is deadlock-free in rings and shifts).
    pub fn sendrecv<T: Any + Send>(
        &mut self,
        dst: usize,
        src: usize,
        tag: u64,
        value: T,
    ) -> Result<T, crate::comm::RecvError> {
        self.send(dst, tag, value);
        self.recv(src, tag)
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::World;
    use crate::cost::OpKind;

    #[test]
    fn chunking_covers_exactly() {
        for len in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8] {
                let mut next = 0;
                for i in 0..parts {
                    let r = super::chunk_range(len, parts, i);
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn ring_allreduce_sums_all_sizes() {
        for p in [1usize, 2, 3, 4, 5, 8, 13] {
            for len in [1usize, 2, p.saturating_sub(1).max(1), p, 3 * p + 1, 100] {
                let out = World::run(p, move |comm| {
                    let mut v: Vec<f64> = (0..len).map(|i| (comm.rank() + i) as f64).collect();
                    comm.allreduce_ring_sum_f64(&mut v);
                    v
                });
                let rank_sum = (p * (p - 1) / 2) as f64;
                for v in &out {
                    for (i, &x) in v.iter().enumerate() {
                        assert_eq!(x, rank_sum + (p * i) as f64, "p={p} len={len} slot {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn ring_matches_tree_allreduce() {
        let out = World::run(6, |comm| {
            let mut ring: Vec<f64> = (0..50).map(|i| (comm.rank() * 31 + i) as f64).collect();
            let mut tree = ring.clone();
            comm.allreduce_ring_sum_f64(&mut ring);
            comm.allreduce_sum_f64(&mut tree);
            (ring, tree)
        });
        for (ring, tree) in out {
            for (a, b) in ring.iter().zip(&tree) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ring_is_identical_across_ranks() {
        let out = World::run(5, |comm| {
            let mut v: Vec<f64> = (0..37)
                .map(|i| ((comm.rank() + 1) as f64).powi(10) * 1e-4 + i as f64)
                .collect();
            comm.allreduce_ring_sum_f64(&mut v);
            v
        });
        for other in &out[1..] {
            for (a, b) in out[0].iter().zip(other) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn ring_moves_fewer_bytes_than_tree_at_scale() {
        let len = 8_192usize;
        let p = 8;
        let traffic = |use_ring: bool| -> (u64, u64) {
            let (_, costs) = World::run_with_cost(p, move |comm| {
                let mut v = vec![1.0f64; len];
                if use_ring {
                    comm.allreduce_ring_sum_f64(&mut v);
                } else {
                    comm.allreduce_sum_f64(&mut v);
                }
            });
            let per_rank: Vec<u64> = costs
                .iter()
                .map(|c| c.bytes_of(OpKind::AllReduce))
                .collect();
            (per_rank.iter().sum(), *per_rank.iter().max().unwrap())
        };
        let (ring_total, ring_max) = traffic(true);
        let (tree_total, tree_max) = traffic(false);
        // Both move 2·len·(p-1) elements in total, but the tree concentrates
        // traffic on the root (it broadcasts to log p children) while the
        // ring balances it — the bandwidth-optimality that matters when all
        // links are equally provisioned.
        assert_eq!(ring_total, tree_total);
        assert!(
            ring_max < tree_max,
            "ring max/rank {ring_max} vs tree max/rank {tree_max}"
        );
    }

    #[test]
    fn sendrecv_shifts_around_a_ring() {
        let out = World::run(4, |comm| {
            let right = (comm.rank() + 1) % 4;
            let left = (comm.rank() + 3) % 4;
            comm.sendrecv(right, left, 9, comm.rank() as u32).unwrap()
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn single_rank_and_empty_buffers_are_noops() {
        World::run(1, |comm| {
            let mut v = vec![5.0f64; 3];
            comm.allreduce_ring_sum_f64(&mut v);
            assert_eq!(v, vec![5.0; 3]);
        });
        World::run(3, |comm| {
            let mut v: Vec<f64> = Vec::new();
            comm.allreduce_ring_sum_f64(&mut v);
            assert!(v.is_empty());
        });
    }
}
