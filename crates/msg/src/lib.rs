//! A threaded SPMD message-passing runtime with MPI-style collectives.
//!
//! The paper's implementation uses MPI between core groups and register
//! communication inside a core group. This crate plays the role of MPI for
//! the functional (actually-computing) executors in `hier-kmeans`: a
//! [`World`] spawns `n` ranks as scoped threads, each running the same
//! closure SPMD-style, and gives each a [`Comm`] handle for point-to-point
//! messages and collectives.
//!
//! Highlights:
//! * **Typed, copy-free p2p** — payloads travel as `Box<dyn Any + Send>`
//!   between threads of one process; no serialization, no unsafe.
//! * **MPI semantics** — messages match on `(source, communicator, tag)`
//!   with out-of-order stashing, so independent exchanges can't cross-talk.
//! * **Collectives** — barrier, broadcast, reduce, allreduce, gather,
//!   allgather, scatter, and a min-loc reduce (the argmin merge the k-means
//!   Assign step needs), all built as binomial trees over p2p.
//! * **Communicator splitting** — `comm.split(color, key)` carves
//!   sub-communicators exactly like `MPI_Comm_split`; Level 2/3 use this for
//!   CPE groups and CG groups.
//! * **Cost accounting** — every rank tallies messages and bytes per
//!   collective (see [`cost::CostLog`]), which the performance model prices
//!   into simulated wall time afterwards.
//! * **Deadlock surfacing** — receives time out (default 30 s) and panic
//!   with a precise description instead of hanging a test run forever.
//! * **Deterministic fault injection** — a seeded [`fault::FaultPlan`]
//!   drops, delays, corrupts, or crash-stalls collective transfers at the
//!   transport choke point; collectives come in fallible `try_` variants
//!   returning typed [`fault::CommError`]s, with bounded retry and
//!   exponential backoff underneath, and every injected fault and retry is
//!   tallied in a [`fault::FaultStats`] exportable to `swkm-obs`.

pub mod collectives;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod ring;

pub use collectives::{pack_min_loc, unpack_min_loc, MIN_LOC_PACKED_NEUTRAL};
pub use comm::{wait_all, Comm, RecvError, RecvRequest, World};
pub use cost::{CostLog, OpKind, OpRecord};
pub use fault::{CommError, FaultKind, FaultPlan, FaultStats, ScriptedFault};
