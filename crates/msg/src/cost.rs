//! Communication cost accounting.
//!
//! A functional run on host threads tells us nothing directly about Sunway
//! wall time, but it does expose the exact communication pattern: who sent
//! how many bytes to whom, and in what kind of operation. The performance
//! model prices these records with link-class bandwidths to recover modelled
//! time, which keeps the functional executors and the analytic model honest
//! with each other.

/// What kind of operation produced a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    PointToPoint,
    Barrier,
    Broadcast,
    Reduce,
    AllReduce,
    Gather,
    AllGather,
    Scatter,
    MinLoc,
}

impl OpKind {
    pub const ALL: [OpKind; 9] = [
        OpKind::PointToPoint,
        OpKind::Barrier,
        OpKind::Broadcast,
        OpKind::Reduce,
        OpKind::AllReduce,
        OpKind::Gather,
        OpKind::AllGather,
        OpKind::Scatter,
        OpKind::MinLoc,
    ];

    /// Stable lower-case name used in exported metric keys
    /// (`comm_allreduce_bytes` and friends).
    pub fn metric_name(self) -> &'static str {
        match self {
            OpKind::PointToPoint => "p2p",
            OpKind::Barrier => "barrier",
            OpKind::Broadcast => "bcast",
            OpKind::Reduce => "reduce",
            OpKind::AllReduce => "allreduce",
            OpKind::Gather => "gather",
            OpKind::AllGather => "allgather",
            OpKind::Scatter => "scatter",
            OpKind::MinLoc => "minloc",
        }
    }

    fn index(self) -> usize {
        match self {
            OpKind::PointToPoint => 0,
            OpKind::Barrier => 1,
            OpKind::Broadcast => 2,
            OpKind::Reduce => 3,
            OpKind::AllReduce => 4,
            OpKind::Gather => 5,
            OpKind::AllGather => 6,
            OpKind::Scatter => 7,
            OpKind::MinLoc => 8,
        }
    }
}

/// One message as seen by the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    pub kind: OpKind,
    pub src_world_rank: usize,
    pub dst_world_rank: usize,
    pub bytes: usize,
}

/// Per-rank tally of messages sent, by operation kind, plus the full record
/// stream.
#[derive(Debug, Clone, Default)]
pub struct CostLog {
    records: Vec<OpRecord>,
    bytes_by_kind: [u64; 9],
    msgs_by_kind: [u64; 9],
}

impl CostLog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, kind: OpKind, src: usize, dst: usize, bytes: usize) {
        self.records.push(OpRecord {
            kind,
            src_world_rank: src,
            dst_world_rank: dst,
            bytes,
        });
        self.bytes_by_kind[kind.index()] += bytes as u64;
        self.msgs_by_kind[kind.index()] += 1;
    }

    /// All messages this rank sent, in order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Total bytes this rank sent.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_kind.iter().sum()
    }

    /// Total messages this rank sent.
    pub fn total_messages(&self) -> u64 {
        self.msgs_by_kind.iter().sum()
    }

    /// Bytes sent in operations of `kind`.
    pub fn bytes_of(&self, kind: OpKind) -> u64 {
        self.bytes_by_kind[kind.index()]
    }

    /// Messages sent in operations of `kind`.
    pub fn messages_of(&self, kind: OpKind) -> u64 {
        self.msgs_by_kind[kind.index()]
    }

    /// Fold another log into this one.
    pub fn merge(&mut self, other: &CostLog) {
        self.records.extend_from_slice(&other.records);
        for i in 0..9 {
            self.bytes_by_kind[i] += other.bytes_by_kind[i];
            self.msgs_by_kind[i] += other.msgs_by_kind[i];
        }
    }

    /// Publish this log into a metrics registry under `prefix`: one
    /// `<prefix>_<kind>_bytes` / `<prefix>_<kind>_messages` counter pair per
    /// operation kind with traffic, `<prefix>_total_bytes` /
    /// `<prefix>_total_messages` grand totals, and a `<prefix>_msg_bytes`
    /// histogram of individual message sizes. Counters accumulate, so
    /// exporting several ranks' logs under one prefix yields the aggregate
    /// communication volume.
    pub fn export_into(&self, registry: &swkm_obs::MetricsRegistry, prefix: &str) {
        for kind in OpKind::ALL {
            let bytes = self.bytes_of(kind);
            let msgs = self.messages_of(kind);
            if bytes == 0 && msgs == 0 {
                continue;
            }
            let name = kind.metric_name();
            registry.counter_add(&format!("{prefix}_{name}_bytes"), bytes);
            registry.counter_add(&format!("{prefix}_{name}_messages"), msgs);
        }
        registry.counter_add(&format!("{prefix}_total_bytes"), self.total_bytes());
        registry.counter_add(&format!("{prefix}_total_messages"), self.total_messages());
        if !self.records.is_empty() {
            let mut sizes = sw_des::stats::Histogram::new();
            for r in &self.records {
                sizes.record(r.bytes as u64);
            }
            registry.merge_histogram(&format!("{prefix}_msg_bytes"), &sizes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_by_kind() {
        let mut log = CostLog::new();
        log.record(OpKind::AllReduce, 0, 1, 100);
        log.record(OpKind::AllReduce, 0, 2, 50);
        log.record(OpKind::PointToPoint, 0, 1, 8);
        assert_eq!(log.total_bytes(), 158);
        assert_eq!(log.total_messages(), 3);
        assert_eq!(log.bytes_of(OpKind::AllReduce), 150);
        assert_eq!(log.messages_of(OpKind::AllReduce), 2);
        assert_eq!(log.bytes_of(OpKind::Gather), 0);
        assert_eq!(log.records().len(), 3);
    }

    #[test]
    fn merge_combines() {
        let mut a = CostLog::new();
        a.record(OpKind::Reduce, 0, 1, 10);
        let mut b = CostLog::new();
        b.record(OpKind::Reduce, 1, 0, 20);
        b.record(OpKind::Barrier, 1, 0, 0);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.total_messages(), 3);
        assert_eq!(a.messages_of(OpKind::Barrier), 1);
    }

    #[test]
    fn export_into_registry_accumulates_across_ranks() {
        let reg = swkm_obs::MetricsRegistry::new();
        let mut rank0 = CostLog::new();
        rank0.record(OpKind::AllReduce, 0, 1, 800);
        rank0.record(OpKind::Broadcast, 0, 2, 100);
        let mut rank1 = CostLog::new();
        rank1.record(OpKind::AllReduce, 1, 0, 800);
        rank0.export_into(&reg, "comm");
        rank1.export_into(&reg, "comm");
        assert_eq!(reg.counter("comm_allreduce_bytes"), 1600);
        assert_eq!(reg.counter("comm_allreduce_messages"), 2);
        assert_eq!(reg.counter("comm_bcast_bytes"), 100);
        assert_eq!(reg.counter("comm_total_bytes"), 1700);
        assert_eq!(reg.counter("comm_total_messages"), 3);
        assert_eq!(reg.histogram("comm_msg_bytes").unwrap().count(), 3);
        // Kinds with no traffic are not exported.
        assert_eq!(reg.counter("comm_gather_messages"), 0);
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<_> = OpKind::ALL.iter().map(|k| k.metric_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpKind::ALL.len());
    }

    #[test]
    fn kind_indices_are_dense_and_unique() {
        let mut seen = [false; 9];
        for k in OpKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
