//! MPI-style collective operations, built as binomial trees over p2p.
//!
//! All collectives use a per-communicator sequence tag, so consecutive
//! collectives never match each other's messages, and deterministic tree
//! shapes, so floating-point reductions combine in the same order on every
//! run (bitwise-reproducible results).
//!
//! Every collective comes in two flavours: the historical infallible form
//! (`allreduce_with`, …), which panics on communication failure, and a
//! fallible `try_` twin surfacing a typed [`CommError`] — the form the
//! fault-tolerant executors use. The infallible wrappers are the `try_`
//! bodies plus a panic, so there is exactly one implementation of each
//! algorithm.

use crate::comm::Comm;
use crate::cost::OpKind;
use crate::fault::CommError;
use std::any::Any;

/// Shared panic for the infallible wrappers.
#[cold]
fn die(e: CommError) -> ! {
    panic!("collective failed: {e}")
}

impl Comm {
    /// Block until every rank of this communicator has entered the barrier.
    pub fn barrier(&mut self) {
        self.try_barrier().unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::barrier`].
    pub fn try_barrier(&mut self) -> Result<(), CommError> {
        self.traced("barrier", |c| {
            let tag = c.next_collective_tag();
            c.try_reduce_tree::<u8, _>(0, vec![0], |_, _| {}, tag, OpKind::Barrier)?;
            c.try_broadcast_tree::<u8>(0, Some(vec![0]), tag, OpKind::Barrier)?;
            Ok(())
        })
    }

    /// Broadcast `value` from `root` to every rank. `value` must be `Some`
    /// on the root; it is ignored elsewhere.
    pub fn broadcast<T: Any + Send + Clone>(&mut self, root: usize, value: Option<T>) -> T {
        self.try_broadcast(root, value).unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::broadcast`].
    pub fn try_broadcast<T: Any + Send + Clone>(
        &mut self,
        root: usize,
        value: Option<T>,
    ) -> Result<T, CommError> {
        self.traced("broadcast", |c| {
            let tag = c.next_collective_tag();
            let wrapped = if c.rank() == root {
                let v = value.expect("broadcast root must supply a value");
                c.try_broadcast_tree(root, Some(vec![v]), tag, OpKind::Broadcast)?
            } else {
                c.try_broadcast_tree::<T>(root, None, tag, OpKind::Broadcast)?
            };
            Ok(wrapped.into_iter().next().unwrap())
        })
    }

    /// Broadcast a vector from `root` (avoids the scalar wrapper).
    pub fn broadcast_vec<T: Any + Send + Clone>(
        &mut self,
        root: usize,
        value: Option<Vec<T>>,
    ) -> Vec<T> {
        self.try_broadcast_vec(root, value)
            .unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::broadcast_vec`].
    pub fn try_broadcast_vec<T: Any + Send + Clone>(
        &mut self,
        root: usize,
        value: Option<Vec<T>>,
    ) -> Result<Vec<T>, CommError> {
        self.traced("broadcast", |c| {
            let tag = c.next_collective_tag();
            if c.rank() == root {
                assert!(value.is_some(), "broadcast root must supply a value");
            }
            c.try_broadcast_tree(root, value, tag, OpKind::Broadcast)
        })
    }

    /// Element-wise reduction of `local` to `root` using `op`
    /// (`op(acc, contribution)` folds a peer's vector into the accumulator).
    /// Returns `Some(result)` on the root, `None` elsewhere.
    pub fn reduce_with<T, F>(&mut self, root: usize, local: Vec<T>, op: F) -> Option<Vec<T>>
    where
        T: Any + Send,
        F: Fn(&mut [T], &[T]),
    {
        self.try_reduce_with(root, local, op)
            .unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::reduce_with`].
    pub fn try_reduce_with<T, F>(
        &mut self,
        root: usize,
        local: Vec<T>,
        op: F,
    ) -> Result<Option<Vec<T>>, CommError>
    where
        T: Any + Send,
        F: Fn(&mut [T], &[T]),
    {
        self.traced("reduce_tree", |c| {
            let tag = c.next_collective_tag();
            c.try_reduce_tree(root, local, op, tag, OpKind::Reduce)
        })
    }

    /// Element-wise all-reduce: every rank ends with the reduction of all
    /// ranks' `buf` contents. The combine order is a fixed binomial tree, so
    /// results are bitwise identical across runs and across ranks.
    pub fn allreduce_with<T, F>(&mut self, buf: &mut Vec<T>, op: F)
    where
        T: Any + Send + Clone,
        F: Fn(&mut [T], &[T]),
    {
        self.try_allreduce_with(buf, op).unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::allreduce_with`].
    pub fn try_allreduce_with<T, F>(&mut self, buf: &mut Vec<T>, op: F) -> Result<(), CommError>
    where
        T: Any + Send + Clone,
        F: Fn(&mut [T], &[T]),
    {
        self.traced("allreduce_tree", |c| {
            let tag = c.next_collective_tag();
            let local = std::mem::take(buf);
            let reduced = c.try_reduce_tree(0, local, op, tag, OpKind::AllReduce)?;
            *buf = c.try_broadcast_tree(0, reduced, tag, OpKind::AllReduce)?;
            Ok(())
        })
    }

    /// Sum-all-reduce for `f64` buffers.
    pub fn allreduce_sum_f64(&mut self, buf: &mut Vec<f64>) {
        self.try_allreduce_sum_f64(buf).unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::allreduce_sum_f64`].
    pub fn try_allreduce_sum_f64(&mut self, buf: &mut Vec<f64>) -> Result<(), CommError> {
        self.try_allreduce_with(buf, |acc, x| {
            for (a, b) in acc.iter_mut().zip(x) {
                *a += b;
            }
        })
    }

    /// Sum-all-reduce for `f32` buffers.
    pub fn allreduce_sum_f32(&mut self, buf: &mut Vec<f32>) {
        self.try_allreduce_sum_f32(buf).unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::allreduce_sum_f32`].
    pub fn try_allreduce_sum_f32(&mut self, buf: &mut Vec<f32>) -> Result<(), CommError> {
        self.try_allreduce_with(buf, |acc, x| {
            for (a, b) in acc.iter_mut().zip(x) {
                *a += b;
            }
        })
    }

    /// Sum-all-reduce for `u64` buffers (sample counters).
    pub fn allreduce_sum_u64(&mut self, buf: &mut Vec<u64>) {
        self.try_allreduce_sum_u64(buf).unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::allreduce_sum_u64`].
    pub fn try_allreduce_sum_u64(&mut self, buf: &mut Vec<u64>) -> Result<(), CommError> {
        self.try_allreduce_with(buf, |acc, x| {
            for (a, b) in acc.iter_mut().zip(x) {
                *a += b;
            }
        })
    }

    /// Element-wise minimum-with-location all-reduce: for each position,
    /// keep the `(value, index)` pair with the smallest value, breaking ties
    /// toward the smaller index. This is the merge step of the distributed
    /// Assign: each rank proposes its best centroid per sample, the pair
    /// with the globally smallest distance wins.
    pub fn allreduce_min_loc(&mut self, pairs: &mut Vec<(f64, u64)>) {
        self.try_allreduce_min_loc(pairs).unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::allreduce_min_loc`].
    pub fn try_allreduce_min_loc(&mut self, pairs: &mut Vec<(f64, u64)>) -> Result<(), CommError> {
        self.traced("minloc", |c| {
            let tag = c.next_collective_tag();
            let local = std::mem::take(pairs);
            let reduced = c.try_reduce_tree(
                0,
                local,
                |acc, x| {
                    for (a, b) in acc.iter_mut().zip(x) {
                        if b.0 < a.0 || (b.0 == a.0 && b.1 < a.1) {
                            *a = *b;
                        }
                    }
                },
                tag,
                OpKind::MinLoc,
            )?;
            *pairs = c.try_broadcast_tree(0, reduced, tag, OpKind::MinLoc)?;
            Ok(())
        })
    }

    /// [`Comm::allreduce_min_loc`] over packed `u64` keys built with
    /// [`pack_min_loc`]: the order-preserving f32 distance bits sit in the
    /// high half and the sample/centroid index in the low half, so a plain
    /// element-wise `u64` minimum implements min-by-distance with the
    /// lowest-index tie-break — at half the bytes of the `(f64, u64)` pair
    /// payload. Same [`OpKind::MinLoc`] accounting, so the packed path
    /// shows up in the existing `comm_minloc_*` counters.
    pub fn allreduce_min_loc_packed(&mut self, keys: &mut Vec<u64>) {
        self.try_allreduce_min_loc_packed(keys)
            .unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::allreduce_min_loc_packed`].
    pub fn try_allreduce_min_loc_packed(&mut self, keys: &mut Vec<u64>) -> Result<(), CommError> {
        self.traced("minloc", |c| {
            let tag = c.next_collective_tag();
            let local = std::mem::take(keys);
            let reduced = c.try_reduce_tree(
                0,
                local,
                |acc, x| {
                    for (a, b) in acc.iter_mut().zip(x) {
                        if *b < *a {
                            *a = *b;
                        }
                    }
                },
                tag,
                OpKind::MinLoc,
            )?;
            *keys = c.try_broadcast_tree(0, reduced, tag, OpKind::MinLoc)?;
            Ok(())
        })
    }

    /// Gather one value from every rank to `root` (rank order). Returns
    /// `Some(values)` on the root.
    pub fn gather<T: Any + Send>(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        self.try_gather(root, value).unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::gather`].
    pub fn try_gather<T: Any + Send>(
        &mut self,
        root: usize,
        value: T,
    ) -> Result<Option<Vec<T>>, CommError> {
        self.traced("gather", |c| {
            let tag = c.next_collective_tag();
            let size = c.size();
            if c.rank() == root {
                let mut slots: Vec<Option<T>> = (0..size).map(|_| None).collect();
                slots[root] = Some(value);
                for r in (0..size).filter(|&r| r != root) {
                    slots[r] = Some(c.crecv::<T>(r, tag)?);
                }
                Ok(Some(slots.into_iter().map(|s| s.unwrap()).collect()))
            } else {
                let bytes = std::mem::size_of::<T>();
                c.csend(root, tag, value, bytes, OpKind::Gather)?;
                Ok(None)
            }
        })
    }

    /// All-gather one value from every rank; every rank gets the full
    /// rank-ordered vector.
    pub fn allgather<T: Any + Send + Clone>(&mut self, value: T) -> Vec<T> {
        self.try_allgather(value).unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::allgather`].
    pub fn try_allgather<T: Any + Send + Clone>(&mut self, value: T) -> Result<Vec<T>, CommError> {
        self.traced("allgather", |c| {
            let gathered = c.try_gather(0, value)?;
            c.try_broadcast_vec(0, gathered)
        })
    }

    /// Scatter one value per rank from `root` (must supply exactly
    /// `size` values there).
    pub fn scatter<T: Any + Send>(&mut self, root: usize, values: Option<Vec<T>>) -> T {
        self.try_scatter(root, values).unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::scatter`].
    pub fn try_scatter<T: Any + Send>(
        &mut self,
        root: usize,
        values: Option<Vec<T>>,
    ) -> Result<T, CommError> {
        self.traced("scatter", |c| {
            let tag = c.next_collective_tag();
            if c.rank() == root {
                let values = values.expect("scatter root must supply values");
                assert_eq!(values.len(), c.size(), "scatter needs one value per rank");
                let mut own = None;
                let bytes = std::mem::size_of::<T>();
                for (r, v) in values.into_iter().enumerate() {
                    if r == root {
                        own = Some(v);
                    } else {
                        c.csend(r, tag, v, bytes, OpKind::Scatter)?;
                    }
                }
                Ok(own.unwrap())
            } else {
                c.crecv::<T>(root, tag)
            }
        })
    }

    /// All-to-all personalised exchange: rank `r` supplies one value per
    /// destination and receives one value per source (`values[d]` goes to
    /// rank `d`; the result's slot `s` came from rank `s`). The data
    /// shuffle underlying distributed re-partitioning.
    pub fn alltoall<T: Any + Send>(&mut self, values: Vec<T>) -> Vec<T> {
        self.try_alltoall(values).unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::alltoall`].
    pub fn try_alltoall<T: Any + Send>(&mut self, values: Vec<T>) -> Result<Vec<T>, CommError> {
        self.traced("alltoall", |c| {
            let size = c.size();
            assert_eq!(values.len(), size, "alltoall needs one value per rank");
            let tag = c.next_collective_tag() | (1 << 60); // alltoall tag space
            let rank = c.rank();
            let bytes = std::mem::size_of::<T>();
            let mut own = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst == rank {
                    own = Some(v);
                } else {
                    c.csend(dst, tag, v, bytes, OpKind::Gather)?;
                }
            }
            let mut out: Vec<Option<T>> = (0..size).map(|_| None).collect();
            out[rank] = own;
            for src in (0..size).filter(|&src| src != rank) {
                out[src] = Some(c.crecv::<T>(src, tag)?);
            }
            Ok(out.into_iter().map(|v| v.unwrap()).collect())
        })
    }

    /// Reduce-scatter: element-wise reduce all ranks' `buf`s, then hand
    /// rank `r` the `r`-th near-equal contiguous chunk of the result.
    /// (Phase 1 of the ring AllReduce, exposed directly.)
    pub fn reduce_scatter_with<T, F>(&mut self, buf: Vec<T>, op: F) -> Vec<T>
    where
        T: Any + Send + Clone,
        F: Fn(&mut [T], &[T]),
    {
        self.try_reduce_scatter_with(buf, op)
            .unwrap_or_else(|e| die(e))
    }

    /// Fallible [`Comm::reduce_scatter_with`].
    pub fn try_reduce_scatter_with<T, F>(&mut self, buf: Vec<T>, op: F) -> Result<Vec<T>, CommError>
    where
        T: Any + Send + Clone,
        F: Fn(&mut [T], &[T]),
    {
        self.traced("reduce_scatter", |c| {
            let size = c.size();
            let rank = c.rank();
            let len = buf.len();
            // Reduce everything to rank 0, then scatter the chunks — simple and
            // correct; the bandwidth-optimal path is `allreduce_ring`.
            let reduced = {
                let tag = c.next_collective_tag();
                c.try_reduce_tree(0, buf, op, tag, OpKind::Reduce)?
            };
            let chunks = reduced.map(|full| {
                (0..size)
                    .map(|r| {
                        let q = len / size;
                        let rem = len % size;
                        let start = r * q + r.min(rem);
                        let end = start + q + usize::from(r < rem);
                        full[start..end].to_vec()
                    })
                    .collect::<Vec<_>>()
            });
            let tag2 = c.next_collective_tag() | (1 << 59);
            if rank == 0 {
                let chunks = chunks.unwrap();
                let mut own = None;
                for (r, chunk) in chunks.into_iter().enumerate() {
                    if r == 0 {
                        own = Some(chunk);
                    } else {
                        let bytes = std::mem::size_of::<T>() * chunk.len();
                        c.csend(r, tag2, chunk, bytes, OpKind::Scatter)?;
                    }
                }
                Ok(own.unwrap())
            } else {
                c.crecv::<Vec<T>>(0, tag2)
            }
        })
    }

    // ------------------------------------------------------------------
    // Tree building blocks.
    // ------------------------------------------------------------------

    /// Binomial-tree reduce of `local` toward `root`; `Some` on root.
    fn try_reduce_tree<T, F>(
        &mut self,
        root: usize,
        mut local: Vec<T>,
        op: F,
        tag: u64,
        kind: OpKind,
    ) -> Result<Option<Vec<T>>, CommError>
    where
        T: Any + Send,
        F: Fn(&mut [T], &[T]),
    {
        let size = self.size();
        let rank = self.rank();
        let vrank = (rank + size - root) % size;
        let elem_bytes = std::mem::size_of::<T>();
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask == 0 {
                let vpeer = vrank | mask;
                if vpeer < size {
                    let peer = (vpeer + root) % size;
                    let contribution = self.crecv::<Vec<T>>(peer, tag)?;
                    debug_assert_eq!(contribution.len(), local.len(), "reduce length mismatch");
                    op(&mut local, &contribution);
                }
            } else {
                let vpeer = vrank & !mask;
                let peer = (vpeer + root) % size;
                let bytes = elem_bytes * local.len();
                self.csend(peer, tag, local, bytes, kind)?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(local))
    }

    /// Binomial-tree broadcast from `root`; `value` must be `Some` on root.
    fn try_broadcast_tree<T>(
        &mut self,
        root: usize,
        value: Option<Vec<T>>,
        tag: u64,
        kind: OpKind,
    ) -> Result<Vec<T>, CommError>
    where
        T: Any + Send + Clone,
    {
        let size = self.size();
        let rank = self.rank();
        let vrank = (rank + size - root) % size;
        // Receive phase: a non-root rank waits for its parent (clear the
        // lowest set bit of vrank).
        let value = if vrank == 0 {
            value.expect("broadcast_tree root must supply a value")
        } else {
            let lsb = vrank & vrank.wrapping_neg();
            let vparent = vrank & !lsb;
            let parent = (vparent + root) % size;
            // The broadcast tag is offset so it never collides with the
            // reduce phase of an allreduce sharing the same sequence tag.
            self.crecv::<Vec<T>>(parent, tag | (1 << 62))?
        };
        // Send phase: forward to children (set bits above our lowest set
        // bit, descending).
        let elem_bytes = std::mem::size_of::<T>();
        let lowest = if vrank == 0 {
            // Root: highest power of two below size, descending to 1.
            let mut m = 1usize;
            while m < size {
                m <<= 1;
            }
            m
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut mask = lowest >> 1;
        while mask > 0 {
            let vchild = vrank | mask;
            if vchild < size && vchild != vrank {
                let child = (vchild + root) % size;
                let bytes = elem_bytes * value.len();
                self.csend(child, tag | (1 << 62), value.clone(), bytes, kind)?;
            }
            mask >>= 1;
        }
        Ok(value)
    }
}

/// Pack an `f32` min-loc key and a `u32` index into one `u64` whose plain
/// unsigned comparison order equals "smaller key first, then smaller
/// index": the key's bits are mapped through the standard order-preserving
/// total-order transform (flip all bits for negatives, set the sign bit
/// for non-negatives) into the high half, and the index fills the low
/// half. `-0.0` is normalised to `+0.0` so the two zeros compare equal on
/// the key and fall through to the index tie-break. NaN keys are not
/// supported (squared distances are never NaN for finite inputs).
pub fn pack_min_loc(key: f32, idx: u32) -> u64 {
    let key = if key == 0.0 { 0.0 } else { key };
    let bits = key.to_bits();
    let mapped = if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    };
    ((mapped as u64) << 32) | idx as u64
}

/// Invert [`pack_min_loc`]. The key is recovered exactly (modulo the
/// `-0.0 → +0.0` normalisation applied when packing).
pub fn unpack_min_loc(packed: u64) -> (f32, u32) {
    let mapped = (packed >> 32) as u32;
    let bits = if mapped & 0x8000_0000 != 0 {
        mapped & 0x7FFF_FFFF
    } else {
        !mapped
    };
    (f32::from_bits(bits), packed as u32)
}

/// The neutral element of the packed min-loc reduction: an infinite
/// distance at the highest index loses to every real candidate (the packed
/// analogue of the executors' `(f64::INFINITY, u64::MAX)` slot for empty
/// shards).
pub const MIN_LOC_PACKED_NEUTRAL: u64 = pack_min_loc_const(f32::INFINITY, u32::MAX);

/// `const` twin of [`pack_min_loc`] (no float comparison, so no `-0.0`
/// normalisation — fine for the infinity neutral).
const fn pack_min_loc_const(key: f32, idx: u32) -> u64 {
    let bits = key.to_bits();
    let mapped = if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    };
    ((mapped as u64) << 32) | idx as u64
}

#[cfg(test)]
mod tests {
    use super::{pack_min_loc, unpack_min_loc, MIN_LOC_PACKED_NEUTRAL};
    use crate::comm::World;
    use crate::cost::OpKind;

    #[test]
    fn barrier_all_sizes() {
        for n in [1, 2, 3, 5, 8] {
            World::run(n, |comm| {
                comm.barrier();
                comm.barrier();
            });
        }
    }

    #[test]
    fn broadcast_scalar_from_each_root() {
        for n in [1, 2, 3, 4, 7] {
            for root in 0..n {
                let out = World::run(n, move |comm| {
                    let v = if comm.rank() == root {
                        Some(42u64 + root as u64)
                    } else {
                        None
                    };
                    comm.broadcast(root, v)
                });
                assert_eq!(out, vec![42 + root as u64; n]);
            }
        }
    }

    #[test]
    fn broadcast_vec_payload() {
        let out = World::run(5, |comm| {
            let v = if comm.rank() == 2 {
                Some(vec![1.5f64, 2.5, 3.5])
            } else {
                None
            };
            comm.broadcast_vec(2, v)
        });
        for v in out {
            assert_eq!(v, vec![1.5, 2.5, 3.5]);
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for n in [1, 2, 3, 6, 9] {
            let out = World::run(n, move |comm| {
                let local = vec![comm.rank() as f64, 1.0];
                comm.reduce_with(0, local, |acc, x| {
                    for (a, b) in acc.iter_mut().zip(x) {
                        *a += b;
                    }
                })
            });
            let expect_sum = (n * (n - 1) / 2) as f64;
            assert_eq!(out[0].as_ref().unwrap(), &vec![expect_sum, n as f64]);
            for slot in &out[1..n] {
                assert!(slot.is_none());
            }
        }
    }

    #[test]
    fn allreduce_sum_all_sizes_and_types() {
        for n in [1, 2, 4, 5, 8, 13] {
            let out = World::run(n, move |comm| {
                let mut f = vec![comm.rank() as f64; 3];
                comm.allreduce_sum_f64(&mut f);
                let mut g = vec![1f32, 2.0];
                comm.allreduce_sum_f32(&mut g);
                let mut c = vec![comm.rank() as u64 + 1];
                comm.allreduce_sum_u64(&mut c);
                (f, g, c)
            });
            let s = (n * (n - 1) / 2) as f64;
            for (f, g, c) in out {
                assert_eq!(f, vec![s; 3]);
                assert_eq!(g, vec![n as f32, 2.0 * n as f32]);
                assert_eq!(c, vec![(n * (n + 1) / 2) as u64]);
            }
        }
    }

    #[test]
    fn allreduce_is_bitwise_identical_across_ranks() {
        // Sums of values with wildly different magnitudes are order
        // sensitive; the fixed tree must give all ranks the same bits.
        let out = World::run(7, |comm| {
            let mut v = vec![(comm.rank() as f64 + 1.0).powi(20) * 1e-3, 1e-9];
            comm.allreduce_sum_f64(&mut v);
            v
        });
        for w in &out[1..] {
            assert_eq!(w[0].to_bits(), out[0][0].to_bits());
            assert_eq!(w[1].to_bits(), out[0][1].to_bits());
        }
    }

    #[test]
    fn min_loc_finds_global_argmin() {
        let out = World::run(6, |comm| {
            // Rank r proposes distance 10-r for slot 0 => rank 5 wins with 5.
            // Slot 1 ties at 1.0: lowest index wins.
            let mut pairs = vec![
                ((10 - comm.rank()) as f64, comm.rank() as u64 * 100),
                (1.0, comm.rank() as u64),
            ];
            comm.allreduce_min_loc(&mut pairs);
            pairs
        });
        for pairs in out {
            assert_eq!(pairs[0], (5.0, 500));
            assert_eq!(pairs[1], (1.0, 0));
        }
    }

    #[test]
    fn packed_min_loc_roundtrips_and_orders_like_the_pair() {
        let keys = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            -0.5,
            1e-30,
            -1e-30,
            3.25e7,
            -3.25e7,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
        ];
        for &a in &keys {
            for &b in &keys {
                for (ia, ib) in [(0u32, 1u32), (1, 0), (7, 7)] {
                    let (pa, pb) = (pack_min_loc(a, ia), pack_min_loc(b, ib));
                    // Pair order: smaller key first, then smaller index
                    // (with -0.0 == +0.0 on the key).
                    let pair_less = a < b || (a == b && ia < ib);
                    assert_eq!(pa < pb, pair_less, "a={a} b={b} ia={ia} ib={ib}");
                }
            }
            let (k, i) = unpack_min_loc(pack_min_loc(a, 42));
            assert_eq!(i, 42);
            assert_eq!(k.to_bits(), if a == 0.0 { 0 } else { a.to_bits() }, "{a}");
        }
        assert_eq!(
            MIN_LOC_PACKED_NEUTRAL,
            pack_min_loc(f32::INFINITY, u32::MAX)
        );
        // The neutral loses to any finite candidate.
        assert!(pack_min_loc(f32::MAX, u32::MAX) < MIN_LOC_PACKED_NEUTRAL);
    }

    #[test]
    fn packed_min_loc_allreduce_matches_unpacked_at_half_the_bytes() {
        let out = World::run_with_cost(6, |comm| {
            let mut pairs = vec![
                ((10 - comm.rank()) as f64, comm.rank() as u64 * 100),
                (1.0, comm.rank() as u64),
            ];
            comm.allreduce_min_loc(&mut pairs);
            let mut packed = vec![
                pack_min_loc((10 - comm.rank()) as f32, comm.rank() as u32 * 100),
                pack_min_loc(1.0, comm.rank() as u32),
            ];
            comm.allreduce_min_loc_packed(&mut packed);
            (pairs, packed)
        });
        let (results, costs) = out;
        for (pairs, packed) in results {
            assert_eq!(pairs[0], (5.0, 500));
            assert_eq!(pairs[1], (1.0, 0));
            let got: Vec<(f64, u64)> = packed
                .iter()
                .map(|&p| {
                    let (k, i) = unpack_min_loc(p);
                    (k as f64, i as u64)
                })
                .collect();
            assert_eq!(got, pairs, "packed winners must match the pair path");
        }
        // Both allreduces move the same message count; the packed payload
        // is exactly half the bytes (8 B vs 16 B per element).
        let mut merged = crate::cost::CostLog::default();
        for log in costs {
            merged.merge(&log);
        }
        // A 6-rank binomial allreduce is 5 reduce + 5 broadcast messages;
        // each carries 2 elements: 32 B for the (f64, u64) pair, 16 B
        // packed — the packed path moves exactly half the pair bytes.
        assert_eq!(merged.messages_of(OpKind::MinLoc), 20);
        assert_eq!(merged.bytes_of(OpKind::MinLoc), 10 * 32 + 10 * 16);
    }

    #[test]
    fn gather_preserves_rank_order() {
        let out = World::run(5, |comm| comm.gather(3, comm.rank() as u32 * 2));
        assert_eq!(out[3].as_ref().unwrap(), &vec![0, 2, 4, 6, 8]);
        assert!(out[0].is_none());
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let out = World::run(4, |comm| comm.allgather(format!("r{}", comm.rank())));
        for v in out {
            assert_eq!(v, vec!["r0", "r1", "r2", "r3"]);
        }
    }

    #[test]
    fn scatter_distributes_by_rank() {
        let out = World::run(4, |comm| {
            let values = if comm.rank() == 1 {
                Some(vec![10, 11, 12, 13])
            } else {
                None
            };
            comm.scatter(1, values)
        });
        assert_eq!(out, vec![10, 11, 12, 13]);
    }

    #[test]
    fn collectives_on_split_communicators() {
        let out = World::run(6, |comm| {
            let mut sub = comm.split((comm.rank() % 2) as u64, comm.rank() as u64);
            let mut v = vec![comm.rank() as f64];
            sub.allreduce_sum_f64(&mut v);
            v[0]
        });
        // Evens: 0+2+4=6; odds: 1+3+5=9.
        assert_eq!(out, vec![6.0, 9.0, 6.0, 9.0, 6.0, 9.0]);
    }

    #[test]
    fn back_to_back_collectives_do_not_mix() {
        let out = World::run(4, |comm| {
            let mut a = vec![1.0f64];
            comm.allreduce_sum_f64(&mut a);
            let mut b = vec![10.0f64];
            comm.allreduce_sum_f64(&mut b);
            let c = comm.broadcast(0, Some(comm.rank() as u64)); // root value 0
            (a[0], b[0], c)
        });
        for (a, b, c) in out {
            assert_eq!((a, b, c), (4.0, 40.0, 0));
        }
    }

    #[test]
    fn alltoall_transposes() {
        let out = World::run(4, |comm| {
            // values[d] = 10·rank + d; after the exchange slot s holds
            // 10·s + rank — the transpose.
            let values: Vec<u32> = (0..4).map(|d| comm.rank() as u32 * 10 + d).collect();
            comm.alltoall(values)
        });
        for (rank, received) in out.iter().enumerate() {
            for (src, &v) in received.iter().enumerate() {
                assert_eq!(v, src as u32 * 10 + rank as u32);
            }
        }
    }

    #[test]
    fn alltoall_single_rank_is_identity() {
        let out = World::run(1, |comm| comm.alltoall(vec![String::from("me")]));
        assert_eq!(out[0], vec!["me"]);
    }

    #[test]
    fn reduce_scatter_hands_out_summed_chunks() {
        for (p, len) in [(4usize, 8usize), (3, 10), (5, 3)] {
            let out = World::run(p, move |comm| {
                let buf: Vec<f64> = (0..len).map(|i| (comm.rank() + i) as f64).collect();
                comm.reduce_scatter_with(buf, |acc, x| {
                    for (a, b) in acc.iter_mut().zip(x) {
                        *a += b;
                    }
                })
            });
            // Reassemble the scattered chunks: they must equal the full sum.
            let rank_sum = (p * (p - 1) / 2) as f64;
            let mut reassembled = Vec::new();
            for chunk in out {
                reassembled.extend(chunk);
            }
            assert_eq!(reassembled.len(), len, "p={p} len={len}");
            for (i, &v) in reassembled.iter().enumerate() {
                assert_eq!(v, rank_sum + (p * i) as f64, "p={p} len={len} slot {i}");
            }
        }
    }

    #[test]
    fn cost_log_reflects_collective_traffic() {
        let (_, costs) = World::run_with_cost(4, |comm| {
            let mut v = vec![0f64; 100];
            comm.allreduce_sum_f64(&mut v);
        });
        let total: u64 = costs.iter().map(|c| c.bytes_of(OpKind::AllReduce)).sum();
        // Binomial reduce: 3 messages of 800 B; broadcast: 3 more.
        assert_eq!(total, 6 * 800);
        let msgs: u64 = costs.iter().map(|c| c.messages_of(OpKind::AllReduce)).sum();
        assert_eq!(msgs, 6);
    }

    #[test]
    fn reduce_with_non_commutative_awareness() {
        // Max-reduce works too; op need not be addition.
        let out = World::run(5, |comm| {
            let mut v = vec![comm.rank() as f64];
            comm.allreduce_with(&mut v, |acc, x| {
                for (a, b) in acc.iter_mut().zip(x) {
                    *a = a.max(*b);
                }
            });
            v[0]
        });
        assert_eq!(out, vec![4.0; 5]);
    }
}
