//! Deterministic fault injection for the simulated fabric.
//!
//! The paper assumes a healthy SW26010 interconnect; a production fleet does
//! not get that luxury. This module defines a seed-reproducible [`FaultPlan`]
//! that the transport layer ([`crate::comm`]) consults on every
//! collective-internal send: per-rank/per-operation drop, delay,
//! detectable-corruption and crash-stall faults, driven either by a pure
//! counter-mode hash of a seed (so the same seed replays the identical fault
//! sequence, bit for bit) or by an explicit script of `(rank, op)` events.
//!
//! Two properties make recovery testable:
//!
//! * **Determinism** — `decide(rank, op, attempt)` is a pure function; no
//!   clock or shared RNG state is involved, so a replay with the same seed
//!   injects exactly the same faults regardless of thread scheduling.
//! * **Bounded villainy** — randomly scheduled faults only strike the first
//!   [`FAULTABLE_ATTEMPTS`] delivery attempts of an operation, so every
//!   transfer is structurally guaranteed to get through within the
//!   transport's retry budget. Recovery is then pure retransmission of an
//!   identical payload, which is why a faulted run stays bitwise identical
//!   to a fault-free one. Scripted events may be marked `persistent` to
//!   defeat the retry budget and exercise the typed-error paths instead.
//!
//! Every rank holds the same plan (it is a pure function of the seed), which
//! doubles as a zero-message consensus mechanism: executors ask
//! [`FaultPlan::degrade_iteration`] whether an iteration should run in
//! degraded mode (delta→dense, ring→tree) and all ranks reach the same
//! answer without any agreement protocol.

use std::time::Duration;

/// Random faults never strike an operation's attempt index at or above this
/// bound, so bounded retry always succeeds against a seeded (non-scripted)
/// plan.
pub const FAULTABLE_ATTEMPTS: u32 = 3;

/// Transport retry budget: a collective send or receive gives up (with a
/// typed error) after this many attempts.
pub const MAX_COMM_ATTEMPTS: u32 = 6;

/// The kinds of fault the transport can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The transfer vanishes in the fabric; the sender retransmits after a
    /// backoff.
    Drop,
    /// The transfer is delivered late (the sender stalls first), typically
    /// tripping the receiver's per-attempt timeout.
    Delay,
    /// A detectably-corrupt frame is delivered; the receiver discards it and
    /// waits for the retransmission.
    Corrupt,
    /// The sending rank "crashes" and restarts: a long stall before the
    /// retransmission.
    Crash,
}

impl FaultKind {
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Corrupt,
        FaultKind::Crash,
    ];

    /// Stable lower-case name used in metric keys and `--faults` specs.
    pub fn metric_name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Crash => "crash",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::Drop => 0,
            FaultKind::Delay => 1,
            FaultKind::Corrupt => 2,
            FaultKind::Crash => 3,
        }
    }

    /// Parse one kind name (as used in `kinds=drop+corrupt`).
    pub fn parse(s: &str) -> Result<FaultKind, String> {
        match s {
            "drop" => Ok(FaultKind::Drop),
            "delay" => Ok(FaultKind::Delay),
            "corrupt" => Ok(FaultKind::Corrupt),
            "crash" => Ok(FaultKind::Crash),
            other => Err(format!(
                "unknown fault kind `{other}` (drop|delay|corrupt|crash)"
            )),
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.metric_name())
    }
}

/// One explicitly scripted fault: strike operation `op_index` of
/// `world_rank`. Non-persistent events fault only the first attempt (the
/// retransmission succeeds); persistent ones fault every attempt, defeating
/// the retry budget so tests can reach the typed-error paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptedFault {
    pub world_rank: usize,
    pub op_index: u64,
    pub kind: FaultKind,
    pub persistent: bool,
}

/// A deterministic, seed-reproducible fault schedule (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    kinds: Vec<FaultKind>,
    script: Vec<ScriptedFault>,
    degrade_every: Option<u64>,
    timeout_ms: Option<u64>,
    delay_ms: u64,
    restart_ms: u64,
    kill_shards: Vec<usize>,
    kill_after_ms: u64,
}

impl FaultPlan {
    /// A plan injecting all four kinds at `rate` (fraction of collective
    /// sends faulted, in `[0, 1]`), scheduled by `seed`.
    pub fn seeded(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kinds: FaultKind::ALL.to_vec(),
            script: Vec::new(),
            degrade_every: None,
            timeout_ms: None,
            delay_ms: 25,
            restart_ms: 15,
            kill_shards: Vec::new(),
            kill_after_ms: 0,
        }
    }

    /// A purely scripted plan (no random component).
    pub fn scripted(script: Vec<ScriptedFault>) -> FaultPlan {
        let mut plan = FaultPlan::seeded(0, 0.0);
        plan.script = script;
        plan
    }

    /// Restrict random injection to the given kinds.
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// Add scripted events on top of the random schedule.
    pub fn with_script(mut self, script: Vec<ScriptedFault>) -> Self {
        self.script = script;
        self
    }

    /// Schedule every `every`-th training iteration (1-based multiples) to
    /// run in degraded mode: delta→dense fallback, ring→tree merge.
    pub fn with_degrade_every(mut self, every: u64) -> Self {
        self.degrade_every = if every == 0 { None } else { Some(every) };
        self
    }

    /// Override the world receive deadline while this plan is active
    /// (tests use a short deadline so retry exhaustion fails fast).
    pub fn with_timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = Some(ms);
        self
    }

    /// Stall length for `Delay` faults (default 25 ms — longer than the
    /// receiver's first per-attempt timeout, so delays surface as retries).
    pub fn with_delay_ms(mut self, ms: u64) -> Self {
        self.delay_ms = ms;
        self
    }

    /// Crash-restart stall length (default 15 ms).
    pub fn with_restart_ms(mut self, ms: u64) -> Self {
        self.restart_ms = ms;
        self
    }

    /// Serving-side schedule: shard indices to kill `kill_after_ms` into a
    /// benchmark run (interpreted by the CLI / test harness, not the
    /// transport).
    pub fn with_kill_shards(mut self, shards: &[usize], after_ms: u64) -> Self {
        self.kill_shards = shards.to_vec();
        self.kill_after_ms = after_ms;
        self
    }

    /// Parse a `--faults` spec: comma-separated `key=value` pairs.
    ///
    /// ```text
    /// seed=42,rate=0.2                          # all kinds at 20%
    /// seed=7,rate=0.25,kinds=drop+corrupt       # restrict kinds
    /// seed=7,rate=0.1,degrade-every=2           # degrade every 2nd iter
    /// script=0:12:drop:persistent+1:3:crash     # explicit events
    /// kill-shards=0+2,kill-after-ms=50          # serving-side schedule
    /// timeout-ms=2000,delay-ms=10,restart-ms=5  # tuning knobs
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::seeded(0, 0.0);
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{pair}` is not key=value"))?;
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("fault spec {key}: cannot parse `{v}`"))
            };
            match key {
                "seed" => plan.seed = parse_u64(value)?,
                "rate" => {
                    let r: f64 = value
                        .parse()
                        .map_err(|_| format!("fault spec rate: cannot parse `{value}`"))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(format!("fault spec rate must be in [0,1], got {r}"));
                    }
                    plan.rate = r;
                }
                "kinds" => {
                    plan.kinds = value
                        .split('+')
                        .map(FaultKind::parse)
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "script" => {
                    plan.script = value
                        .split('+')
                        .map(parse_scripted)
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "degrade-every" => {
                    let every = parse_u64(value)?;
                    plan.degrade_every = if every == 0 { None } else { Some(every) };
                }
                "timeout-ms" => plan.timeout_ms = Some(parse_u64(value)?),
                "delay-ms" => plan.delay_ms = parse_u64(value)?,
                "restart-ms" => plan.restart_ms = parse_u64(value)?,
                "kill-shards" => {
                    plan.kill_shards = value
                        .split('+')
                        .map(|s| {
                            s.parse::<usize>()
                                .map_err(|_| format!("fault spec kill-shards: bad index `{s}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "kill-after-ms" => plan.kill_after_ms = parse_u64(value)?,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Decide whether attempt `attempt` of this rank's `op_index`-th
    /// collective send is faulted, and how. Pure: same arguments, same
    /// answer, on every rank and every run.
    pub fn decide(&self, world_rank: usize, op_index: u64, attempt: u32) -> Option<FaultKind> {
        for s in &self.script {
            if s.world_rank == world_rank
                && s.op_index == op_index
                && (s.persistent || attempt == 0)
            {
                return Some(s.kind);
            }
        }
        if self.kinds.is_empty() || self.rate <= 0.0 || attempt >= FAULTABLE_ATTEMPTS {
            return None;
        }
        let h = mix(self.seed, world_rank as u64, op_index, attempt as u64);
        // 53 uniform bits → [0, 1).
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw < self.rate {
            let pick = mix(
                self.seed ^ 0x9e37_79b9_7f4a_7c15,
                world_rank as u64,
                op_index,
                0xfa,
            );
            Some(self.kinds[(pick % self.kinds.len() as u64) as usize])
        } else {
            None
        }
    }

    /// Should iteration `iter` (0-based) run in degraded mode? Every rank
    /// evaluates this identically — the shared seed is the consensus.
    pub fn degrade_iteration(&self, iter: usize) -> bool {
        match self.degrade_every {
            Some(every) => (iter as u64 + 1).is_multiple_of(every),
            None => false,
        }
    }

    /// World receive deadline override, if any.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout_ms.map(Duration::from_millis)
    }

    pub fn delay(&self) -> Duration {
        Duration::from_millis(self.delay_ms)
    }

    pub fn restart_pause(&self) -> Duration {
        Duration::from_millis(self.restart_ms)
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Serving-side kill schedule: `(shard indices, delay before the kill)`.
    pub fn kill_schedule(&self) -> (&[usize], Duration) {
        (&self.kill_shards, Duration::from_millis(self.kill_after_ms))
    }

    /// True when the plan can actually do something (used to skip the
    /// fault-aware slow paths entirely for empty plans).
    pub fn is_active(&self) -> bool {
        (self.rate > 0.0 && !self.kinds.is_empty()) || !self.script.is_empty()
    }
}

fn parse_scripted(s: &str) -> Result<ScriptedFault, String> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 3 && parts.len() != 4 {
        return Err(format!(
            "scripted fault `{s}` must be rank:op:kind[:persistent]"
        ));
    }
    let world_rank = parts[0]
        .parse()
        .map_err(|_| format!("scripted fault `{s}`: bad rank"))?;
    let op_index = parts[1]
        .parse()
        .map_err(|_| format!("scripted fault `{s}`: bad op index"))?;
    let kind = FaultKind::parse(parts[2])?;
    let persistent = match parts.get(3) {
        None | Some(&"once") => false,
        Some(&"persistent") => true,
        Some(other) => return Err(format!("scripted fault `{s}`: `{other}`?")),
    };
    Ok(ScriptedFault {
        world_rank,
        op_index,
        kind,
        persistent,
    })
}

/// splitmix64-style avalanche over the four schedule coordinates.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(c.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-rank tally of injected faults and recovery retries, mirroring
/// [`crate::cost::CostLog`]'s merge/export pattern.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    injected_by_kind: [u64; 4],
    retries: u64,
}

impl FaultStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_injected(&mut self, kind: FaultKind) {
        self.injected_by_kind[kind.index()] += 1;
    }

    pub fn record_retry(&mut self) {
        self.retries += 1;
    }

    /// Faults injected of one kind.
    pub fn injected_of(&self, kind: FaultKind) -> u64 {
        self.injected_by_kind[kind.index()]
    }

    /// Faults injected, all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected_by_kind.iter().sum()
    }

    /// Send retransmissions plus receive re-waits performed to recover.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Fold another rank's tally into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        for i in 0..4 {
            self.injected_by_kind[i] += other.injected_by_kind[i];
        }
        self.retries += other.retries;
    }

    /// Publish into a metrics registry: `fault_injected_total`,
    /// `fault_<kind>_injected_total` per kind with activity, and
    /// `comm_retries_total`. Counters accumulate across ranks.
    pub fn export_into(&self, registry: &swkm_obs::MetricsRegistry) {
        registry.counter_add("fault_injected_total", self.injected_total());
        for kind in FaultKind::ALL {
            let n = self.injected_of(kind);
            if n > 0 {
                registry.counter_add(&format!("fault_{}_injected_total", kind.metric_name()), n);
            }
        }
        registry.counter_add("comm_retries_total", self.retries);
    }
}

/// Typed communication failures surfaced by the fault-aware collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message within the deadline, across every retry attempt.
    Timeout {
        receiver_world_rank: usize,
        from_world_rank: usize,
        tag: u64,
        attempts: u32,
    },
    /// The sender's retry budget ran out (persistent fault on the link).
    RetriesExhausted {
        world_rank: usize,
        dst_world_rank: usize,
        attempts: u32,
    },
    /// The peer's channel is gone (the rank exited or panicked).
    PeerGone { peer_world_rank: usize },
    /// The message matched but carried a different payload type.
    TypeMismatch { from_world_rank: usize, tag: u64 },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout {
                receiver_world_rank,
                from_world_rank,
                tag,
                attempts,
            } => write!(
                f,
                "rank {receiver_world_rank} timed out waiting for rank {from_world_rank} \
                 (tag {tag}) after {attempts} attempt(s)"
            ),
            CommError::RetriesExhausted {
                world_rank,
                dst_world_rank,
                attempts,
            } => write!(
                f,
                "rank {world_rank} exhausted {attempts} send attempts to rank {dst_world_rank}"
            ),
            CommError::PeerGone { peer_world_rank } => {
                write!(
                    f,
                    "peer rank {peer_world_rank} is gone (exited or panicked)"
                )
            }
            CommError::TypeMismatch {
                from_world_rank,
                tag,
            } => write!(
                f,
                "message from rank {from_world_rank} (tag {tag}) had unexpected payload type"
            ),
        }
    }
}

impl std::error::Error for CommError {}

impl From<crate::comm::RecvError> for CommError {
    fn from(e: crate::comm::RecvError) -> CommError {
        match e {
            crate::comm::RecvError::Timeout {
                receiver_world_rank,
                from_world_rank,
                tag,
            } => CommError::Timeout {
                receiver_world_rank,
                from_world_rank,
                tag,
                attempts: 1,
            },
            crate::comm::RecvError::TypeMismatch {
                from_world_rank,
                tag,
            } => CommError::TypeMismatch {
                from_world_rank,
                tag,
            },
            crate::comm::RecvError::Disconnected => CommError::PeerGone {
                peer_world_rank: usize::MAX,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::seeded(42, 0.3);
        let replay = FaultPlan::seeded(42, 0.3);
        let other = FaultPlan::seeded(43, 0.3);
        let mut agree_everywhere = true;
        let mut differs_somewhere = false;
        for rank in 0..4 {
            for op in 0..200u64 {
                for attempt in 0..3 {
                    let a = plan.decide(rank, op, attempt);
                    agree_everywhere &= a == replay.decide(rank, op, attempt);
                    differs_somewhere |= a != other.decide(rank, op, attempt);
                }
            }
        }
        assert!(agree_everywhere, "same seed must replay identically");
        assert!(differs_somewhere, "different seeds must differ somewhere");
    }

    #[test]
    fn random_faults_respect_the_attempt_cap() {
        let plan = FaultPlan::seeded(7, 0.99);
        for rank in 0..4 {
            for op in 0..500u64 {
                assert_eq!(plan.decide(rank, op, FAULTABLE_ATTEMPTS), None);
                assert_eq!(plan.decide(rank, op, FAULTABLE_ATTEMPTS + 1), None);
            }
        }
    }

    #[test]
    fn injection_rate_tracks_the_requested_rate() {
        let plan = FaultPlan::seeded(1, 0.25);
        let mut hits = 0u32;
        let total = 8_000u32;
        for op in 0..total as u64 {
            if plan.decide(0, op, 0).is_some() {
                hits += 1;
            }
        }
        let observed = hits as f64 / total as f64;
        assert!(
            (observed - 0.25).abs() < 0.03,
            "observed rate {observed} too far from 0.25"
        );
    }

    #[test]
    fn scripted_faults_fire_exactly_where_told() {
        let plan = FaultPlan::scripted(vec![
            ScriptedFault {
                world_rank: 1,
                op_index: 5,
                kind: FaultKind::Drop,
                persistent: false,
            },
            ScriptedFault {
                world_rank: 0,
                op_index: 2,
                kind: FaultKind::Crash,
                persistent: true,
            },
        ]);
        assert_eq!(plan.decide(1, 5, 0), Some(FaultKind::Drop));
        assert_eq!(plan.decide(1, 5, 1), None, "one-shot event retries clean");
        assert_eq!(plan.decide(0, 2, 0), Some(FaultKind::Crash));
        assert_eq!(
            plan.decide(0, 2, 99),
            Some(FaultKind::Crash),
            "persistent event defeats retries"
        );
        assert_eq!(plan.decide(2, 5, 0), None);
    }

    #[test]
    fn degrade_schedule_is_shared_consensus() {
        let plan = FaultPlan::seeded(3, 0.1).with_degrade_every(2);
        let flags: Vec<bool> = (0..6).map(|i| plan.degrade_iteration(i)).collect();
        assert_eq!(flags, vec![false, true, false, true, false, true]);
        assert!(!FaultPlan::seeded(3, 0.1).degrade_iteration(1));
    }

    #[test]
    fn spec_round_trip() {
        let plan = FaultPlan::parse(
            "seed=42,rate=0.2,kinds=drop+corrupt,degrade-every=3,timeout-ms=2000,\
             delay-ms=10,restart-ms=5,kill-shards=0+2,kill-after-ms=50",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rate(), 0.2);
        assert_eq!(plan.timeout(), Some(Duration::from_millis(2000)));
        assert_eq!(plan.delay(), Duration::from_millis(10));
        assert_eq!(plan.restart_pause(), Duration::from_millis(5));
        assert!(plan.degrade_iteration(2));
        let (shards, after) = plan.kill_schedule();
        assert_eq!(shards, &[0, 2]);
        assert_eq!(after, Duration::from_millis(50));
        assert!(plan.is_active());
        // Only drop/corrupt can appear.
        for op in 0..500 {
            if let Some(k) = plan.decide(0, op, 0) {
                assert!(matches!(k, FaultKind::Drop | FaultKind::Corrupt));
            }
        }
    }

    #[test]
    fn spec_with_script_parses() {
        let plan = FaultPlan::parse("script=0:12:drop:persistent+1:3:crash").unwrap();
        assert_eq!(plan.decide(0, 12, 5), Some(FaultKind::Drop));
        assert_eq!(plan.decide(1, 3, 0), Some(FaultKind::Crash));
        assert_eq!(plan.decide(1, 3, 1), None);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "seed",
            "rate=1.5",
            "rate=nope",
            "kinds=warp",
            "script=0:1",
            "script=0:1:drop:sometimes",
            "frequency=2",
            "kill-shards=x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        assert!(!FaultPlan::parse("").unwrap().is_active());
        assert!(!FaultPlan::parse("seed=9,rate=0.0").unwrap().is_active());
    }

    #[test]
    fn stats_merge_and_export() {
        let mut a = FaultStats::new();
        a.record_injected(FaultKind::Drop);
        a.record_injected(FaultKind::Drop);
        a.record_retry();
        let mut b = FaultStats::new();
        b.record_injected(FaultKind::Corrupt);
        b.record_retry();
        b.record_retry();
        a.merge(&b);
        assert_eq!(a.injected_total(), 3);
        assert_eq!(a.injected_of(FaultKind::Drop), 2);
        assert_eq!(a.injected_of(FaultKind::Corrupt), 1);
        assert_eq!(a.retries(), 3);
        let reg = swkm_obs::MetricsRegistry::new();
        a.export_into(&reg);
        assert_eq!(reg.counter("fault_injected_total"), 3);
        assert_eq!(reg.counter("fault_drop_injected_total"), 2);
        assert_eq!(reg.counter("fault_corrupt_injected_total"), 1);
        assert_eq!(reg.counter("comm_retries_total"), 3);
        assert_eq!(reg.counter("fault_delay_injected_total"), 0);
    }
}
