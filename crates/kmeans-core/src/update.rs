//! Update-path selection and the touched-set bookkeeping behind delta
//! updates.
//!
//! PR 3's tiled Assign kernel moved the per-iteration critical path onto
//! Update and the merge AllReduce. This module holds the vocabulary the
//! fused/incremental Update paths share:
//!
//! * [`UpdateMode`] — the `--update {twopass,fused,delta}` selector. Every
//!   mode produces bitwise-identical centroids, labels and objective; only
//!   wall time changes.
//! * [`TouchedSet`] — a `k`-bit bitmask over centroid rows recording which
//!   clusters gained or lost members this iteration. Delta updates
//!   recompute exactly these rows (in ascending order, preserving the
//!   fixed-order combining discipline) and leave every other row bitwise
//!   untouched, making the local update cost O(moved·d) and the merge
//!   payload O(touched·d).
//!
//! Why recompute touched rows instead of applying `+x`/`−x` float deltas:
//! floating-point addition is not associative, so a true incremental sum
//! would drift from the two-pass result in the low-order bits. Rebuilding
//! a touched row's sum from its member samples in ascending sample order
//! reproduces the two-pass accumulation sequence exactly — bitwise — while
//! untouched rows keep their previous (already bitwise-correct) sums.

/// Which Update path the executors run. All three are bitwise-equivalent;
/// see the module docs for the discipline that makes that hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateMode {
    /// The reference: a full assign pass, then a separate full-data
    /// accumulation sweep (the seed behaviour).
    #[default]
    TwoPass,
    /// Fused assign–accumulate: the assign kernel folds each scored sample
    /// into per-cluster sums/counts while the tile is cache-resident,
    /// eliminating the second full-data sweep.
    Fused,
    /// Incremental: keep the previous iteration's labels; from iteration 2
    /// onward only clusters that gained or lost members are recomputed and
    /// merged (sparse AllReduce). Falls back to a full recompute when the
    /// moved fraction is at least [`DELTA_FALLBACK_FRACTION`].
    Delta,
}

impl UpdateMode {
    pub const ALL: [UpdateMode; 3] = [UpdateMode::TwoPass, UpdateMode::Fused, UpdateMode::Delta];

    /// Stable lowercase name (CLI vocabulary and metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            UpdateMode::TwoPass => "twopass",
            UpdateMode::Fused => "fused",
            UpdateMode::Delta => "delta",
        }
    }

    /// Stable numeric code for gauge export (`0 = twopass`, `1 = fused`,
    /// `2 = delta`).
    pub fn code(self) -> u32 {
        match self {
            UpdateMode::TwoPass => 0,
            UpdateMode::Fused => 1,
            UpdateMode::Delta => 2,
        }
    }

    /// Parse a CLI spelling. `two-pass` is accepted as an alias.
    pub fn parse(s: &str) -> Result<UpdateMode, String> {
        match s {
            "twopass" | "two-pass" => Ok(UpdateMode::TwoPass),
            "fused" => Ok(UpdateMode::Fused),
            "delta" => Ok(UpdateMode::Delta),
            other => Err(format!(
                "unknown update mode `{other}` (twopass|fused|delta)"
            )),
        }
    }
}

impl std::fmt::Display for UpdateMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for UpdateMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        UpdateMode::parse(s)
    }
}

/// Moved-fraction threshold at which a delta iteration falls back to a
/// full recompute: when at least this fraction of samples changed cluster,
/// the sparse path would touch most rows anyway and its bookkeeping and
/// compaction overhead stops paying for itself.
pub const DELTA_FALLBACK_FRACTION: f64 = 0.25;

const WORD_BITS: usize = 64;

/// A `k`-bit set over centroid rows, stored as `u64` words so rank-local
/// masks can be combined with a single bitwise-OR AllReduce (word-wise OR
/// is associative and commutative, so the merged mask is identical on
/// every rank regardless of reduction order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TouchedSet {
    words: Vec<u64>,
    k: usize,
}

impl TouchedSet {
    /// An empty set over rows `0..k`.
    pub fn new(k: usize) -> TouchedSet {
        TouchedSet {
            words: vec![0; k.div_ceil(WORD_BITS)],
            k,
        }
    }

    /// Number of rows the set ranges over (not the number marked).
    pub fn len(&self) -> usize {
        self.k
    }

    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Unmark every row.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Mark row `j` as touched.
    pub fn mark(&mut self, j: usize) {
        assert!(j < self.k, "row {j} out of range 0..{}", self.k);
        self.words[j / WORD_BITS] |= 1 << (j % WORD_BITS);
    }

    /// Mark every row (the full-recompute fallback).
    pub fn mark_all(&mut self) {
        self.words.fill(!0);
        let tail = self.k % WORD_BITS;
        if tail != 0 {
            *self.words.last_mut().expect("k > 0 when tail > 0") = (1u64 << tail) - 1;
        } else if self.k == 0 {
            self.words.clear();
        }
    }

    pub fn contains(&self, j: usize) -> bool {
        j < self.k && self.words[j / WORD_BITS] & (1 << (j % WORD_BITS)) != 0
    }

    /// Number of marked rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Marked rows in ascending order — the fixed combining order every
    /// sparse merge and scatter walks.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// The raw word representation (for OR-AllReduce payloads).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Replace the contents from a merged word payload of the same width.
    pub fn set_words(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.words.len(), "touched-set width mismatch");
        self.words.copy_from_slice(words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_codes_and_parsing() {
        for m in UpdateMode::ALL {
            assert_eq!(UpdateMode::parse(m.name()), Ok(m));
            assert_eq!(format!("{m}").parse::<UpdateMode>(), Ok(m));
        }
        assert_eq!(UpdateMode::parse("two-pass"), Ok(UpdateMode::TwoPass));
        assert!(UpdateMode::parse("warp-drive").is_err());
        assert_eq!(UpdateMode::default(), UpdateMode::TwoPass);
        let codes: Vec<u32> = UpdateMode::ALL.iter().map(|m| m.code()).collect();
        assert_eq!(codes, vec![0, 1, 2]);
    }

    #[test]
    fn touched_set_marks_counts_and_iterates_ascending() {
        let mut t = TouchedSet::new(130);
        assert_eq!(t.count(), 0);
        for j in [129, 0, 64, 63, 65, 0] {
            t.mark(j);
        }
        assert_eq!(t.count(), 5);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 129]);
        assert!(t.contains(0) && t.contains(129) && !t.contains(1));
        t.clear();
        assert_eq!(t.count(), 0);
        assert_eq!(t.iter().next(), None);
    }

    #[test]
    fn mark_all_masks_the_tail_word() {
        for k in [0usize, 1, 63, 64, 65, 128, 130] {
            let mut t = TouchedSet::new(k);
            t.mark_all();
            assert_eq!(t.count(), k, "k={k}");
            assert_eq!(t.iter().collect::<Vec<_>>(), (0..k).collect::<Vec<_>>());
        }
    }

    #[test]
    fn words_roundtrip_preserves_the_set() {
        let mut a = TouchedSet::new(100);
        for j in [2, 3, 5, 7, 97] {
            a.mark(j);
        }
        let mut b = TouchedSet::new(100);
        b.set_words(a.words());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn marking_past_the_end_panics() {
        TouchedSet::new(10).mark(10);
    }
}
