//! Streaming sample sources: datasets too large to materialise.
//!
//! The paper's full-resolution ImageNet configuration is ~1 TB of f32
//! pixels — on the real machine it streams through the CPEs' double-
//! buffered LDM via DMA, never resident anywhere. [`SampleSource`] is that
//! contract: sample `i` is produced on demand, deterministically.

use crate::matrix::Matrix;

/// A source of f32 samples that never materialises the whole dataset.
pub trait SampleSource {
    /// Total samples available.
    fn len(&self) -> u64;

    /// Dimensions per sample.
    fn dims(&self) -> usize;

    /// True when the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write sample `index` into `out` (`out.len() == dims()`).
    fn fill(&self, index: u64, out: &mut [f32]);

    /// Materialise samples `[start, start + count)` as a matrix.
    fn materialize(&self, start: u64, count: usize) -> Matrix<f32> {
        assert!(
            start + count as u64 <= self.len(),
            "range [{start}, {}) out of source of {}",
            start + count as u64,
            self.len()
        );
        let d = self.dims();
        let mut data = vec![0.0f32; count * d];
        for (row, chunk) in data.chunks_exact_mut(d.max(1)).enumerate() {
            self.fill(start + row as u64, chunk);
        }
        Matrix::from_vec(count, d, data)
    }
}

/// An in-memory matrix viewed as a source — adapts materialised data to
/// streaming consumers.
pub struct MatrixSource<'a> {
    data: &'a Matrix<f32>,
}

impl<'a> MatrixSource<'a> {
    pub fn new(data: &'a Matrix<f32>) -> Self {
        MatrixSource { data }
    }
}

impl SampleSource for MatrixSource<'_> {
    fn len(&self) -> u64 {
        self.data.rows() as u64
    }

    fn dims(&self) -> usize {
        self.data.cols()
    }

    fn fill(&self, index: u64, out: &mut [f32]) {
        out.copy_from_slice(self.data.row(index as usize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_source_round_trips() {
        let m = Matrix::from_vec(3, 2, vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let src = MatrixSource::new(&m);
        assert_eq!(src.len(), 3);
        assert_eq!(src.dims(), 2);
        assert!(!src.is_empty());
        let mut buf = [0.0f32; 2];
        src.fill(1, &mut buf);
        assert_eq!(buf, [3.0, 4.0]);
        let window = src.materialize(1, 2);
        assert_eq!(window.row(0), &[3.0, 4.0]);
        assert_eq!(window.row(1), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of source")]
    fn over_long_window_panics() {
        let m = Matrix::from_vec(2, 1, vec![0.0f32, 1.0]);
        let src = MatrixSource::new(&m);
        let _ = src.materialize(1, 2);
    }
}
