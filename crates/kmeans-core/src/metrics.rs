//! External clustering-quality metrics: comparing a clustering against a
//! reference labelling (ground truth or another clustering).
//!
//! The paper's evaluation is performance-only, but its application section
//! (land-cover classification) implicitly asks "did the clusters recover
//! the classes?" — these are the standard answers: purity, the adjusted
//! Rand index and normalised mutual information.

/// A contingency table between two labellings of the same items.
#[derive(Debug, Clone)]
pub struct Contingency {
    /// `table[a][b]` = items with label `a` in the first labelling and `b`
    /// in the second.
    table: Vec<Vec<u64>>,
    row_sums: Vec<u64>,
    col_sums: Vec<u64>,
    n: u64,
}

impl Contingency {
    /// Build from two parallel label slices. Labels may be any `u32`s; the
    /// table is sized by the maxima.
    pub fn new(a: &[u32], b: &[u32]) -> Self {
        assert_eq!(a.len(), b.len(), "labellings must cover the same items");
        assert!(!a.is_empty(), "empty labelling");
        let rows = *a.iter().max().unwrap() as usize + 1;
        let cols = *b.iter().max().unwrap() as usize + 1;
        let mut table = vec![vec![0u64; cols]; rows];
        for (&x, &y) in a.iter().zip(b) {
            table[x as usize][y as usize] += 1;
        }
        let row_sums: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
        let col_sums: Vec<u64> = (0..cols)
            .map(|j| table.iter().map(|r| r[j]).sum())
            .collect();
        Contingency {
            table,
            row_sums,
            col_sums,
            n: a.len() as u64,
        }
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    /// Purity of the first labelling against the second: the fraction of
    /// items in the majority reference class of their cluster.
    pub fn purity(&self) -> f64 {
        let majority: u64 = self
            .table
            .iter()
            .map(|row| row.iter().copied().max().unwrap_or(0))
            .sum();
        majority as f64 / self.n as f64
    }

    /// Adjusted Rand index in `[-1, 1]`; 1 = identical partitions (up to
    /// relabelling), ~0 = chance agreement.
    pub fn adjusted_rand_index(&self) -> f64 {
        let choose2 = |x: u64| (x * x.saturating_sub(1)) as f64 / 2.0;
        let sum_ij: f64 = self
            .table
            .iter()
            .flat_map(|row| row.iter())
            .map(|&v| choose2(v))
            .sum();
        let sum_a: f64 = self.row_sums.iter().map(|&v| choose2(v)).sum();
        let sum_b: f64 = self.col_sums.iter().map(|&v| choose2(v)).sum();
        let total = choose2(self.n);
        let expected = sum_a * sum_b / total;
        let max_index = 0.5 * (sum_a + sum_b);
        if (max_index - expected).abs() < 1e-12 {
            // Degenerate: both partitions trivial.
            return if (sum_ij - expected).abs() < 1e-12 {
                1.0
            } else {
                0.0
            };
        }
        (sum_ij - expected) / (max_index - expected)
    }

    /// Normalised mutual information (arithmetic-mean normalisation) in
    /// `[0, 1]`.
    pub fn nmi(&self) -> f64 {
        let n = self.n as f64;
        let mut mi = 0.0;
        for (i, row) in self.table.iter().enumerate() {
            for (j, &nij) in row.iter().enumerate() {
                if nij == 0 {
                    continue;
                }
                let nij = nij as f64;
                let pij = nij / n;
                let pi = self.row_sums[i] as f64 / n;
                let pj = self.col_sums[j] as f64 / n;
                mi += pij * (pij / (pi * pj)).ln();
            }
        }
        let h = |sums: &[u64]| -> f64 {
            sums.iter()
                .filter(|&&s| s > 0)
                .map(|&s| {
                    let p = s as f64 / n;
                    -p * p.ln()
                })
                .sum()
        };
        let ha = h(&self.row_sums);
        let hb = h(&self.col_sums);
        if ha + hb == 0.0 {
            return 1.0; // both partitions are single clusters
        }
        2.0 * mi / (ha + hb)
    }
}

/// Convenience: ARI straight from label slices.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    Contingency::new(a, b).adjusted_rand_index()
}

/// Convenience: NMI straight from label slices.
pub fn nmi(a: &[u32], b: &[u32]) -> f64 {
    Contingency::new(a, b).nmi()
}

/// Convenience: purity straight from label slices.
pub fn purity(clusters: &[u32], truth: &[u32]) -> f64 {
    Contingency::new(clusters, truth).purity()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let labels = [0u32, 0, 1, 1, 2, 2, 2];
        assert_eq!(adjusted_rand_index(&labels, &labels), 1.0);
        assert!((nmi(&labels, &labels) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&labels, &labels), 1.0);
    }

    #[test]
    fn relabelled_partitions_still_score_one() {
        let a = [0u32, 0, 1, 1, 2, 2];
        let b = [5u32, 5, 3, 3, 0, 0];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&a, &b), 1.0);
    }

    #[test]
    fn independent_partitions_score_near_zero_ari() {
        // A perfectly balanced 2×2 "checkerboard": ARI must be ≈ 0.
        let a = [0u32, 0, 1, 1, 0, 0, 1, 1];
        let b = [0u32, 1, 0, 1, 0, 1, 0, 1];
        assert!(adjusted_rand_index(&a, &b).abs() < 0.2);
    }

    #[test]
    fn known_ari_value() {
        // scikit-learn's doc example: ARI([0,0,1,2], [0,0,1,1]) = 0.571428…
        let a = [0u32, 0, 1, 2];
        let b = [0u32, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 0.5714285714).abs() < 1e-9);
    }

    #[test]
    fn purity_of_split_cluster() {
        // One cluster holds classes 0,0,1 → purity (2 + 1)/4 with second
        // cluster pure.
        let clusters = [0u32, 0, 0, 1];
        let truth = [0u32, 0, 1, 1];
        assert_eq!(purity(&clusters, &truth), 0.75);
    }

    #[test]
    fn single_cluster_edge_cases() {
        let a = [0u32; 6];
        let b = [0u32, 0, 0, 1, 1, 1];
        // One trivial partition: ARI undefined-by-formula handled as 0.
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert!(adjusted_rand_index(&a, &b).abs() < 1e-12);
        assert!(nmi(&a, &a) == 1.0);
    }

    #[test]
    fn nmi_is_symmetric() {
        let a = [0u32, 1, 1, 2, 2, 2, 0];
        let b = [1u32, 1, 0, 2, 2, 0, 0];
        assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn mismatched_lengths_rejected() {
        let _ = Contingency::new(&[0, 1], &[0]);
    }
}
