//! Row-major dense matrix for samples and centroids.
//!
//! Rows are samples (or centroids), columns are dimensions. Row-major layout
//! means a per-row *column range* — the unit Level 3 assigns to one CPE — is
//! a contiguous slice, so partial-dimension kernels run at full speed.

use crate::scalar::Scalar;
use std::ops::Range;

/// A dense `rows × cols` matrix in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<S: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    /// A zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![S::ZERO; rows * cols],
        }
    }

    /// Build from a flat row-major buffer. Panics if the length is not
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} != {rows} rows × {cols} cols",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Build from row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[S]]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[S] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [S] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The column range `cols` of row `i` — contiguous because the layout is
    /// row-major. This is what one CPE holds of a sample under Level 3.
    #[inline]
    pub fn row_cols(&self, i: usize, cols: Range<usize>) -> &[S] {
        debug_assert!(cols.end <= self.cols);
        let base = i * self.cols;
        &self.data[base + cols.start..base + cols.end]
    }

    /// Element access (row, col).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S {
        self.data[i * self.cols + j]
    }

    /// Element assignment (row, col).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        self.data[i * self.cols + j] = v;
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Flat mutable row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[S]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// A new matrix containing the given rows (in the order given).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix<S> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// A new matrix containing rows `range`.
    pub fn slice_rows(&self, range: Range<usize>) -> Matrix<S> {
        assert!(range.end <= self.rows);
        Matrix {
            rows: range.len(),
            cols: self.cols,
            data: self.data[range.start * self.cols..range.end * self.cols].to_vec(),
        }
    }

    /// Fill with zeros in place (for accumulator reuse).
    pub fn fill_zero(&mut self) {
        self.data.fill(S::ZERO);
    }

    /// Maximum absolute element-wise difference against another matrix of
    /// the same shape — used by convergence checks and test tolerances.
    pub fn max_abs_diff(&self, other: &Matrix<S>) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Convert element type (e.g. `f32` data promoted to `f64`).
    pub fn cast<T: Scalar>(&self) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| T::from_f64(v.to_f64())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    fn from_rows_matches_from_vec() {
        let a = Matrix::from_rows(&[&[1.0f32, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0f64, 2.0], &[3.0][..]]);
    }

    #[test]
    #[should_panic(expected = "matrix data length")]
    fn wrong_length_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0f64; 3]);
    }

    #[test]
    fn row_cols_is_the_right_window() {
        let m = Matrix::from_vec(2, 4, (0..8).map(|v| v as f64).collect());
        assert_eq!(m.row_cols(0, 1..3), &[1.0, 2.0]);
        assert_eq!(m.row_cols(1, 2..4), &[6.0, 7.0]);
        assert_eq!(m.row_cols(1, 0..0), &[] as &[f64]);
    }

    #[test]
    fn mutation() {
        let mut m = Matrix::<f64>::zeros(2, 2);
        m.set(0, 1, 5.0);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.as_slice(), &[0.0, 5.0, 7.0, 0.0]);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn select_and_slice_rows() {
        let m = Matrix::from_vec(3, 2, vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sel = m.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), &[5.0, 6.0]);
        assert_eq!(sel.row(1), &[1.0, 2.0]);
        let sl = m.slice_rows(1..3);
        assert_eq!(sl.rows(), 2);
        assert_eq!(sl.row(0), &[3.0, 4.0]);
    }

    #[test]
    fn iter_rows_visits_all() {
        let m = Matrix::from_vec(3, 2, (0..6).map(|v| v as f32).collect());
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4.0, 5.0]);
    }

    #[test]
    fn max_abs_diff_and_cast() {
        let a = Matrix::from_vec(1, 2, vec![1.0f64, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![1.5f64, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        let c: Matrix<f32> = a.cast();
        assert_eq!(c.get(0, 1), 2.0f32);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = Matrix::<f64>::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.iter_rows().count(), 0);
    }
}
