//! Core k-means building blocks: dense matrices, distance kernels,
//! initialization and the serial Lloyd baseline.
//!
//! Everything in this crate is sequential and allocation-disciplined; it is
//! the foundation the hierarchical executors in `hier-kmeans` are built on
//! *and* the reference implementation they are tested against. The problem
//! definition follows the paper exactly: given `n` samples in `R^d`, find `k`
//! centroids minimising the mean squared Euclidean distance from each sample
//! to its nearest centroid, iterating Lloyd's Assign/Update steps.
//!
//! Modules:
//! * [`scalar`] — an `f32`/`f64` abstraction so the whole stack is generic
//!   over precision (the paper's GPU baselines are f32; reductions at scale
//!   often want f64).
//! * [`matrix`] — row-major sample/centroid storage with per-row
//!   column-range views (the unit Level 3 partitions by dimension).
//! * [`assign`] — the batch-assign kernel layer: scalar, norm-expanded and
//!   LDM-tiled kernels behind one [`AssignKernel`] entry point.
//! * [`distance`] — squared-Euclidean kernels: simple, unrolled, and
//!   partial-dimension variants.
//! * [`init`] — Forgy, random-partition and k-means++ seeding.
//! * [`lloyd`] — the serial reference algorithm with pluggable convergence,
//!   exposed both as a whole and as separate Assign/Update steps (the pieces
//!   the parallel levels distribute).
//! * [`update`] — Update-path selection ([`UpdateMode`]: two-pass, fused
//!   assign–accumulate, incremental delta) and the touched-row bookkeeping
//!   behind sparse merges; every mode is bitwise-equivalent.
//! * [`objective`] — within-cluster sum of squares and mean objective.

pub mod assign;
pub mod bounds;
pub mod distance;
pub mod elkan;
pub mod init;
pub mod lloyd;
pub mod matrix;
pub mod metrics;
pub mod minibatch;
pub mod objective;
pub mod preprocess;
pub mod scalar;
#[cfg(feature = "serde")]
pub mod serde_impls;
pub mod source;
pub mod update;
pub mod yinyang;

pub use assign::{
    AssignKernel, AssignPlan, AssignPlanner, GemmBlocking, PlannerStats, TileShape,
    LDM_BYTES_DEFAULT,
};
pub use bounds::{
    centroid_drifts, dist_from_batch, dist_from_score_key, BoundState, BoundsIterKind, BoundsMode,
    BoundsScratch, BoundsStats, ENGAGE_MOVED_FRACTION, RESEED_SURVIVOR_FRACTION,
};
pub use distance::{
    argmin_centroid, dot_unrolled, sq_euclidean, sq_euclidean_unrolled, CentroidNorms,
};
pub use elkan::ElkanStats;
pub use init::{init_centroids, InitMethod};
pub use lloyd::{
    assign_step, max_centroid_shift, max_centroid_shift_touched, update_step, KMeansConfig,
    KMeansError, KMeansResult, Lloyd,
};
pub use matrix::Matrix;
pub use metrics::{adjusted_rand_index, nmi, purity, Contingency};
pub use minibatch::MiniBatchConfig;
pub use objective::mean_objective;
pub use preprocess::{standardized, ColumnStats};
pub use scalar::Scalar;
pub use source::{MatrixSource, SampleSource};
pub use update::{TouchedSet, UpdateMode, DELTA_FALLBACK_FRACTION};
pub use yinyang::YinyangStats;
