//! Elkan's exact accelerated k-means (Elkan, ICML 2003): the full-bounds
//! triangle-inequality algorithm — per-point upper bound, per-point-per-
//! centroid lower bounds, and inter-centroid distances.
//!
//! Where Yinyang (`crate::yinyang`) keeps `t ≈ k/10` *group* lower bounds,
//! Elkan keeps all `n × k` of them: more memory (`n·k` floats — this is why
//! large-k HPC codes prefer Yinyang or plain Lloyd), maximal filtering.
//! Results are identical to Lloyd at every iteration; [`ElkanStats`]
//! reports how much distance work the bounds eliminated.

use crate::distance::sq_euclidean_unrolled;
use crate::lloyd::{update_step, KMeansConfig, KMeansError, KMeansResult};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Work counters for Elkan's filters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElkanStats {
    /// Point-centroid distance evaluations performed.
    pub distance_evals: u64,
    /// Centroid-centroid distance evaluations (the `k²/2` per iteration
    /// overhead Elkan pays for its strongest filter).
    pub center_center_evals: u64,
    /// Distance evaluations plain Lloyd would have performed.
    pub lloyd_equivalent: u64,
    /// Points skipped entirely by the `u(i) ≤ s(b(i))` filter.
    pub point_filter_hits: u64,
}

impl ElkanStats {
    /// Fraction of Lloyd's point-centroid work avoided.
    pub fn savings(&self) -> f64 {
        if self.lloyd_equivalent == 0 {
            return 0.0;
        }
        1.0 - self.distance_evals as f64 / self.lloyd_equivalent as f64
    }
}

/// Run Elkan k-means from explicit initial centroids. Produces the same
/// result as `Lloyd::run_from` with the same configuration.
pub fn run_from<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    config: &KMeansConfig,
) -> Result<(KMeansResult<S>, ElkanStats), KMeansError> {
    let n = data.rows();
    let d = data.cols();
    let k = config.k;
    if n == 0 {
        return Err(KMeansError::EmptyDataset);
    }
    if k == 0 {
        return Err(KMeansError::ZeroK);
    }
    if k > n {
        return Err(KMeansError::KExceedsN { k, n });
    }
    if init.rows() != k || init.cols() != d {
        return Err(KMeansError::CentroidShape {
            expected_k: k,
            expected_d: d,
            got_rows: init.rows(),
            got_cols: init.cols(),
        });
    }

    let mut stats = ElkanStats::default();
    let dist = |a: &[S], b: &[S], evals: &mut u64| -> f64 {
        *evals += 1;
        sq_euclidean_unrolled(a, b).to_f64().sqrt()
    };

    let mut centroids = init;
    let mut next = Matrix::<S>::zeros(k, d);
    let mut labels = vec![0u32; n];
    let mut upper = vec![0.0f64; n];
    let mut upper_stale = vec![false; n];
    let mut lower = vec![0.0f64; n * k];

    // ---- Seeding pass: exact distances to every centroid. ----
    for i in 0..n {
        let row = data.row(i);
        let mut best = f64::INFINITY;
        let mut best_j = 0usize;
        for j in 0..k {
            let dj = dist(row, centroids.row(j), &mut stats.distance_evals);
            lower[i * k + j] = dj;
            if dj < best {
                best = dj;
                best_j = j;
            }
        }
        labels[i] = best_j as u32;
        upper[i] = best;
    }
    stats.lloyd_equivalent += (n * k) as u64;

    let mut iterations = 1usize;
    let mut converged = false;
    let mut drift = vec![0.0f64; k];
    let mut half_cc = vec![0.0f64; k * k]; // 0.5 · d(c_a, c_b)
    let mut s = vec![0.0f64; k]; // 0.5 · distance to nearest other centroid

    let counts = update_step(data, &labels, &centroids, &mut next);
    let _ = counts;
    let shift = drifts(&centroids, &next, &mut drift);
    std::mem::swap(&mut centroids, &mut next);
    if shift <= config.tol {
        converged = true;
    }
    // Bounds adjust for the first movement.
    adjust_bounds(&mut upper, &mut upper_stale, &mut lower, &labels, &drift, k);

    while !converged && iterations < config.max_iters {
        stats.lloyd_equivalent += (n * k) as u64;
        // ---- Inter-centroid distances and s(j). ----
        s.fill(f64::INFINITY);
        for a in 0..k {
            for b in a + 1..k {
                let dab = dist(
                    centroids.row(a),
                    centroids.row(b),
                    &mut stats.center_center_evals,
                );
                half_cc[a * k + b] = 0.5 * dab;
                half_cc[b * k + a] = 0.5 * dab;
                s[a] = s[a].min(0.5 * dab);
                s[b] = s[b].min(0.5 * dab);
            }
        }
        if k == 1 {
            s[0] = f64::INFINITY;
        }

        for i in 0..n {
            let mut b = labels[i] as usize;
            // Filter 1: nearest other centroid is at least 2·u away.
            if upper[i] <= s[b] {
                stats.point_filter_hits += 1;
                continue;
            }
            let row = data.row(i);
            for j in 0..k {
                if j == b {
                    continue;
                }
                // Filter 2 (per centroid): lower bound or centroid-centroid
                // separation already rules j out.
                if upper[i] <= lower[i * k + j] || upper[i] <= half_cc[b * k + j] {
                    continue;
                }
                // Tighten the upper bound once per point per iteration.
                if upper_stale[i] {
                    let du = dist(row, centroids.row(b), &mut stats.distance_evals);
                    upper[i] = du;
                    lower[i * k + b] = du;
                    upper_stale[i] = false;
                    if upper[i] <= lower[i * k + j] || upper[i] <= half_cc[b * k + j] {
                        continue;
                    }
                }
                // Exact distance to the challenger.
                let dj = dist(row, centroids.row(j), &mut stats.distance_evals);
                lower[i * k + j] = dj;
                if dj < upper[i] || (dj == upper[i] && j < b) {
                    b = j;
                    upper[i] = dj;
                    upper_stale[i] = false;
                }
            }
            labels[i] = b as u32;
        }

        let _counts = update_step(data, &labels, &centroids, &mut next);
        let shift = drifts(&centroids, &next, &mut drift);
        std::mem::swap(&mut centroids, &mut next);
        iterations += 1;
        if shift <= config.tol {
            converged = true;
        }
        adjust_bounds(&mut upper, &mut upper_stale, &mut lower, &labels, &drift, k);
    }

    let mut final_labels = vec![0u32; n];
    let objective = crate::lloyd::assign_step(data, &centroids, &mut final_labels) / n as f64;
    Ok((
        KMeansResult {
            centroids,
            labels: final_labels,
            iterations,
            objective,
            converged,
            bounds: crate::bounds::BoundsStats::default(),
        },
        stats,
    ))
}

/// Per-centroid movement; returns the maximum.
fn drifts<S: Scalar>(old: &Matrix<S>, new: &Matrix<S>, drift: &mut [f64]) -> f64 {
    let mut worst = 0.0f64;
    for (j, slot) in drift.iter_mut().enumerate().take(old.rows()) {
        let m = sq_euclidean_unrolled(old.row(j), new.row(j))
            .to_f64()
            .sqrt();
        *slot = m;
        worst = worst.max(m);
    }
    worst
}

/// Loosen every bound by the centroid movements (triangle inequality).
fn adjust_bounds(
    upper: &mut [f64],
    upper_stale: &mut [bool],
    lower: &mut [f64],
    labels: &[u32],
    drift: &[f64],
    k: usize,
) {
    for i in 0..upper.len() {
        upper[i] += drift[labels[i] as usize];
        upper_stale[i] = true;
        let row = &mut lower[i * k..(i + 1) * k];
        for (j, l) in row.iter_mut().enumerate() {
            *l = (*l - drift[j]).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{init_centroids, InitMethod};
    use crate::lloyd::Lloyd;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn mixture(n: usize, d: usize, k: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..d).map(|_| rng.gen_range(-20.0..20.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            data.extend(centers[i % k].iter().map(|v| v + rng.gen_range(-1.0..1.0)));
        }
        Matrix::from_vec(n, d, data)
    }

    #[test]
    fn matches_lloyd_exactly() {
        for seed in [1u64, 5, 9] {
            let data = mixture(350, 7, 11, seed);
            let init = init_centroids(&data, 11, InitMethod::Forgy, seed);
            let cfg = KMeansConfig::new(11).with_max_iters(12).with_tol(0.0);
            let lloyd = Lloyd::run_from(&data, init.clone(), &cfg).unwrap();
            let (ek, _) = run_from(&data, init, &cfg).unwrap();
            assert_eq!(ek.labels, lloyd.labels, "seed {seed}");
            assert!(
                ek.centroids.max_abs_diff(&lloyd.centroids) < 1e-9,
                "seed {seed}: diff {}",
                ek.centroids.max_abs_diff(&lloyd.centroids)
            );
            assert_eq!(ek.iterations, lloyd.iterations);
        }
    }

    #[test]
    fn converged_runs_agree() {
        let data = mixture(400, 5, 7, 3);
        let init = init_centroids(&data, 7, InitMethod::KMeansPlusPlus, 3);
        let cfg = KMeansConfig::new(7).with_max_iters(100).with_tol(1e-9);
        let lloyd = Lloyd::run_from(&data, init.clone(), &cfg).unwrap();
        let (ek, _) = run_from(&data, init, &cfg).unwrap();
        assert!(ek.converged);
        assert_eq!(ek.labels, lloyd.labels);
        assert!((ek.objective - lloyd.objective).abs() < 1e-9);
    }

    #[test]
    fn bounds_save_work_on_separated_clusters() {
        let data = mixture(1_200, 12, 24, 7);
        let init = init_centroids(&data, 24, InitMethod::KMeansPlusPlus, 7);
        let cfg = KMeansConfig::new(24).with_max_iters(30).with_tol(1e-9);
        let (_, stats) = run_from(&data, init, &cfg).unwrap();
        assert!(
            stats.savings() > 0.4,
            "only {:.0}% saved ({} of {})",
            stats.savings() * 100.0,
            stats.distance_evals,
            stats.lloyd_equivalent
        );
        assert!(stats.point_filter_hits > 0);
        assert!(stats.center_center_evals > 0);
    }

    #[test]
    fn elkan_and_yinyang_agree_with_each_other() {
        let data = mixture(300, 6, 15, 21);
        let init = init_centroids(&data, 15, InitMethod::Forgy, 21);
        let cfg = KMeansConfig::new(15).with_max_iters(10).with_tol(0.0);
        let (ek, _) = run_from(&data, init.clone(), &cfg).unwrap();
        let (yy, _) = crate::yinyang::run_from(&data, init, &cfg).unwrap();
        assert_eq!(ek.labels, yy.labels);
        assert!(ek.centroids.max_abs_diff(&yy.centroids) < 1e-9);
    }

    #[test]
    fn single_cluster_short_circuits() {
        let data = mixture(60, 3, 1, 2);
        let init = init_centroids(&data, 1, InitMethod::Forgy, 2);
        let cfg = KMeansConfig::new(1).with_max_iters(10).with_tol(1e-9);
        let (ek, _) = run_from(&data, init, &cfg).unwrap();
        assert!(ek.converged);
        assert!(ek.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn f32_agrees_with_its_lloyd() {
        let data: Matrix<f32> = mixture(200, 4, 6, 13).cast();
        let init = init_centroids(&data, 6, InitMethod::Forgy, 13);
        let cfg = KMeansConfig::new(6).with_max_iters(8).with_tol(0.0);
        let lloyd = Lloyd::run_from(&data, init.clone(), &cfg).unwrap();
        let (ek, _) = run_from(&data, init, &cfg).unwrap();
        assert_eq!(ek.labels, lloyd.labels);
    }

    #[test]
    fn validation_errors() {
        let data = mixture(10, 2, 2, 1);
        assert!(matches!(
            run_from(&data, Matrix::zeros(2, 9), &KMeansConfig::new(2)).unwrap_err(),
            KMeansError::CentroidShape { .. }
        ));
        assert!(matches!(
            run_from(&data, Matrix::zeros(0, 2), &KMeansConfig::new(0)).unwrap_err(),
            KMeansError::ZeroK
        ));
    }
}
