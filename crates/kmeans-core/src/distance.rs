//! Squared-Euclidean distance kernels.
//!
//! Three variants:
//! * [`sq_euclidean`] — the obvious loop; the reference everything else is
//!   tested against.
//! * [`sq_euclidean_unrolled`] — four independent accumulators so the
//!   compiler can keep multiple FMAs in flight (the CPE-style inner loop).
//! * Partial-dimension distances are just these kernels applied to
//!   column-range slices: Level 3 computes `Σ_{u∈slice}(x_u - c_u)²` per CPE
//!   and sum-reduces the partials, which is exact because squared Euclidean
//!   distance is additive over disjoint dimension slices.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_euclidean<S: Scalar>(a: &[S], b: &[S]) -> S {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = S::ZERO;
    for (x, y) in a.iter().zip(b) {
        let d = *x - *y;
        acc += d * d;
    }
    acc
}

/// Squared Euclidean distance with 4-way unrolling — same result as
/// [`sq_euclidean`] up to floating-point reassociation.
#[inline]
pub fn sq_euclidean_unrolled<S: Scalar>(a: &[S], b: &[S]) -> S {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (S::ZERO, S::ZERO, S::ZERO, S::ZERO);
    for i in 0..chunks {
        let base = i * 4;
        let d0 = a[base] - b[base];
        let d1 = a[base + 1] - b[base + 1];
        let d2 = a[base + 2] - b[base + 2];
        let d3 = a[base + 3] - b[base + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Index and squared distance of the centroid nearest to `sample`,
/// breaking ties toward the lowest index (the convention every level of the
/// hierarchy shares, so distributed argmin merges agree with serial).
#[inline]
pub fn argmin_centroid<S: Scalar>(sample: &[S], centroids: &Matrix<S>) -> (usize, S) {
    assert!(centroids.rows() > 0, "no centroids");
    assert_eq!(sample.len(), centroids.cols(), "dimension mismatch");
    let mut best_j = 0usize;
    let mut best_d = sq_euclidean_unrolled(sample, centroids.row(0));
    for j in 1..centroids.rows() {
        let d = sq_euclidean_unrolled(sample, centroids.row(j));
        if d < best_d {
            best_d = d;
            best_j = j;
        }
    }
    (best_j, best_d)
}

/// Precomputed squared norms of each centroid row — the expansion trick
/// `‖x − c‖² = ‖x‖² + ‖c‖² − 2·x·c` turns the distance scan into one dot
/// product per centroid (half the subtract/square work, and the `x·c` loop
/// is a pure FMA stream the vector pipes love). Norms are recomputed once
/// per Update, amortised over all n samples.
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidNorms<S: Scalar> {
    norms: Vec<S>,
}

impl<S: Scalar> CentroidNorms<S> {
    /// Compute `‖c_j‖²` for every centroid row.
    pub fn new(centroids: &Matrix<S>) -> Self {
        let norms = (0..centroids.rows())
            .map(|j| {
                let row = centroids.row(j);
                dot_unrolled(row, row)
            })
            .collect();
        CentroidNorms { norms }
    }

    pub fn len(&self) -> usize {
        self.norms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// Argmin over all centroids using the norm expansion. Minimising
    /// `‖x−c‖²` at fixed x is minimising `‖c‖² − 2·x·c`, so `‖x‖²` is never
    /// computed. Returns the winning index and its *score*
    /// (`‖c‖² − 2·x·c`); add `‖x‖²` to recover the squared distance.
    pub fn argmin(&self, sample: &[S], centroids: &Matrix<S>) -> (usize, S) {
        assert_eq!(self.norms.len(), centroids.rows(), "stale norms");
        assert!(!self.norms.is_empty(), "no centroids");
        let two = S::from_f64(2.0);
        let mut best_j = 0usize;
        let mut best = self.norms[0] - two * dot_unrolled(sample, centroids.row(0));
        for j in 1..centroids.rows() {
            let score = self.norms[j] - two * dot_unrolled(sample, centroids.row(j));
            if score < best {
                best = score;
                best_j = j;
            }
        }
        (best_j, best)
    }
}

/// Dot product with 4-way unrolling.
#[inline]
pub fn dot_unrolled<S: Scalar>(a: &[S], b: &[S]) -> S {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (S::ZERO, S::ZERO, S::ZERO, S::ZERO);
    for i in 0..chunks {
        let base = i * 4;
        s0 += a[base] * b[base];
        s1 += a[base + 1] * b[base + 1];
        s2 += a[base + 2] * b[base + 2];
        s3 += a[base + 3] * b[base + 3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for i in chunks * 4..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Like [`argmin_centroid`] but over a *subset* of centroid rows, returning
/// the winning row's global index from `global_offset`. This is the partial
/// argmin a CPE group member computes in Level 2 before the min-loc merge.
#[inline]
pub fn argmin_centroid_range<S: Scalar>(
    sample: &[S],
    centroids: &Matrix<S>,
    rows: std::ops::Range<usize>,
    global_offset: usize,
) -> (usize, S) {
    assert!(!rows.is_empty(), "empty centroid range");
    let mut best_j = global_offset;
    let mut best_d = sq_euclidean_unrolled(sample, centroids.row(rows.start));
    for j in rows.start + 1..rows.end {
        let d = sq_euclidean_unrolled(sample, centroids.row(j));
        if d < best_d {
            best_d = d;
            best_j = global_offset + (j - rows.start);
        }
    }
    (best_j, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_distance() {
        assert_eq!(sq_euclidean(&[0.0f64, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_euclidean(&[1.0f32], &[1.0]), 0.0);
        assert_eq!(sq_euclidean::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn unrolled_matches_simple() {
        // Lengths around the unroll boundary.
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 31, 64, 100] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.71).cos()).collect();
            let simple = sq_euclidean(&a, &b);
            let unrolled = sq_euclidean_unrolled(&a, &b);
            assert!(
                (simple - unrolled).abs() < 1e-12 * (1.0 + simple),
                "len {len}: {simple} vs {unrolled}"
            );
        }
    }

    #[test]
    fn partial_distances_sum_to_full() {
        // Additivity over dimension slices — the property Level 3 relies on.
        let a: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).powi(2) % 3.0).collect();
        let full = sq_euclidean(&a, &b);
        let split: f64 = [(0, 13), (13, 64), (64, 100)]
            .iter()
            .map(|&(s, e)| sq_euclidean(&a[s..e], &b[s..e]))
            .sum();
        assert!((full - split).abs() < 1e-10);
    }

    #[test]
    fn argmin_picks_nearest() {
        let centroids = Matrix::from_rows(&[&[0.0f64, 0.0], &[10.0, 0.0], &[0.0, 10.0]]);
        assert_eq!(argmin_centroid(&[1.0, 1.0], &centroids).0, 0);
        assert_eq!(argmin_centroid(&[9.0, 1.0], &centroids).0, 1);
        assert_eq!(argmin_centroid(&[1.0, 9.0], &centroids).0, 2);
    }

    #[test]
    fn argmin_breaks_ties_low() {
        let centroids = Matrix::from_rows(&[&[1.0f64], &[3.0], &[3.0], &[1.0]]);
        // Sample 2.0 is equidistant from all four; index 0 must win.
        let (j, d) = argmin_centroid(&[2.0], &centroids);
        assert_eq!(j, 0);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn argmin_range_offsets_globally() {
        let centroids = Matrix::from_rows(&[&[0.0f64], &[10.0], &[2.9], &[100.0]]);
        // Search only rows 2..4 but report indices as if offset by 10.
        let (j, d) = argmin_centroid_range(&[3.0], &centroids, 2..4, 10);
        assert_eq!(j, 10);
        assert!((d - 0.01).abs() < 1e-12);
        let (j2, _) = argmin_centroid_range(&[99.0], &centroids, 2..4, 10);
        assert_eq!(j2, 11);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn argmin_rejects_dimension_mismatch() {
        let centroids = Matrix::from_rows(&[&[0.0f64, 0.0]]);
        let _ = argmin_centroid(&[1.0], &centroids);
    }

    #[test]
    fn dot_matches_naive() {
        for len in [0usize, 1, 4, 5, 17, 100] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.3).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.9).cos()).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot_unrolled(&a, &b) - naive).abs() < 1e-12 * (1.0 + naive.abs()));
        }
    }

    #[test]
    fn norm_trick_argmin_matches_direct() {
        let k = 20;
        let d = 37;
        let centroids = Matrix::from_vec(
            k,
            d,
            (0..k * d)
                .map(|i| ((i * 37 % 101) as f64 - 50.0) * 0.1)
                .collect(),
        );
        let norms = CentroidNorms::new(&centroids);
        assert_eq!(norms.len(), k);
        for s in 0..25 {
            let sample: Vec<f64> = (0..d)
                .map(|u| ((s * 13 + u * 7) % 97) as f64 * 0.1 - 4.0)
                .collect();
            let (direct, direct_d) = argmin_centroid(&sample, &centroids);
            let (trick, score) = norms.argmin(&sample, &centroids);
            assert_eq!(direct, trick, "sample {s}");
            // score + ‖x‖² == squared distance.
            let x2 = dot_unrolled(&sample, &sample);
            assert!(
                ((score + x2) - direct_d).abs() < 1e-9,
                "distance recovery failed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "stale norms")]
    fn norms_must_match_centroids() {
        let c1 = Matrix::<f64>::zeros(3, 4);
        let c2 = Matrix::<f64>::zeros(5, 4);
        let norms = CentroidNorms::new(&c1);
        let _ = norms.argmin(&[0.0; 4], &c2);
    }

    #[test]
    fn f32_kernels_work() {
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0f32, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(sq_euclidean(&a, &b), 40.0);
        assert_eq!(sq_euclidean_unrolled(&a, &b), 40.0);
    }
}
